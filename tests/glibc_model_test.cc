/**
 * @file
 * Tests for the glibc-like baseline allocator model — the "RSS never
 * comes back" behaviour underlying the paper's Figure 9 baseline.
 */

#include <gtest/gtest.h>

#include <vector>

#include "alloc_sim/glibc_model.h"
#include "base/rng.h"

namespace
{

using namespace alaska;

TEST(GlibcModel, AllocTouchesPages)
{
    GlibcModel model;
    model.alloc(10000);
    EXPECT_EQ(model.rss(), 3 * 4096u);
    EXPECT_EQ(model.activeBytes(), 10000u); // already 16-aligned
    model.alloc(1);
    EXPECT_EQ(model.activeBytes(), 10016u); // rounded up to 16
}

TEST(GlibcModel, FirstFitReusesLowestHole)
{
    GlibcModel model;
    const uint64_t a = model.alloc(100);
    model.alloc(100);
    const uint64_t c = model.alloc(100);
    model.alloc(100);
    model.free(a);
    model.free(c);
    // First fit by address: the lowest hole (a) is reused first.
    EXPECT_EQ(model.alloc(100), a);
    EXPECT_EQ(model.alloc(100), c);
}

TEST(GlibcModel, FreeCoalescesNeighbours)
{
    GlibcModel model;
    const uint64_t a = model.alloc(64);
    const uint64_t b = model.alloc(64);
    const uint64_t c = model.alloc(64);
    model.alloc(64); // keep the top busy
    model.free(a);
    model.free(c);
    model.free(b); // bridges a and c into one range
    // A single request the size of all three fits in the coalesced hole.
    EXPECT_EQ(model.alloc(192), a);
}

TEST(GlibcModel, OnlyTopTrimReturnsMemory)
{
    GlibcModel model;
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 1024; i++)
        tokens.push_back(model.alloc(4096));
    const size_t rss_full = model.rss();
    // Free every other object: interior holes, no RSS change.
    for (size_t i = 0; i + 2 < tokens.size(); i += 2)
        model.free(tokens[i]);
    EXPECT_EQ(model.rss(), rss_full);
    // Free the top object: the trailing free run is trimmed.
    model.free(tokens.back());
    EXPECT_LT(model.rss(), rss_full);
}

TEST(GlibcModel, RobsonPhasesDefeatNonMovingAllocation)
{
    // Robson's bound, cited by the paper as the reason defragmentation
    // is unavoidable: "any allocation strategy that is not free to
    // relocate objects will suffer from fragmentation". Phase k fills
    // the heap with size-s_k objects and keeps one in eight alive; the
    // surviving pins make every hole (7*s_k) too small for phase k+1's
    // requests (8*s_k), so each phase extends the heap even though the
    // live set stays small.
    GlibcModel model;
    std::vector<uint64_t> survivors;
    size_t size = 16;
    constexpr size_t phase_bytes = 1 << 20;
    for (int phase = 0; phase < 4; phase++) {
        std::vector<uint64_t> batch;
        for (size_t i = 0; i < phase_bytes / size; i++)
            batch.push_back(model.alloc(size));
        for (size_t i = 0; i < batch.size(); i++) {
            if (i % 8 == 7) {
                survivors.push_back(batch[i]);
            } else {
                model.free(batch[i]);
            }
        }
        size *= 8;
    }
    // Extent grew by ~1 MiB per phase while only 1/8 stayed live.
    EXPECT_GT(model.extent(), 3 * phase_bytes);
    EXPECT_GT(static_cast<double>(model.rss()) /
                  static_cast<double>(model.activeBytes()),
              3.0);
    for (uint64_t t : survivors)
        model.free(t);
}

} // namespace
