/**
 * @file
 * Runtime-facing tests for page meshing (DefragMode::Mesh's
 * mechanism): mesh passes running against live handles must never
 * tear a read through access<T>, split-on-write must restore
 * exclusive (resident) frames when an allocation lands on a shared
 * one, and RSS accounting must never undercount — every live
 * object's page stays resident, meshed or not. Runs in the TSAN lane
 * (scripts/check.sh --tsan): the mesh pass, the split hooks, and the
 * PageModel alias path all interleave with 8 mutator threads here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "api/api.h"
#include "base/rng.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

/** Word j of object (slot, version) in thread t's partition. */
uint64_t
wordOf(int t, int slot, uint32_t version, size_t j)
{
    return (static_cast<uint64_t>(t) << 48) ^
           (static_cast<uint64_t>(slot) << 32) ^
           (static_cast<uint64_t>(version) << 8) ^ j;
}

constexpr size_t kObjBytes = 96; // 6 slots: pages de-phase (4096 % 96 != 0)
constexpr size_t kObjWords = kObjBytes / sizeof(uint64_t);

void
fillObject(void *h, int t, int slot, uint32_t version)
{
    auto *p = static_cast<uint64_t *>(translate(h));
    for (size_t j = 0; j < kObjWords; j++)
        p[j] = wordOf(t, slot, version, j);
}

TEST(MeshRuntime, MeshRecoversRssAndSplitsOnWrite)
{
    RealAddressSpace space;
    AnchorageService service(
        space, AnchorageConfig{.subHeapBytes = 1 << 20, .shards = 1});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 18});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    // A heap of 496-byte objects (31 slots each, so block phase drifts
    // across pages), three quarters of it then freed: sparse pages
    // with diverse occupancy patterns — prime meshing material.
    std::vector<void *> handles(4000, nullptr);
    for (size_t i = 0; i < handles.size(); i++) {
        handles[i] = runtime.halloc(496);
        fillObject(handles[i], 0, static_cast<int>(i), 0);
    }
    Rng rng(31);
    for (auto &h : handles) {
        if (rng.chance(0.75)) {
            runtime.hfree(h);
            h = nullptr;
        }
    }

    const size_t rss_before = service.rss();
    DefragStats total;
    for (int pass = 0; pass < 10; pass++)
        total.accumulate(service.meshPass(2048, 0.5));

    EXPECT_GT(total.pagesMeshed, 0u);
    EXPECT_EQ(total.bytesRecovered,
              total.pagesMeshed * space.pages().pageSize());
    EXPECT_LT(service.rss(), rss_before);
    EXPECT_GT(service.meshDirectory().activeMeshes(), 0u);
    // Meshing is not a mover and not a barrier mechanism.
    EXPECT_EQ(total.movedObjects, 0u);
    EXPECT_EQ(total.barriers, 0u);

    // Survivors read back intact through the typed guard, and every
    // live page is still resident (possibly through a shared frame).
    for (size_t i = 0; i < handles.size(); i++) {
        if (handles[i] == nullptr)
            continue;
        alaska::access<uint64_t> guard(
            static_cast<uint64_t *>(handles[i]));
        for (size_t j = 0; j < kObjWords; j++)
            ASSERT_EQ(guard[j], wordOf(0, static_cast<int>(i), 0, j));
        EXPECT_TRUE(space.pages().isResident(
            reinterpret_cast<uint64_t>(translate(handles[i]))));
    }

    // Split-on-write: keep allocating into the holes until a
    // placement lands on a meshed page; the mesh must dissolve and
    // the split page must be privately resident again.
    std::vector<void *> fresh;
    while (service.meshDirectory().splitFaults() == 0 &&
           fresh.size() < handles.size()) {
        fresh.push_back(runtime.halloc(496));
        fillObject(fresh.back(), 1, static_cast<int>(fresh.size()), 0);
    }
    EXPECT_GT(service.meshDirectory().splitFaults(), 0u);
    const DefragStats after = service.meshPass(0, 0.5);
    EXPECT_GT(after.splitFaults, 0u); // pass reports the delta

    // Nothing anywhere was torn by the splits, and residency still
    // covers every live object — the never-undercount invariant.
    for (size_t i = 0; i < handles.size(); i++) {
        if (handles[i] == nullptr)
            continue;
        alaska::access<uint64_t> guard(
            static_cast<uint64_t *>(handles[i]));
        for (size_t j = 0; j < kObjWords; j++)
            ASSERT_EQ(guard[j], wordOf(0, static_cast<int>(i), 0, j));
        EXPECT_TRUE(space.pages().isResident(
            reinterpret_cast<uint64_t>(translate(handles[i]))));
    }
    for (size_t i = 0; i < fresh.size(); i++) {
        alaska::access<uint64_t> guard(
            static_cast<uint64_t *>(fresh[i]));
        for (size_t j = 0; j < kObjWords; j++)
            ASSERT_EQ(guard[j],
                      wordOf(1, static_cast<int>(i) + 1, 0, j));
        EXPECT_TRUE(space.pages().isResident(
            reinterpret_cast<uint64_t>(translate(fresh[i]))));
    }

    for (void *h : handles)
        if (h != nullptr)
            runtime.hfree(h);
    for (void *h : fresh)
        runtime.hfree(h);
    EXPECT_EQ(service.activeBytes(), 0u);
}

TEST(MeshRuntime, EightThreadsReadAndChurnWhileMeshing)
{
    RealAddressSpace space;
    AnchorageService service(
        space, AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 20});
    runtime.attachService(&service);

    constexpr int kThreads = 8;
    constexpr int kSlotsPerThread = 400;
    // Mutators churn until the driver has seen both meshes and split
    // faults happen under them (stop flag); the op cap only bounds
    // the test if meshing somehow never occurs.
    constexpr int kMaxOpsPerThread = 2000000;
    constexpr int kMinOpsPerThread = 2000;

    std::atomic<uint64_t> tornReads{0};
    std::atomic<int> running{kThreads};
    std::atomic<bool> stop{false};
    std::vector<std::thread> mutators;
    for (int t = 0; t < kThreads; t++) {
        mutators.emplace_back([&, t] {
            ThreadRegistration treg(runtime);
            struct Slot
            {
                void *h;
                uint32_t version;
            };
            std::vector<Slot> slots(kSlotsPerThread);
            for (int s = 0; s < kSlotsPerThread; s++) {
                slots[s] = {runtime.halloc(kObjBytes), 0};
                fillObject(slots[s].h, t, s, 0);
            }
            // Fragment the partition so the mesher has material: drop
            // to 1/4 occupancy, and keep the churn's steady state
            // there (dead->live at 0.1 vs live->dead at 0.3 balances
            // at 25% live) — sparse pages with block-granular live
            // runs are what disjoint-pair probing can actually mesh.
            Rng rng(100 + static_cast<uint64_t>(t));
            for (int s = 0; s < kSlotsPerThread; s++) {
                if (s % 4 == 0)
                    continue;
                runtime.hfree(slots[s].h);
                slots[s].h = nullptr;
            }
            for (int op = 0;
                 op < kMaxOpsPerThread &&
                 (op < kMinOpsPerThread ||
                  !stop.load(std::memory_order_acquire));
                 op++) {
                const int s =
                    static_cast<int>(rng.below(kSlotsPerThread));
                Slot &slot = slots[static_cast<size_t>(s)];
                if (slot.h == nullptr) {
                    if (rng.chance(0.1)) {
                        slot.version++;
                        slot.h = runtime.halloc(kObjBytes);
                        fillObject(slot.h, t, s, slot.version);
                    }
                } else if (rng.chance(0.3)) {
                    runtime.hfree(slot.h);
                    slot.h = nullptr;
                } else {
                    // The torn-read check: every word must belong to
                    // exactly this (thread, slot, version).
                    alaska::access<uint64_t> guard(
                        static_cast<uint64_t *>(slot.h));
                    for (size_t j = 0; j < kObjWords; j++) {
                        if (guard[j] !=
                            wordOf(t, s, slot.version, j))
                            tornReads.fetch_add(
                                1, std::memory_order_relaxed);
                    }
                }
                poll();
            }
            for (auto &slot : slots)
                if (slot.h != nullptr)
                    runtime.hfree(slot.h);
            running.fetch_sub(1, std::memory_order_release);
        });
    }

    // The mesh driver: barrier-free passes racing the mutators. Keep
    // pressing until meshing and splitting have both demonstrably
    // happened under live mutators, then release them.
    DefragStats total;
    while (running.load(std::memory_order_acquire) > 0) {
        total.accumulate(service.meshPass(512, 0.5));
        if (total.pagesMeshed > 0 &&
            service.meshDirectory().splitFaults() > 0)
            stop.store(true, std::memory_order_release);
    }
    for (auto &m : mutators)
        m.join();

    EXPECT_EQ(tornReads.load(), 0u);
    // The churn (fresh allocations into meshed holes) must have
    // split at least some of what the racing passes meshed; both
    // directions of the protocol ran against live mutators.
    EXPECT_GT(total.pagesMeshed, 0u);
    EXPECT_GT(service.meshDirectory().splitFaults(), 0u);
    EXPECT_EQ(service.activeBytes(), 0u);
    // Everything was freed; dissolving the surviving meshes must
    // leave a consistent directory.
    EXPECT_EQ(service.meshDirectory().activeMeshes(),
              service.meshDirectory().meshes() -
                  service.meshDirectory().splitFaults() -
                  service.meshDirectory().dissolves());
}

} // namespace
