/**
 * @file
 * Deterministic random structured-program generator for compiler
 * property tests.
 *
 * Programs use memory-resident variables (slots in a locals array)
 * instead of SSA phis, which keeps generation simple while producing
 * exactly the access patterns the Alaska passes care about: loads and
 * stores on heap roots from inside nested loops and branches, pointer
 * values stored to and reloaded from memory (pointer chasing), frees,
 * and escapes to external code. The same seed always generates the
 * same program, so baseline and to-be-transformed copies can be built
 * independently.
 */

#ifndef ALASKA_TESTS_IR_PROGRAM_GEN_H
#define ALASKA_TESTS_IR_PROGRAM_GEN_H

#include <string>

#include "base/rng.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/ir.h"

namespace alaska::testgen
{

/** Knobs for the generator. */
struct GenOptions
{
    int arrays = 3;           ///< heap arrays allocated at entry
    int arrayLen = 16;        ///< elements per array
    int scalarSlots = 4;      ///< memory-resident scalar variables
    int statements = 24;      ///< top-level statement budget
    int maxDepth = 3;         ///< nesting depth of if/while
    bool useExternalCalls = true;
    bool usePointerChasing = true;
    bool useFrees = false;    ///< free one array early (tests hfree)
};

/**
 * Build `main(seedArg)` into the module. The program finishes by
 * summing every array element and live scalar into its return value,
 * so any divergence in memory effects changes the result.
 */
ir::Function *generateProgram(ir::Module &module, uint64_t seed,
                              const GenOptions &options = {});

/** Register the external functions generated programs may call. */
void registerGenExternals(ir::Interpreter &interp);

} // namespace alaska::testgen

#endif // ALASKA_TESTS_IR_PROGRAM_GEN_H
