/**
 * @file
 * Tests for sds, the incremental-rehash dict, and MiniKv across all
 * three allocator policies — including Redis-transparency under
 * Alaska: the exact same data-structure code runs on handles and
 * survives full defragmentation with zero cooperation.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "alloc_sim/jemalloc_model.h"
#include "anchorage/anchorage_service.h"
#include "base/rng.h"
#include "core/runtime.h"
#include "kv/alloc_policy.h"
#include "kv/dict.h"
#include "kv/minikv.h"
#include "kv/sds.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::kv;

TEST(Sds, RoundTripOnLibc)
{
    LibcAlloc alloc;
    Sds s = sdsNew(alloc, "hello alaska");
    EXPECT_EQ(sdsLen<LibcAlloc>(s), 12u);
    EXPECT_TRUE(sdsEquals<LibcAlloc>(s, "hello alaska"));
    EXPECT_FALSE(sdsEquals<LibcAlloc>(s, "hello alask"));
    EXPECT_EQ(sdsToString<LibcAlloc>(s), "hello alaska");
    sdsFree(alloc, s);
}

TEST(Sds, HashMatchesBytesHash)
{
    LibcAlloc alloc;
    Sds s = sdsNew(alloc, "key:12345");
    EXPECT_EQ(sdsHash<LibcAlloc>(s), bytesHash("key:12345"));
    sdsFree(alloc, s);
}

TEST(Dict, InsertFindRemove)
{
    LibcAlloc alloc;
    Dict<LibcAlloc> dict(alloc);
    DictEntry *e = dict.insert("alpha");
    LibcAlloc::deref(e)->value = nullptr;
    EXPECT_EQ(dict.find("alpha"), e);
    EXPECT_EQ(dict.find("beta"), nullptr);
    EXPECT_EQ(dict.used(), 1u);

    DictEntry *removed = dict.remove("alpha");
    EXPECT_EQ(removed, e);
    EXPECT_EQ(dict.find("alpha"), nullptr);
    // Owner cleanup.
    sdsFree(alloc, LibcAlloc::deref(removed)->key);
    alloc.free(removed);
}

TEST(Dict, IncrementalRehashPreservesAllKeys)
{
    LibcAlloc alloc;
    Dict<LibcAlloc> dict(alloc);
    constexpr int n = 5000; // forces many rehashes from size 16
    for (int i = 0; i < n; i++) {
        DictEntry *e = dict.insert("key:" + std::to_string(i));
        LibcAlloc::deref(e)->value =
            reinterpret_cast<void *>(static_cast<intptr_t>(i));
    }
    EXPECT_EQ(dict.used(), static_cast<size_t>(n));
    for (int i = 0; i < n; i++) {
        DictEntry *e = dict.find("key:" + std::to_string(i));
        ASSERT_NE(e, nullptr) << "lost key " << i;
        EXPECT_EQ(reinterpret_cast<intptr_t>(LibcAlloc::deref(e)->value),
                  i);
    }
    // Empty it out so the dtor's table-only cleanup suffices.
    for (int i = 0; i < n; i++) {
        DictEntry *e = dict.remove("key:" + std::to_string(i));
        ASSERT_NE(e, nullptr);
        sdsFree(alloc, LibcAlloc::deref(e)->key);
        alloc.free(e);
    }
}

template <typename A, typename MakeAlloc>
void
miniKvBasicOps(MakeAlloc make)
{
    auto ctx = make();
    A &alloc = *ctx.alloc;
    {
        MiniKv<A> kv(alloc);
        kv.set("name", "alaska");
        kv.set("venue", "asplos24");
        EXPECT_EQ(kv.get("name").value_or(""), "alaska");
        EXPECT_EQ(kv.get("venue").value_or(""), "asplos24");
        EXPECT_FALSE(kv.get("missing").has_value());

        kv.set("name", "anchorage"); // replace
        EXPECT_EQ(kv.get("name").value_or(""), "anchorage");
        EXPECT_EQ(kv.stats().keys, 2u);

        EXPECT_TRUE(kv.del("venue"));
        EXPECT_FALSE(kv.del("venue"));
        EXPECT_EQ(kv.stats().keys, 1u);
    }
}

TEST(MiniKv, BasicOpsOnLibc)
{
    struct Ctx
    {
        std::unique_ptr<LibcAlloc> alloc = std::make_unique<LibcAlloc>();
    };
    miniKvBasicOps<LibcAlloc>([] { return Ctx{}; });
}

TEST(MiniKv, LruEvictionUnderMaxmemory)
{
    LibcAlloc alloc;
    MiniKv<LibcAlloc> kv(alloc, 64 << 10);
    const std::string value(500, 'v');
    for (int i = 0; i < 500; i++)
        kv.set("key:" + std::to_string(i), value);
    EXPECT_LE(kv.usedMemory(), 64u << 10);
    EXPECT_GT(kv.stats().evictions, 0u);
    // The most recent keys survive; the oldest are gone.
    EXPECT_TRUE(kv.get("key:499").has_value());
    EXPECT_FALSE(kv.get("key:0").has_value());
}

TEST(MiniKv, GetRefreshesLruOrder)
{
    LibcAlloc alloc;
    // Room for about three records.
    MiniKv<LibcAlloc> kv(alloc, 2200);
    kv.set("a", std::string(500, 'a'));
    kv.set("b", std::string(500, 'b'));
    kv.set("c", std::string(500, 'c'));
    // Touch "a" so "b" is now the coldest.
    EXPECT_TRUE(kv.get("a").has_value());
    kv.set("d", std::string(500, 'd'));
    EXPECT_TRUE(kv.get("a").has_value());
    EXPECT_FALSE(kv.get("b").has_value());
}

TEST(MiniKv, RunsUnmodifiedOnAlaska)
{
    // "make CC=alaska": the identical templates over handles.
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);
    AlaskaAlloc alloc(runtime);
    {
        MiniKv<AlaskaAlloc> kv(alloc);
        Rng rng(12);
        std::unordered_map<std::string, std::string> shadow;
        for (int i = 0; i < 3000; i++) {
            const std::string key =
                "key:" + std::to_string(rng.below(800));
            if (rng.chance(0.7)) {
                const std::string value(
                    32 + rng.below(300),
                    static_cast<char>('a' + rng.below(26)));
                kv.set(key, value);
                shadow[key] = value;
            } else {
                EXPECT_EQ(kv.del(key), shadow.erase(key) > 0);
            }
        }
        for (auto &[key, value] : shadow)
            EXPECT_EQ(kv.get(key).value_or("<miss>"), value);
        EXPECT_EQ(kv.stats().keys, shadow.size());
    }
    EXPECT_EQ(runtime.table().liveCount(), 0u) << "leaked handles";
}

TEST(MiniKv, SurvivesFullDefragWithZeroCooperation)
{
    // The paper's headline property (§5.5): Anchorage defragments the
    // store without any application changes — the KV code has no idea
    // its pointers moved.
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);
    AlaskaAlloc alloc(runtime);
    {
        MiniKv<AlaskaAlloc> kv(alloc);
        for (int i = 0; i < 2000; i++) {
            kv.set("key:" + std::to_string(i),
                   "value:" + std::to_string(i * 17));
        }
        // Create holes, then compact everything.
        for (int i = 0; i < 2000; i += 2)
            kv.del("key:" + std::to_string(i));
        const auto stats = service.defragFully();
        EXPECT_GT(stats.movedObjects, 0u);
        for (int i = 1; i < 2000; i += 2) {
            EXPECT_EQ(kv.get("key:" + std::to_string(i)).value_or(""),
                      "value:" + std::to_string(i * 17));
        }
    }
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

TEST(MiniKv, ActivedefragPortReclaimsMemoryOnJemalloc)
{
    // Redis+jemalloc+activedefrag, in miniature: the bespoke pointer
    // surgery (dict chains, LRU links, sds) must reclaim RSS.
    RealAddressSpace space;
    JemallocModel model(&space);
    ModelAlloc<JemallocModel> alloc(model);
    {
        MiniKv<ModelAlloc<JemallocModel>> kv(alloc);
        for (int i = 0; i < 8000; i++)
            kv.set("key:" + std::to_string(i), std::string(120, 'v'));
        // Delete 85% at random: sparse slabs everywhere.
        Rng rng(5);
        for (int i = 0; i < 8000; i++) {
            if (rng.chance(0.85))
                kv.del("key:" + std::to_string(i));
        }
        const size_t rss_before = model.rss();
        size_t moves = 0;
        for (int cycle = 0; cycle < 64; cycle++) {
            const size_t m = kv.defragCycle();
            moves += m;
            if (m == 0)
                break;
        }
        EXPECT_GT(moves, 0u);
        EXPECT_LT(model.rss(), rss_before / 2)
            << "activedefrag failed to reclaim";
        // And the store still works.
        size_t found = 0;
        for (int i = 0; i < 8000; i++)
            found += kv.get("key:" + std::to_string(i)).has_value();
        EXPECT_EQ(found, kv.stats().keys);
    }
}

} // namespace
