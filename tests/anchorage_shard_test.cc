/**
 * @file
 * Tests for sharded Anchorage allocation: thread-to-shard affinity,
 * per-shard vs aggregate accounting, cross-shard frees, and — the
 * important part — defragmentation as a cross-shard stealer, in both
 * the stop-the-world and the concurrent-campaign execution models.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "services/concurrent_reloc.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

class AnchorageShardTest : public ::testing::Test
{
  protected:
    AnchorageShardTest()
        : service_(space_, AnchorageConfig{.subHeapBytes = 1 << 20,
                                           .shards = 8}),
          runtime_(RuntimeConfig{.tableCapacity = 1u << 18}),
          registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    /**
     * Run fn on a fresh registered thread whose home shard is NOT
     * `avoid` (SIZE_MAX accepts any shard). Thread ordinals are
     * round-robin, so a handful of spawns always reaches a different
     * residue mod the shard count; each probe thread is registered, so
     * skipped ordinals leak nothing.
     * @return the shard the worker ran on.
     */
    size_t
    onOtherShard(size_t avoid, const std::function<void()> &fn)
    {
        for (int attempt = 0; attempt < 64; attempt++) {
            size_t shard = SIZE_MAX;
            bool ran = false;
            std::thread t([&] {
                ThreadRegistration reg(runtime_);
                shard = service_.homeShardIndex();
                if (shard != avoid) {
                    ran = true;
                    fn();
                }
            });
            t.join();
            if (ran)
                return shard;
        }
        ADD_FAILURE() << "could not land a thread off shard " << avoid;
        return SIZE_MAX;
    }

    /** Sum shardStats over every shard. */
    AnchorageService::ShardStats
    sumShards()
    {
        AnchorageService::ShardStats sum;
        for (size_t s = 0; s < service_.shardCount(); s++) {
            const auto stats = service_.shardStats(s);
            sum.subHeaps += stats.subHeaps;
            sum.extent += stats.extent;
            sum.liveBytes += stats.liveBytes;
            sum.freeBytes += stats.freeBytes;
        }
        return sum;
    }

    // Declaration order matters: the service must outlive the runtime.
    RealAddressSpace space_;
    AnchorageService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

TEST_F(AnchorageShardTest, ShardCountIsNormalized)
{
    EXPECT_EQ(service_.shardCount(), 8u);
    RealAddressSpace space;
    AnchorageService one(space, AnchorageConfig{.shards = 1});
    EXPECT_EQ(one.shardCount(), 1u);
    AnchorageService rounded(space, AnchorageConfig{.shards = 5});
    EXPECT_EQ(rounded.shardCount(), 8u);
}

TEST_F(AnchorageShardTest, HomeShardIsStableAndThreadsSpread)
{
    const size_t mine = service_.homeShardIndex();
    EXPECT_EQ(service_.homeShardIndex(), mine);
    EXPECT_LT(mine, service_.shardCount());
    // Two freshly spawned threads get consecutive ordinals and land on
    // different shards than each other (8 shards, consecutive residues).
    size_t first = SIZE_MAX, second = SIZE_MAX;
    std::thread a([&] { first = service_.homeShardIndex(); });
    a.join();
    std::thread b([&] { second = service_.homeShardIndex(); });
    b.join();
    EXPECT_NE(first, second);
}

TEST_F(AnchorageShardTest, AllocationsLandInTheHomeShard)
{
    const size_t mine = service_.homeShardIndex();
    const auto before = service_.shardStats(mine);
    std::vector<void *> handles;
    for (int i = 0; i < 100; i++)
        handles.push_back(runtime_.halloc(256));
    const auto after = service_.shardStats(mine);
    EXPECT_EQ(after.liveBytes, before.liveBytes + 100 * 256);
    for (void *h : handles)
        runtime_.hfree(h);
}

TEST_F(AnchorageShardTest, CrossShardFreeFindsTheOwningShard)
{
    const size_t mine = service_.homeShardIndex();
    std::vector<void *> handles;
    const size_t other = onOtherShard(mine, [&] {
        for (int i = 0; i < 64; i++)
            handles.push_back(runtime_.halloc(512));
    });
    ASSERT_NE(other, mine);
    EXPECT_EQ(service_.shardStats(other).liveBytes, 64u * 512);
    // Free from this thread (a different shard): the region registry
    // must route each free to the owning shard.
    for (void *h : handles)
        runtime_.hfree(h);
    EXPECT_EQ(service_.shardStats(other).liveBytes, 0u);
}

TEST_F(AnchorageShardTest, PerShardAndAggregateAccountingAgree)
{
    const size_t mine = service_.homeShardIndex();
    std::vector<void *> local, remote;
    for (int i = 0; i < 300; i++)
        local.push_back(runtime_.halloc(128));
    onOtherShard(mine, [&] {
        for (int i = 0; i < 200; i++)
            remote.push_back(runtime_.halloc(640));
    });

    auto sum = sumShards();
    EXPECT_EQ(sum.liveBytes, service_.activeBytes());
    EXPECT_EQ(sum.extent, service_.heapExtent());
    EXPECT_EQ(sum.subHeaps, service_.subHeapCount());
    EXPECT_EQ(sum.liveBytes, 300u * 128 + 200u * 640);

    for (void *h : local)
        runtime_.hfree(h);
    for (void *h : remote)
        runtime_.hfree(h);
    sum = sumShards();
    EXPECT_EQ(sum.liveBytes, 0u);
    EXPECT_EQ(sum.liveBytes, service_.activeBytes());
}

/**
 * Build the cross-shard-stealing fixture the issue asks for: one shard
 * holds a sparse chain (a few keepers pinned under a tower of freed
 * filler, so no same-heap hole exists below them), while another shard
 * is dense. Defrag must evacuate the sparse shard's keepers into the
 * dense shard, trim the sparse shard to nothing, and lose no bytes.
 */
struct StealFixture
{
    std::vector<void *> keepers;
    std::vector<std::vector<unsigned char>> shadows;
    size_t fragged = SIZE_MAX; // sparse, idle shard
    size_t dense = SIZE_MAX;   // hot / destination shard
};

class AnchorageShardStealTest : public AnchorageShardTest
{
  protected:
    static constexpr size_t kKeepSize = 256;
    static constexpr int kKeepers = 50;

    StealFixture
    buildFixture()
    {
        StealFixture fix;
        fix.dense = service_.homeShardIndex();
        // Dense shard: a mostly-full chain with bump room left.
        for (int i = 0; i < 1000; i++)
            dense_.push_back(runtime_.halloc(kKeepSize));

        // Sparse shard, built by a worker thread that then goes idle:
        // keepers at the bottom, a tower of filler above them, filler
        // freed. The only holes are *above* the keepers, so same-heap
        // compaction cannot help — evacuation must cross shards.
        fix.fragged = onOtherShard(fix.dense, [&] {
            for (int i = 0; i < kKeepers; i++)
                fix.keepers.push_back(runtime_.halloc(kKeepSize));
            std::vector<void *> filler;
            for (int i = 0; i < 3000; i++)
                filler.push_back(runtime_.halloc(kKeepSize));
            for (void *h : filler)
                runtime_.hfree(h);
        });
        EXPECT_NE(fix.fragged, fix.dense);

        // Stamp keeper contents for the lost-write check.
        for (void *h : fix.keepers) {
            std::vector<unsigned char> shadow(kKeepSize);
            for (auto &byte : shadow)
                byte = static_cast<unsigned char>(nextByte());
            std::memcpy(translate(h), shadow.data(), kKeepSize);
            fix.shadows.push_back(std::move(shadow));
        }
        return fix;
    }

    void
    verifyAndTearDown(StealFixture &fix, size_t moved_bytes)
    {
        EXPECT_GE(moved_bytes, kKeepers * kKeepSize);
        // The sparse shard was evacuated and trimmed...
        const auto fragged = service_.shardStats(fix.fragged);
        EXPECT_EQ(fragged.liveBytes, 0u);
        EXPECT_EQ(fragged.extent, 0u);
        // ...its bytes now live in the dense shard...
        EXPECT_EQ(service_.shardStats(fix.dense).liveBytes,
                  dense_.size() * kKeepSize + kKeepers * kKeepSize);
        // ...aggregate accounting is conserved and consistent...
        const auto sum = sumShards();
        EXPECT_EQ(sum.liveBytes, service_.activeBytes());
        EXPECT_EQ(sum.liveBytes,
                  (dense_.size() + fix.keepers.size()) * kKeepSize);
        // ...and no write was lost: every keeper is intact bit for bit.
        for (size_t i = 0; i < fix.keepers.size(); i++) {
            ASSERT_EQ(std::memcmp(translate(fix.keepers[i]),
                                  fix.shadows[i].data(), kKeepSize),
                      0);
        }
        for (void *h : fix.keepers)
            runtime_.hfree(h);
        for (void *h : dense_)
            runtime_.hfree(h);
    }

    uint32_t
    nextByte()
    {
        seed_ = seed_ * 1664525u + 1013904223u;
        return seed_ >> 24;
    }

    std::vector<void *> dense_;
    uint32_t seed_ = 1;
};

TEST_F(AnchorageShardStealTest, StopTheWorldDefragStealsAcrossShards)
{
    StealFixture fix = buildFixture();
    const DefragStats stats = service_.defragFully();
    verifyAndTearDown(fix, stats.movedBytes);
}

TEST_F(AnchorageShardStealTest, ConcurrentCampaignStealsAcrossShards)
{
    StealFixture fix = buildFixture();
    DefragStats stats;
    for (;;) {
        const DefragStats pass = service_.relocateCampaign(SIZE_MAX);
        stats.accumulate(pass);
        if (pass.movedBytes == 0 && pass.reclaimedBytes == 0)
            break;
    }
    EXPECT_EQ(runtime_.stats().barriers, 0u);
    verifyAndTearDown(fix, stats.movedBytes);
}

TEST_F(AnchorageShardStealTest,
       ConcurrentCampaignStealsWhileAnotherShardAllocatesHot)
{
    StealFixture fix = buildFixture();

    // A hot mutator churns allocations on a shard other than the
    // fragmented source while campaigns evacuate the idle fragmented
    // shard. Ordinals are round-robin, so respawning until the worker
    // lands off the fragmented shard terminates quickly.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> hot_ops{0};
    std::thread hot;
    for (int attempt = 0; attempt < 64; attempt++) {
        std::atomic<int> landed{-1};
        hot = std::thread([&] {
            ThreadRegistration reg(runtime_);
            const size_t mine = service_.homeShardIndex();
            landed.store(static_cast<int>(mine),
                         std::memory_order_release);
            if (mine == fix.fragged)
                return; // unlucky residue: sit this attempt out
            std::vector<void *> window(64, nullptr);
            uint64_t i = 0;
            while (!stop.load(std::memory_order_acquire)) {
                const size_t slot = i++ % window.size();
                if (window[slot] != nullptr)
                    runtime_.hfree(window[slot]);
                window[slot] = runtime_.halloc(kKeepSize);
                {
                    // Stores take the pin handshake, not the scope.
                    ConcurrentPin pin(window[slot]);
                    std::memset(pin.get(), 0x5a, kKeepSize);
                }
                hot_ops.fetch_add(1, std::memory_order_relaxed);
                poll();
            }
            for (void *h : window) {
                if (h != nullptr)
                    runtime_.hfree(h);
            }
        });
        while (landed.load(std::memory_order_acquire) < 0)
            std::this_thread::yield();
        if (static_cast<size_t>(landed.load()) != fix.fragged)
            break;
        hot.join(); // landed on the fragmented shard; try again
    }
    ASSERT_TRUE(hot.joinable());

    DefragStats stats;
    // Campaign until the fragmented shard is empty (the hot shard's
    // churn can keep *its own* chain busy indefinitely; the idle
    // source drains in a bounded number of campaigns).
    for (int i = 0; i < 200; i++) {
        stats.accumulate(service_.relocateCampaign(SIZE_MAX));
        if (service_.shardStats(fix.fragged).liveBytes == 0)
            break;
    }
    stop.store(true, std::memory_order_release);
    hot.join();

    EXPECT_GT(hot_ops.load(), 0u);
    EXPECT_GT(stats.committed, 0u);
    EXPECT_EQ(stats.attempts,
              stats.committed + stats.aborted + stats.noSpace);
    EXPECT_EQ(runtime_.stats().barriers, 0u);

    EXPECT_EQ(service_.shardStats(fix.fragged).liveBytes, 0u);
    // No lost writes in the moved keepers.
    for (size_t i = 0; i < fix.keepers.size(); i++) {
        ASSERT_EQ(std::memcmp(translate(fix.keepers[i]),
                              fix.shadows[i].data(), kKeepSize),
                  0);
    }
    // Per-shard and aggregate accounting agree at quiescence.
    const auto sum = sumShards();
    EXPECT_EQ(sum.liveBytes, service_.activeBytes());
    EXPECT_EQ(sum.liveBytes,
              (dense_.size() + fix.keepers.size()) * kKeepSize);
    for (void *h : fix.keepers)
        runtime_.hfree(h);
    for (void *h : dense_)
        runtime_.hfree(h);
}

} // namespace
