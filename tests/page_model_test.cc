/**
 * @file
 * Tests for the page-residency model underlying all RSS measurements.
 */

#include <gtest/gtest.h>

#include "sim/page_model.h"

namespace
{

using namespace alaska;

TEST(PageModel, TouchMakesPagesResident)
{
    PageModel pm(4096);
    EXPECT_EQ(pm.rss(), 0u);
    pm.touch(0, 1);
    EXPECT_EQ(pm.rss(), 4096u);
    pm.touch(4096, 4096);
    EXPECT_EQ(pm.rss(), 8192u);
}

TEST(PageModel, TouchSpanningPagesCountsAll)
{
    PageModel pm(4096);
    pm.touch(4000, 200); // straddles a page boundary
    EXPECT_EQ(pm.rss(), 8192u);
}

TEST(PageModel, RepeatTouchIsIdempotent)
{
    PageModel pm(4096);
    pm.touch(0, 4096);
    pm.touch(0, 4096);
    EXPECT_EQ(pm.rss(), 4096u);
}

TEST(PageModel, DiscardReleasesOnlyFullPages)
{
    PageModel pm(4096);
    pm.touch(0, 3 * 4096);
    // Range covers page 1 fully, pages 0 and 2 partially.
    pm.discard(100, 2 * 4096);
    EXPECT_EQ(pm.rss(), 2 * 4096u);
    EXPECT_TRUE(pm.isResident(0));
    EXPECT_FALSE(pm.isResident(4096));
    EXPECT_TRUE(pm.isResident(2 * 4096));
}

TEST(PageModel, DiscardSmallerThanAPageIsANoop)
{
    PageModel pm(4096);
    pm.touch(0, 4096);
    pm.discard(0, 100);
    EXPECT_EQ(pm.rss(), 4096u);
}

TEST(PageModel, RetouchAfterDiscardCostsAgain)
{
    PageModel pm(4096);
    pm.touch(0, 4096);
    pm.discard(0, 4096);
    EXPECT_EQ(pm.rss(), 0u);
    pm.touch(0, 1);
    EXPECT_EQ(pm.rss(), 4096u);
}

TEST(PageModel, AliasSharesAFrame)
{
    // The Mesh trick: two virtual pages, one physical frame.
    PageModel pm(4096);
    pm.touch(0, 4096);        // page 0 resident
    pm.touch(8 * 4096, 4096); // page 8 resident
    EXPECT_EQ(pm.rss(), 2 * 4096u);
    pm.alias(8 * 4096, 0); // mesh page 8 onto page 0
    EXPECT_EQ(pm.rss(), 4096u);
    // Touching through either virtual page keeps one frame.
    pm.touch(8 * 4096, 4096);
    pm.touch(0, 4096);
    EXPECT_EQ(pm.rss(), 4096u);
}

TEST(PageModel, AliasChainsCollapseToOneFrame)
{
    PageModel pm(4096);
    pm.touch(0, 4096);
    pm.touch(4096, 4096);
    pm.touch(8192, 4096);
    pm.alias(4096, 0);
    pm.alias(8192, 4096); // through the alias, lands on frame 0
    EXPECT_EQ(pm.rss(), 4096u);
}

TEST(PageModel, CustomPageSize)
{
    PageModel pm(1 << 16); // 64 KiB "pages"
    pm.touch(1, 2);
    EXPECT_EQ(pm.rss(), static_cast<size_t>(1 << 16));
}

} // namespace
