#include "ir_program_gen.h"

#include <vector>

namespace alaska::testgen
{

using namespace alaska::ir;

namespace
{

/** Generator state threaded through recursive statement emission. */
struct Gen
{
    Module &module;
    Builder &builder;
    Rng rng;
    GenOptions opts;

    Instruction *locals = nullptr; ///< scalar slots array
    Instruction *ptrs = nullptr;   ///< array-of-pointers for chasing
    std::vector<Instruction *> arrays;
    std::vector<bool> freed;
    int nextCounter = 0; ///< loop counter slots, after scalar slots
    int blockCounter = 0;
    /** Hard cap on emitted statements (keeps recursion subcritical). */
    int budget = 0;

    int64_t
    maskIdx() const
    {
        return opts.arrayLen - 1; // arrayLen is a power of two
    }

    std::string
    freshName(const std::string &stem)
    {
        return stem + "." + std::to_string(blockCounter++);
    }
};

Instruction *genExpr(Gen &gen, int depth);

/** A random scalar slot address: locals + slot*8. */
Instruction *
slotAddr(Gen &gen, int slot)
{
    return gen.builder.gep(gen.locals, gen.builder.constant(slot));
}

/** Pick a live (unfreed) array index. */
int
pickArray(Gen &gen)
{
    for (int tries = 0; tries < 8; tries++) {
        const int k = static_cast<int>(gen.rng.below(gen.arrays.size()));
        if (!gen.freed[k])
            return k;
    }
    return 0; // array 0 is never freed
}

/** Base pointer of an array: directly, or chased through memory. */
Instruction *
arrayBase(Gen &gen, int k)
{
    if (gen.opts.usePointerChasing && gen.rng.chance(0.4)) {
        // p = ptrs[k], a pointer loaded back out of memory — the
        // paper's pointer-chasing pattern that defeats hoisting.
        Instruction *addr =
            gen.builder.gep(gen.ptrs, gen.builder.constant(k));
        return gen.builder.load(addr, /*pointer_result=*/true);
    }
    return gen.arrays[static_cast<size_t>(k)];
}

/** An in-bounds array element address. */
Instruction *
arrayElem(Gen &gen, int k, Instruction *index_expr)
{
    Instruction *masked = gen.builder.bitAnd(
        index_expr, gen.builder.constant(gen.maskIdx()));
    return gen.builder.gep(arrayBase(gen, k), masked);
}

Instruction *
genExpr(Gen &gen, int depth)
{
    Builder &b = gen.builder;
    const uint64_t pick = gen.rng.below(depth <= 0 ? 3 : 8);
    switch (pick) {
      case 0:
        return b.constant(static_cast<int64_t>(gen.rng.below(1000)));
      case 1: // scalar variable
        return b.load(slotAddr(
            gen, static_cast<int>(gen.rng.below(gen.opts.scalarSlots))));
      case 2: { // array element
        const int k = pickArray(gen);
        return b.load(arrayElem(gen, k, genExpr(gen, depth - 1)));
      }
      case 3:
        return b.add(genExpr(gen, depth - 1), genExpr(gen, depth - 1));
      case 4:
        return b.sub(genExpr(gen, depth - 1), genExpr(gen, depth - 1));
      case 5:
        return b.mul(genExpr(gen, depth - 1),
                     b.constant(static_cast<int64_t>(gen.rng.below(7))));
      case 6:
        return b.bitXor(genExpr(gen, depth - 1), genExpr(gen, depth - 1));
      default:
        return b.cmpLt(genExpr(gen, depth - 1), genExpr(gen, depth - 1));
    }
}

void genStatements(Gen &gen, int count, int depth);

void
genStatement(Gen &gen, int depth)
{
    Builder &b = gen.builder;
    const uint64_t pick =
        gen.budget-- <= 0 ? 0 : gen.rng.below(10);

    if (pick < 3) { // scalar assignment
        const int slot =
            static_cast<int>(gen.rng.below(gen.opts.scalarSlots));
        b.store(slotAddr(gen, slot), genExpr(gen, 2));
        return;
    }
    if (pick < 6) { // array store
        const int k = pickArray(gen);
        b.store(arrayElem(gen, k, genExpr(gen, 2)), genExpr(gen, 2));
        return;
    }
    if (pick < 7 && gen.opts.useExternalCalls) {
        // Escape to "precompiled" code with a raw-pointer contract.
        const int k = pickArray(gen);
        Instruction *result = b.callExternal(
            gen.rng.chance(0.5) ? "ext_sum" : "ext_scramble",
            {gen.arrays[static_cast<size_t>(k)],
             b.constant(gen.opts.arrayLen)});
        const int slot =
            static_cast<int>(gen.rng.below(gen.opts.scalarSlots));
        b.store(slotAddr(gen, slot), result);
        return;
    }
    if (pick < 8 || depth >= gen.opts.maxDepth) { // if/else
        Instruction *cond = b.bitAnd(genExpr(gen, 2), b.constant(1));
        BasicBlock *then_bb = b.newBlock(gen.freshName("then"));
        BasicBlock *else_bb = b.newBlock(gen.freshName("else"));
        BasicBlock *merge_bb = b.newBlock(gen.freshName("merge"));
        b.condBr(cond, then_bb, else_bb);
        b.setBlock(then_bb);
        genStatements(gen, 1 + static_cast<int>(gen.rng.below(3)),
                      depth + 1);
        b.br(merge_bb);
        b.setBlock(else_bb);
        genStatements(gen, static_cast<int>(gen.rng.below(3)), depth + 1);
        b.br(merge_bb);
        b.setBlock(merge_bb);
        return;
    }

    // while loop with a memory-resident counter (guaranteed bounded).
    const int counter_slot = gen.opts.scalarSlots + gen.nextCounter++;
    const auto trips = static_cast<int64_t>(2 + gen.rng.below(4));
    b.store(b.gep(gen.locals, b.constant(counter_slot)), b.constant(0));
    BasicBlock *header = b.newBlock(gen.freshName("loop"));
    BasicBlock *body = b.newBlock(gen.freshName("body"));
    BasicBlock *exit = b.newBlock(gen.freshName("exit"));
    b.br(header);
    b.setBlock(header);
    Instruction *count =
        b.load(b.gep(gen.locals, b.constant(counter_slot)));
    b.condBr(b.cmpLt(count, b.constant(trips)), body, exit);
    b.setBlock(body);
    genStatements(gen, 1 + static_cast<int>(gen.rng.below(3)), depth + 1);
    Instruction *bumped = b.add(
        b.load(b.gep(gen.locals, b.constant(counter_slot))),
        b.constant(1));
    b.store(b.gep(gen.locals, b.constant(counter_slot)), bumped);
    b.br(header);
    b.setBlock(exit);
}

void
genStatements(Gen &gen, int count, int depth)
{
    for (int i = 0; i < count; i++)
        genStatement(gen, depth);
}

} // anonymous namespace

ir::Function *
generateProgram(ir::Module &module, uint64_t seed,
                const GenOptions &options)
{
    Function *fn = module.addFunction(
        "gen." + std::to_string(seed), 1);
    Builder builder(*fn);
    Gen gen{module, builder, Rng(seed), options, nullptr,
            nullptr, {}, {}, 0, 0, 0};
    gen.budget = options.statements * 4;

    // Prelude: locals (scalars + loop counters), data arrays, and the
    // pointer table used for chasing.
    const int total_slots = options.scalarSlots + gen.budget + 1;
    gen.locals =
        builder.mallocBytes(builder.constant(8 * total_slots));
    for (int i = 0; i < total_slots; i++) {
        builder.store(builder.gep(gen.locals, builder.constant(i)),
                      builder.constant(0));
    }
    gen.ptrs =
        builder.mallocBytes(builder.constant(8 * options.arrays));
    for (int k = 0; k < options.arrays; k++) {
        Instruction *array = builder.mallocBytes(
            builder.constant(8 * options.arrayLen));
        gen.arrays.push_back(array);
        gen.freed.push_back(false);
        for (int i = 0; i < options.arrayLen; i++) {
            builder.store(
                builder.gep(array, builder.constant(i)),
                builder.add(builder.arg(0),
                            builder.constant(i * 7 + k * 131)));
        }
        builder.store(builder.gep(gen.ptrs, builder.constant(k)),
                      array);
    }

    // Random body; optionally free the last array halfway through.
    genStatements(gen, options.statements / 2, 0);
    if (options.useFrees && options.arrays > 1) {
        const int victim = options.arrays - 1;
        builder.freePtr(gen.arrays[static_cast<size_t>(victim)]);
        gen.freed[static_cast<size_t>(victim)] = true;
    }
    genStatements(gen, options.statements - options.statements / 2, 0);

    // Checksum finale: mix every live array element and scalar slot.
    Instruction *sum = builder.constant(0);
    for (int k = 0; k < options.arrays; k++) {
        if (gen.freed[static_cast<size_t>(k)])
            continue;
        for (int i = 0; i < options.arrayLen; i++) {
            Instruction *v = builder.load(builder.gep(
                gen.arrays[static_cast<size_t>(k)],
                builder.constant(i)));
            sum = builder.bitXor(builder.mul(sum, builder.constant(3)),
                                 v);
        }
    }
    for (int i = 0; i < options.scalarSlots; i++) {
        sum = builder.add(sum, builder.load(slotAddr(gen, i)));
    }
    builder.freePtr(gen.ptrs);
    builder.freePtr(gen.locals);
    for (int k = 0; k < options.arrays; k++) {
        if (!gen.freed[static_cast<size_t>(k)])
            builder.freePtr(gen.arrays[static_cast<size_t>(k)]);
    }
    builder.ret(sum);
    return fn;
}

void
registerGenExternals(ir::Interpreter &interp)
{
    // Externals receive *raw* pointers; they model precompiled libc
    // code that must never see a handle (§4.1.4).
    interp.registerExternal(
        "ext_sum", [](const std::vector<int64_t> &args) {
            const auto *p = reinterpret_cast<const int64_t *>(args[0]);
            int64_t total = 0;
            for (int64_t i = 0; i < args[1]; i++)
                total += p[i];
            return total;
        });
    interp.registerExternal(
        "ext_scramble", [](const std::vector<int64_t> &args) {
            auto *p = reinterpret_cast<int64_t *>(args[0]);
            int64_t acc = 1;
            for (int64_t i = 0; i < args[1]; i++) {
                p[i] = p[i] * 2654435761 + i;
                acc ^= p[i];
            }
            return acc;
        });
}

} // namespace alaska::testgen
