/**
 * @file
 * Tests for the telemetry subsystem (src/telemetry/): histogram
 * bucket boundaries and cross-thread merge exactness, counter
 * aggregation against concurrent increments, tracer ring-buffer
 * wraparound, and snapshot/trace-dump safety while a relocation
 * campaign and mutators run (the concurrency cases are part of the
 * TSAN lane — scripts/check.sh --tsan).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "api/access.h"
#include "core/runtime.h"
#include "services/concurrent_reloc.h"
#include "sim/address_space.h"
#include "telemetry/histogram.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace
{

using namespace alaska;
namespace tel = alaska::telemetry;

// --- histogram -------------------------------------------------------------

TEST(Histogram, BucketBoundaries)
{
    // Bucket 0 holds exactly {0}; bucket b holds [2^(b-1), 2^b).
    EXPECT_EQ(tel::Histogram::bucketOf(0), 0u);
    EXPECT_EQ(tel::Histogram::bucketOf(1), 1u);
    EXPECT_EQ(tel::Histogram::bucketOf(2), 2u);
    EXPECT_EQ(tel::Histogram::bucketOf(3), 2u);
    EXPECT_EQ(tel::Histogram::bucketOf(4), 3u);
    EXPECT_EQ(tel::Histogram::bucketOf(7), 3u);
    EXPECT_EQ(tel::Histogram::bucketOf(8), 4u);
    EXPECT_EQ(tel::Histogram::bucketOf(~uint64_t(0)), 63u);
    for (size_t b = 1; b < tel::Histogram::kBuckets; b++) {
        // Every bucket's own bounds map back to that bucket.
        EXPECT_EQ(tel::Histogram::bucketOf(tel::Histogram::bucketLow(b)),
                  b);
        EXPECT_EQ(tel::Histogram::bucketOf(tel::Histogram::bucketHigh(b)),
                  b);
    }

    tel::Histogram h;
    for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull})
        h.record(v);
    EXPECT_EQ(h.bucketCount(0), 1u); // {0}
    EXPECT_EQ(h.bucketCount(1), 1u); // {1}
    EXPECT_EQ(h.bucketCount(2), 2u); // {2, 3}
    EXPECT_EQ(h.bucketCount(3), 2u); // {4, 7}
    EXPECT_EQ(h.bucketCount(4), 1u); // {8}
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8);
    EXPECT_EQ(h.max(), 8u);
    EXPECT_DOUBLE_EQ(h.mean(), 25.0 / 7.0);
    // Percentiles stay inside their bucket's bounds.
    const double p99 = h.percentile(99);
    EXPECT_GE(p99, 8.0);
    EXPECT_LE(p99, 15.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 0.0);
}

TEST(Histogram, CrossThreadMergeExactness)
{
    // N threads each record into a private histogram; the merge must
    // equal a serial histogram of the concatenated samples, field by
    // field — merge of quiescent histograms is exact.
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<tel::Histogram> parts(kThreads);
    tel::Histogram serial;
    for (int t = 0; t < kThreads; t++)
        for (int i = 0; i < kPerThread; i++)
            serial.record(static_cast<uint64_t>(t) * 131071u + i);

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++) {
        workers.emplace_back([&parts, t] {
            for (int i = 0; i < kPerThread; i++)
                parts[t].record(static_cast<uint64_t>(t) * 131071u + i);
        });
    }
    for (auto &w : workers)
        w.join();

    tel::Histogram merged;
    for (const auto &p : parts)
        merged.merge(p);
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_EQ(merged.sum(), serial.sum());
    EXPECT_EQ(merged.max(), serial.max());
    for (size_t b = 0; b < tel::Histogram::kBuckets; b++)
        EXPECT_EQ(merged.bucketCount(b), serial.bucketCount(b)) << b;
}

TEST(Histogram, ConcurrentRecordTotals)
{
    // Concurrent record() into ONE histogram: per-field totals are
    // still exact once the writers join (every field is a relaxed
    // atomic RMW, nothing is lost).
    tel::Histogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++)
        workers.emplace_back([&h] {
            for (int i = 0; i < kPerThread; i++)
                h.record(static_cast<uint64_t>(i) % 1024);
        });
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(h.count(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(h.max(), 1023u);
}

// --- counters --------------------------------------------------------------

TEST(Counters, AggregationVsConcurrentIncrements)
{
#if ALASKA_TELEMETRY_LEVEL < 1
    GTEST_SKIP() << "counters compiled out at this telemetry level";
#endif
    // Each thread bumps its own thread-local cell; the snapshot after
    // the join must see every increment exactly once (counters are
    // process-global and cumulative, so compare deltas).
    const uint64_t before =
        tel::snapshot().counter(tel::Counter::HandleFault);
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 50000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; t++)
        workers.emplace_back([] {
            for (uint64_t i = 0; i < kPerThread; i++)
                tel::count(tel::Counter::HandleFault);
        });
    for (auto &w : workers)
        w.join();
    const uint64_t after =
        tel::snapshot().counter(tel::Counter::HandleFault);
    EXPECT_EQ(after - before, kThreads * kPerThread);
}

TEST(Counters, SnapshotWhileIncrementing)
{
#if ALASKA_TELEMETRY_LEVEL < 1
    GTEST_SKIP() << "counters compiled out at this telemetry level";
#endif
    // Snapshots taken mid-increment must be monotonic and never
    // overshoot the true total.
    const uint64_t before =
        tel::snapshot().counter(tel::Counter::GraceWait);
    constexpr uint64_t kTotal = 200000;
    std::thread writer([] {
        for (uint64_t i = 0; i < kTotal; i++)
            tel::count(tel::Counter::GraceWait);
    });
    uint64_t last = before;
    for (int i = 0; i < 50; i++) {
        const uint64_t now =
            tel::snapshot().counter(tel::Counter::GraceWait);
        EXPECT_GE(now, last);
        EXPECT_LE(now - before, kTotal);
        last = now;
    }
    writer.join();
    EXPECT_EQ(tel::snapshot().counter(tel::Counter::GraceWait) - before,
              kTotal);
}

TEST(Counters, NamesAreStableAndUnique)
{
    std::vector<std::string> names;
    for (size_t i = 0; i < tel::kNumCounters; i++) {
        std::string name = tel::counterName(static_cast<tel::Counter>(i));
        EXPECT_NE(name, "unknown");
        for (const auto &prev : names)
            EXPECT_NE(name, prev);
        names.push_back(std::move(name));
    }
    for (size_t i = 0; i < tel::kNumHists; i++)
        EXPECT_STRNE(tel::histName(static_cast<tel::Hist>(i)), "unknown");
    for (size_t i = 0; i < tel::kNumGauges; i++)
        EXPECT_STRNE(tel::gaugeName(static_cast<tel::Gauge>(i)),
                     "unknown");
}

// --- gauges ----------------------------------------------------------------

TEST(Gauges, LastWriteWinsThroughSnapshot)
{
#if ALASKA_TELEMETRY_LEVEL < 1
    GTEST_SKIP() << "gauges compiled out at this telemetry level";
#endif
    // Gauges are instantaneous, not cumulative: a second set replaces
    // the first, and the snapshot carries the last written value.
    tel::setGauge(tel::Gauge::BatchBytesCurrent, 123456);
    EXPECT_EQ(tel::snapshot().gauge(tel::Gauge::BatchBytesCurrent),
              123456u);
    tel::setGauge(tel::Gauge::BatchBytesCurrent, 42);
    EXPECT_EQ(tel::snapshot().gauge(tel::Gauge::BatchBytesCurrent),
              42u);
    tel::reset();
    EXPECT_EQ(tel::snapshot().gauge(tel::Gauge::BatchBytesCurrent), 0u);
}

// --- tracer ----------------------------------------------------------------

/** Read a whole file into a string (empty on failure). */
std::string
slurp(const char *path)
{
    FILE *f = fopen(path, "r");
    if (f == nullptr)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    fclose(f);
    return out;
}

size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        n++;
    return n;
}

TEST(Tracer, RingBufferWraparound)
{
    // A dedicated thread gets a fresh ring with a tiny capacity; more
    // events than capacity must wrap (keeping the newest) and report
    // the overflow as dropped, not grow memory.
    tel::clearTrace();
    tel::enableTracing(/*ringCapacity=*/8);
    std::thread writer([] {
        for (int i = 0; i < 20; i++)
            tel::traceInstant(i + 1 < 20 ? "wrap_old" : "wrap_last");
    });
    writer.join();
    tel::disableTracing();

    const char *path = "telemetry_test_wrap.json";
    ASSERT_TRUE(tel::dumpTrace(path));
    const std::string json = slurp(path);
    std::remove(path);
    // The newest event survived the wrap; at most 8 of the writer's 20
    // events did; the dump flags the dropped count.
    EXPECT_EQ(countOccurrences(json, "wrap_last"), 1u);
    EXPECT_LE(countOccurrences(json, "wrap_old"), 7u);
    EXPECT_NE(json.find("dropped_events"), std::string::npos);
}

TEST(Tracer, SpanAndInstantRoundTrip)
{
    tel::clearTrace();
    tel::enableTracing(64);
    {
        tel::TraceSpan span("roundtrip_span");
        tel::traceInstant("roundtrip_instant");
    }
    tel::disableTracing();
    const char *path = "telemetry_test_roundtrip.json";
    ASSERT_TRUE(tel::dumpTrace(path));
    const std::string json = slurp(path);
    std::remove(path);
    EXPECT_NE(json.find("\"name\": \"roundtrip_span\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"roundtrip_instant\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// --- snapshot during a live campaign ---------------------------------------

TEST(SnapshotDuringCampaign, CountersTraceAndDumpAreSafe)
{
    // Mutators churn the heap under epoch scopes while campaigns
    // relocate concurrently; a third role keeps taking snapshots and
    // dumping traces throughout. Nothing to assert beyond liveness and
    // monotonicity — the TSAN lane is what proves the absence of
    // races.
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1 << 18});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 14});
    runtime.attachService(&service);
    Runtime::declareConcurrentDefrag();

    tel::clearTrace();
    tel::enableTracing(4096);
    std::atomic<bool> stop{false};

    std::thread mutator([&] {
        ThreadRegistration reg(runtime);
        std::vector<void *> handles;
        uint64_t x = 1;
        while (!stop.load(std::memory_order_relaxed)) {
            {
                access_scope scope;
                if (handles.size() < 512) {
                    void *h = runtime.halloc(64 + (x % 128));
                    std::memset(api::deref(static_cast<char *>(h)), 0x5a,
                                8);
                    handles.push_back(h);
                } else {
                    runtime.hfree(handles[x % handles.size()]);
                    handles[x % handles.size()] = runtime.halloc(64);
                }
            }
            x = x * 2862933555777941757ull + 3037000493ull;
        }
        for (void *h : handles)
            runtime.hfree(h);
    });

    std::thread mover([&] {
        ThreadRegistration reg(runtime);
        while (!stop.load(std::memory_order_relaxed))
            service.relocateCampaign(1 << 20);
    });

    uint64_t last_commits = 0;
    for (int i = 0; i < 40; i++) {
        tel::Snapshot snap = runtime.telemetrySnapshot();
        const uint64_t commits =
            snap.counter(tel::Counter::CampaignCommit);
        EXPECT_GE(commits, last_commits);
        last_commits = commits;
        (void)snap.histogram(tel::Hist::CampaignCopyNs).percentile(99);
        const char *path = "telemetry_test_campaign.json";
        EXPECT_TRUE(runtime.dumpTrace(path));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true, std::memory_order_relaxed);
    mutator.join();
    mover.join();
    tel::disableTracing();
    std::remove("telemetry_test_campaign.json");

    Runtime::retireConcurrentDefrag();
}

} // namespace
