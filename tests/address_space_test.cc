/**
 * @file
 * Tests for the real and phantom address spaces.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/address_space.h"

namespace
{

using namespace alaska;

TEST(RealAddressSpace, CopyMovesRealBytes)
{
    RealAddressSpace space;
    const uint64_t base = space.map(1 << 16);
    char *p = static_cast<char *>(space.raw(base));
    std::strcpy(p, "hello");
    space.touch(base, 6);
    space.copy(base + 4096, base, 6);
    EXPECT_STREQ(static_cast<char *>(space.raw(base + 4096)), "hello");
    EXPECT_EQ(space.rss(), 2 * 4096u);
    space.unmap(base, 1 << 16);
}

TEST(RealAddressSpace, DiscardReducesAccountedRss)
{
    RealAddressSpace space;
    const uint64_t base = space.map(1 << 16);
    space.touch(base, 1 << 16);
    EXPECT_EQ(space.rss(), static_cast<size_t>(1 << 16));
    space.discard(base, 1 << 16);
    EXPECT_EQ(space.rss(), 0u);
    // And the memory is still mapped and zero after MADV_DONTNEED.
    EXPECT_EQ(*static_cast<char *>(space.raw(base)), 0);
    space.unmap(base, 1 << 16);
}

TEST(PhantomAddressSpace, RegionsDoNotOverlap)
{
    PhantomAddressSpace space;
    const uint64_t a = space.map(1 << 20);
    const uint64_t b = space.map(1 << 20);
    EXPECT_GE(b, a + (1 << 20));
    EXPECT_EQ(space.raw(a), nullptr);
}

TEST(PhantomAddressSpace, AccountingMatchesRealBehaviour)
{
    PhantomAddressSpace space;
    const uint64_t base = space.map(1 << 20);
    space.touch(base, 10000);
    EXPECT_EQ(space.rss(), 3 * 4096u);
    space.copy(base + (1 << 19), base, 10000);
    EXPECT_EQ(space.rss(), 6 * 4096u);
    // Discard the first half only; the copied pages must survive.
    space.discard(base, 1 << 19);
    EXPECT_EQ(space.rss(), 3 * 4096u);
    space.unmap(base, 1 << 20);
    EXPECT_EQ(space.rss(), 0u);
}

TEST(PhantomAddressSpace, CanModelHugeHeaps)
{
    // The whole point: a 64 GiB heap with no real memory behind it.
    PhantomAddressSpace space;
    const uint64_t base = space.map(64ull << 30);
    space.touch(base, 1 << 20);
    space.touch(base + (63ull << 30), 1 << 20);
    EXPECT_EQ(space.rss(), 2 * (1u << 20));
    space.unmap(base, 64ull << 30);
}

} // namespace
