/**
 * @file
 * Tests for the Alaska compiler passes: malloc replacement, Algorithm 1
 * translation insertion and hoisting, release placement, pin-slot
 * coloring, safepoints, and escape handling (§4.1).
 */

#include <gtest/gtest.h>

#include "compiler/passes.h"
#include "ir/analysis.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/ir.h"
#include "ir/verifier.h"

namespace
{

using namespace alaska::ir;
using namespace alaska::compiler;

size_t
countOps(Function &fn, Op op)
{
    size_t n = 0;
    for (auto &block : fn.blocks) {
        for (auto &inst : block->insts)
            n += (inst->op == op);
    }
    return n;
}

Instruction *
firstOp(Function &fn, Op op)
{
    for (auto &block : fn.blocks) {
        for (auto &inst : block->insts) {
            if (inst->op == op)
                return inst.get();
        }
    }
    return nullptr;
}

/** p = malloc(64); loop { store p[i]; }; ret p[0] — the hoistable case. */
struct LoopOverArray
{
    Module module;
    Function *fn;
    BasicBlock *entry, *header, *body, *exit;
    Instruction *array;

    LoopOverArray()
    {
        fn = module.addFunction("loop_array", 0);
        Builder b(*fn);
        entry = b.block();
        header = b.newBlock("header");
        body = b.newBlock("body");
        exit = b.newBlock("exit");
        array = b.mallocBytes(b.constant(64));
        Instruction *zero = b.constant(0);
        b.br(header);
        b.setBlock(header);
        Instruction *i = b.phi();
        Builder::addIncoming(i, zero, entry);
        b.condBr(b.cmpLt(i, b.constant(8)), body, exit);
        b.setBlock(body);
        b.store(b.gep(array, i), i);
        Instruction *next = b.add(i, b.constant(1));
        Builder::addIncoming(i, next, body);
        b.br(header);
        b.setBlock(exit);
        b.ret(b.load(b.gep(array, b.constant(0))));
        fn->computeCfg();
        fn->renumber();
    }
};

TEST(ReplaceAllocations, MallocBecomesHalloc)
{
    LoopOverArray p;
    EXPECT_EQ(replaceAllocations(*p.fn), 1u);
    EXPECT_EQ(countOps(*p.fn, Op::Malloc), 0u);
    EXPECT_EQ(countOps(*p.fn, Op::Halloc), 1u);
}

TEST(TranslationInsertion, HoistsOutOfTheLoop)
{
    LoopOverArray p;
    replaceAllocations(*p.fn);
    size_t hoisted = 0;
    const size_t inserted = insertTranslations(*p.fn, true, &hoisted);
    // One root (the array), accesses in body and exit: one translation
    // at their common dominator, outside the loop.
    EXPECT_EQ(inserted, 1u);
    Instruction *t = firstOp(*p.fn, Op::Translate);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->parent, p.entry);
    EXPECT_TRUE(verify(*p.fn).ok()) << verify(*p.fn).joined();
}

TEST(TranslationInsertion, NoHoistingTranslatesPerAccess)
{
    LoopOverArray p;
    replaceAllocations(*p.fn);
    const size_t inserted = insertTranslations(*p.fn, false);
    // One per access: the store in the loop and the load at exit.
    EXPECT_EQ(inserted, 2u);
    // The in-loop translation stays in the loop body.
    bool in_body = false;
    for (auto &inst : p.body->insts)
        in_body |= (inst->op == Op::Translate);
    EXPECT_TRUE(in_body);
    EXPECT_TRUE(verify(*p.fn).ok()) << verify(*p.fn).joined();
}

TEST(TranslationInsertion, PointerChasingTranslatesInLoop)
{
    // node = load(node.next) — the root is produced inside the loop,
    // so hoisting is impossible (the paper's mcf/xalancbmk case).
    Module module;
    Function *fn = module.addFunction("chase", 1);
    Builder b(*fn);
    b.declarePointerArg(0);
    BasicBlock *entry = b.block();
    BasicBlock *header = b.newBlock("header");
    BasicBlock *body = b.newBlock("body");
    BasicBlock *exit = b.newBlock("exit");
    Instruction *zero = b.constant(0);
    b.br(header);
    b.setBlock(header);
    Instruction *node = b.phi();
    Builder::addIncoming(node, b.arg(0), entry);
    b.condBr(b.cmpEq(node, zero), exit, body);
    b.setBlock(body);
    Instruction *next = b.load(b.gep(node, zero), true);
    Builder::addIncoming(node, next, body);
    b.br(header);
    b.setBlock(exit);
    b.ret(zero);
    fn->computeCfg();

    size_t hoisted = 0;
    const size_t inserted = insertTranslations(*fn, true, &hoisted);
    EXPECT_EQ(inserted, 1u);
    EXPECT_EQ(hoisted, 0u);
    Instruction *t = firstOp(*fn, Op::Translate);
    EXPECT_EQ(t->parent, body);
}

TEST(TranslationInsertion, RawPointersAreLeftAlone)
{
    // An access rooted at a non-pointer value must not be translated.
    Module module;
    Function *fn = module.addFunction("raw", 1);
    Builder b(*fn);
    // arg0 is NOT declared a pointer: the compiler treats it as data.
    b.ret(b.add(b.arg(0), b.constant(1)));
    EXPECT_EQ(insertTranslations(*fn, true), 0u);
}

TEST(Releases, InsertedAtEndOfLifetime)
{
    LoopOverArray p;
    replaceAllocations(*p.fn);
    insertTranslations(*p.fn, true);
    const size_t releases = insertReleases(*p.fn);
    EXPECT_GE(releases, 1u);
    // The release must come after the last use (the exit-block load).
    Instruction *release = firstOp(*p.fn, Op::Release);
    ASSERT_NE(release, nullptr);
    EXPECT_EQ(release->parent, p.exit);
}

TEST(PinTracking, EmitsPinSetAndStores)
{
    LoopOverArray p;
    replaceAllocations(*p.fn);
    insertTranslations(*p.fn, true);
    insertReleases(*p.fn);
    const size_t slots = insertPinTracking(*p.fn);
    EXPECT_EQ(slots, 1u);
    EXPECT_EQ(countOps(*p.fn, Op::PinSetAlloc), 1u);
    EXPECT_EQ(countOps(*p.fn, Op::PinStore), 1u);
    EXPECT_EQ(countOps(*p.fn, Op::Release), 0u);
    EXPECT_TRUE(verifyTransformed(*p.fn).ok())
        << verifyTransformed(*p.fn).joined();
}

TEST(PinTracking, OverlappingRangesGetDistinctSlots)
{
    // Two arrays accessed in an interleaved way: both translations are
    // live at once and must not share a slot.
    Module module;
    Function *fn = module.addFunction("overlap", 0);
    Builder b(*fn);
    Instruction *a = b.mallocBytes(b.constant(32));
    Instruction *c = b.mallocBytes(b.constant(32));
    Instruction *zero = b.constant(0);
    b.store(b.gep(a, zero), b.constant(1));
    b.store(b.gep(c, zero), b.constant(2));
    b.store(b.gep(a, b.constant(1)), b.load(b.gep(c, zero)));
    b.ret(b.load(b.gep(a, zero)));
    fn->computeCfg();

    replaceAllocations(*fn);
    insertTranslations(*fn, true);
    insertReleases(*fn);
    const size_t slots = insertPinTracking(*fn);
    EXPECT_EQ(slots, 2u);
}

TEST(PinTracking, DisjointRangesShareASlot)
{
    // a used fully before c: one slot suffices (the interference
    // coloring reuses it, like a register allocator).
    Module module;
    Function *fn = module.addFunction("disjoint", 0);
    Builder b(*fn);
    Instruction *a = b.mallocBytes(b.constant(32));
    Instruction *c = b.mallocBytes(b.constant(32));
    Instruction *zero = b.constant(0);
    b.store(b.gep(a, zero), b.constant(1));
    b.store(b.gep(c, zero), b.constant(2));
    b.ret(zero);
    fn->computeCfg();

    replaceAllocations(*fn);
    insertTranslations(*fn, false); // per-access: tight ranges
    insertReleases(*fn);
    const size_t slots = insertPinTracking(*fn);
    EXPECT_EQ(slots, 1u);
}

TEST(Safepoints, PlacedOnBackEdgesEntryAndExternalCalls)
{
    LoopOverArray p;
    Builder b(*p.fn);
    // Add an external call in the exit block.
    b.setBlock(p.exit);
    auto *term = p.exit->terminator();
    auto call = std::make_unique<Instruction>(
        Op::CallExternal, std::vector<Instruction *>{},
        p.module.externalIndex("ext_noop"));
    p.exit->insertBefore(term, std::move(call));

    const size_t inserted = insertSafepoints(*p.fn);
    // entry + 1 back edge + 1 external call.
    EXPECT_EQ(inserted, 3u);
    bool latch_poll = false;
    for (auto &inst : p.body->insts)
        latch_poll |= (inst->op == Op::Safepoint);
    EXPECT_TRUE(latch_poll);
}

TEST(Escapes, ExternalArgumentsArePinnedAndTranslated)
{
    Module module;
    Function *fn = module.addFunction("escape", 0);
    Builder b(*fn);
    Instruction *buf = b.mallocBytes(b.constant(64));
    b.callExternal("ext_use", {buf, b.constant(64)});
    b.ret(b.constant(0));
    fn->computeCfg();

    replaceAllocations(*fn);
    EXPECT_EQ(handleEscapes(*fn), 1u);
    Instruction *call = firstOp(*fn, Op::CallExternal);
    ASSERT_NE(call, nullptr);
    EXPECT_EQ(call->operands[0]->op, Op::Translate);
    // The length argument is not pointer-like: left alone.
    EXPECT_EQ(call->operands[1]->op, Op::Const);
}

TEST(Pipeline, FullRunProducesVerifiableCode)
{
    LoopOverArray p;
    const PassMetrics metrics = runPipeline(p.module);
    EXPECT_EQ(metrics.allocationsReplaced, 1u);
    EXPECT_EQ(metrics.translationsInserted, 1u);
    EXPECT_EQ(metrics.translationsHoisted, 1u);
    EXPECT_EQ(metrics.pinSlots, 1u);
    EXPECT_GE(metrics.safepointsInserted, 2u);
    EXPECT_GT(metrics.codeGrowth(), 1.0);
    EXPECT_TRUE(verifyTransformed(*p.fn).ok())
        << verifyTransformed(*p.fn).joined();
}

TEST(Pipeline, NoTrackingSkipsPinsButStripsReleases)
{
    LoopOverArray p;
    PassOptions options;
    options.tracking = false;
    runPipeline(p.module, options);
    EXPECT_EQ(countOps(*p.fn, Op::PinSetAlloc), 0u);
    EXPECT_EQ(countOps(*p.fn, Op::PinStore), 0u);
    EXPECT_EQ(countOps(*p.fn, Op::Release), 0u);
}

TEST(Pipeline, CodeGrowthIsWorseWithoutHoisting)
{
    LoopOverArray p1, p2;
    PassOptions hoist_on, hoist_off;
    hoist_off.hoisting = false;
    const PassMetrics with = runPipeline(p1.module, hoist_on);
    const PassMetrics without = runPipeline(p2.module, hoist_off);
    // The paper: xalancbmk doubles in size when hoisting cannot apply.
    EXPECT_GT(without.instructionsAfter, with.instructionsAfter);
}

} // namespace
