/**
 * @file
 * Tests for the handle-fault-based swap service and the concurrent
 * relocation experiment (paper §7).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "base/rng.h"

#include "core/malloc_service.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "services/concurrent_reloc.h"
#include "services/swap_service.h"

namespace
{

using namespace alaska;

class SwapTest : public ::testing::Test
{
  protected:
    SwapTest() : runtime_(RuntimeConfig{.tableCapacity = 1u << 12}),
                 registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    SwapService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

TEST_F(SwapTest, SwapOutMovesBytesToColdTier)
{
    void *h = runtime_.halloc(128);
    std::memset(translate(h), 0x7e, 128);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    EXPECT_EQ(service_.hotBytes(), 128u);
    runtime_.barrier([&](const PinnedSet &) { service_.swapOut(id); });
    EXPECT_EQ(service_.hotBytes(), 0u);
    EXPECT_EQ(service_.coldBytes(), 128u);
    EXPECT_TRUE(runtime_.table().entry(id).invalid());
    runtime_.hfree(h);
}

TEST_F(SwapTest, CheckedTranslationFaultsTheObjectBackIn)
{
    void *h = runtime_.halloc(64);
    std::memset(translate(h), 0x3c, 64);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    runtime_.barrier([&](const PinnedSet &) { service_.swapOut(id); });

    // Object-granularity "page fault": translateChecked restores it.
    auto *p = static_cast<unsigned char *>(translateChecked(h));
    for (int i = 0; i < 64; i++)
        ASSERT_EQ(p[i], 0x3c);
    EXPECT_EQ(service_.swapIns(), 1u);
    EXPECT_EQ(service_.coldBytes(), 0u);
    EXPECT_FALSE(runtime_.table().entry(id).invalid());
    EXPECT_EQ(runtime_.stats().faults, 1u);
    runtime_.hfree(h);
}

TEST_F(SwapTest, FaultPreservesInteriorOffsets)
{
    void *h = runtime_.halloc(256);
    auto *p = static_cast<char *>(translate(h));
    p[200] = 'x';
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    runtime_.barrier([&](const PinnedSet &) { service_.swapOut(id); });
    void *interior =
        reinterpret_cast<void *>(reinterpret_cast<uint64_t>(h) + 200);
    EXPECT_EQ(*static_cast<char *>(translateChecked(interior)), 'x');
    runtime_.hfree(h);
}

TEST_F(SwapTest, PinnedObjectsAreNotEvicted)
{
    void *hot = runtime_.halloc(64);
    void *cold = runtime_.halloc(64);
    ALASKA_PIN_FRAME(frame, 1);
    frame.pin(0, hot);
    EXPECT_EQ(service_.swapOutAllUnpinned(), 1u);
    const uint32_t hot_id = handleId(reinterpret_cast<uint64_t>(hot));
    const uint32_t cold_id = handleId(reinterpret_cast<uint64_t>(cold));
    EXPECT_FALSE(runtime_.table().entry(hot_id).invalid());
    EXPECT_TRUE(runtime_.table().entry(cold_id).invalid());
    runtime_.hfree(hot);
    runtime_.hfree(cold);
}

TEST_F(SwapTest, FreeingASwappedObjectDropsTheColdCopy)
{
    void *h = runtime_.halloc(512);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    runtime_.barrier([&](const PinnedSet &) { service_.swapOut(id); });
    EXPECT_EQ(service_.coldBytes(), 512u);
    runtime_.hfree(h);
    EXPECT_EQ(service_.coldBytes(), 0u);
}

TEST_F(SwapTest, WorkingSetSwapsInUnderChurn)
{
    // Evict everything, then touch a working set; only it returns.
    std::vector<void *> handles;
    for (int i = 0; i < 100; i++) {
        handles.push_back(runtime_.halloc(1024));
        std::memset(translate(handles.back()), i, 1024);
    }
    EXPECT_EQ(service_.swapOutAllUnpinned(), 100u);
    EXPECT_EQ(service_.hotBytes(), 0u);
    for (int i = 0; i < 10; i++) {
        auto *p = static_cast<unsigned char *>(
            translateChecked(handles[i]));
        ASSERT_EQ(p[500], static_cast<unsigned char>(i));
    }
    EXPECT_EQ(service_.hotBytes(), 10 * 1024u);
    EXPECT_EQ(service_.coldBytes(), 90 * 1024u);
    for (void *h : handles)
        runtime_.hfree(h);
}

class RelocTest : public ::testing::Test
{
  protected:
    RelocTest() : runtime_(RuntimeConfig{.tableCapacity = 1u << 12}),
                  registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    MallocService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

TEST_F(RelocTest, UncontendedRelocationCommits)
{
    void *h = runtime_.halloc(64);
    std::memset(translate(h), 0x42, 64);
    void *before = translate(h);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    EXPECT_TRUE(tryRelocateConcurrent(runtime_, id));
    void *after = translate(h);
    EXPECT_NE(before, after);
    auto *p = static_cast<unsigned char *>(after);
    for (int i = 0; i < 64; i++)
        ASSERT_EQ(p[i], 0x42);
    runtime_.hfree(h);
}

TEST_F(RelocTest, AccessorAbortsInFlightRelocation)
{
    // Simulate the race by hand: mark, then access, then commit fails.
    void *h = runtime_.halloc(64);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    auto &entry = runtime_.table().entry(id);
    void *old_ptr = entry.ptr.load();
    // Mover phase 1 (mark).
    entry.ptr.store(reinterpret_cast<void *>(
        reinterpret_cast<uint64_t>(old_ptr) | 1));
    // Accessor arrives: translateConcurrent clears the mark.
    EXPECT_EQ(translateConcurrent(h), old_ptr);
    EXPECT_EQ(entry.ptr.load(), old_ptr);
    runtime_.hfree(h);
}

TEST_F(RelocTest, RacingMutatorsNeverSeeTornObjects)
{
    // Enough objects that each is unpinned most of the time, so the
    // mover finds windows to commit; few enough that conflicts (and
    // thus aborts) still happen.
    constexpr int n_objects = 256;
    constexpr size_t obj_size = 256;
    std::vector<void *> handles;
    for (int i = 0; i < n_objects; i++) {
        handles.push_back(runtime_.halloc(obj_size));
        // Object invariant: all bytes equal.
        std::memset(translateConcurrent(handles.back()), 7, obj_size);
    }
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> checks{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&, t] {
            ThreadRegistration reg(runtime_);
            Rng rng(t);
            // Each thread owns a disjoint slice of the objects, so the
            // only writer racing a mutator is the relocator itself.
            const int lo = t * (n_objects / 4);
            while (!stop.load(std::memory_order_relaxed)) {
                void *h = handles[lo + rng.below(n_objects / 4)];
                ConcurrentPin pin(h);
                auto *p = static_cast<unsigned char *>(pin.get());
                const unsigned char v = p[0];
                for (size_t i = 0; i < obj_size; i++)
                    ASSERT_EQ(p[i], v);
                const auto next = static_cast<unsigned char>(v + 1);
                std::memset(p, next, obj_size);
                checks.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // Wait for the mutators to be scheduled at least once (a loaded or
    // single-core machine can otherwise finish the relocation loop
    // before any mutator starts, leaving checks == 0).
    while (checks.load(std::memory_order_relaxed) == 0)
        std::this_thread::yield();
    anchorage::DefragStats stats;
    Rng rng(99);
    for (int i = 0; i < 20000; i++) {
        const uint32_t id = handleId(
            reinterpret_cast<uint64_t>(handles[rng.below(n_objects)]));
        stats.attempts++;
        if (tryRelocateConcurrent(runtime_, id)) {
            stats.committed++;
        } else {
            stats.aborted++;
        }
    }
    stop.store(true);
    for (auto &th : threads)
        th.join();
    EXPECT_GT(checks.load(), 0u);
    EXPECT_GT(stats.committed, 0u);
    EXPECT_EQ(stats.attempts, stats.committed + stats.aborted);
    for (void *h : handles)
        runtime_.hfree(h);
}

} // namespace
