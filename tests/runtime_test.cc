/**
 * @file
 * Tests for the core runtime allocation API (halloc/hfree/hrealloc) and
 * handle translation against the malloc-backed service.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/malloc_service.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"

namespace
{

using namespace alaska;

class RuntimeTest : public ::testing::Test
{
  protected:
    RuntimeTest() : runtime_(RuntimeConfig{.tableCapacity = 1u << 16})
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    MallocService service_;
    Runtime runtime_;
};

TEST_F(RuntimeTest, HallocReturnsAHandle)
{
    void *h = runtime_.halloc(64);
    EXPECT_TRUE(isHandle(h));
    EXPECT_EQ(handleOffset(reinterpret_cast<uint64_t>(h)), 0u);
    runtime_.hfree(h);
}

TEST_F(RuntimeTest, TranslationReachesBackingMemory)
{
    void *h = runtime_.halloc(sizeof(int));
    int *p = static_cast<int *>(translate(h));
    *p = 42;
    EXPECT_EQ(*static_cast<int *>(translate(h)), 42);
    runtime_.hfree(h);
}

TEST_F(RuntimeTest, TranslationIsIdentityOnRawPointers)
{
    int value = 7;
    EXPECT_EQ(translate(&value), &value);
    EXPECT_EQ(translate(nullptr), nullptr);
}

TEST_F(RuntimeTest, InteriorHandleTranslatesWithOffset)
{
    void *h = runtime_.halloc(256);
    char *base = static_cast<char *>(translate(h));
    // Pointer arithmetic happens on the handle, translation afterwards.
    void *interior =
        reinterpret_cast<void *>(reinterpret_cast<uint64_t>(h) + 100);
    EXPECT_EQ(translate(interior), base + 100);
    runtime_.hfree(h);
}

TEST_F(RuntimeTest, HreallocPreservesHandleValueAndContents)
{
    void *h = runtime_.halloc(16);
    std::memcpy(translate(h), "fifteen bytes..", 16);
    void *h2 = runtime_.hrealloc(h, 4096);
    // The whole point of handles: growth does not change the "pointer".
    EXPECT_EQ(h2, h);
    EXPECT_EQ(std::memcmp(translate(h), "fifteen bytes..", 16), 0);
    EXPECT_EQ(runtime_.usableSize(h), 4096u);
    runtime_.hfree(h);
}

TEST_F(RuntimeTest, HreallocNullBehavesLikeHalloc)
{
    void *h = runtime_.hrealloc(nullptr, 32);
    EXPECT_TRUE(isHandle(h));
    runtime_.hfree(h);
}

TEST_F(RuntimeTest, HreallocZeroBehavesLikeFree)
{
    void *h = runtime_.halloc(32);
    EXPECT_EQ(runtime_.hrealloc(h, 0), nullptr);
    EXPECT_EQ(runtime_.table().liveCount(), 0u);
}

TEST_F(RuntimeTest, HcallocZeroes)
{
    auto *p = static_cast<unsigned char *>(
        translate(runtime_.hcalloc(8, 16)));
    for (int i = 0; i < 128; i++)
        EXPECT_EQ(p[i], 0);
}

TEST_F(RuntimeTest, HfreeOfRawPointerFallsThroughToLibc)
{
    // Untransformed code may hand us plain malloc memory (§4.1.4).
    void *raw = std::malloc(32);
    runtime_.hfree(raw); // must not crash or touch the table
    EXPECT_EQ(runtime_.table().liveCount(), 0u);
}

TEST_F(RuntimeTest, FreedIdsAreRecycled)
{
    void *a = runtime_.halloc(8);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(a));
    runtime_.hfree(a);
    void *b = runtime_.halloc(8);
    EXPECT_EQ(handleId(reinterpret_cast<uint64_t>(b)), id);
    runtime_.hfree(b);
}

TEST_F(RuntimeTest, StatsCount)
{
    void *h = runtime_.halloc(8);
    h = runtime_.hrealloc(h, 64);
    runtime_.hfree(h);
    const RuntimeStats s = runtime_.stats();
    EXPECT_EQ(s.hallocs, 1u);
    EXPECT_EQ(s.hreallocs, 1u);
    EXPECT_EQ(s.hfrees, 1u);
}

TEST_F(RuntimeTest, ObjectMovementIsOneStoreAwayFromAllAliases)
{
    // Simulate a service moving an object: every alias (any number of
    // copies of the handle, anywhere) observes the move instantly.
    void *h = runtime_.halloc(64);
    std::vector<void *> aliases(10, h);
    std::memset(translate(h), 0xab, 64);

    auto &entry =
        runtime_.table().entry(handleId(reinterpret_cast<uint64_t>(h)));
    void *old_backing = entry.ptr.load(std::memory_order_relaxed);
    void *new_backing = std::malloc(64);
    std::memcpy(new_backing, old_backing, 64);
    entry.ptr.store(new_backing, std::memory_order_release);

    for (void *alias : aliases)
        EXPECT_EQ(translate(alias), new_backing);

    entry.ptr.store(old_backing, std::memory_order_release);
    std::free(new_backing);
    runtime_.hfree(h);
}

/** Property: a random churn of handle allocations stays consistent. */
class RuntimeChurn : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RuntimeChurn, ContentsSurviveChurn)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    runtime.attachService(&service);
    Rng rng(GetParam());

    struct Obj
    {
        void *h;
        unsigned char fill;
        size_t size;
    };
    std::vector<Obj> live;

    for (int step = 0; step < 5000; step++) {
        if (live.empty() || rng.chance(0.5)) {
            const size_t size = 1 + rng.below(512);
            const auto fill = static_cast<unsigned char>(rng.below(256));
            void *h = runtime.halloc(size);
            std::memset(translate(h), fill, size);
            live.push_back({h, fill, size});
        } else if (rng.chance(0.3)) {
            auto &obj = live[rng.below(live.size())];
            const size_t new_size = 1 + rng.below(1024);
            const size_t keep = std::min(obj.size, new_size);
            runtime.hrealloc(obj.h, new_size);
            auto *p = static_cast<unsigned char *>(translate(obj.h));
            for (size_t i = 0; i < keep; i++)
                ASSERT_EQ(p[i], obj.fill);
            std::memset(p, obj.fill, new_size);
            obj.size = new_size;
        } else {
            const size_t idx = rng.below(live.size());
            auto &obj = live[idx];
            auto *p = static_cast<unsigned char *>(translate(obj.h));
            for (size_t i = 0; i < obj.size; i++)
                ASSERT_EQ(p[i], obj.fill);
            runtime.hfree(obj.h);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (auto &obj : live)
        runtime.hfree(obj.h);
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeChurn,
                         ::testing::Values(5, 6, 7, 8));

} // namespace
