/**
 * @file
 * Tests for the background concurrent-relocation subsystem: Anchorage
 * campaigns (paper §7 promoted to a real defrag mode), the scoped
 * mark-aware translation path, the abort protocol under contention,
 * the DefragMode controller wiring, and the daemon lifecycle.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "base/rng.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "services/concurrent_reloc.h"
#include "services/concurrent_reloc_daemon.h"
#include "sim/address_space.h"
#include "sim/clock.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

/** Run campaigns until one makes no progress; fold the stats. */
DefragStats
campaignFully(AnchorageService &service)
{
    DefragStats total;
    for (;;) {
        const DefragStats pass = service.relocateCampaign(SIZE_MAX);
        total.accumulate(pass);
        if (pass.movedBytes == 0 && pass.reclaimedBytes == 0)
            break;
    }
    return total;
}

class CampaignTest : public ::testing::Test
{
  protected:
    CampaignTest()
        : service_(space_, AnchorageConfig{.subHeapBytes = 1 << 20}),
          runtime_(RuntimeConfig{.tableCapacity = 1u << 16}),
          registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    /** Allocate then free every other object: fragmentation ~2x. */
    std::vector<void *>
    fragmentHeap(int objects = 2000, size_t size = 256)
    {
        std::vector<void *> handles;
        for (int i = 0; i < objects; i++)
            handles.push_back(runtime_.halloc(size));
        std::vector<void *> survivors;
        for (size_t i = 0; i < handles.size(); i++) {
            if (i % 2 != 0)
                runtime_.hfree(handles[i]);
            else
                survivors.push_back(handles[i]);
        }
        return survivors;
    }

    void
    freeAll(std::vector<void *> &handles)
    {
        for (void *h : handles)
            runtime_.hfree(h);
        handles.clear();
    }

    // Declaration order matters: the service must outlive the runtime.
    RealAddressSpace space_;
    AnchorageService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

TEST_F(CampaignTest, CompactsFragmentedHeapWithZeroBarriers)
{
    auto survivors = fragmentHeap();
    const double frag_before = service_.fragmentation();
    ASSERT_GT(frag_before, 1.4);

    const DefragStats stats = campaignFully(service_);

    EXPECT_GT(stats.committed, 0u);
    EXPECT_GT(stats.reclaimedBytes, 0u);
    EXPECT_EQ(stats.attempts,
              stats.committed + stats.aborted + stats.noSpace);
    EXPECT_LT(service_.fragmentation(), frag_before);
    EXPECT_LT(service_.fragmentation(), 1.2);
    // The whole point: nothing stopped the world.
    EXPECT_EQ(runtime_.stats().barriers, 0u);
    freeAll(survivors);
}

TEST_F(CampaignTest, MovedObjectsKeepTheirContents)
{
    auto survivors = fragmentHeap(600, 512);
    // Stamp each survivor with a distinct pattern.
    for (size_t i = 0; i < survivors.size(); i++)
        std::memset(translate(survivors[i]), static_cast<int>(i & 0xff),
                    512);

    const DefragStats stats = campaignFully(service_);
    ASSERT_GT(stats.committed, 0u);

    for (size_t i = 0; i < survivors.size(); i++) {
        auto *p = static_cast<unsigned char *>(translate(survivors[i]));
        for (int b = 0; b < 512; b++)
            ASSERT_EQ(p[b], static_cast<unsigned char>(i & 0xff));
    }
    freeAll(survivors);
}

TEST_F(CampaignTest, PinnedObjectsAbortAndAreCounted)
{
    auto survivors = fragmentHeap(200, 256);
    // Pin every survivor through the atomic pin counts the concurrent
    // protocol honors.
    std::vector<ConcurrentPin *> pins;
    for (void *h : survivors)
        pins.push_back(new ConcurrentPin(h));

    const DefragStats stats = service_.relocateCampaign(SIZE_MAX);
    EXPECT_EQ(stats.committed, 0u);
    EXPECT_GT(stats.pinnedSkips, 0u);
    EXPECT_EQ(stats.attempts,
              stats.committed + stats.aborted + stats.noSpace);

    for (ConcurrentPin *pin : pins)
        delete pin;
    // Unpinned, the same campaign succeeds.
    const DefragStats retry = campaignFully(service_);
    EXPECT_GT(retry.committed, 0u);
    freeAll(survivors);
}

TEST_F(CampaignTest, HfreeOfAMarkedEntryIsSafe)
{
    // Simulate the mover by hand: mark the entry, then free the handle
    // as a racing mutator would. The free must claim the real pointer
    // (no double free, no marked pointer reaching the service) and the
    // mover's commit CAS must fail.
    void *filler = runtime_.halloc(256);
    void *h = runtime_.halloc(256);
    runtime_.hfree(filler); // a hole below h, so h is movable in theory
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    auto &entry = runtime_.table().entry(id);

    void *old_ptr = entry.ptr.load();
    entry.ptr.store(reloc::marked(old_ptr));
    const uint32_t live_before = runtime_.table().liveCount();
    runtime_.hfree(h);
    EXPECT_EQ(runtime_.table().liveCount(), live_before - 1);

    // Mover wakes up and tries to commit: the world moved on.
    void *expected = reloc::marked(old_ptr);
    EXPECT_FALSE(entry.ptr.compare_exchange_strong(
        expected, reinterpret_cast<void *>(0xdead0)));
}

TEST_F(CampaignTest, ScopedTranslationIsPlainWhenIdle)
{
    void *h = runtime_.halloc(64);
    {
        ConcurrentAccessScope scope;
        // No campaign active: identical to the one-load fast path, and
        // no pin may be left behind.
        EXPECT_EQ(translateScoped(h), translate(h));
        {
            ConcurrentAccessScope nested;
            EXPECT_EQ(translateScoped(h), translate(h));
        }
    }
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    EXPECT_EQ(runtime_.table().entry(id).atomicPinCount(), 0u);
    runtime_.hfree(h);
}

/**
 * The contention stress from the issue: accessor threads read through
 * the scoped strip translation, write through the pin handshake, and
 * churn handles through hfree on live objects while campaigns relocate
 * them. Asserts no lost writes (per-object counters stay exact), no
 * torn objects, no double frees (the sub-heap's invariant checks fatal
 * on those), and that the campaign ledger balances:
 * attempts == committed + aborted + noSpace.
 */
TEST_F(CampaignTest, ContentionStressNoLostWritesNoDoubleFrees)
{
    constexpr int n_threads = 4;
    constexpr int objs_per_thread = 64;
    constexpr size_t obj_size = 256;
    constexpr int iters = 30000;

    // Interleave target objects with filler that is freed immediately,
    // so the campaign always has holes to compact into.
    std::vector<std::vector<void *>> objects(n_threads);
    std::vector<void *> filler;
    for (int t = 0; t < n_threads; t++) {
        for (int i = 0; i < objs_per_thread; i++) {
            filler.push_back(runtime_.halloc(obj_size));
            void *h = runtime_.halloc(obj_size);
            std::memset(translate(h), 0, obj_size);
            objects[t].push_back(h);
        }
    }
    for (void *h : filler)
        runtime_.hfree(h);

    std::atomic<int> active{n_threads};
    std::atomic<uint64_t> ops{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; t++) {
        threads.emplace_back([&, t] {
            ThreadRegistration reg(runtime_);
            // Decrement on every exit path — a fatal assertion returns
            // out of the lambda, and the campaign loop below must not
            // spin forever on a thread that already bailed.
            struct ActiveGuard
            {
                std::atomic<int> &count;
                ~ActiveGuard()
                {
                    count.fetch_sub(1, std::memory_order_release);
                }
            } guard{active};
            Rng rng(1000 + t);
            std::vector<uint64_t> expected(objs_per_thread, 0);
            for (int i = 0; i < iters && !::testing::Test::HasFatalFailure();
                 i++) {
                const int j = static_cast<int>(
                    rng.below(objs_per_thread));
                if (i % 97 == 96) {
                    // Churn: free and reallocate under the relocator.
                    runtime_.hfree(objects[t][j]);
                    objects[t][j] = runtime_.halloc(obj_size);
                    ConcurrentPin pin(objects[t][j]);
                    std::memset(pin.get(), 0, obj_size);
                    expected[j] = 0;
                } else {
                    {
                        // Reads go through the scope's strip
                        // translation: no RMW, never aborts a move.
                        ConcurrentAccessScope scope;
                        const auto *p =
                            static_cast<const unsigned char *>(
                                translateScoped(objects[t][j]));
                        uint64_t counter;
                        std::memcpy(&counter, p, sizeof counter);
                        // Lost-write check: the object must hold
                        // exactly the value the owner last wrote.
                        ASSERT_EQ(counter, expected[j]);
                        // Torn-copy check: the tail bytes all carry
                        // the counter's low byte.
                        const auto tag =
                            static_cast<unsigned char>(counter & 0xff);
                        for (size_t b = sizeof counter; b < obj_size;
                             b++)
                            ASSERT_EQ(p[b], tag);
                    }
                    // Writes take the pin handshake: the pin excludes
                    // the mover, so the store cannot race a copy.
                    const uint64_t counter = expected[j] + 1;
                    ConcurrentPin pin(objects[t][j]);
                    auto *p = static_cast<unsigned char *>(pin.get());
                    std::memcpy(p, &counter, sizeof counter);
                    std::memset(p + sizeof counter,
                                static_cast<int>(counter & 0xff),
                                obj_size - sizeof counter);
                    expected[j] = counter;
                }
                ops.fetch_add(1, std::memory_order_relaxed);
                poll();
            }
        });
    }

    // Wait until mutators are actually running, then relocate under
    // them until every thread has finished (or bailed on a failure).
    while (ops.load(std::memory_order_relaxed) == 0 &&
           active.load(std::memory_order_acquire) == n_threads) {
        std::this_thread::yield();
    }
    DefragStats stats;
    while (active.load(std::memory_order_acquire) > 0)
        stats.accumulate(service_.relocateCampaign(SIZE_MAX));
    for (auto &th : threads)
        th.join();

    EXPECT_GT(stats.attempts, 0u);
    EXPECT_GT(stats.committed, 0u) << "campaigns never moved anything";
    EXPECT_EQ(stats.attempts,
              stats.committed + stats.aborted + stats.noSpace);
    EXPECT_EQ(runtime_.stats().barriers, 0u);

    for (auto &per_thread : objects)
        for (void *h : per_thread)
            runtime_.hfree(h);
}

/**
 * Campaign hole coalescing: YCSB-shaped churn (mixed value sizes,
 * random updates) used to strand campaigns above the stop-the-world
 * floor — evacuating a source sub-heap leaves runs of small adjacent
 * holes, and without merging them no single hole fits the larger
 * values, so placement falls back to bump space and fragmentation
 * plateaus. With coalesceHoles() run per evacuated source, campaigns
 * must land within a small margin of what a stop-the-world pass
 * reaches on the *identical* layout (same seed, same allocation
 * sequence, sequential runtimes).
 */
TEST(CampaignCoalesceTest, YcsbShapedChurnReachesTheStopTheWorldFloor)
{
    constexpr int slots = 3000;
    constexpr int churn_ops = 20000;
    constexpr size_t sizes[] = {64, 96, 128, 256, 320, 512, 1024};

    // Mixed-size allocate, churn, then a deletion wave: the YCSB shape.
    auto run_workload = [&](Runtime &runtime, Rng &rng) {
        std::vector<void *> handles(slots, nullptr);
        auto alloc_slot = [&](int i) {
            handles[i] = runtime.halloc(
                sizes[rng.below(std::size(sizes))]);
        };
        for (int i = 0; i < slots; i++)
            alloc_slot(i);
        for (int op = 0; op < churn_ops; op++) {
            const int i = static_cast<int>(rng.below(slots));
            runtime.hfree(handles[i]);
            alloc_slot(i);
        }
        std::vector<void *> survivors;
        for (int i = 0; i < slots; i++) {
            if (i % 2 != 0)
                runtime.hfree(handles[i]);
            else
                survivors.push_back(handles[i]);
        }
        return survivors;
    };

    double frag_stw = 0.0;
    {
        RealAddressSpace space;
        AnchorageService service(space,
                                 AnchorageConfig{.subHeapBytes = 1 << 20});
        Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
        runtime.attachService(&service);
        ThreadRegistration reg(runtime);
        Rng rng(7);
        auto survivors = run_workload(runtime, rng);
        ASSERT_GT(service.fragmentation(), 1.3);
        service.defragFully();
        frag_stw = service.fragmentation();
        for (void *h : survivors)
            runtime.hfree(h);
    }

    double frag_campaign = 0.0;
    {
        RealAddressSpace space;
        AnchorageService service(space,
                                 AnchorageConfig{.subHeapBytes = 1 << 20});
        Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
        runtime.attachService(&service);
        ThreadRegistration reg(runtime);
        Rng rng(7);
        auto survivors = run_workload(runtime, rng);
        ASSERT_GT(service.fragmentation(), 1.3);
        DefragStats stats = campaignFully(service);
        frag_campaign = service.fragmentation();
        EXPECT_GT(stats.committed, 0u);
        EXPECT_EQ(stats.attempts,
                  stats.committed + stats.aborted + stats.noSpace);
        EXPECT_EQ(runtime.stats().barriers, 0u);
        for (void *h : survivors)
            runtime.hfree(h);
    }

    // "Reaches the STW floor": the floor is defined by the identical-
    // layout stop-the-world pass — mixed sizes put it above the uniform
    // ~1.05, so the absolute bound is a backstop, not the yardstick.
    EXPECT_LE(frag_campaign, frag_stw + 0.05)
        << "campaign floor " << frag_campaign << " vs STW floor "
        << frag_stw;
    EXPECT_LT(frag_campaign, 1.15);
}

// --- controller integration -------------------------------------------------

class ModeControlTest : public ::testing::Test
{
  protected:
    ModeControlTest()
        : service_(space_, AnchorageConfig{.subHeapBytes = 1 << 20}),
          runtime_(RuntimeConfig{.tableCapacity = 1u << 18})
    {
        runtime_.attachService(&service_);
    }

    std::vector<void *>
    fragmentHeap(int objects = 4000, size_t size = 256)
    {
        std::vector<void *> handles;
        for (int i = 0; i < objects; i++)
            handles.push_back(runtime_.halloc(size));
        std::vector<void *> survivors;
        for (size_t i = 0; i < handles.size(); i++) {
            if (i % 2 != 0)
                runtime_.hfree(handles[i]);
            else
                survivors.push_back(handles[i]);
        }
        return survivors;
    }

    // Declaration order matters: the service must outlive the runtime.
    PhantomAddressSpace space_;
    AnchorageService service_;
    Runtime runtime_;
    VirtualClock clock_;
};

TEST_F(ModeControlTest, ConcurrentModeReachesTargetWithZeroBarriers)
{
    auto survivors = fragmentHeap();
    ControlParams params{.useModeledTime = true,
                         .mode = DefragMode::Concurrent};
    params.alpha = 1.0;
    DefragController controller(service_, clock_, params);
    ASSERT_GT(service_.fragmentation(), params.fUb);

    for (int i = 0; i < 100; i++) {
        controller.tick();
        clock_.advance(0.5);
        if (controller.state() == DefragController::State::Waiting &&
            service_.fragmentation() < params.fLb) {
            break;
        }
    }
    EXPECT_EQ(controller.state(), DefragController::State::Waiting);
    EXPECT_LT(service_.fragmentation(), params.fLb);
    EXPECT_EQ(runtime_.stats().barriers, 0u);
    EXPECT_EQ(controller.totalPauseSec(), 0.0);
    EXPECT_GT(controller.totalDefragSec(), 0.0);
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ModeControlTest, HybridFallbackDeductsCampaignSpendFromBudget)
{
    // Regression: the fallback used to re-spend the full alpha budget
    // after the campaign had already moved bytes, so one Hybrid tick
    // could move up to 2x alpha of the heap and double the intended
    // pause bound. The fallback must get only the remainder.
    auto survivors = fragmentHeap(4000);
    ControlParams params{.useModeledTime = true,
                         .mode = DefragMode::Hybrid};
    params.alpha = 0.25;
    // Force the fallback on every tick regardless of contention: the
    // subject here is the budget arithmetic, not the abort feedback.
    params.abortFallbackRate = -1.0;
    params.abortFallbackMinAttempts = 0;
    DefragController controller(service_, clock_, params);
    ASSERT_GT(service_.fragmentation(), params.fUb);

    const size_t extent_before = service_.heapExtent();
    const ControlAction action = controller.tick();
    ASSERT_TRUE(action.defragged);
    EXPECT_GT(action.stats.movedBytes, 0u);
    // Campaign + fallback together stay within alpha x extent (plus
    // at most one object's overshoot per phase).
    EXPECT_LE(action.stats.movedBytes,
              static_cast<size_t>(0.25 *
                                  static_cast<double>(extent_before)) +
                  2 * 256);
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ModeControlTest, HybridFallsBackToBarrierUnderAborts)
{
    auto survivors = fragmentHeap(2000);
    // Pin everything through the atomic counts: every concurrent
    // attempt aborts, which is exactly the "too much accessor
    // interference" signal Hybrid reacts to.
    for (void *h : survivors) {
        runtime_.table()
            .entry(handleId(reinterpret_cast<uint64_t>(h)))
            .state.fetch_add(HandleTableEntry::pinCountOne);
    }

    ControlParams params{.useModeledTime = true,
                         .mode = DefragMode::Hybrid};
    params.alpha = 1.0;
    params.abortFallbackRate = 0.25;
    params.abortFallbackMinAttempts = 8;
    DefragController controller(service_, clock_, params);
    ASSERT_GT(service_.fragmentation(), params.fUb);

    const ControlAction action = controller.tick();
    ASSERT_TRUE(action.defragged);
    EXPECT_TRUE(action.fellBack);
    EXPECT_EQ(controller.fallbacks(), 1u);
    EXPECT_EQ(runtime_.stats().barriers, 1u);
    // The barrier honors the pins too: nothing may have moved.
    EXPECT_EQ(action.stats.movedObjects, 0u);
    EXPECT_GT(action.stats.pinnedSkips, 0u);

    for (void *h : survivors) {
        runtime_.table()
            .entry(handleId(reinterpret_cast<uint64_t>(h)))
            .state.fetch_sub(HandleTableEntry::pinCountOne);
    }
    // Unpinned, Hybrid finishes concurrently without another barrier.
    for (int i = 0; i < 100; i++) {
        clock_.advance(0.5);
        const ControlAction a = controller.tick();
        if (a.defragged && a.fellBack)
            FAIL() << "fallback despite no contention";
        if (controller.state() == DefragController::State::Waiting &&
            service_.fragmentation() < params.fLb) {
            break;
        }
    }
    EXPECT_LT(service_.fragmentation(), params.fLb);
    EXPECT_EQ(runtime_.stats().barriers, 1u);
    for (void *h : survivors)
        runtime_.hfree(h);
}

// --- daemon lifecycle -------------------------------------------------------

TEST(ConcurrentRelocDaemonTest, DefragsInTheBackgroundWithZeroBarriers)
{
    RealAddressSpace space;
    AnchorageService service(space,
                             AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    runtime.attachService(&service);

    std::vector<void *> survivors;
    {
        ThreadRegistration reg(runtime);
        std::vector<void *> handles;
        for (int i = 0; i < 2000; i++)
            handles.push_back(runtime.halloc(256));
        for (size_t i = 0; i < handles.size(); i++) {
            if (i % 2 != 0)
                runtime.hfree(handles[i]);
            else
                survivors.push_back(handles[i]);
        }
    }
    ControlParams params{.mode = DefragMode::Concurrent};
    params.pollInterval = 0.001;
    params.alpha = 1.0;
    ConcurrentRelocDaemon daemon(runtime, service, params);
    ASSERT_GT(service.fragmentation(), params.fUb);

    daemon.start();
    EXPECT_TRUE(daemon.running());
    // The daemon defrags on its own schedule; just watch fragmentation.
    for (int i = 0; i < 2000; i++) {
        if (service.fragmentation() < params.fLb)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    daemon.stop();
    EXPECT_FALSE(daemon.running());

    EXPECT_LT(service.fragmentation(), params.fLb);
    const DefragStats totals = daemon.totals();
    EXPECT_GT(daemon.passes(), 0u);
    EXPECT_GT(totals.committed, 0u);
    EXPECT_EQ(totals.attempts,
              totals.committed + totals.aborted + totals.noSpace);
    EXPECT_EQ(runtime.stats().barriers, 0u);
    EXPECT_EQ(daemon.totalPauseSec(), 0.0);

    {
        ThreadRegistration reg(runtime);
        for (void *h : survivors)
            runtime.hfree(h);
    }
}

} // namespace
