/**
 * @file
 * Equivalence tests for the benchmark kernels: every configuration
 * (base / alaska / nohoisting / notracking) of every kernel must
 * compute the identical checksum — the kernels are deterministic, so
 * any divergence means the handle machinery corrupted something.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "anchorage/anchorage_service.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "kernels/registry.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::kernels;

/** Shrink scales so the whole matrix stays fast in tests. */
size_t
testScale(const KernelEntry &entry)
{
    const std::string name = entry.name;
    if (name == "crc32")
        return 12;
    if (name == "matmult-int")
        return 48;
    if (name == "nbody")
        return 128;
    if (name == "primecount")
        return 100000;
    if (name == "listsort")
        return 4000;
    if (name == "huffbench")
        return 20000;
    if (name == "bfs")
        return 20000;
    if (name == "pr" || name == "sssp")
        return 8000;
    if (name == "cc")
        return 10000;
    if (name == "cg")
        return 6000;
    if (name == "mg")
        return 20;
    if (name == "ep")
        return 100000;
    if (name == "is")
        return 40000;
    if (name == "mcf-sort")
        return 8000;
    if (name == "lbm-grid")
        return 48;
    if (name == "xalanc-tree")
        return 10000;
    if (name == "xz-match")
        return 1 << 14;
    if (name == "deepsjeng-tt")
        return 100000;
    if (name == "imagick-conv")
        return 64;
    return entry.scale / 16 + 1;
}

class KernelEquivalence
    : public ::testing::TestWithParam<size_t>
{
};

TEST_P(KernelEquivalence, AllConfigsComputeTheSameChecksum)
{
    const KernelEntry &entry = kernelRegistry()[GetParam()];
    const size_t scale = testScale(entry);

    const int64_t expected = entry.base(scale);

    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 20});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    EXPECT_EQ(entry.alaska(scale), expected)
        << entry.suite << "/" << entry.name << " (alaska)";
    EXPECT_EQ(entry.nohoist(scale), expected)
        << entry.suite << "/" << entry.name << " (nohoisting)";
    EXPECT_EQ(entry.notrack(scale), expected)
        << entry.suite << "/" << entry.name << " (notracking)";
    EXPECT_EQ(runtime.table().liveCount(), 0u)
        << entry.name << " leaked handles";
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelEquivalence,
    ::testing::Range<size_t>(0, kernelRegistry().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = kernelRegistry()[info.param].name;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(KernelDefragRace, KernelsSurviveConcurrentDefragmentation)
{
    // The strongest end-to-end claim for native code: kernels run on
    // Anchorage while another thread defragments between their
    // safepoints; pinned translations keep hoisted raw pointers
    // valid, and every checksum must still match the raw baseline.
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 20});
    runtime.attachService(&service);

    std::atomic<bool> stop{false};
    std::thread defragger([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            service.defrag(SIZE_MAX);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });

    {
        ThreadRegistration reg(runtime);
        for (const auto &entry : kernelRegistry()) {
            const std::string name = entry.name;
            // A representative mix: chasing, hoisted-numeric, graph.
            if (name != "listsort" && name != "matmult-int" &&
                name != "bfs" && name != "xalanc-tree" &&
                name != "mcf-sort") {
                continue;
            }
            const size_t scale = testScale(entry);
            const int64_t expected = entry.base(scale);
            for (int round = 0; round < 3; round++) {
                ASSERT_EQ(entry.alaska(scale), expected)
                    << name << " diverged under concurrent defrag";
            }
        }
    }
    stop.store(true);
    defragger.join();
    EXPECT_GT(runtime.stats().barriers, 0u);
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

TEST(KernelRegistry, CoversAllFourSuites)
{
    bool embench = false, gap = false, nas = false, spec = false;
    for (const auto &entry : kernelRegistry()) {
        const std::string suite = entry.suite;
        embench |= (suite == "embench");
        gap |= (suite == "gap");
        nas |= (suite == "nas");
        spec |= (suite == "spec");
    }
    EXPECT_TRUE(embench && gap && nas && spec);
    EXPECT_GE(kernelRegistry().size(), 20u);
}

} // namespace
