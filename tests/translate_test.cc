/**
 * @file
 * Edge-case tests for the translation fast path (§3.3, Figure 5): the
 * raw-pointer/handle boundary, offset truncation at the 32-bit field
 * boundary, and the very last representable handle ID.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/malloc_service.h"
#include "core/runtime.h"
#include "core/translate.h"

namespace
{

using namespace alaska;

class TranslateEdgeTest : public ::testing::Test
{
  protected:
    TranslateEdgeTest() : runtime_(RuntimeConfig{.tableCapacity = 1u << 16})
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    MallocService service_;
    Runtime runtime_;
};

TEST_F(TranslateEdgeTest, HighestNonHandleAddressPassesThrough)
{
    // 0x7fff'ffff'ffff'ffff is the largest value whose sign bit is
    // clear: one below the handle space. It must pass through
    // untouched, without ever consulting the handle table.
    const uint64_t v = UINT64_C(0x7fffffffffffffff);
    void *p = reinterpret_cast<void *>(v);
    EXPECT_FALSE(isHandle(v));
    EXPECT_EQ(translate(p), p);
}

TEST_F(TranslateEdgeTest, LowestHandleValueIsAHandle)
{
    // Flipping one more bit lands in handle space: ID 0, offset 0.
    const uint64_t v = UINT64_C(0x8000000000000000);
    EXPECT_TRUE(isHandle(v));
    EXPECT_EQ(handleId(v), 0u);
    EXPECT_EQ(handleOffset(v), 0u);
}

TEST_F(TranslateEdgeTest, OffsetTruncatesAtThe32BitBoundary)
{
    void *h = runtime_.halloc(64);
    const uint64_t base = reinterpret_cast<uint64_t>(h);
    char *backing = static_cast<char *>(translate(h));

    // The maximum representable offset translates to base + 2^32 - 1.
    // (Out of bounds for this object — we only compare addresses.)
    const uint64_t interior = base | 0xffffffffu;
    EXPECT_EQ(translate(reinterpret_cast<void *>(interior)),
              backing + 0xffffffffu);

    // One past it carries into the ID field: the offset must wrap to 0
    // rather than contaminate the extracted ID with a 33rd bit.
    const uint64_t wrapped = interior + 1;
    EXPECT_EQ(handleOffset(wrapped), 0u);
    EXPECT_EQ(handleId(wrapped),
              handleId(base) + 1); // arithmetic spilled into the ID
    runtime_.hfree(h);
}

TEST(TranslateMaxIdTest, LastRepresentableIdTranslates)
{
    // A table spanning the full 31-bit ID space (32 GiB of virtual
    // address space, MAP_NORESERVE) must serve its very last entry
    // through the one-load fast path. No service needed: the entry is
    // poked directly.
    Runtime runtime(RuntimeConfig{.tableCapacity = maxHandleId});

    const uint32_t id = maxHandleId - 1;
    char backing[8];
    auto &e = runtime.table().entry(id);
    e.ptr.store(backing, std::memory_order_release);

    const uint64_t v = makeHandle(id, 5);
    EXPECT_EQ(handleId(v), id);
    EXPECT_EQ(translate(reinterpret_cast<void *>(v)), backing + 5);

    e.ptr.store(nullptr, std::memory_order_release);
}

} // namespace
