/**
 * @file
 * Tests for the IR structure and CFG analyses (dominators, loops,
 * preheaders, liveness) that Algorithm 1 builds on.
 */

#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/builder.h"
#include "ir/ir.h"
#include "ir/verifier.h"

namespace
{

using namespace alaska::ir;

/** Build a diamond: entry -> (left | right) -> merge. */
struct Diamond
{
    Module module;
    Function *fn;
    BasicBlock *entry, *left, *right, *merge;

    Diamond()
    {
        fn = module.addFunction("diamond", 1);
        Builder b(*fn);
        entry = b.block();
        left = b.newBlock("left");
        right = b.newBlock("right");
        merge = b.newBlock("merge");
        b.condBr(b.arg(0), left, right);
        b.setBlock(left);
        b.br(merge);
        b.setBlock(right);
        b.br(merge);
        b.setBlock(merge);
        b.ret(b.constant(0));
        fn->computeCfg();
        fn->renumber();
    }
};

TEST(Dominators, DiamondShape)
{
    Diamond d;
    DominatorTree domtree(*d.fn);
    EXPECT_EQ(domtree.idom(d.left), d.entry);
    EXPECT_EQ(domtree.idom(d.right), d.entry);
    EXPECT_EQ(domtree.idom(d.merge), d.entry);
    EXPECT_TRUE(domtree.dominates(d.entry, d.merge));
    EXPECT_FALSE(domtree.dominates(d.left, d.merge));
    EXPECT_EQ(domtree.nearestCommonDominator(d.left, d.right), d.entry);
    EXPECT_EQ(domtree.nearestCommonDominator(d.left, d.merge), d.entry);
}

TEST(Dominators, InstructionOrderWithinBlock)
{
    Module module;
    Function *fn = module.addFunction("f", 0);
    Builder b(*fn);
    Instruction *first = b.constant(1);
    Instruction *second = b.constant(2);
    b.ret(b.add(first, second));
    DominatorTree domtree(*fn);
    EXPECT_TRUE(domtree.dominates(first, second));
    EXPECT_FALSE(domtree.dominates(second, first));
}

/** Build a canonical counted loop and return its pieces. */
struct CountedLoop
{
    Module module;
    Function *fn;
    BasicBlock *entry, *header, *body, *exit;
    Instruction *phi;

    explicit CountedLoop(int64_t trips = 10)
    {
        fn = module.addFunction("loop", 0);
        Builder b(*fn);
        entry = b.block();
        header = b.newBlock("header");
        body = b.newBlock("body");
        exit = b.newBlock("exit");
        Instruction *zero = b.constant(0);
        b.br(header);
        b.setBlock(header);
        phi = b.phi();
        Builder::addIncoming(phi, zero, entry);
        b.condBr(b.cmpLt(phi, b.constant(trips)), body, exit);
        b.setBlock(body);
        Instruction *next = b.add(phi, b.constant(1));
        Builder::addIncoming(phi, next, body);
        b.br(header);
        b.setBlock(exit);
        b.ret(phi);
        fn->computeCfg();
        fn->renumber();
    }
};

TEST(Loops, NaturalLoopDetection)
{
    CountedLoop cl;
    DominatorTree domtree(*cl.fn);
    LoopInfo loop_info(*cl.fn, domtree);
    ASSERT_EQ(loop_info.loops().size(), 1u);
    const Loop &loop = *loop_info.loops()[0];
    EXPECT_EQ(loop.header, cl.header);
    EXPECT_TRUE(loop.contains(cl.body));
    EXPECT_FALSE(loop.contains(cl.entry));
    EXPECT_FALSE(loop.contains(cl.exit));
    EXPECT_EQ(loop.preheader, cl.entry);
    EXPECT_EQ(loop.depth, 1);
}

TEST(Loops, NestedLoopsHaveDepth)
{
    Module module;
    Function *fn = module.addFunction("nest", 0);
    Builder b(*fn);
    BasicBlock *entry = b.block();
    BasicBlock *oh = b.newBlock("outer.header");
    BasicBlock *ipre = b.newBlock("inner.pre");
    BasicBlock *ih = b.newBlock("inner.header");
    BasicBlock *ib = b.newBlock("inner.body");
    BasicBlock *ol = b.newBlock("outer.latch");
    BasicBlock *exit = b.newBlock("exit");

    Instruction *zero = b.constant(0);
    b.br(oh);
    b.setBlock(oh);
    Instruction *i = b.phi();
    Builder::addIncoming(i, zero, entry);
    b.condBr(b.cmpLt(i, b.constant(3)), ipre, exit);
    b.setBlock(ipre);
    b.br(ih);
    b.setBlock(ih);
    Instruction *j = b.phi();
    Builder::addIncoming(j, zero, ipre);
    b.condBr(b.cmpLt(j, b.constant(4)), ib, ol);
    b.setBlock(ib);
    Instruction *j2 = b.add(j, b.constant(1));
    Builder::addIncoming(j, j2, ib);
    b.br(ih);
    b.setBlock(ol);
    Instruction *i2 = b.add(i, b.constant(1));
    Builder::addIncoming(i, i2, ol);
    b.br(oh);
    b.setBlock(exit);
    b.ret(i);

    fn->computeCfg();
    DominatorTree domtree(*fn);
    LoopInfo loop_info(*fn, domtree);
    ASSERT_EQ(loop_info.loops().size(), 2u);
    Loop *inner = loop_info.innermostLoop(ib);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->header, ih);
    EXPECT_EQ(inner->depth, 2);
    ASSERT_NE(inner->parent, nullptr);
    EXPECT_EQ(inner->parent->header, oh);
    EXPECT_EQ(inner->preheader, ipre);
}

TEST(Loops, EnsurePreheadersCreatesOne)
{
    // Header with two outside predecessors: not canonical.
    Module module;
    Function *fn = module.addFunction("messy", 1);
    Builder b(*fn);
    BasicBlock *entry = b.block();
    BasicBlock *side = b.newBlock("side");
    BasicBlock *header = b.newBlock("header");
    BasicBlock *exitb = b.newBlock("exit");
    Instruction *c0 = b.constant(0);
    Instruction *c1 = b.constant(1);
    b.condBr(b.arg(0), side, header);
    b.setBlock(side);
    b.br(header);
    b.setBlock(header);
    Instruction *phi = b.phi();
    Builder::addIncoming(phi, c0, entry);
    Builder::addIncoming(phi, c1, side);
    Instruction *next = b.add(phi, b.constant(1));
    Builder::addIncoming(phi, next, header); // self-loop latch
    b.condBr(b.cmpLt(next, b.constant(5)), header, exitb);
    b.setBlock(exitb);
    b.ret(next);
    fn->computeCfg();

    {
        DominatorTree domtree(*fn);
        LoopInfo loop_info(*fn, domtree);
        ASSERT_EQ(loop_info.loops().size(), 1u);
        EXPECT_EQ(loop_info.loops()[0]->preheader, nullptr);
    }
    EXPECT_EQ(ensurePreheaders(*fn), 1);
    {
        DominatorTree domtree(*fn);
        LoopInfo loop_info(*fn, domtree);
        ASSERT_EQ(loop_info.loops().size(), 1u);
        EXPECT_NE(loop_info.loops()[0]->preheader, nullptr);
        // A preheader phi now merges the two outside incomings.
        EXPECT_TRUE(verify(*fn).ok()) << verify(*fn).joined();
    }
}

TEST(Liveness, ValueDiesAtLastUse)
{
    Module module;
    Function *fn = module.addFunction("f", 0);
    Builder b(*fn);
    Instruction *v = b.constant(41);
    Instruction *use = b.add(v, b.constant(1));
    Instruction *other = b.mul(use, use);
    b.ret(other);
    fn->computeCfg();
    fn->renumber();
    Liveness liveness(*fn);
    EXPECT_FALSE(liveness.liveAfter(v, use));
    EXPECT_TRUE(liveness.liveAfter(use, use));
    auto last = liveness.lastUses(v);
    ASSERT_EQ(last.size(), 1u);
    EXPECT_EQ(last[0], use);
}

TEST(Liveness, LoopCarriedValuesAreLiveAcrossTheLoop)
{
    CountedLoop cl;
    Liveness liveness(*cl.fn);
    // The phi is used by the body's add and by the exit's ret: live
    // out of the header along both edges.
    EXPECT_TRUE(liveness.liveOut(cl.header).count(cl.phi));
    EXPECT_TRUE(liveness.liveIn(cl.body).count(cl.phi));
}

TEST(Liveness, PhiOperandsLiveOutOfTheirPredsOnly)
{
    // A diamond with values defined per side.
    Module module;
    Function *fn = module.addFunction("phi", 1);
    Builder bb(*fn);
    BasicBlock *left = bb.newBlock("left");
    BasicBlock *right = bb.newBlock("right");
    BasicBlock *merge = bb.newBlock("merge");
    bb.condBr(bb.arg(0), left, right);
    bb.setBlock(left);
    Instruction *lv = bb.constant(10);
    bb.br(merge);
    bb.setBlock(right);
    Instruction *rv = bb.constant(20);
    bb.br(merge);
    bb.setBlock(merge);
    Instruction *phi = bb.phi();
    Builder::addIncoming(phi, lv, left);
    Builder::addIncoming(phi, rv, right);
    bb.ret(phi);
    fn->computeCfg();
    fn->renumber();
    Liveness liveness(*fn);
    EXPECT_TRUE(liveness.liveOut(left).count(lv));
    EXPECT_FALSE(liveness.liveOut(right).count(lv));
    EXPECT_TRUE(liveness.liveOut(right).count(rv));
    // The phi's value is not live-in anywhere (it is a block-entry def).
    EXPECT_FALSE(liveness.liveIn(merge).count(phi));
}

TEST(Verifier, CatchesUseBeforeDef)
{
    Module module;
    Function *fn = module.addFunction("bad", 0);
    Builder b(*fn);
    BasicBlock *entry = b.block();
    BasicBlock *next = b.newBlock("next");
    b.br(next);
    b.setBlock(next);
    Instruction *late = b.constant(5);
    b.ret(late);
    // Manufacture a violation: entry's branch "uses" the late value.
    (void)entry;
    fn->computeCfg();
    fn->renumber();
    EXPECT_TRUE(verify(*fn).ok());
    // Move the use into entry by hand.
    auto bad = std::make_unique<Instruction>(
        Op::Add, std::vector<Instruction *>{late, late});
    entry->insertAt(0, std::move(bad));
    EXPECT_FALSE(verify(*fn).ok());
}

TEST(Printer, RendersInstructions)
{
    CountedLoop cl;
    const std::string text = toString(*cl.fn);
    EXPECT_NE(text.find("phi"), std::string::npos);
    EXPECT_NE(text.find("condbr"), std::string::npos);
    EXPECT_NE(text.find("header"), std::string::npos);
}

} // namespace
