/**
 * @file
 * Tests for the statistics helpers used by the benchmark harnesses.
 */

#include <gtest/gtest.h>

#include "base/stats.h"

namespace
{

using namespace alaska;

TEST(Summary, BasicMoments)
{
    const Summary s = summarize({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 5);
    EXPECT_DOUBLE_EQ(s.mean, 3);
    EXPECT_DOUBLE_EQ(s.median, 3);
    EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
    EXPECT_EQ(s.count, 5u);
}

TEST(Summary, EvenCountMedianInterpolates)
{
    EXPECT_DOUBLE_EQ(summarize({1, 2, 3, 4}).median, 2.5);
}

TEST(Summary, EmptyIsZero)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(Geomean, MatchesHandComputation)
{
    // geomean(1.0, 4.0) = 2.0
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    // The paper's headline: per-benchmark ratios combine geometrically.
    EXPECT_NEAR(geomean({1.1, 1.1, 1.1}), 1.1, 1e-12);
}

TEST(Geomean, SingleElement)
{
    EXPECT_DOUBLE_EQ(geomean({3.5}), 3.5);
}

TEST(LatencyDigest, ExactPercentiles)
{
    LatencyDigest d;
    for (uint64_t i = 1; i <= 100; i++)
        d.add(i);
    EXPECT_EQ(d.count(), 100u);
    EXPECT_NEAR(d.percentile(0), 1, 1e-9);
    EXPECT_NEAR(d.percentile(100), 100, 1e-9);
    EXPECT_NEAR(d.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(d.mean(), 50.5, 1e-9);
}

TEST(LatencyDigest, MergeCombinesSamples)
{
    LatencyDigest a, b;
    a.add(10);
    b.add(30);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_NEAR(a.mean(), 20, 1e-9);
}

TEST(LatencyDigest, StddevOfConstantIsZero)
{
    LatencyDigest d;
    d.add(5);
    d.add(5);
    d.add(5);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

} // namespace
