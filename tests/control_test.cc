/**
 * @file
 * Tests for the defragmentation control state machine (§4.3): hysteresis
 * bounds, overhead duty-cycling, and the 500 ms observation cadence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "anchorage/control.h"
#include "core/runtime.h"
#include "sim/address_space.h"
#include "sim/clock.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

class ControlTest : public ::testing::Test
{
  protected:
    ControlTest()
        : service_(space_, AnchorageConfig{.subHeapBytes = 1 << 20}),
          runtime_(RuntimeConfig{.tableCapacity = 1u << 18})
    {
        runtime_.attachService(&service_);
    }

    /** Allocate then free every other object: fragmentation ~2x. */
    std::vector<void *>
    fragmentHeap(int objects = 4000, size_t size = 256)
    {
        std::vector<void *> handles;
        for (int i = 0; i < objects; i++)
            handles.push_back(runtime_.halloc(size));
        std::vector<void *> survivors;
        for (size_t i = 0; i < handles.size(); i++) {
            if (i % 2 != 0) {
                runtime_.hfree(handles[i]);
            } else {
                survivors.push_back(handles[i]);
            }
        }
        return survivors;
    }

    // Declaration order matters: the service must outlive the runtime.
    PhantomAddressSpace space_;
    AnchorageService service_;
    Runtime runtime_;
    VirtualClock clock_;
};

TEST_F(ControlTest, StartsWaitingAndPollsEveryHalfSecond)
{
    DefragController controller(service_, clock_,
                                ControlParams{.useModeledTime = true});
    EXPECT_EQ(controller.state(), DefragController::State::Waiting);
    controller.tick();
    // Heap is empty, fragmentation is 1.0: keep waiting.
    EXPECT_EQ(controller.state(), DefragController::State::Waiting);
    EXPECT_DOUBLE_EQ(controller.nextWake(), clock_.now() + 0.5);
}

TEST_F(ControlTest, TicksBeforeWakeDoNothing)
{
    DefragController controller(service_, clock_,
                                ControlParams{.useModeledTime = true});
    controller.tick();
    clock_.advance(0.1);
    const ControlAction action = controller.tick();
    EXPECT_FALSE(action.defragged);
}

TEST_F(ControlTest, HighFragmentationTriggersDefragmenting)
{
    auto survivors = fragmentHeap();
    DefragController controller(service_, clock_,
                                ControlParams{.useModeledTime = true});
    ASSERT_GT(service_.fragmentation(), 1.4);
    const ControlAction action = controller.tick();
    EXPECT_TRUE(action.defragged);
    EXPECT_GT(action.stats.movedBytes, 0u);
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ControlTest, ReturnsToWaitingBelowLowerBound)
{
    auto survivors = fragmentHeap();
    ControlParams params{.useModeledTime = true};
    params.alpha = 1.0; // allow full defrag in one pass
    DefragController controller(service_, clock_, params);
    // Run the machine until it settles.
    for (int i = 0; i < 100; i++) {
        controller.tick();
        clock_.advance(0.5);
        if (controller.state() == DefragController::State::Waiting &&
            service_.fragmentation() < params.fLb) {
            break;
        }
    }
    EXPECT_EQ(controller.state(), DefragController::State::Waiting);
    EXPECT_LT(service_.fragmentation(), params.fLb);
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ControlTest, SleepAfterPassIsTdefragOverOub)
{
    auto survivors = fragmentHeap(20000);
    ControlParams params{.useModeledTime = true};
    params.alpha = 0.05; // force many partial passes
    params.oUb = 0.05;
    DefragController controller(service_, clock_, params);
    const ControlAction action = controller.tick();
    ASSERT_TRUE(action.defragged);
    if (controller.state() == DefragController::State::Defragmenting) {
        // T = T_defrag / O_ub (paper §4.3).
        EXPECT_NEAR(controller.nextWake() - clock_.now(),
                    action.pauseSec / params.oUb, 1e-9);
    }
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ControlTest, OverheadStaysWithinOubOverTime)
{
    auto survivors = fragmentHeap(20000);
    ControlParams params{.useModeledTime = true};
    params.alpha = 0.05;
    params.oUb = 0.05;
    DefragController controller(service_, clock_, params);

    double busy = 0;
    const double horizon = 120.0; // simulated seconds
    while (clock_.now() < horizon) {
        const ControlAction action = controller.tick();
        if (action.defragged) {
            busy += action.pauseSec;
            clock_.advance(action.pauseSec);
        } else {
            // Sleep to the next wake-up.
            clock_.set(controller.nextWake());
        }
    }
    // Duty cycle bounded by O_ub (with slack for the poll quantum).
    EXPECT_LE(busy / horizon, params.oUb * 1.1);
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ControlTest, AlphaBoundsPerPassWork)
{
    auto survivors = fragmentHeap(20000);
    ControlParams params{.useModeledTime = true};
    params.alpha = 0.10;
    DefragController controller(service_, clock_, params);
    const size_t extent_before = service_.heapExtent();
    const ControlAction action = controller.tick();
    ASSERT_TRUE(action.defragged);
    EXPECT_LE(action.stats.movedBytes,
              static_cast<size_t>(0.10 * extent_before) + 4096);
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ControlTest, OverheadSleepClampedToFloor)
{
    // A tiny heap measured under the real stopwatch: the pass costs
    // microseconds, so T_defrag / O_ub would wake the controller again
    // almost immediately — the near-spin the sleep floor prevents.
    std::vector<void *> handles;
    for (int i = 0; i < 64; i++)
        handles.push_back(runtime_.halloc(256));
    for (size_t i = 0; i < handles.size(); i += 2)
        runtime_.hfree(handles[i]);
    ControlParams params; // measured time: useModeledTime = false
    params.fLb = 1.01;    // partial pass leaves frag above this
    params.oUb = 1.0;
    params.minSleepSec = 0.005;
    DefragController controller(service_, clock_, params);
    const ControlAction action = controller.tick();
    ASSERT_TRUE(action.defragged);
    // Whatever branch scheduled the wake-up, it must respect the floor.
    EXPECT_GE(controller.nextWake() - clock_.now(),
              params.minSleepSec);
    for (size_t i = 1; i < handles.size(); i += 2)
        runtime_.hfree(handles[i]);
}

TEST_F(ControlTest, BatchedPassBoundsEveryBarrier)
{
    auto survivors = fragmentHeap(20000);
    ControlParams params{.useModeledTime = true};
    params.alpha = 1.0;
    params.batchBytes = 64 << 10;
    DefragController controller(service_, clock_, params);

    const AnchorageConfig config; // fixture runs service defaults
    size_t work_ticks = 0;
    for (int i = 0; i < 2000; i++) {
        const ControlAction action = controller.tick();
        if (action.defragged) {
            work_ticks++;
            // One barrier per tick, each bounded by the batch budget
            // (plus at most one object's overshoot).
            EXPECT_EQ(action.stats.barriers, 1u);
            EXPECT_LE(action.stats.maxBarrierBytes,
                      params.batchBytes + 512);
        }
        clock_.set(controller.nextWake());
        if (controller.state() == DefragController::State::Waiting &&
            service_.fragmentation() < params.fLb) {
            break;
        }
    }
    // The whole-heap pass really was spread over many short barriers
    // and still reached the hysteresis target.
    EXPECT_GT(work_ticks, 1u);
    EXPECT_GT(controller.barriers(), 1u);
    EXPECT_LT(service_.fragmentation(), params.fLb);
    // The modeled per-barrier pause never exceeded the batch-derived
    // bound: floor + batch / bandwidth.
    EXPECT_LE(controller.maxBarrierPauseSec(),
              config.modelPauseFloor +
                  static_cast<double>(params.batchBytes + 512) /
                      config.modelBandwidth +
                  1e-12);
    for (void *h : survivors)
        runtime_.hfree(h);
}

TEST_F(ControlTest, NoOpportunitiesReturnsToWaiting)
{
    // Dense heap just above F_ub: nothing can move, the controller must
    // not spin (the paper's "runs out of opportunities" case).
    std::vector<void *> handles;
    for (int i = 0; i < 100; i++)
        handles.push_back(runtime_.halloc(256));
    DefragController controller(service_, clock_,
                                ControlParams{.fLb = 0.5,
                                              .fUb = 0.9,
                                              .useModeledTime = true});
    controller.tick(); // frag 1.0 > fUb=0.9 but nothing to move
    EXPECT_EQ(controller.state(), DefragController::State::Waiting);
    for (void *h : handles)
        runtime_.hfree(h);
}

} // namespace
