/**
 * @file
 * Differential defrag-equivalence harness: one seeded
 * alloc/free/mutate trace replayed through each defragmentation
 * mechanism — stop-the-world passes, concurrent relocation campaigns,
 * and page meshing — with a quiesce point every few thousand
 * operations where the mechanism runs and the whole heap is
 * snapshotted. Whatever the mechanism did under the hood (moved
 * objects, shared frames), the mutator-visible heap must be
 * *identical* across mechanisms at every quiesce point: the same
 * slots live, with bit-identical contents (per-object FNV-1a
 * checksums through translate()), and live-byte accounting matching
 * the per-block ground truth (usableSize summed over every live
 * object). Cross-mechanism activeBytes equality is deliberately NOT
 * asserted: a mover may legitimately claim a slightly larger
 * coalesced hole for a destination, so accounting equivalence is
 * each mechanism against its own blocks, not byte totals against
 * each other.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "base/rng.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

enum class Mechanism
{
    StopTheWorld,
    Concurrent,
    Mesh,
};

constexpr uint64_t kTraceSeed = 0x5eede001;
constexpr int kSlots = 1000;
constexpr int kOps = 12000;
constexpr int kQuiesceEvery = 1500;

uint64_t
fnv1a(const unsigned char *p, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** The mutator-visible heap at one quiesce point. */
struct Snapshot
{
    /** Per-slot content checksum; 0 for dead slots. */
    std::vector<uint64_t> checksums;
    size_t liveSlots = 0;

    bool
    operator==(const Snapshot &other) const
    {
        return liveSlots == other.liveSlots &&
               checksums == other.checksums;
    }
};

struct RunResult
{
    std::vector<Snapshot> snapshots;
    DefragStats totals;
    size_t finalActive = 0;
    size_t finalRss = 0;
};

RunResult
runTrace(Mechanism mech)
{
    RealAddressSpace space;
    AnchorageService service(
        space, AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 18});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    struct Slot
    {
        void *h = nullptr;
        size_t size = 0;
        uint32_t version = 0;
    };
    std::vector<Slot> slots(kSlots);

    // Contents are a pure function of (slot, version, offset), so a
    // corrupted byte can never masquerade as another slot's data.
    auto fill = [](const Slot &slot, int idx) {
        auto *p = static_cast<unsigned char *>(translate(slot.h));
        for (size_t j = 0; j < slot.size; j++) {
            p[j] = static_cast<unsigned char>(
                static_cast<uint32_t>(idx) * 31 + slot.version * 7 + j);
        }
    };

    Rng rng(kTraceSeed);
    RunResult result;
    for (int op = 1; op <= kOps; op++) {
        const int idx = static_cast<int>(rng.below(kSlots));
        Slot &slot = slots[idx];
        const uint64_t action = rng.below(10);
        if (slot.h == nullptr) {
            slot.size = 16 + rng.below(497);
            slot.version = 0;
            slot.h = runtime.halloc(slot.size);
            fill(slot, idx);
        } else if (action < 4) {
            runtime.hfree(slot.h);
            slot.h = nullptr;
        } else {
            slot.version++;
            fill(slot, idx);
        }

        if (op % kQuiesceEvery != 0)
            continue;

        switch (mech) {
          case Mechanism::StopTheWorld:
            result.totals.accumulate(service.defrag(1 << 22));
            break;
          case Mechanism::Concurrent:
            result.totals.accumulate(
                service.relocateCampaign(1 << 22));
            break;
          case Mechanism::Mesh:
            result.totals.accumulate(service.meshPass(512, 0.5));
            break;
        }

        Snapshot snap;
        snap.checksums.resize(kSlots, 0);
        size_t block_truth_bytes = 0;
        for (int i = 0; i < kSlots; i++) {
            if (slots[i].h == nullptr)
                continue;
            const auto *p = static_cast<const unsigned char *>(
                translate(slots[i].h));
            snap.checksums[static_cast<size_t>(i)] =
                fnv1a(p, slots[i].size);
            snap.liveSlots++;
            block_truth_bytes += service.usableSize(p);
            // Residency never undercounts: a live object's page must
            // be resident, directly or through a meshed frame.
            EXPECT_TRUE(space.pages().isResident(
                reinterpret_cast<uint64_t>(p)));
        }
        // Live-byte accounting vs per-block ground truth, every
        // quiesce point, whatever the mechanism moved or meshed.
        EXPECT_EQ(service.activeBytes(), block_truth_bytes);
        result.snapshots.push_back(std::move(snap));
    }

    for (auto &slot : slots) {
        if (slot.h != nullptr) {
            runtime.hfree(slot.h);
            slot.h = nullptr;
        }
    }
    result.finalActive = service.activeBytes();
    result.finalRss = service.rss();
    return result;
}

TEST(DefragEquivalence, AllMechanismsSeeTheSameHeap)
{
    const RunResult stw = runTrace(Mechanism::StopTheWorld);
    const RunResult conc = runTrace(Mechanism::Concurrent);
    const RunResult mesh = runTrace(Mechanism::Mesh);

    ASSERT_EQ(stw.snapshots.size(), conc.snapshots.size());
    ASSERT_EQ(stw.snapshots.size(), mesh.snapshots.size());
    for (size_t q = 0; q < stw.snapshots.size(); q++) {
        EXPECT_EQ(stw.snapshots[q], conc.snapshots[q])
            << "stw vs concurrent diverged at quiesce point " << q;
        EXPECT_EQ(stw.snapshots[q], mesh.snapshots[q])
            << "stw vs mesh diverged at quiesce point " << q;
    }

    // Every mechanism drains to an empty heap.
    EXPECT_EQ(stw.finalActive, 0u);
    EXPECT_EQ(conc.finalActive, 0u);
    EXPECT_EQ(mesh.finalActive, 0u);

    // Each mechanism actually ran: the movers moved, the mesher
    // meshed (and never copied an object or stopped the world).
    EXPECT_GT(stw.totals.movedObjects, 0u);
    EXPECT_GT(conc.totals.committed, 0u);
    EXPECT_GT(mesh.totals.pagesMeshed, 0u);
    EXPECT_EQ(mesh.totals.movedObjects, 0u);
    EXPECT_EQ(mesh.totals.barriers, 0u);
}

TEST(DefragEquivalence, TraceIsDeterministicPerMechanism)
{
    // The harness itself must be noise-free, or the differential
    // comparison above could mask a real divergence behind trace
    // nondeterminism: two identical runs produce identical snapshots
    // *and* identical mechanism stats.
    const RunResult a = runTrace(Mechanism::Mesh);
    const RunResult b = runTrace(Mechanism::Mesh);
    ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
    for (size_t q = 0; q < a.snapshots.size(); q++)
        EXPECT_EQ(a.snapshots[q], b.snapshots[q]);
    EXPECT_EQ(a.totals.pagesMeshed, b.totals.pagesMeshed);
    EXPECT_EQ(a.totals.splitFaults, b.totals.splitFaults);
    EXPECT_EQ(a.finalRss, b.finalRss);
}

} // namespace
