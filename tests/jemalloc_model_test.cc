/**
 * @file
 * Tests for the jemalloc-like slab model and its defrag-hint API (the
 * substrate of the activedefrag curve in Figures 9 and 11).
 */

#include <gtest/gtest.h>

#include <vector>

#include "alloc_sim/jemalloc_model.h"
#include "base/rng.h"

namespace
{

using namespace alaska;

TEST(JemallocModel, SizeClassesRoundUp)
{
    EXPECT_EQ(JemallocModel::classOf(1), 0);
    EXPECT_EQ(JemallocModel::classOf(16), 0);
    EXPECT_EQ(JemallocModel::classOf(17), 1);
    EXPECT_EQ(JemallocModel::classOf(3584), JemallocModel::numClasses() - 1);
    EXPECT_EQ(JemallocModel::classOf(3585), -1);
}

TEST(JemallocModel, SlabSharingKeepsRssLow)
{
    JemallocModel model;
    // 1024 16-byte objects fit one 16 KiB slab exactly.
    for (int i = 0; i < 1024; i++)
        model.alloc(16);
    EXPECT_EQ(model.rss(), 16384u);
}

TEST(JemallocModel, EmptySlabIsReleased)
{
    JemallocModel model;
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 1024; i++)
        tokens.push_back(model.alloc(16));
    EXPECT_EQ(model.rss(), 16384u);
    for (uint64_t t : tokens)
        model.free(t);
    EXPECT_EQ(model.rss(), 0u);
}

TEST(JemallocModel, SparseSlabsPinPages)
{
    JemallocModel model;
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 1024 * 8; i++)
        tokens.push_back(model.alloc(16));
    const size_t rss_full = model.rss();
    // Keep one object per slab: every page stays resident.
    for (size_t i = 0; i < tokens.size(); i++) {
        if (i % 1024 != 0)
            model.free(tokens[i]);
    }
    EXPECT_EQ(model.rss(), rss_full);
}

TEST(JemallocModel, LargeAllocationsReleaseOnFree)
{
    JemallocModel model;
    const uint64_t t = model.alloc(1 << 20);
    EXPECT_GE(model.rss(), 1u << 20);
    model.free(t);
    EXPECT_EQ(model.rss(), 0u);
}

TEST(JemallocModel, DefragHintFiresForSparseSlabs)
{
    JemallocModel model;
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 2048; i++)
        tokens.push_back(model.alloc(16));
    // Drain the first slab to 1/1024 occupancy, keep the second full.
    for (int i = 1; i < 1024; i++)
        model.free(tokens[i]);
    // No non-full denser slab exists yet -> no point moving.
    // Free one from the second slab to open a denser destination.
    model.free(tokens[1500]);
    EXPECT_TRUE(model.shouldMove(tokens[0]));
    // An object in the nearly-full slab must not want to move.
    EXPECT_FALSE(model.shouldMove(tokens[1024]));
}

TEST(JemallocModel, DefragLoopReclaimsSparseSlabs)
{
    // The full activedefrag mechanism: realloc hinted objects until the
    // hints stop firing; sparse slabs must drain and be released.
    JemallocModel model;
    Rng rng(17);
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 1024 * 16; i++)
        tokens.push_back(model.alloc(48));
    // Random 80% eviction leaves most slabs sparse but nonempty.
    for (auto &token : tokens) {
        if (rng.chance(0.8)) {
            model.free(token);
            token = 0;
        }
    }
    const size_t rss_before = model.rss();
    int moves = 0;
    for (int round = 0; round < 64; round++) {
        bool any = false;
        for (auto &token : tokens) {
            if (token == 0 || !model.shouldMove(token))
                continue;
            model.free(token);
            token = model.alloc(48);
            moves++;
            any = true;
        }
        if (!any)
            break;
    }
    EXPECT_GT(moves, 0);
    EXPECT_LT(model.rss(), rss_before / 2);
    // Accounting still exact.
    size_t live = 0;
    for (uint64_t t : tokens)
        live += (t != 0) ? 48 : 0;
    EXPECT_EQ(model.activeBytes(), live);
}

/** Property: random churn keeps RSS >= active and accounting exact. */
class JemallocChurn : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(JemallocChurn, AccountingInvariants)
{
    JemallocModel model;
    Rng rng(GetParam());
    std::vector<std::pair<uint64_t, size_t>> live;
    size_t expected = 0;
    for (int step = 0; step < 30000; step++) {
        if (live.empty() || rng.chance(0.52)) {
            const size_t size = 1 + rng.below(4096);
            const uint64_t t = model.alloc(size);
            size_t charged;
            const int cls = JemallocModel::classOf(size);
            if (cls >= 0) {
                charged = JemallocModel::classSize(cls);
            } else {
                charged = (size + 4095) / 4096 * 4096;
            }
            live.emplace_back(t, charged);
            expected += charged;
        } else {
            const size_t idx = rng.below(live.size());
            model.free(live[idx].first);
            expected -= live[idx].second;
            live[idx] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(model.activeBytes(), expected);
        ASSERT_GE(model.rss() + 4096, model.activeBytes());
    }
    for (auto &[t, s] : live)
        model.free(t);
    EXPECT_EQ(model.activeBytes(), 0u);
    EXPECT_EQ(model.rss(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JemallocChurn,
                         ::testing::Values(41, 42, 43));

} // namespace
