/**
 * @file
 * Tests for the YCSB workload generator: zipfian distribution
 * properties and workload mixes.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ycsb/ycsb.h"

namespace
{

using namespace alaska::ycsb;

TEST(Zipfian, StaysInRange)
{
    ZipfianGenerator gen(1000, 0.99, 3);
    for (int i = 0; i < 100000; i++)
        ASSERT_LT(gen.next(), 1000u);
}

TEST(Zipfian, IsSkewedTowardLowRanks)
{
    ZipfianGenerator gen(10000, 0.99, 5);
    size_t top10 = 0, draws = 200000;
    for (size_t i = 0; i < draws; i++)
        top10 += (gen.next() < 10);
    // With theta=.99 over 10k items, the top-10 ranks get roughly a
    // quarter of the mass; uniform would give 0.1%.
    EXPECT_GT(static_cast<double>(top10) / draws, 0.15);
}

TEST(Zipfian, RankFrequenciesDecreaseRoughlyMonotonically)
{
    ZipfianGenerator gen(100, 0.99, 7);
    std::vector<size_t> counts(100, 0);
    for (int i = 0; i < 300000; i++)
        counts[gen.next()]++;
    EXPECT_GT(counts[0], counts[9]);
    EXPECT_GT(counts[9], counts[49]);
    EXPECT_GT(counts[0], 3 * counts[50]);
}

TEST(Zipfian, DeterministicPerSeed)
{
    ZipfianGenerator a(1000, 0.99, 11), b(1000, 0.99, 11);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Workload, MixesMatchSpecification)
{
    auto fraction = [](WorkloadKind kind, OpType op) {
        Workload w(kind, 1000, 17);
        int hits = 0, total = 50000;
        for (int i = 0; i < total; i++)
            hits += (w.next().op == op);
        return static_cast<double>(hits) / total;
    };
    EXPECT_NEAR(fraction(WorkloadKind::A, OpType::Read), 0.5, 0.02);
    EXPECT_NEAR(fraction(WorkloadKind::A, OpType::Update), 0.5, 0.02);
    EXPECT_NEAR(fraction(WorkloadKind::B, OpType::Read), 0.95, 0.01);
    EXPECT_NEAR(fraction(WorkloadKind::C, OpType::Read), 1.0, 1e-9);
    EXPECT_NEAR(fraction(WorkloadKind::F, OpType::ReadModifyWrite), 0.5,
                0.02);
}

TEST(Workload, KeysAreStableAndScattered)
{
    EXPECT_EQ(Workload::keyFor(1), Workload::keyFor(1));
    EXPECT_NE(Workload::keyFor(1), Workload::keyFor(2));
    // Adjacent ids map to distant keys (YCSB hashes ids).
    const std::string a = Workload::keyFor(100);
    const std::string b = Workload::keyFor(101);
    EXPECT_NE(a.substr(0, 8), b.substr(0, 8));
}

TEST(Workload, ValuesAreDeterministicWithRequestedSize)
{
    Workload w(WorkloadKind::A, 100, 3, 500);
    EXPECT_EQ(w.valueFor(5).size(), 500u);
    EXPECT_EQ(w.valueFor(5), w.valueFor(5));
    EXPECT_NE(w.valueFor(5), w.valueFor(6));
}

} // namespace
