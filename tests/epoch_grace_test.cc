/**
 * @file
 * Grace-period safety tests for the epoch-based scoped-translation
 * protocol: a reader's open ConcurrentAccessScope must keep every
 * translation it obtained valid — including reads of a relocation
 * source that has been committed away and parked on the campaign's
 * limbo list — until the scope closes; and Runtime::waitForGrace()
 * must never hang on a thread that exited (or never registered) while
 * its published epoch was odd.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "services/concurrent_reloc.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

class EpochGraceTest : public ::testing::Test
{
  protected:
    EpochGraceTest()
        : service_(space_, AnchorageConfig{.subHeapBytes = 1 << 20}),
          runtime_(RuntimeConfig{.tableCapacity = 1u << 16}),
          registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    RealAddressSpace space_;
    AnchorageService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

/**
 * The core grace handshake, observed from the mutator side: a campaign
 * that wants to move an object a live scope translated parks in its
 * grace wait until that scope closes — the scope's stale view of the
 * heap (the limbo source included) stays readable the whole time.
 */
TEST_F(EpochGraceTest, ScopeHeldAcrossCampaignCommitKeepsReadsValid)
{
    constexpr size_t obj_size = 512;
    // A movable target below fresh holes: filler then target, filler
    // freed, so the campaign wants to slide the target down.
    void *filler = runtime_.halloc(obj_size);
    void *target = runtime_.halloc(obj_size);
    std::memset(translate(target), 0x5a, obj_size);
    runtime_.hfree(filler);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(target));
    auto &entry = runtime_.table().entry(id);

    std::atomic<bool> campaign_done{false};
    DefragStats stats;
    std::thread campaign;
    {
        ConcurrentAccessScope scope;
        const auto *stale =
            static_cast<const unsigned char *>(translateScoped(target));
        const void *before = entry.ptr.load(std::memory_order_seq_cst);
        campaign = std::thread([&] {
            ThreadRegistration reg(runtime_);
            stats = service_.relocateCampaign(SIZE_MAX);
            campaign_done.store(true, std::memory_order_seq_cst);
        });
        // The campaign parks in a grace wait our scope stalls (its very
        // first drain already does) — give it ample time to prove it
        // cannot finish, commit, or reclaim while we are open.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        EXPECT_FALSE(campaign_done.load(std::memory_order_seq_cst));
        // The stale translation stays readable throughout: source bytes
        // are only reclaimed after a grace period that includes us.
        for (int spin = 0; spin < 1000; spin++) {
            for (size_t b = 0; b < obj_size; b++)
                ASSERT_EQ(stale[b], 0x5a);
        }
        EXPECT_FALSE(campaign_done.load(std::memory_order_seq_cst));
        // And nothing moved under us: the entry still points where our
        // translation does (possibly mark-tagged, never swapped).
        EXPECT_EQ(reloc::unmarked(
                      entry.ptr.load(std::memory_order_seq_cst)),
                  reloc::unmarked(const_cast<void *>(before)));
    }
    campaign.join();
    EXPECT_TRUE(campaign_done.load(std::memory_order_seq_cst));

    // The move committed through the limbo path and the contents
    // followed the object to its new home.
    EXPECT_GT(stats.committed, 0u);
    EXPECT_GT(stats.limboParked, 0u);
    EXPECT_GT(stats.graceWaits, 0u);
    EXPECT_EQ(runtime_.stats().barriers, 0u);
    const auto *now = static_cast<const unsigned char *>(translate(target));
    for (size_t b = 0; b < obj_size; b++)
        ASSERT_EQ(now[b], 0x5a);
    runtime_.hfree(target);
}

/**
 * Stress: reader threads continuously hold scopes across campaign
 * commits, each scope caching one translation and re-reading it many
 * times, while the main thread runs campaigns to exhaustion and then
 * keeps churning. No read may ever observe recycled or torn bytes.
 */
TEST_F(EpochGraceTest, ReadersHoldingScopesAcrossCommitsNeverSeeReclaimedBytes)
{
    constexpr int n_readers = 3;
    constexpr int n_objects = 96;
    constexpr size_t obj_size = 256;

    // Stamped objects interleaved with immediately-freed filler, so
    // every campaign has holes to compact into.
    std::vector<void *> objects;
    std::vector<void *> filler;
    for (int i = 0; i < n_objects; i++) {
        filler.push_back(runtime_.halloc(obj_size));
        void *h = runtime_.halloc(obj_size);
        std::memset(translate(h), i & 0xff, obj_size);
        objects.push_back(h);
    }
    for (void *h : filler)
        runtime_.hfree(h);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < n_readers; t++) {
        readers.emplace_back([&, t] {
            ThreadRegistration reg(runtime_);
            unsigned idx = static_cast<unsigned>(t);
            while (!stop.load(std::memory_order_relaxed) &&
                   !::testing::Test::HasFatalFailure()) {
                const int j = static_cast<int>(idx++ % n_objects);
                {
                    ConcurrentAccessScope scope;
                    const auto *p = static_cast<const unsigned char *>(
                        translateScoped(objects[j]));
                    // Hold the one translation across whatever the
                    // campaign does meanwhile; every re-read must see
                    // the stamp.
                    for (int spin = 0; spin < 64; spin++)
                        for (size_t b = 0; b < obj_size; b += 32)
                            ASSERT_EQ(p[b],
                                      static_cast<unsigned char>(j & 0xff));
                }
                reads.fetch_add(1, std::memory_order_relaxed);
                poll();
            }
        });
    }

    while (reads.load(std::memory_order_relaxed) == 0)
        std::this_thread::yield();
    DefragStats stats;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    while (std::chrono::steady_clock::now() < deadline)
        stats.accumulate(service_.relocateCampaign(SIZE_MAX));
    stop.store(true, std::memory_order_relaxed);
    for (auto &th : readers)
        th.join();

    EXPECT_GT(stats.committed, 0u) << "campaigns never moved anything";
    EXPECT_GT(stats.graceWaits, 0u);
    EXPECT_EQ(stats.attempts,
              stats.committed + stats.aborted + stats.noSpace);
    EXPECT_EQ(runtime_.stats().barriers, 0u);
    for (void *h : objects)
        runtime_.hfree(h);
}

/**
 * Deadlock guard: a thread that published an odd epoch and then exited
 * (unregistered) must not stall waitForGrace forever — the waiter
 * re-finds snapshotted threads by identity each poll and treats a
 * vanished thread as drained.
 */
TEST(EpochGraceGuardTest, WaitForGraceDoesNotHangOnExitedThread)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 12});
    runtime.attachService(&service);

    std::atomic<int> stage{0};
    std::thread straggler([&] {
        ThreadRegistration reg(runtime);
        // Publish "in scope" by hand — an exiting thread can never do
        // this through ConcurrentAccessScope (RAII closes it), so this
        // simulates the worst case the guard must survive.
        runtime.currentThreadStateOrNull()->accessEpoch.fetch_add(
            1, std::memory_order_seq_cst);
        stage.store(1, std::memory_order_seq_cst);
        // Stay odd long enough for the waiter to snapshot us, then
        // exit without ever going even.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });

    while (stage.load(std::memory_order_seq_cst) < 1)
        std::this_thread::yield();
    // Must return once the straggler exits; hangs (and times out the
    // test) if exited threads are waited on.
    runtime.waitForGrace(Runtime::advanceCampaignEpoch());
    straggler.join();

    // And with no scopes at all, the wait is immediate.
    runtime.waitForGrace(Runtime::advanceCampaignEpoch());
    ThreadRegistration reg(runtime);
    runtime.quiesceConcurrentAccessors();
}

} // namespace
