/**
 * @file
 * Interpreter tests, the baseline-vs-transformed equivalence property,
 * and the end-to-end "defragmentation races a running program" test —
 * the strongest correctness statement this repository makes about the
 * compiler/runtime co-design.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "anchorage/anchorage_service.h"
#include "compiler/passes.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/verifier.h"
#include "ir_program_gen.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::ir;
using namespace alaska::compiler;

TEST(Interpreter, ArithmeticAndControlFlow)
{
    Module module;
    Function *fn = module.addFunction("fib", 1);
    Builder b(*fn);
    BasicBlock *entry = b.block();
    BasicBlock *header = b.newBlock("header");
    BasicBlock *body = b.newBlock("body");
    BasicBlock *exit = b.newBlock("exit");
    Instruction *zero = b.constant(0);
    Instruction *one = b.constant(1);
    b.br(header);
    b.setBlock(header);
    Instruction *i = b.phi();
    Instruction *a = b.phi();
    Instruction *c = b.phi();
    Builder::addIncoming(i, zero, entry);
    Builder::addIncoming(a, zero, entry);
    Builder::addIncoming(c, one, entry);
    b.condBr(b.cmpLt(i, b.arg(0)), body, exit);
    b.setBlock(body);
    Instruction *next = b.add(a, c);
    Builder::addIncoming(i, b.add(i, one), body);
    Builder::addIncoming(a, c, body);
    Builder::addIncoming(c, next, body);
    b.br(header);
    b.setBlock(exit);
    b.ret(a);
    fn->computeCfg();

    Interpreter interp(module);
    EXPECT_EQ(interp.run(*fn, {0}), 0);
    EXPECT_EQ(interp.run(*fn, {1}), 1);
    EXPECT_EQ(interp.run(*fn, {10}), 55);
    EXPECT_EQ(interp.run(*fn, {20}), 6765);
}

TEST(Interpreter, MemoryAndCalls)
{
    Module module;
    Function *helper = module.addFunction("store42", 1);
    {
        Builder b(*helper);
        b.declarePointerArg(0);
        b.store(b.gep(b.arg(0), b.constant(0)), b.constant(42));
        b.ret();
    }
    Function *fn = module.addFunction("main", 0);
    {
        Builder b(*fn);
        Instruction *buf = b.mallocBytes(b.constant(8));
        b.call(helper, {buf});
        Instruction *result = b.load(b.gep(buf, b.constant(0)));
        b.freePtr(buf);
        b.ret(result);
    }
    Interpreter interp(module);
    EXPECT_EQ(interp.run(*fn), 42);
}

TEST(Interpreter, ExternalFunctions)
{
    Module module;
    Function *fn = module.addFunction("main", 2);
    Builder b(*fn);
    b.ret(b.callExternal("ext_mul", {b.arg(0), b.arg(1)}));
    Interpreter interp(module);
    interp.registerExternal("ext_mul",
                            [](const std::vector<int64_t> &args) {
                                return args[0] * args[1];
                            });
    EXPECT_EQ(interp.run(*fn, {6, 7}), 42);
    EXPECT_EQ(interp.stats().externalCalls, 1u);
}

TEST(Interpreter, TransformedProgramRunsOnTheRealRuntime)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 12});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    Module module;
    Function *fn = module.addFunction("main", 1);
    Builder b(*fn);
    Instruction *buf = b.mallocBytes(b.constant(64));
    b.store(b.gep(buf, b.constant(3)), b.arg(0));
    Instruction *out = b.load(b.gep(buf, b.constant(3)));
    b.freePtr(buf);
    b.ret(out);
    fn->computeCfg();

    runPipeline(module);
    ASSERT_TRUE(verifyTransformed(*fn).ok())
        << verifyTransformed(*fn).joined();

    Interpreter interp(module, &runtime);
    EXPECT_EQ(interp.run(*fn, {1234}), 1234);
    EXPECT_GE(interp.stats().translations, 1u);
    EXPECT_GE(runtime.stats().hallocs, 1u);
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

/**
 * The central equivalence property: for random structured programs,
 * the transformed module computes exactly what the baseline computes,
 * for every pass configuration.
 */
struct EquivCase
{
    uint64_t seed;
    bool hoisting;
    bool tracking;
};

class TransformEquivalence : public ::testing::TestWithParam<EquivCase>
{
};

TEST_P(TransformEquivalence, BaselineAndTransformedAgree)
{
    const EquivCase param = GetParam();
    testgen::GenOptions gen_options;
    gen_options.useFrees = (param.seed % 2) == 0;

    // Baseline: same seed, untouched module, plain malloc memory.
    Module baseline;
    Function *base_fn =
        testgen::generateProgram(baseline, param.seed, gen_options);
    ASSERT_TRUE(verify(*base_fn).ok()) << verify(*base_fn).joined();
    Interpreter base_interp(baseline);
    testgen::registerGenExternals(base_interp);
    const int64_t expected = base_interp.run(*base_fn, {99});

    // Transformed: identical program through the full pipeline,
    // running on real handles.
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 14});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    Module transformed;
    Function *trans_fn =
        testgen::generateProgram(transformed, param.seed, gen_options);
    PassOptions options;
    options.hoisting = param.hoisting;
    options.tracking = param.tracking;
    runPipeline(transformed, options);
    if (param.tracking && param.hoisting) {
        ASSERT_TRUE(verifyTransformed(*trans_fn).ok())
            << verifyTransformed(*trans_fn).joined();
    }

    Interpreter interp(transformed, &runtime);
    testgen::registerGenExternals(interp);
    EXPECT_EQ(interp.run(*trans_fn, {99}), expected);
    EXPECT_GT(interp.stats().translations, 0u);
    EXPECT_EQ(runtime.table().liveCount(), 0u) << "leaked handles";
}

std::vector<EquivCase>
equivCases()
{
    std::vector<EquivCase> cases;
    for (uint64_t seed = 1; seed <= 12; seed++) {
        cases.push_back({seed, true, true});
        cases.push_back({seed, false, true});
        cases.push_back({seed, true, false});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, TransformEquivalence,
                         ::testing::ValuesIn(equivCases()));

TEST(DefragUnderExecution, ObjectsMoveWhileTheProgramRuns)
{
    // A transformed program runs on Anchorage while another thread
    // triggers defragmentation passes. Safepoints park the interpreter
    // mid-program; pinned translations keep raw pointers valid; the
    // final checksum must match a quiet baseline run.
    testgen::GenOptions gen_options;
    gen_options.statements = 40;

    Module baseline;
    Function *base_fn = testgen::generateProgram(baseline, 777,
                                                 gen_options);
    Interpreter base_interp(baseline);
    testgen::registerGenExternals(base_interp);
    const int64_t expected = base_interp.run(*base_fn, {5});

    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 14});
    runtime.attachService(&service);

    Module transformed;
    Function *trans_fn = testgen::generateProgram(transformed, 777,
                                                  gen_options);
    runPipeline(transformed);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> defrags{0};
    std::thread defragger([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            service.defrag(SIZE_MAX);
            defrags.fetch_add(1, std::memory_order_relaxed);
        }
    });

    {
        ThreadRegistration reg(runtime);
        Interpreter interp(transformed, &runtime);
        testgen::registerGenExternals(interp);
        for (int round = 0; round < 50; round++)
            ASSERT_EQ(interp.run(*trans_fn, {5}), expected);
    }
    // On a loaded (or single-core) machine the defragger may not have
    // been scheduled yet; let it run at least once before stopping.
    while (defrags.load(std::memory_order_relaxed) == 0)
        std::this_thread::yield();
    stop.store(true);
    defragger.join();
    EXPECT_GT(defrags.load(), 0u);
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

} // namespace
