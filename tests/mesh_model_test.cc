/**
 * @file
 * Tests for the Mesh allocator model: randomized placement, meshing of
 * disjoint spans, and its accounting.
 */

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "base/rng.h"
#include "mesh/mesh_model.h"

namespace
{

using namespace alaska;

TEST(MeshModel, TokensAreUniqueAndAligned)
{
    MeshModel model;
    std::unordered_set<uint64_t> seen;
    for (int i = 0; i < 10000; i++) {
        const uint64_t t = model.alloc(64);
        EXPECT_EQ(t % 64, 0u);
        EXPECT_TRUE(seen.insert(t).second);
    }
}

TEST(MeshModel, EmptyFrameIsReleased)
{
    MeshModel model;
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 64; i++)
        tokens.push_back(model.alloc(64)); // 4096/64 = one span's worth
    EXPECT_GE(model.rss(), 4096u);
    for (uint64_t t : tokens)
        model.free(t);
    EXPECT_EQ(model.rss(), 0u);
}

TEST(MeshModel, MeshingMergesDisjointSpans)
{
    MeshModel model(/*seed=*/7);
    // Allocate a lot, then free most: sparse spans with random slots
    // are exactly what meshes well.
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 64 * 200; i++)
        tokens.push_back(model.alloc(64));
    Rng rng(5);
    size_t live = tokens.size();
    for (auto &t : tokens) {
        if (rng.chance(0.9)) {
            model.free(t);
            t = 0;
            live--;
        }
    }
    const size_t rss_before = model.rss();
    for (int pass = 0; pass < 50; pass++)
        model.maintain();
    EXPECT_GT(model.meshCount(), 0u);
    EXPECT_LT(model.rss(), rss_before);
    // Every survivor must still be freeable exactly once.
    for (uint64_t t : tokens) {
        if (t)
            model.free(t);
    }
    EXPECT_EQ(model.activeBytes(), 0u);
}

TEST(MeshModel, MeshingPreservesLiveAccountingAndFrees)
{
    // Meshing only changes page residency, never what is live: active
    // bytes are invariant across maintain(), and every token freed
    // afterwards clears exactly one slot (no double-accounting through
    // the union bitmaps).
    MeshModel model(11);
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 64 * 50; i++)
        tokens.push_back(model.alloc(64));
    Rng rng(12);
    for (auto &t : tokens) {
        if (rng.chance(0.7)) {
            model.free(t);
            t = 0;
        }
    }
    const size_t active_before = model.activeBytes();
    for (int pass = 0; pass < 20; pass++)
        model.maintain();
    EXPECT_EQ(model.activeBytes(), active_before);
    for (uint64_t t : tokens) {
        if (t)
            model.free(t);
    }
    EXPECT_EQ(model.activeBytes(), 0u);
    EXPECT_EQ(model.rss(), 0u);
}

TEST(MeshModel, FreeThroughMeshedSpanIsCorrect)
{
    MeshModel model(13);
    std::vector<uint64_t> tokens;
    for (int i = 0; i < 64 * 100; i++)
        tokens.push_back(model.alloc(64));
    Rng rng(6);
    std::vector<uint64_t> survivors;
    for (uint64_t t : tokens) {
        if (rng.chance(0.85)) {
            model.free(t);
        } else {
            survivors.push_back(t);
        }
    }
    for (int pass = 0; pass < 50; pass++)
        model.maintain();
    // Frees via the *original* (possibly meshed-away) virtual addresses
    // must still clear the right physical slots.
    for (uint64_t t : survivors)
        model.free(t);
    EXPECT_EQ(model.activeBytes(), 0u);
    EXPECT_EQ(model.rss(), 0u);
}

TEST(MeshModel, LargeObjectsBypassSpans)
{
    MeshModel model;
    const uint64_t t = model.alloc(100000);
    EXPECT_GE(model.rss(), 100000u);
    model.free(t);
    EXPECT_EQ(model.rss(), 0u);
}

TEST(MeshModel, MeshingIsDeterministicPerSeed)
{
    auto run = [](uint64_t seed) {
        MeshModel model(seed);
        std::vector<uint64_t> tokens;
        for (int i = 0; i < 64 * 100; i++)
            tokens.push_back(model.alloc(32));
        Rng rng(9);
        for (auto &t : tokens) {
            if (rng.chance(0.8)) {
                model.free(t);
                t = 0;
            }
        }
        for (int pass = 0; pass < 10; pass++)
            model.maintain();
        return std::make_pair(model.rss(), model.meshCount());
    };
    EXPECT_EQ(run(21), run(21));
    EXPECT_EQ(run(21).first % 4096, 0u);
}

TEST(MeshModel, DefaultSeedIsTheRepositoryDefault)
{
    // A default-constructed model must behave exactly like one seeded
    // with Rng::defaultSeed — the probe order is a knob (plumbed from
    // FragTimeline::seed in the benches), not a hidden literal.
    auto run = [](MeshModel &&model) {
        std::vector<uint64_t> tokens;
        for (int i = 0; i < 64 * 100; i++)
            tokens.push_back(model.alloc(32));
        Rng rng(9);
        for (auto &t : tokens) {
            if (rng.chance(0.8)) {
                model.free(t);
                t = 0;
            }
        }
        for (int pass = 0; pass < 10; pass++)
            model.maintain();
        return std::make_pair(model.rss(), model.meshCount());
    };
    EXPECT_EQ(run(MeshModel()), run(MeshModel(Rng::defaultSeed)));
}

} // namespace
