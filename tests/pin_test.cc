/**
 * @file
 * Tests for pin frames and the pinned-set unification performed at
 * barriers (§3.4, §4.1.3).
 */

#include <gtest/gtest.h>

#include "api/access.h"
#include "core/malloc_service.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"

namespace
{

using namespace alaska;

class PinTest : public ::testing::Test
{
  protected:
    PinTest()
        : runtime_(RuntimeConfig{.tableCapacity = 1u << 12}),
          registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    MallocService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

TEST_F(PinTest, PinnedHandleAppearsInBarrierSet)
{
    void *h = runtime_.halloc(64);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    {
        ALASKA_PIN_FRAME(frame, 2);
        frame.pin(0, h);
        runtime_.barrier([&](const PinnedSet &pinned) {
            EXPECT_TRUE(pinned.contains(id));
            EXPECT_EQ(pinned.count(), 1u);
        });
    }
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_FALSE(pinned.contains(id));
        EXPECT_EQ(pinned.count(), 0u);
    });
    runtime_.hfree(h);
}

TEST_F(PinTest, ReleasedSlotIsNotPinned)
{
    void *h = runtime_.halloc(64);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    ALASKA_PIN_FRAME(frame, 1);
    frame.pin(0, h);
    frame.release(0);
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_FALSE(pinned.contains(id));
    });
    runtime_.hfree(h);
}

TEST_F(PinTest, RawPointersInSlotsAreIgnored)
{
    int local = 0;
    ALASKA_PIN_FRAME(frame, 1);
    EXPECT_EQ(frame.pin(0, &local), &local);
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_EQ(pinned.count(), 0u);
    });
}

TEST_F(PinTest, NestedFramesUnionTheirPins)
{
    void *a = runtime_.halloc(8);
    void *b = runtime_.halloc(8);
    const uint32_t ida = handleId(reinterpret_cast<uint64_t>(a));
    const uint32_t idb = handleId(reinterpret_cast<uint64_t>(b));
    ALASKA_PIN_FRAME(outer, 1);
    outer.pin(0, a);
    {
        ALASKA_PIN_FRAME(inner, 1);
        inner.pin(0, b);
        runtime_.barrier([&](const PinnedSet &pinned) {
            EXPECT_TRUE(pinned.contains(ida));
            EXPECT_TRUE(pinned.contains(idb));
        });
    }
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_TRUE(pinned.contains(ida));
        EXPECT_FALSE(pinned.contains(idb));
    });
    runtime_.hfree(a);
    runtime_.hfree(b);
}

TEST_F(PinTest, SlotReuseTracksTheLatestHandle)
{
    // The interference-graph allocator gives non-overlapping translations
    // the same slot; the slot must always reflect the live one.
    void *a = runtime_.halloc(8);
    void *b = runtime_.halloc(8);
    const uint32_t ida = handleId(reinterpret_cast<uint64_t>(a));
    const uint32_t idb = handleId(reinterpret_cast<uint64_t>(b));
    ALASKA_PIN_FRAME(frame, 1);
    frame.pin(0, a);
    frame.pin(0, b); // overwrites: a's live range ended
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_FALSE(pinned.contains(ida));
        EXPECT_TRUE(pinned.contains(idb));
    });
    runtime_.hfree(a);
    runtime_.hfree(b);
}

TEST_F(PinTest, PinnedInteriorHandlePinsTheObject)
{
    void *h = runtime_.halloc(128);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    void *interior =
        reinterpret_cast<void *>(reinterpret_cast<uint64_t>(h) + 64);
    ALASKA_PIN_FRAME(frame, 1);
    frame.pin(0, interior);
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_TRUE(pinned.contains(id));
    });
    runtime_.hfree(h);
}

TEST_F(PinTest, PinnedHelperReleasesOnScopeExit)
{
    void *h = runtime_.halloc(sizeof(int));
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    {
        pinned<int> p(static_cast<int *>(h));
        *p = 9;
        runtime_.barrier([&](const PinnedSet &pinned) {
            EXPECT_TRUE(pinned.contains(id));
        });
    }
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_FALSE(pinned.contains(id));
    });
    runtime_.hfree(h);
}

TEST(PinAtomicTest, AtomicModeCountsPins)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 256,
                                  .pinMode = PinMode::AtomicPins});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    void *h = runtime.halloc(16);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    {
        AtomicPin pin(h);
        EXPECT_NE(pin.get(), nullptr);
        runtime.barrier([&](const PinnedSet &pinned) {
            EXPECT_TRUE(pinned.contains(id));
        });
    }
    runtime.barrier([&](const PinnedSet &pinned) {
        EXPECT_FALSE(pinned.contains(id));
    });
    runtime.hfree(h);
}

} // namespace
