/**
 * @file
 * Tests for batched, resumable defragmentation (paper §6's pause-time
 * story): a pass split into byte-bounded barriers reaches the same end
 * state as one monolithic barrier, every barrier respects the batch
 * budget, per-shard caps hold, the resumable cursor survives mutator
 * interleavings between barriers, and the per-barrier stats fields
 * report honest pause accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "base/rng.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

/** Largest object the fixtures allocate; per-barrier overshoot slack. */
constexpr size_t kMaxObject = 1 << 10;

/**
 * One self-contained heap stack (space, service, runtime) that can be
 * fragmented deterministically — built twice by the equality test so a
 * monolithic and a batched pass can run on identical heaps. shards=1
 * keeps placement independent of the process-global thread ordinal.
 */
struct HeapStack
{
    PhantomAddressSpace space;
    AnchorageService service;
    Runtime runtime;

    explicit HeapStack(size_t shards = 1)
        : service(space, AnchorageConfig{.subHeapBytes = 1 << 20,
                                         .shards = shards}),
          runtime(RuntimeConfig{.tableCapacity = 1u << 18})
    {
        runtime.attachService(&service);
    }

    /** Allocate then free a deterministic subset: fragmentation ~2x. */
    void
    fragment(int objects = 6000)
    {
        Rng rng(42);
        std::vector<void *> handles;
        for (int i = 0; i < objects; i++)
            handles.push_back(runtime.halloc(16 + rng.below(240)));
        for (size_t i = 0; i < handles.size(); i += 2)
            runtime.hfree(handles[i]);
    }
};

/** End-state fingerprint of one defrag run, for cross-run equality
 *  (only one Runtime may be live at a time, so the monolithic and
 *  batched stacks run sequentially and compare fingerprints). */
struct RunResult
{
    size_t extent;
    size_t active;
    DefragStats stats;
};

TEST(BatchedDefragTest, BatchedPassMatchesMonolithicEndState)
{
    // Same heap, same budget: a monolithic barrier and a batched pass
    // must land on identical extent/live accounting — batching changes
    // when work happens, never what work happens.
    RunResult mono;
    {
        HeapStack stack;
        stack.fragment();
        ASSERT_GT(stack.service.fragmentation(), 1.5);
        mono.stats = stack.service.defrag(SIZE_MAX);
        mono.extent = stack.service.heapExtent();
        mono.active = stack.service.activeBytes();
        EXPECT_GT(mono.stats.movedObjects, 0u);
    }

    HeapStack stack;
    stack.fragment();
    auto pass = stack.service.beginBatchedDefrag(SIZE_MAX);
    const size_t batch = 48 << 10;
    size_t steps = 0;
    while (!pass.done()) {
        const DefragStats s = pass.step(batch);
        // Every barrier is bounded by the batch budget plus at most
        // one object's overshoot.
        EXPECT_LE(s.maxBarrierBytes, batch + kMaxObject);
        steps++;
        ASSERT_LT(steps, 10000u) << "batched pass failed to terminate";
    }
    // The pass really was split into many short barriers...
    EXPECT_GT(steps, 1u);
    EXPECT_EQ(pass.totals().barriers, steps);
    // ...and reached the monolithic end state exactly.
    EXPECT_EQ(stack.service.heapExtent(), mono.extent);
    EXPECT_EQ(stack.service.activeBytes(), mono.active);
    EXPECT_EQ(pass.totals().movedObjects, mono.stats.movedObjects);
    EXPECT_EQ(pass.totals().movedBytes, mono.stats.movedBytes);
    EXPECT_EQ(pass.totals().reclaimedBytes,
              mono.stats.reclaimedBytes);
}

TEST(BatchedDefragTest, BudgetLimitedBatchedPassMatchesMonolithic)
{
    const size_t budget = 200 << 10;
    RunResult mono;
    {
        HeapStack stack;
        stack.fragment();
        mono.stats = stack.service.defrag(budget);
        mono.extent = stack.service.heapExtent();
        mono.active = stack.service.activeBytes();
    }

    HeapStack stack;
    stack.fragment();
    auto pass = stack.service.beginBatchedDefrag(budget);
    while (!pass.done())
        pass.step(32 << 10);
    EXPECT_EQ(pass.totals().movedBytes, mono.stats.movedBytes);
    EXPECT_EQ(stack.service.heapExtent(), mono.extent);
    // The pass budget bounds the whole sequence, batch by batch.
    EXPECT_LE(pass.totals().movedBytes, budget + kMaxObject);
}

TEST(BatchedDefragTest, CursorSurvivesInterleavedMutators)
{
    RealAddressSpace space;
    AnchorageService service(space,
                             AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 18});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);
    Rng rng(7);

    struct Obj
    {
        void *h;
        std::vector<unsigned char> shadow;
    };
    std::vector<Obj> live;
    auto make = [&] {
        Obj obj;
        const size_t size = 16 + rng.below(480);
        obj.h = runtime.halloc(size);
        obj.shadow.resize(size);
        for (auto &byte : obj.shadow)
            byte = static_cast<unsigned char>(rng.below(256));
        std::memcpy(translate(obj.h), obj.shadow.data(), size);
        live.push_back(std::move(obj));
    };
    for (int i = 0; i < 4000; i++)
        make();
    for (size_t i = live.size(); i-- > 0;) {
        if (rng.chance(0.5)) {
            runtime.hfree(live[i].h);
            live[i] = std::move(live.back());
            live.pop_back();
        }
    }
    const double frag_before = service.fragmentation();
    ASSERT_GT(frag_before, 1.4);

    // Step a batched pass and mutate between every two barriers: the
    // carried cursor/index state must revalidate against trims, hole
    // reuse, and fresh bumps the mutator causes mid-pass.
    auto pass = service.beginBatchedDefrag(SIZE_MAX);
    size_t steps = 0;
    while (!pass.done()) {
        const DefragStats s = pass.step(24 << 10);
        EXPECT_LE(s.maxBarrierBytes, (24u << 10) + kMaxObject);
        steps++;
        ASSERT_LT(steps, 10000u);
        for (int i = 0; i < 20 && !live.empty(); i++) {
            if (rng.chance(0.5)) {
                make();
            } else {
                const size_t idx = rng.below(live.size());
                runtime.hfree(live[idx].h);
                live[idx] = std::move(live.back());
                live.pop_back();
            }
        }
    }
    EXPECT_GT(steps, 1u);
    EXPECT_LT(service.fragmentation(), frag_before);

    // Every survivor is intact, bit for bit, wherever it landed.
    for (auto &obj : live) {
        ASSERT_EQ(std::memcmp(translate(obj.h), obj.shadow.data(),
                              obj.shadow.size()),
                  0);
        runtime.hfree(obj.h);
    }
}

TEST(BatchedDefragTest, PerShardCapBoundsEveryShardsSpend)
{
    HeapStack stack(/*shards=*/4);

    // Populate (and fragment) several distinct shards: thread ordinals
    // are round-robin, so a handful of registered threads covers
    // multiple residues mod 4. Spawned sequentially — the allocations
    // themselves need no concurrency.
    std::vector<size_t> used_shards;
    for (int t = 0; t < 8; t++) {
        std::thread worker([&] {
            ThreadRegistration reg(stack.runtime);
            used_shards.push_back(stack.service.homeShardIndex());
            std::vector<void *> handles;
            for (int i = 0; i < 1500; i++)
                handles.push_back(stack.runtime.halloc(256));
            for (size_t i = 0; i < handles.size(); i += 2)
                stack.runtime.hfree(handles[i]);
        });
        worker.join();
    }
    std::sort(used_shards.begin(), used_shards.end());
    used_shards.erase(
        std::unique(used_shards.begin(), used_shards.end()),
        used_shards.end());
    ASSERT_GT(used_shards.size(), 1u);

    const size_t cap = 64 << 10;
    auto pass =
        stack.service.beginBatchedDefrag(SIZE_MAX, /*shard cap=*/cap);
    size_t steps = 0;
    while (!pass.done()) {
        pass.step(16 << 10);
        ASSERT_LT(++steps, 10000u);
    }

    // No shard's sources spent more than their cap (+ one object),
    // and more than one fragmented shard got reclamation — the cap's
    // whole point.
    size_t shards_reclaimed = 0;
    for (size_t moved : pass.shardMovedBytes()) {
        EXPECT_LE(moved, cap + kMaxObject);
        if (moved > 0)
            shards_reclaimed++;
    }
    EXPECT_GT(shards_reclaimed, 1u);
}

TEST(BatchedDefragTest, StatsReportPerBarrierAccounting)
{
    HeapStack stack;
    stack.fragment();

    // A monolithic pass is one barrier, and its max fields equal the
    // whole pass — honest numbers for the degenerate case.
    const DefragStats one = stack.service.defrag(64 << 10);
    EXPECT_EQ(one.barriers, 1u);
    EXPECT_EQ(one.maxBarrierBytes, one.movedBytes);
    EXPECT_DOUBLE_EQ(one.maxBarrierSec, one.measuredSec);
    EXPECT_DOUBLE_EQ(one.maxBarrierModeledSec, one.modeledSec);

    // A stepped pass accumulates: barriers counts steps, the max
    // fields track the worst step, and the folded sums keep growing.
    auto pass = stack.service.beginBatchedDefrag(SIZE_MAX);
    size_t steps = 0;
    uint64_t worst_bytes = 0;
    while (!pass.done()) {
        const DefragStats s = pass.step(16 << 10);
        worst_bytes = std::max(worst_bytes, s.maxBarrierBytes);
        steps++;
        ASSERT_LT(steps, 10000u);
    }
    EXPECT_EQ(pass.totals().barriers, steps);
    EXPECT_EQ(pass.totals().maxBarrierBytes, worst_bytes);
    EXPECT_LE(pass.totals().maxBarrierSec, pass.totals().measuredSec);
    EXPECT_GT(pass.totals().maxBarrierModeledSec, 0.0);
}

} // namespace
