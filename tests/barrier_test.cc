/**
 * @file
 * Multithreaded tests for the stop-the-world barrier (§4.1.3): safepoint
 * polling, external-code stragglers, and object movement under load.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/malloc_service.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"

namespace
{

using namespace alaska;

class BarrierTest : public ::testing::Test
{
  protected:
    BarrierTest() : runtime_(RuntimeConfig{.tableCapacity = 1u << 14})
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    MallocService service_;
    Runtime runtime_;
};

TEST_F(BarrierTest, BarrierWithNoThreadsRuns)
{
    bool ran = false;
    runtime_.barrier([&](const PinnedSet &) { ran = true; });
    EXPECT_TRUE(ran);
    EXPECT_EQ(runtime_.stats().barriers, 1u);
}

TEST_F(BarrierTest, MutatorsParkAtSafepoints)
{
    constexpr int n_threads = 4;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> iterations{0};
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (int t = 0; t < n_threads; t++) {
        threads.emplace_back([&] {
            ThreadRegistration reg(runtime_);
            while (!stop.load(std::memory_order_relaxed)) {
                iterations.fetch_add(1, std::memory_order_relaxed);
                poll(); // compiler-inserted back-edge safepoint
            }
        });
    }
    // Wait for the mutators to spin up.
    while (iterations.load() < 1000) {
    }
    for (int i = 0; i < 50; i++) {
        bool ran = false;
        runtime_.barrier([&](const PinnedSet &) { ran = true; });
        EXPECT_TRUE(ran);
    }
    stop.store(true);
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(runtime_.stats().barriers, 50u);
}

TEST_F(BarrierTest, ExternalThreadsDoNotBlockBarriers)
{
    std::atomic<bool> in_external{false};
    std::atomic<bool> release_external{false};
    std::thread external_thread([&] {
        ThreadRegistration reg(runtime_);
        runtime_.enterExternal();
        in_external.store(true);
        // Simulate blocking in the kernel for an arbitrary time.
        while (!release_external.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        runtime_.leaveExternal();
    });
    while (!in_external.load()) {
    }
    // The barrier must complete while that thread is "blocked in a
    // syscall" — the paper's straggler rule.
    bool ran = false;
    runtime_.barrier([&](const PinnedSet &) { ran = true; });
    EXPECT_TRUE(ran);
    release_external.store(true);
    external_thread.join();
}

TEST_F(BarrierTest, PinsOfExternalThreadsAreStillHonored)
{
    void *h = runtime_.halloc(32);
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
    std::atomic<bool> ready{false};
    std::atomic<bool> release{false};
    std::thread external_thread([&] {
        ThreadRegistration reg(runtime_);
        ALASKA_PIN_FRAME(frame, 1);
        // Pin, then escape into external code (e.g. write(2) on the
        // pinned buffer). The pin must be visible to barriers.
        frame.pin(0, h);
        runtime_.enterExternal();
        ready.store(true);
        while (!release.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        runtime_.leaveExternal();
    });
    while (!ready.load()) {
    }
    runtime_.barrier([&](const PinnedSet &pinned) {
        EXPECT_TRUE(pinned.contains(id));
    });
    release.store(true);
    external_thread.join();
    runtime_.hfree(h);
}

TEST_F(BarrierTest, ObjectsMoveUnderConcurrentMutation)
{
    // Mutators hammer objects between safepoints while the coordinator
    // relocates every unpinned object each barrier. Data must survive.
    constexpr int n_threads = 4;
    constexpr int n_objects = 64;
    constexpr size_t obj_size = 128;

    std::vector<void *> handles(n_objects);
    for (auto &h : handles) {
        h = runtime_.halloc(obj_size);
        std::memset(translate(h), 0, obj_size);
    }

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> iters{0};
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (int t = 0; t < n_threads; t++) {
        threads.emplace_back([&, t] {
            ThreadRegistration reg(runtime_);
            uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                void *h = handles[(t * 17 + i) % n_objects];
                {
                    ALASKA_PIN_FRAME(frame, 1);
                    auto *p = static_cast<uint64_t *>(frame.pin(0, h));
                    p[t] += 1; // each thread owns one word per object
                }
                poll();
                i++;
                iters.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // On a loaded (or single-core) machine the coordinator can run all
    // its rounds before any mutator is ever scheduled; wait for real
    // mutation so the final coherence check observes actual updates.
    while (iters.load(std::memory_order_relaxed) < n_threads)
        std::this_thread::yield();

    // Coordinator: relocate unpinned objects repeatedly.
    for (int round = 0; round < 200; round++) {
        runtime_.barrier([&](const PinnedSet &pinned) {
            for (void *h : handles) {
                const uint32_t id =
                    handleId(reinterpret_cast<uint64_t>(h));
                if (pinned.contains(id))
                    continue;
                auto &e = runtime_.table().entry(id);
                void *old_ptr = e.ptr.load(std::memory_order_relaxed);
                void *new_ptr = std::malloc(obj_size);
                std::memcpy(new_ptr, old_ptr, obj_size);
                e.ptr.store(new_ptr, std::memory_order_release);
                std::free(old_ptr);
            }
        });
    }
    stop.store(true);
    for (auto &th : threads)
        th.join();

    // All counters must be coherent (no lost or torn updates).
    uint64_t total = 0;
    for (void *h : handles) {
        auto *p = static_cast<uint64_t *>(translate(h));
        for (int t = 0; t < n_threads; t++)
            total += p[t];
        runtime_.hfree(h);
    }
    EXPECT_GT(total, 0u);
}

TEST_F(BarrierTest, LateRegisteringThreadJoinsTheBarrier)
{
    std::atomic<bool> stop{false};
    std::atomic<int> started{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; t++) {
        threads.emplace_back([&] {
            ThreadRegistration reg(runtime_);
            started.fetch_add(1);
            while (!stop.load(std::memory_order_relaxed))
                poll();
        });
        // Interleave registrations with barriers.
        runtime_.barrier([](const PinnedSet &) {});
    }
    while (started.load() < 8) {
    }
    runtime_.barrier([](const PinnedSet &) {});
    stop.store(true);
    for (auto &th : threads)
        th.join();
}

TEST_F(BarrierTest, ParkCountsAreRecorded)
{
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> polls{0};
    std::thread mutator([&] {
        ThreadRegistration reg(runtime_);
        while (!stop.load(std::memory_order_relaxed)) {
            polls.fetch_add(1, std::memory_order_relaxed);
            poll();
        }
    });
    while (polls.load() < 100) {
    }
    runtime_.barrier([](const PinnedSet &) {});
    stop.store(true);
    mutator.join();
    // At least one park must have happened for the barrier to complete.
    EXPECT_GE(runtime_.stats().barriers, 1u);
}

} // namespace
