/**
 * @file
 * Tests for the typed API layer (src/api): href arithmetic at the
 * offset-field boundary, hbox ownership and lifetime rules (including
 * use-after-move), the mode-aware access/pinned guards against live
 * relocation (guard outliving a campaign commit attempt), the
 * handle-backed STL allocator, and the PinFrame misuse diagnostics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "api/api.h"
#include "core/malloc_service.h"
#include "services/concurrent_reloc.h"
#include "services/swap_service.h"

namespace
{

using namespace alaska;

// ===== href<T>: typed, field-safe offset arithmetic ========================

TEST(HrefTest, TypedElementArithmetic)
{
    auto *h = reinterpret_cast<int64_t *>(makeHandle(777, 0));
    href<int64_t> ref(h);
    EXPECT_TRUE(ref.isHandle());
    EXPECT_EQ(ref.id(), 777u);
    EXPECT_EQ(ref.offset(), 0u);

    href<int64_t> fourth = ref + 4;
    EXPECT_EQ(fourth.id(), 777u);
    EXPECT_EQ(fourth.offset(), 32u); // elements, not bytes
    EXPECT_EQ(fourth - ref, 4);

    fourth -= 2;
    EXPECT_EQ(fourth.offset(), 16u);
    ++fourth;
    EXPECT_EQ(fourth.offset(), 24u);
    EXPECT_EQ((fourth - 3).offset(), 0u);
}

TEST(HrefTest, OffsetWrapCannotCorruptIdField)
{
    // Park the view 8 bytes below the 4 GiB offset ceiling, then step
    // past it: the offset must wrap mod 2^32 while ID and tag survive.
    constexpr uint32_t id = maxHandleId - 2;
    auto *h = reinterpret_cast<int64_t *>(
        makeHandle(id, 0xfffffff8u));
    href<int64_t> ref(h);

    href<int64_t> wrapped = ref + 2; // +16 bytes: 0xfffffff8 -> 0x8
    EXPECT_TRUE(wrapped.isHandle());
    EXPECT_EQ(wrapped.id(), id);
    EXPECT_EQ(wrapped.offset(), 0x8u);

    // Back across the boundary the other way.
    href<int64_t> back = wrapped - 2;
    EXPECT_EQ(back.id(), id);
    EXPECT_EQ(back.offset(), 0xfffffff8u);

    // A step below offset zero wraps high, still the same object.
    href<int64_t> below = href<int64_t>(
        reinterpret_cast<int64_t *>(makeHandle(id, 0))) - 1;
    EXPECT_EQ(below.id(), id);
    EXPECT_EQ(below.offset(), 0xfffffff8u);
}

TEST(HrefTest, RawPointersPassThrough)
{
    int64_t array[8] = {};
    href<int64_t> ref(&array[0]);
    EXPECT_FALSE(ref.isHandle());
    EXPECT_EQ((ref + 3).get(), &array[3]);
    EXPECT_EQ((ref + 5) - ref, 5);
}

// ===== runtime-backed fixtures =============================================

class ApiTest : public ::testing::Test
{
  protected:
    ApiTest() : runtime_(RuntimeConfig{.tableCapacity = 1u << 12}),
                registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    MallocService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

// ===== hbox<T>: ownership and lifetime rules ===============================

TEST_F(ApiTest, HboxAllocatesZeroedTypedSpan)
{
    const uint32_t live_before = runtime_.table().liveCount();
    {
        hbox<int64_t> box(runtime_, 32);
        EXPECT_TRUE(static_cast<bool>(box));
        EXPECT_EQ(box.size(), 32u);
        EXPECT_EQ(box.sizeBytes(), 256u);
        EXPECT_TRUE(isHandle(reinterpret_cast<uint64_t>(box.get())));
        EXPECT_EQ(runtime_.table().liveCount(), live_before + 1);

        alaska::access<int64_t> mem(box);
        for (size_t i = 0; i < box.size(); i++)
            EXPECT_EQ(mem[i], 0); // hcalloc semantics
        for (size_t i = 0; i < box.size(); i++)
            mem[i] = static_cast<int64_t>(i * 3);
        EXPECT_EQ(mem[31], 93);
    }
    // Destruction freed the handle.
    EXPECT_EQ(runtime_.table().liveCount(), live_before);
}

TEST_F(ApiTest, HboxMoveTransfersOwnershipExactlyOnce)
{
    const uint32_t live_before = runtime_.table().liveCount();
    {
        hbox<int> original(runtime_, 4);
        {
            alaska::access<int> mem(original);
            mem[0] = 41;
        }

        hbox<int> stolen = std::move(original);
        // Use-after-move: the moved-from box is empty and harmless.
        EXPECT_FALSE(static_cast<bool>(original));
        EXPECT_EQ(original.get(), nullptr);
        EXPECT_EQ(original.size(), 0u);
        original.reset(); // double-reset of a moved-from box is a no-op

        EXPECT_EQ(stolen.size(), 4u);
        EXPECT_EQ(*alaska::access<int>(stolen), 41);
        EXPECT_EQ(runtime_.table().liveCount(), live_before + 1);

        hbox<int> reassigned(runtime_, 2);
        reassigned = std::move(stolen); // frees reassigned's span
        EXPECT_EQ(runtime_.table().liveCount(), live_before + 1);
        EXPECT_EQ(*alaska::access<int>(reassigned), 41);
    }
    // Exactly one allocation existed; both destructors together freed
    // exactly one handle (no double free, no leak).
    EXPECT_EQ(runtime_.table().liveCount(), live_before);
}

TEST_F(ApiTest, HboxReleaseBridgesToRawApiAndAdoptBack)
{
    hbox<char> box(runtime_, 16);
    char *raw_handle = box.release();
    EXPECT_FALSE(static_cast<bool>(box));
    ASSERT_NE(raw_handle, nullptr);

    // The raw surface owns it now; the typed surface can adopt it back.
    std::strcpy(static_cast<char *>(translate(raw_handle)), "bridged");
    hbox<char> readopted = hbox<char>::adopt(runtime_, raw_handle, 16);
    EXPECT_STREQ(alaska::access<char>(readopted).get(), "bridged");
}

// ===== access<T> / pinned<T> vs live relocation ============================

TEST_F(ApiTest, AccessGuardDefersSourceReclaimViaGrace)
{
    hbox<int64_t> box(runtime_, 8);
    const uint32_t id = box.ref().id();
    {
        alaska::access<int64_t> mem(box);
        mem[0] = 1234;
        mem[1] = 5678;
    }

    // Announce concurrent defrag, as a daemon or campaign driver would
    // *before* mutators run: guards now open epoch scopes.
    Runtime::declareConcurrentDefrag();
    ASSERT_EQ(Runtime::translationDiscipline(),
              TranslationDiscipline::Scoped);
    std::atomic<bool> reclaimed{false};
    std::thread mover;
    {
        alaska::access<int64_t> guard(box);
        const int64_t *raw = guard.get();
        // A mover on another thread marks, copies and commits the move
        // immediately — no wait in the window — then parks in its grace
        // wait before freeing the source our translation still reads.
        mover = std::thread([&] {
            ThreadRegistration reg(runtime_);
            EXPECT_TRUE(tryRelocateConcurrent(runtime_, id));
            reclaimed.store(true, std::memory_order_seq_cst);
        });
        auto &entry = runtime_.table().entry(id);
        while (reloc::unmarked(
                   entry.ptr.load(std::memory_order_seq_cst)) ==
               static_cast<void *>(const_cast<int64_t *>(raw)))
            std::this_thread::yield();
        // Committed but not reclaimed: the mover sits in the grace wait
        // our open scope stalls, so the stale source stays readable.
        EXPECT_FALSE(reclaimed.load(std::memory_order_seq_cst));
        EXPECT_EQ(raw[0], 1234);
        EXPECT_EQ(raw[1], 5678);
        EXPECT_EQ(raw, guard.get()); // the guard's cached view is stable
    }
    // Guard gone: grace elapses and the mover frees the source.
    mover.join();
    EXPECT_TRUE(reclaimed.load(std::memory_order_seq_cst));
    Runtime::retireConcurrentDefrag();

    alaska::access<int64_t> after(box);
    EXPECT_EQ(after[0], 1234);
    EXPECT_EQ(after[1], 5678);
}

TEST_F(ApiTest, ScopedDerefStaysValidUntilScopeCloses)
{
    hbox<int64_t> box(runtime_, 8);
    const uint32_t id = box.ref().id();
    {
        alaska::access<int64_t> mem(box);
        mem[2] = 99;
    }

    // Simulate a campaign in flight (flag up, as relocateCampaign
    // raises it) so the scope's derefs take the mark-aware strip path.
    Runtime::declareConcurrentDefrag();
    Runtime::gConcurrentRelocCampaigns.fetch_add(1);
    std::atomic<bool> reclaimed{false};
    bool committed = false;
    std::thread mover;
    {
        access_scope op;
        const int64_t *raw = api::deref(box.get());
        auto &entry = runtime_.table().entry(id);

        // The strip path reads through a marked entry without touching
        // it: no RMW, the mark survives, the move is never aborted.
        void *unmarked_ptr = entry.ptr.load(std::memory_order_seq_cst);
        entry.ptr.store(reloc::marked(unmarked_ptr),
                        std::memory_order_seq_cst);
        EXPECT_EQ(api::deref(box.get()), raw);
        EXPECT_TRUE(reloc::isMarked(
            entry.ptr.load(std::memory_order_seq_cst)));
        entry.ptr.store(unmarked_ptr, std::memory_order_seq_cst);

        mover = std::thread([&] {
            ThreadRegistration reg(runtime_);
            committed = tryRelocateConcurrent(runtime_, id);
            reclaimed.store(true, std::memory_order_seq_cst);
        });
        // The mover's copy and commit proceed under our open scope —
        // only the source free waits for our epoch.
        while (reloc::unmarked(
                   entry.ptr.load(std::memory_order_seq_cst)) ==
               static_cast<void *>(const_cast<int64_t *>(raw)))
            std::this_thread::yield();
        EXPECT_FALSE(reclaimed.load(std::memory_order_seq_cst));
        // The stale translation stays readable: the source is parked on
        // limbo, not freed, until our scope closes.
        EXPECT_EQ(raw[2], 99);
        // A *new* deref inside the scope follows the entry to the
        // copy: same bytes, new home.
        const int64_t *fresh = api::deref(box.get());
        EXPECT_NE(fresh, raw);
        EXPECT_EQ(fresh[2], 99);
    }
    mover.join();
    EXPECT_TRUE(reclaimed.load(std::memory_order_seq_cst));
    EXPECT_TRUE(committed);
    Runtime::gConcurrentRelocCampaigns.fetch_sub(1);
    Runtime::retireConcurrentDefrag();

    EXPECT_EQ(alaska::access<int64_t>(box)[2], 99);
}

TEST_F(ApiTest, PinnedGuardIsImmobileAcrossBarriers)
{
    hbox<int> box(runtime_, 1);
    const uint32_t id = box.ref().id();
    {
        pinned<int> pin(box);
        *pin = 7;
        runtime_.barrier([&](const PinnedSet &set) {
            EXPECT_TRUE(set.contains(id));
        });
        EXPECT_EQ(*pin, 7);
    }
    runtime_.barrier([&](const PinnedSet &set) {
        EXPECT_FALSE(set.contains(id));
    });
}

TEST_F(ApiTest, PinnedGuardAbortsConcurrentRelocation)
{
    hbox<int> box(runtime_, 1);
    const uint32_t id = box.ref().id();
    Runtime::declareConcurrentDefrag();
    {
        pinned<int> pin(box);
        EXPECT_FALSE(tryRelocateConcurrent(runtime_, id));
    }
    EXPECT_TRUE(tryRelocateConcurrent(runtime_, id));
    Runtime::retireConcurrentDefrag();
}

TEST_F(ApiTest, AccessScopeIsInertUnderDirectDiscipline)
{
    ASSERT_EQ(Runtime::translationDiscipline(),
              TranslationDiscipline::Direct);
    hbox<int> box(runtime_, 1);
    access_scope op; // must not pin anything under Direct
    int *raw = api::deref(box.get());
    *raw = 3;
    EXPECT_EQ(*alaska::access<int>(box), 3);
}

// ===== checked access (handle faults) ======================================

TEST(ApiSwapTest, CheckedAccessFaultsSwappedObjectBackIn)
{
    SwapService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 12});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);
    {
        hbox<unsigned char> box(runtime, 512);
        {
            alaska::access<unsigned char> mem(box);
            std::memset(mem.get(), 0xab, 512);
        }
        EXPECT_EQ(service.swapOutAllUnpinned(), 1u);
        EXPECT_EQ(service.hotBytes(), 0u);

        alaska::access<unsigned char> mem(box, checked);
        EXPECT_EQ(mem[300], 0xab);
        EXPECT_EQ(service.swapIns(), 1u);
    }
}

// ===== allocator<T>: STL containers behind handles =========================

TEST_F(ApiTest, VectorLivesBehindOneMovableHandle)
{
    std::vector<int, allocator<int>> v{allocator<int>(runtime_)};
    for (int i = 0; i < 1000; i++)
        v.push_back(i);

    // The backing array is a tagged handle, not a raw address.
    int *backing = v.begin().base().get();
    EXPECT_TRUE(isHandle(reinterpret_cast<uint64_t>(backing)));
    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0L), 499500L);
    EXPECT_EQ(v[123], 123);

    // Move the backing array the way a defrag pass would: one handle
    // table store. Every iterator and index keeps working because each
    // access translates.
    auto &entry = runtime_.table().entry(
        handleId(reinterpret_cast<uint64_t>(backing)));
    void *old_spot = entry.ptr.load();
    void *new_spot = std::malloc(entry.size);
    std::memcpy(new_spot, old_spot, entry.size);
    entry.ptr.store(new_spot);
    std::free(old_spot);

    EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0L), 499500L);
    EXPECT_EQ(v[999], 999);

    // NOTE: the entry now holds malloc memory the MallocService will
    // free on deallocate — fine for MallocService, whose alloc/free
    // are malloc/free at object granularity.
}

TEST_F(ApiTest, AllocatorEqualityFollowsRuntime)
{
    allocator<int> a(runtime_);
    allocator<long> b(runtime_);
    EXPECT_TRUE(a == allocator<int>(b));
    EXPECT_EQ(a.max_size(), maxObjectSize / sizeof(int));
}

// ===== fatal-diagnostic paths ==============================================

TEST(PinFrameDeathTest, NoLiveRuntimeFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // No Runtime exists in the child process re-running this test.
    ASSERT_EQ(Runtime::gRuntime, nullptr);
    EXPECT_EXIT(
        {
            uint64_t slots[1];
            PinFrame frame(slots, 1);
        },
        ::testing::ExitedWithCode(1), "no live Runtime");
}

TEST(PinFrameDeathTest, UnregisteredThreadFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            MallocService service;
            Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 12});
            runtime.attachService(&service);
            // No ThreadRegistration on this thread.
            uint64_t slots[1];
            PinFrame frame(slots, 1);
        },
        ::testing::ExitedWithCode(1), "not registered");
}

TEST(HboxDeathTest, OversizeSpanFailsLoudly)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            MallocService service;
            Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 12});
            runtime.attachService(&service);
            ThreadRegistration reg(runtime);
            hbox<int64_t> box(runtime, (maxObjectSize / 8) + 1);
        },
        ::testing::ExitedWithCode(1), "exceed the 4 GiB");
}

} // namespace
