/**
 * @file
 * Unit and property tests for the handle bit representation (§3.3).
 */

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/handle.h"

namespace
{

using namespace alaska;

TEST(Handle, RawPointersAreNotHandles)
{
    int on_stack = 0;
    EXPECT_FALSE(isHandle(&on_stack));
    EXPECT_FALSE(isHandle(static_cast<uint64_t>(0)));
    EXPECT_FALSE(isHandle(UINT64_C(0x00007fffffffffff)));
}

TEST(Handle, TopBitMakesAHandle)
{
    EXPECT_TRUE(isHandle(makeHandle(0, 0)));
    EXPECT_TRUE(isHandle(makeHandle(maxHandleId - 1, 0xffffffffu)));
}

TEST(Handle, FieldRoundTrip)
{
    const uint64_t h = makeHandle(42, 1000);
    EXPECT_EQ(handleId(h), 42u);
    EXPECT_EQ(handleOffset(h), 1000u);
}

TEST(Handle, OffsetArithmeticIsPlainIntegerArithmetic)
{
    // The compiler transforms pointer arithmetic on handles into plain
    // adds; the offset field must absorb them without touching the ID.
    const uint64_t h = makeHandle(7, 0);
    const uint64_t moved = h + 4096;
    EXPECT_TRUE(isHandle(moved));
    EXPECT_EQ(handleId(moved), 7u);
    EXPECT_EQ(handleOffset(moved), 4096u);
}

TEST(Handle, LimitsMatchThePaper)
{
    EXPECT_EQ(maxHandleId, 1u << 31);
    EXPECT_EQ(maxObjectSize, 1ull << 32);
}

/** Property sweep: encode/decode round-trips over random IDs/offsets. */
class HandleRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HandleRoundTrip, RandomRoundTrips)
{
    Rng rng(GetParam());
    for (int i = 0; i < 10000; i++) {
        const auto id = static_cast<uint32_t>(rng.below(maxHandleId));
        const auto off =
            static_cast<uint32_t>(rng.below(UINT64_C(1) << 32));
        const uint64_t h = makeHandle(id, off);
        EXPECT_TRUE(isHandle(h));
        EXPECT_EQ(handleId(h), id);
        EXPECT_EQ(handleOffset(h), off);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandleRoundTrip,
                         ::testing::Values(1, 2, 3, 1337));

} // namespace
