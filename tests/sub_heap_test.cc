/**
 * @file
 * Tests for Anchorage sub-heaps: bump allocation, power-of-two free-list
 * reuse, and tail trimming (§4.3).
 */

#include <gtest/gtest.h>

#include "anchorage/sub_heap.h"
#include "base/rng.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

class SubHeapTest : public ::testing::Test
{
  protected:
    PhantomAddressSpace space_;
};

TEST_F(SubHeapTest, BumpAllocationIsContiguous)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 100);
    auto b = heap.alloc(2, 100);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(b.addr, a.addr + 112); // 100 aligned up to 112
    EXPECT_EQ(heap.extent(), 224u);
    EXPECT_EQ(heap.liveBytes(), 224u);
}

TEST_F(SubHeapTest, SizeClassesArePowersOfTwo)
{
    EXPECT_EQ(SubHeap::classOf(1), 0);
    EXPECT_EQ(SubHeap::classOf(16), 0);
    EXPECT_EQ(SubHeap::classOf(31), 0);
    EXPECT_EQ(SubHeap::classOf(32), 1);
    EXPECT_EQ(SubHeap::classOf(63), 1);
    EXPECT_EQ(SubHeap::classOf(64), 2);
    EXPECT_EQ(SubHeap::classOf(4096), 8);
}

TEST_F(SubHeapTest, FreeListReusesBlocks)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 64);
    heap.alloc(2, 64);
    heap.free(a.addr);
    EXPECT_EQ(heap.freeBytes(), 64u);
    // Same class -> the hole is reused, not bumped past.
    auto c = heap.alloc(3, 64);
    EXPECT_EQ(c.addr, a.addr);
    EXPECT_EQ(heap.freeBytes(), 0u);
}

TEST_F(SubHeapTest, OnlyFrontOfClassListIsChecked)
{
    SubHeap heap(space_, 1 << 20);
    // Two frees in the same class; LIFO order means the most recently
    // freed block is the "front".
    auto a = heap.alloc(1, 64);
    auto b = heap.alloc(2, 64);
    heap.alloc(3, 64);
    heap.free(a.addr);
    heap.free(b.addr);
    auto c = heap.alloc(4, 64);
    EXPECT_EQ(c.addr, b.addr);
}

TEST_F(SubHeapTest, DifferentClassDoesNotReuse)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 1024);
    heap.alloc(2, 16);
    heap.free(a.addr);
    // A 16-byte request must not consume the 1 KiB hole (different
    // class) — that is what keeps reuse O(1) and internal waste < 2x.
    auto c = heap.alloc(3, 16);
    EXPECT_NE(c.addr, a.addr);
}

TEST_F(SubHeapTest, ExhaustionFailsCleanly)
{
    SubHeap heap(space_, 4096);
    auto a = heap.alloc(1, 4096);
    ASSERT_TRUE(a.ok);
    auto b = heap.alloc(2, 16);
    EXPECT_FALSE(b.ok);
}

TEST_F(SubHeapTest, TrimTopRetractsTrailingFreeBlocks)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 8192);
    auto b = heap.alloc(2, 8192);
    auto c = heap.alloc(3, 8192);
    (void)a;
    (void)b;
    heap.free(b.addr);
    heap.free(c.addr);
    const size_t extent_before = heap.extent();
    const size_t reclaimed = heap.trimTop();
    // b and c are both trailing-free after c's release; both go.
    EXPECT_EQ(reclaimed, 2 * 8192u);
    EXPECT_EQ(heap.extent(), extent_before - 2 * 8192u);
    EXPECT_EQ(heap.freeBytes(), 0u);
}

TEST_F(SubHeapTest, TrimStopsAtLiveBlock)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 4096);
    heap.alloc(2, 4096);
    heap.free(a.addr); // a free hole below a live block
    EXPECT_EQ(heap.trimTop(), 0u);
    EXPECT_EQ(heap.freeBytes(), 4096u);
}

TEST_F(SubHeapTest, TrimReturnsPagesToTheKernel)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 64 * 4096);
    const size_t rss_full = space_.rss();
    EXPECT_GE(rss_full, 64 * 4096u);
    heap.free(a.addr);
    heap.trimTop();
    EXPECT_EQ(space_.rss(), 0u);
}

TEST_F(SubHeapTest, StaleFreeListEntriesAreHarmless)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 64);
    heap.free(a.addr);
    heap.trimTop(); // block trimmed; its free-list entry is now stale
    auto b = heap.alloc(2, 64);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(b.addr, a.addr); // re-bumped over the same space
    EXPECT_EQ(heap.liveBytes(), 64u);
}

TEST_F(SubHeapTest, LowestFreeBlockBelowFindsCompactionTargets)
{
    SubHeap heap(space_, 1 << 20);
    auto a = heap.alloc(1, 64);
    auto b = heap.alloc(2, 64);
    auto c = heap.alloc(3, 64);
    heap.free(a.addr);
    heap.free(b.addr);
    // The defrag walk wants the lowest hole below c.
    const int idx = heap.lowestFreeBlockBelow(64, c.addr);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(heap.blocks()[idx].addr, a.addr);
    // And nothing below a.
    EXPECT_EQ(heap.lowestFreeBlockBelow(64, a.addr), -1);
}

/** Property: accounting invariants hold under random churn. */
class SubHeapChurn : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SubHeapChurn, AccountingInvariants)
{
    PhantomAddressSpace space;
    SubHeap heap(space, 8 << 20);
    Rng rng(GetParam());
    std::vector<std::pair<uint64_t, size_t>> live;
    size_t expected_live_bytes = 0;

    for (int step = 0; step < 20000; step++) {
        if (live.empty() || rng.chance(0.55)) {
            const size_t size = 1 + rng.below(2048);
            auto r = heap.alloc(1000 + step, size);
            if (!r.ok)
                continue;
            // Reused blocks may be up to 2x the request (same class);
            // account what the heap actually handed out.
            const int idx = heap.findBlock(r.addr);
            ASSERT_GE(idx, 0);
            const size_t actual = heap.blocks()[idx].size;
            live.emplace_back(r.addr, actual);
            expected_live_bytes += actual;
        } else {
            const size_t idx = rng.below(live.size());
            heap.free(live[idx].first);
            expected_live_bytes -= live[idx].second;
            live[idx] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(heap.liveBlocks(), live.size());
        ASSERT_EQ(heap.liveBytes(), expected_live_bytes);
        ASSERT_LE(heap.liveBytes() + heap.freeBytes(), heap.extent());
    }
    // Freeing everything and trimming returns the heap to pristine.
    for (auto &[addr, size] : live)
        heap.free(addr);
    heap.trimTop();
    EXPECT_EQ(heap.extent(), 0u);
    EXPECT_EQ(heap.liveBytes(), 0u);
    EXPECT_EQ(heap.freeBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubHeapChurn,
                         ::testing::Values(101, 202, 303));

} // namespace
