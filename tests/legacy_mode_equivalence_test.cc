/**
 * @file
 * Regression harness for the mechanism/policy split: every legacy
 * DefragMode must map to a policy with tick-for-tick identical
 * behavior. An inline oracle replicates the pre-split controller —
 * the exact mode-switch runPass() the refactor replaced, coded
 * against the same public AnchorageService API — and both
 * controllers replay the same seeded alloc/free/mutate trace on
 * identical heaps under a virtual clock with modeled time. At every
 * quiesce tick the deterministic outcome must match exactly: modeled
 * charges, pause split, per-barrier maxima, move/campaign/mesh
 * counters, hysteresis state, and the next wake time. (Measured wall
 * seconds are excluded — they are real time and legitimately differ
 * run to run; every scheduling decision under useModeledTime flows
 * from the modeled fields compared here.)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "base/rng.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "sim/address_space.h"
#include "sim/clock.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

constexpr uint64_t kTraceSeed = 0x1e9ac001;
constexpr int kSlots = 800;
constexpr int kOps = 10000;
constexpr int kQuiesceEvery = 400;

/**
 * The pre-split controller, verbatim: the five-value mode switch with
 * the lazy alpha budget, the resumable batched StopTheWorld pass, the
 * Hybrid abort-rate fallback spending only the remainder, and the
 * paper's overhead-sleep scheduling. This is the oracle the
 * policy-based DefragController must match tick for tick.
 */
class LegacyController
{
  public:
    LegacyController(AnchorageService &service, const Clock &clock,
                     ControlParams params)
        : service_(service), clock_(clock), params_(params)
    {
        nextWake_ = clock_.now();
    }

    ControlAction
    tick()
    {
        const double now = clock_.now();
        if (now < nextWake_)
            return {};
        if (state_ == DefragController::State::Waiting) {
            if (controlFragmentation() > params_.fUb) {
                state_ = DefragController::State::Defragmenting;
                return runPass();
            }
            nextWake_ = now + params_.pollInterval;
            return {};
        }
        return runPass();
    }

    double nextWake() const { return nextWake_; }
    DefragController::State state() const { return state_; }
    size_t passes() const { return passes_; }
    size_t fallbacks() const { return fallbacks_; }
    size_t barriers() const { return barriers_; }
    double totalPauseSec() const { return totalPauseSec_; }
    double maxBarrierPauseSec() const { return maxBarrierPauseSec_; }

  private:
    double
    controlFragmentation() const
    {
        switch (params_.mode) {
        case DefragMode::Mesh:
            return service_.physicalFragmentation();
        case DefragMode::MeshHybrid:
            return std::max(service_.fragmentation(),
                            service_.physicalFragmentation());
        default:
            return service_.fragmentation();
        }
    }

    ControlAction
    runPass()
    {
        ControlAction action;
        action.defragged = true;

        auto passBudgetNow = [&] {
            const auto budget = static_cast<size_t>(
                params_.alpha *
                static_cast<double>(service_.heapExtent()));
            return budget > 0 ? budget : size_t{1};
        };
        const size_t batch =
            params_.batchBytes > 0 ? params_.batchBytes : SIZE_MAX;
        auto shardCapFor = [&](size_t total) {
            if (params_.shardBudgetFraction >= 1.0)
                return SIZE_MAX;
            const auto cap = static_cast<size_t>(
                params_.shardBudgetFraction *
                static_cast<double>(total));
            return cap > 0 ? cap : size_t{1};
        };
        auto chargeOf = [&](const DefragStats &s) {
            return params_.useModeledTime ? s.modeledSec
                                          : s.measuredSec;
        };
        auto barrierChargeOf = [&](const DefragStats &s) {
            return params_.useModeledTime ? s.maxBarrierModeledSec
                                          : s.maxBarrierSec;
        };

        bool pass_done = true;
        bool no_progress = false;

        if (params_.mode == DefragMode::StopTheWorld) {
            if (!stwPass_ || stwPass_->done()) {
                const size_t pass_budget = passBudgetNow();
                stwPass_.emplace(service_.beginBatchedDefrag(
                    pass_budget, shardCapFor(pass_budget)));
            }
            action.stats = stwPass_->step(batch);
            action.pauseSec = chargeOf(action.stats);
            action.costSec = action.pauseSec;
            pass_done = stwPass_->done();
            if (pass_done) {
                no_progress = stwPass_->totals().movedBytes == 0 &&
                              stwPass_->totals().reclaimedBytes == 0;
                stwPass_.reset();
            }
        } else if (params_.mode == DefragMode::Mesh) {
            action.stats = service_.meshPass(params_.meshProbeBudget,
                                             params_.meshMaxOccupancy);
            action.costSec = chargeOf(action.stats);
            no_progress = action.stats.pagesMeshed == 0;
        } else {
            if (params_.mode == DefragMode::MeshHybrid) {
                action.stats =
                    service_.meshPass(params_.meshProbeBudget,
                                      params_.meshMaxOccupancy);
            }
            const size_t pass_budget = passBudgetNow();
            action.stats.accumulate(
                service_.relocateCampaign(pass_budget));
            action.costSec = chargeOf(action.stats);
            if (params_.mode == DefragMode::Hybrid &&
                action.stats.attempts >=
                    params_.abortFallbackMinAttempts &&
                action.stats.abortRate() > params_.abortFallbackRate) {
                const size_t moved = action.stats.movedBytes;
                const size_t remainder =
                    pass_budget > moved ? pass_budget - moved : 0;
                if (remainder > 0) {
                    AnchorageService::BatchedPass fallback =
                        service_.beginBatchedDefrag(
                            remainder, shardCapFor(remainder));
                    DefragStats stw;
                    while (!fallback.done())
                        stw.accumulate(fallback.step(batch));
                    action.pauseSec = chargeOf(stw);
                    action.costSec += action.pauseSec;
                    action.stats.accumulate(stw);
                    action.fellBack = true;
                    fallbacks_++;
                }
            }
            no_progress = action.stats.movedBytes == 0 &&
                          action.stats.reclaimedBytes == 0 &&
                          action.stats.pagesMeshed == 0;
        }

        totalPauseSec_ += action.pauseSec;
        passes_++;
        barriers_ += action.stats.barriers;
        if (action.stats.barriers > 0)
            maxBarrierPauseSec_ = std::max(
                maxBarrierPauseSec_, barrierChargeOf(action.stats));

        const double now = clock_.now();
        if (!pass_done) {
            nextWake_ = now + std::max(action.costSec / params_.oUb,
                                       params_.minSleepSec);
        } else if (controlFragmentation() < params_.fLb ||
                   no_progress) {
            state_ = DefragController::State::Waiting;
            nextWake_ = now + params_.pollInterval;
        } else if (action.costSec > 0) {
            nextWake_ = now + std::max(action.costSec / params_.oUb,
                                       params_.minSleepSec);
        } else {
            nextWake_ = now + params_.pollInterval;
        }
        return action;
    }

    AnchorageService &service_;
    const Clock &clock_;
    ControlParams params_;
    DefragController::State state_ =
        DefragController::State::Waiting;
    double nextWake_ = 0;
    size_t passes_ = 0;
    size_t fallbacks_ = 0;
    size_t barriers_ = 0;
    double totalPauseSec_ = 0;
    double maxBarrierPauseSec_ = 0;
    std::optional<AnchorageService::BatchedPass> stwPass_;
};

/** The deterministic outcome of one quiesce tick. */
struct TickRecord
{
    bool defragged = false;
    bool fellBack = false;
    size_t movedObjects = 0;
    size_t movedBytes = 0;
    size_t reclaimedBytes = 0;
    uint64_t attempts = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t pagesMeshed = 0;
    uint64_t bytesRecovered = 0;
    uint64_t barriers = 0;
    uint64_t maxBarrierBytes = 0;
    double modeledSec = 0;
    double maxBarrierModeledSec = 0;
    double pauseSec = 0;
    double costSec = 0;
    double nextWake = 0;
    int state = 0;
};

struct RunResult
{
    std::vector<TickRecord> ticks;
    size_t passes = 0;
    size_t fallbacks = 0;
    size_t barriers = 0;
    double totalPauseSec = 0;
    double maxBarrierPauseSec = 0;
};

ControlParams
paramsFor(DefragMode mode)
{
    ControlParams params;
    params.mode = mode;
    params.useModeledTime = true;
    // Small batches so StopTheWorld passes stay mid-flight across
    // several ticks (the resumable-pass path is where the refactor
    // could diverge), and an eager fallback so Hybrid actually trips
    // on a single-threaded trace (aborts are rare without mutator
    // contention — a zero threshold makes any abort trip it, and the
    // no-abort case still exercises the not-tripped path).
    params.batchBytes = 32 << 10;
    params.abortFallbackMinAttempts = 1;
    params.abortFallbackRate = 0.0;
    params.pollInterval = 0.05;
    return params;
}

template <class Controller>
RunResult
runTrace(DefragMode mode)
{
    RealAddressSpace space;
    AnchorageService service(
        space, AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 18});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);
    VirtualClock clock;
    Controller controller(service, clock, paramsFor(mode));

    struct Slot
    {
        void *h = nullptr;
        size_t size = 0;
    };
    std::vector<Slot> slots(kSlots);
    Rng rng(kTraceSeed);
    RunResult result;

    for (int op = 1; op <= kOps; op++) {
        const int idx = static_cast<int>(rng.below(kSlots));
        Slot &slot = slots[idx];
        const uint64_t action = rng.below(10);
        if (slot.h == nullptr) {
            slot.size = 16 + rng.below(497);
            slot.h = runtime.halloc(slot.size);
            auto *p = static_cast<unsigned char *>(translate(slot.h));
            for (size_t j = 0; j < slot.size; j++)
                p[j] = static_cast<unsigned char>(idx + j);
        } else if (action < 4) {
            runtime.hfree(slot.h);
            slot.h = nullptr;
        }

        if (op % kQuiesceEvery != 0)
            continue;

        // Jump the virtual clock to the controller's own schedule so
        // every quiesce point runs a real tick — including the
        // mid-pass resume ticks whose wake time the controller chose.
        clock.set(controller.nextWake());
        const ControlAction act = controller.tick();

        TickRecord record;
        record.defragged = act.defragged;
        record.fellBack = act.fellBack;
        record.movedObjects = act.stats.movedObjects;
        record.movedBytes = act.stats.movedBytes;
        record.reclaimedBytes = act.stats.reclaimedBytes;
        record.attempts = act.stats.attempts;
        record.committed = act.stats.committed;
        record.aborted = act.stats.aborted;
        record.pagesMeshed = act.stats.pagesMeshed;
        record.bytesRecovered = act.stats.bytesRecovered;
        record.barriers = act.stats.barriers;
        record.maxBarrierBytes = act.stats.maxBarrierBytes;
        record.modeledSec = act.stats.modeledSec;
        record.maxBarrierModeledSec = act.stats.maxBarrierModeledSec;
        record.pauseSec = act.pauseSec;
        record.costSec = act.costSec;
        record.nextWake = controller.nextWake();
        record.state = static_cast<int>(controller.state());
        result.ticks.push_back(record);
    }

    for (auto &slot : slots) {
        if (slot.h != nullptr)
            runtime.hfree(slot.h);
    }
    result.passes = controller.passes();
    result.fallbacks = controller.fallbacks();
    result.barriers = controller.barriers();
    result.totalPauseSec = controller.totalPauseSec();
    result.maxBarrierPauseSec = controller.maxBarrierPauseSec();
    return result;
}

void
expectSameRun(const RunResult &legacy, const RunResult &refactored,
              const char *mode)
{
    ASSERT_EQ(legacy.ticks.size(), refactored.ticks.size()) << mode;
    for (size_t i = 0; i < legacy.ticks.size(); i++) {
        const TickRecord &a = legacy.ticks[i];
        const TickRecord &b = refactored.ticks[i];
        SCOPED_TRACE(std::string(mode) + " tick " +
                     std::to_string(i));
        EXPECT_EQ(a.defragged, b.defragged);
        EXPECT_EQ(a.fellBack, b.fellBack);
        EXPECT_EQ(a.movedObjects, b.movedObjects);
        EXPECT_EQ(a.movedBytes, b.movedBytes);
        EXPECT_EQ(a.reclaimedBytes, b.reclaimedBytes);
        EXPECT_EQ(a.attempts, b.attempts);
        EXPECT_EQ(a.committed, b.committed);
        EXPECT_EQ(a.aborted, b.aborted);
        EXPECT_EQ(a.pagesMeshed, b.pagesMeshed);
        EXPECT_EQ(a.bytesRecovered, b.bytesRecovered);
        EXPECT_EQ(a.barriers, b.barriers);
        EXPECT_EQ(a.maxBarrierBytes, b.maxBarrierBytes);
        EXPECT_DOUBLE_EQ(a.modeledSec, b.modeledSec);
        EXPECT_DOUBLE_EQ(a.maxBarrierModeledSec,
                         b.maxBarrierModeledSec);
        EXPECT_DOUBLE_EQ(a.pauseSec, b.pauseSec);
        EXPECT_DOUBLE_EQ(a.costSec, b.costSec);
        EXPECT_DOUBLE_EQ(a.nextWake, b.nextWake);
        EXPECT_EQ(a.state, b.state);
    }
    EXPECT_EQ(legacy.passes, refactored.passes) << mode;
    EXPECT_EQ(legacy.fallbacks, refactored.fallbacks) << mode;
    EXPECT_EQ(legacy.barriers, refactored.barriers) << mode;
    EXPECT_DOUBLE_EQ(legacy.totalPauseSec, refactored.totalPauseSec)
        << mode;
    EXPECT_DOUBLE_EQ(legacy.maxBarrierPauseSec,
                     refactored.maxBarrierPauseSec)
        << mode;
}

class LegacyModeEquivalence
    : public ::testing::TestWithParam<DefragMode>
{
};

TEST_P(LegacyModeEquivalence, PolicyMatchesTheLegacyControllerTickForTick)
{
    const DefragMode mode = GetParam();
    const RunResult legacy = runTrace<LegacyController>(mode);
    const RunResult refactored = runTrace<DefragController>(mode);
    const char *name =
        mode == DefragMode::StopTheWorld ? "stw"
        : mode == DefragMode::Concurrent ? "concurrent"
        : mode == DefragMode::Hybrid     ? "hybrid"
        : mode == DefragMode::Mesh       ? "mesh"
                                         : "mesh_hybrid";
    expectSameRun(legacy, refactored, name);

    // The trace is not vacuous: at least one tick defragged.
    size_t defrag_ticks = 0;
    for (const TickRecord &t : refactored.ticks)
        defrag_ticks += t.defragged ? 1 : 0;
    EXPECT_GT(defrag_ticks, 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, LegacyModeEquivalence,
    ::testing::Values(DefragMode::StopTheWorld,
                      DefragMode::Concurrent, DefragMode::Hybrid,
                      DefragMode::Mesh, DefragMode::MeshHybrid));

} // namespace
