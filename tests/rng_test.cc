/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "base/rng.h"

namespace
{

using alaska::Rng;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; i++)
        equal += (a.next() == b.next());
    EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(7);
    for (int i = 0; i < 100000; i++)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(9);
    constexpr int buckets = 16;
    constexpr int draws = 160000;
    int histogram[buckets] = {};
    for (int i = 0; i < draws; i++)
        histogram[rng.below(buckets)]++;
    for (int count : histogram) {
        EXPECT_GT(count, draws / buckets * 0.9);
        EXPECT_LT(count, draws / buckets * 1.1);
    }
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 100000; i++) {
        const double x = rng.real();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; i++) {
        const uint64_t v = rng.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

} // namespace
