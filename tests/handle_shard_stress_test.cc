/**
 * @file
 * Stress tests for the sharded handle allocator: the free-list shards
 * of HandleTable, the batch reservation API, and the per-thread
 * magazines layered on top by the Runtime. Eight threads churn
 * allocate/release while the liveCount() and ID-uniqueness invariants
 * are checked at quiescent points.
 */

#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <unordered_set>
#include <vector>

#include "base/rng.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "core/thread_state.h"
#include "core/translate.h"

namespace
{

using namespace alaska;

TEST(HandleShardStress, EightThreadChurnKeepsInvariants)
{
    constexpr int n_threads = 8;
    constexpr int held = 1500;
    constexpr int churn_steps = 20000;

    HandleTable table(1u << 16);
    std::vector<std::vector<uint32_t>> ids(n_threads);
    std::barrier sync(n_threads + 1);

    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (int t = 0; t < n_threads; t++) {
        threads.emplace_back([&table, &ids, &sync, t] {
            Rng rng(1000 + t);
            auto &mine = ids[t];

            // Phase A: allocate a working set.
            for (int i = 0; i < held; i++)
                mine.push_back(table.allocate());
            sync.arrive_and_wait(); // quiescent check 1
            sync.arrive_and_wait();

            // Phase B: churn — release a random held ID, allocate a new
            // one, so the free-list shards see constant traffic.
            for (int i = 0; i < churn_steps; i++) {
                const size_t idx = rng.below(mine.size());
                table.release(mine[idx]);
                mine[idx] = table.allocate();
            }
            sync.arrive_and_wait(); // quiescent check 2
            sync.arrive_and_wait();

            // Phase C: drain.
            for (uint32_t id : mine)
                table.release(id);
            mine.clear();
        });
    }

    auto checkUnique = [&ids] {
        std::unordered_set<uint32_t> all;
        for (const auto &mine : ids)
            for (uint32_t id : mine)
                EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
        return all.size();
    };

    sync.arrive_and_wait(); // after phase A
    EXPECT_EQ(table.liveCount(), n_threads * held);
    EXPECT_EQ(checkUnique(), static_cast<size_t>(n_threads) * held);
    sync.arrive_and_wait();

    sync.arrive_and_wait(); // after phase B
    EXPECT_EQ(table.liveCount(), n_threads * held);
    EXPECT_EQ(checkUnique(), static_cast<size_t>(n_threads) * held);
    EXPECT_LE(table.watermark(), table.capacity());
    sync.arrive_and_wait();

    for (auto &th : threads)
        th.join();
    EXPECT_EQ(table.liveCount(), 0u);
}

TEST(HandleShardStress, RuntimeMagazineChurnFromEightThreads)
{
    constexpr int n_threads = 8;
    constexpr int held = 400;
    constexpr int churn_steps = 4000;

    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    runtime.attachService(&service);

    std::vector<std::vector<void *>> handles(n_threads);
    std::barrier sync(n_threads + 1);

    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (int t = 0; t < n_threads; t++) {
        threads.emplace_back([&runtime, &handles, &sync, t] {
            ThreadRegistration reg(runtime);
            Rng rng(2000 + t);
            auto &mine = handles[t];

            for (int i = 0; i < held; i++) {
                void *h = runtime.halloc(16);
                *static_cast<int *>(translate(h)) = t;
                mine.push_back(h);
            }
            // Churn through the magazine: frees and allocations in
            // bursts larger than one magazine so refill/flush happens.
            for (int i = 0; i < churn_steps; i++) {
                const size_t idx = rng.below(mine.size());
                ASSERT_EQ(*static_cast<int *>(translate(mine[idx])), t);
                runtime.hfree(mine[idx]);
                mine[idx] = runtime.halloc(16);
                *static_cast<int *>(translate(mine[idx])) = t;
            }
            sync.arrive_and_wait(); // quiescent: main checks invariants
            sync.arrive_and_wait();
        });
    }

    sync.arrive_and_wait();
    EXPECT_EQ(runtime.table().liveCount(), n_threads * held);
    std::unordered_set<uint32_t> all;
    for (const auto &mine : handles) {
        for (void *h : mine) {
            const uint32_t id = handleId(reinterpret_cast<uint64_t>(h));
            EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
        }
    }
    EXPECT_EQ(all.size(), static_cast<size_t>(n_threads) * held);
    sync.arrive_and_wait();

    for (auto &th : threads)
        th.join();

    // The workers are gone (magazines flushed back to the shards);
    // their handles are still live and freeable from this thread.
    for (auto &mine : handles)
        for (void *h : mine)
            runtime.hfree(h);
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

TEST(HandleMagazine, RefillsInBatchesAndRecyclesLifo)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    // The first allocation refills a whole magazine in one batch: the
    // bump cursor advances by the batch size, not by one.
    void *a = runtime.halloc(8);
    EXPECT_EQ(runtime.table().liveCount(), 1u);
    EXPECT_EQ(runtime.table().watermark(), HandleMagazine::capacity);

    // Steady state: free then allocate reuses the same ID via the
    // magazine (LIFO), with no shard traffic and no bump movement.
    const uint32_t id = handleId(reinterpret_cast<uint64_t>(a));
    runtime.hfree(a);
    void *b = runtime.halloc(8);
    EXPECT_EQ(handleId(reinterpret_cast<uint64_t>(b)), id);
    EXPECT_EQ(runtime.table().watermark(), HandleMagazine::capacity);
    runtime.hfree(b);
}

TEST(HandleMagazine, UnregisterReturnsCachedIdsToTheTable)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    runtime.attachService(&service);

    {
        ThreadRegistration reg(runtime);
        void *h = runtime.halloc(8);
        runtime.hfree(h);
        // The magazine now caches reserved IDs...
    }
    // ...and unregistering flushed them to this thread's shard: a
    // fresh allocation reuses one instead of bumping further.
    const uint32_t watermark = runtime.table().watermark();
    void *h = runtime.halloc(8);
    EXPECT_EQ(runtime.table().watermark(), watermark);
    runtime.hfree(h);
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

TEST(HandleTableBatch, ReserveActivateDeactivateRoundTrip)
{
    HandleTable table(4096);
    uint32_t ids[64];
    const uint32_t got = table.reserveBatch(ids, 64);
    EXPECT_EQ(got, 64u);
    // Reserved but not yet allocated: invisible to liveCount.
    EXPECT_EQ(table.liveCount(), 0u);
    EXPECT_EQ(table.watermark(), 64u);

    for (int i = 0; i < 5; i++)
        table.activate(ids[i]);
    EXPECT_EQ(table.liveCount(), 5u);
    for (int i = 0; i < 5; i++)
        table.deactivate(ids[i]);
    EXPECT_EQ(table.liveCount(), 0u);

    table.unreserveBatch(ids, got);
    // The returned IDs satisfy later allocations before the bump moves.
    const uint32_t id = table.allocate();
    EXPECT_LT(id, 64u);
    EXPECT_EQ(table.watermark(), 64u);
    table.release(id);
}

} // namespace
