/**
 * @file
 * Tests for the multithreaded memcached simulation (Figure 12's
 * substrate): correctness under concurrent workers, and latency
 * recording while Anchorage pauses relocate memory.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "anchorage/anchorage_service.h"
#include "base/timer.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "kv/alloc_policy.h"
#include "kv/memcached_sim.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::kv;

TEST(MemcachedSim, LoadAndServeOnLibc)
{
    LibcAlloc alloc;
    MemcachedSim<LibcAlloc> server(alloc, 8);
    ycsb::Workload workload(ycsb::WorkloadKind::A, 2000, 3, 100);
    server.load(workload);
    EXPECT_EQ(server.keyCount(), 2000u);
    for (int i = 0; i < 5000; i++)
        server.serve(workload.next(), workload);
    EXPECT_EQ(server.keyCount(), 2000u); // A never inserts new keys
}

TEST(MemcachedSim, ConcurrentWorkersOnAlaskaWithPauses)
{
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 18});
    runtime.attachService(&service);
    AlaskaAlloc alloc(runtime);
    MemcachedSim<AlaskaAlloc> server(alloc, 16);

    ycsb::Workload load_def(ycsb::WorkloadKind::A, 3000, 5, 100);
    {
        ThreadRegistration reg(runtime);
        server.load(load_def);
    }

    constexpr int n_threads = 4;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> served{0};
    std::vector<LatencyDigest> digests(n_threads);
    std::vector<std::thread> workers;
    for (int t = 0; t < n_threads; t++) {
        workers.emplace_back([&, t] {
            ThreadRegistration reg(runtime);
            ycsb::Workload workload(ycsb::WorkloadKind::A, 3000,
                                    100 + t, 100);
            while (!stop.load(std::memory_order_relaxed)) {
                Stopwatch watch;
                server.serve(workload.next(), workload);
                digests[t].add(watch.elapsedNs());
                served.fetch_add(1, std::memory_order_relaxed);
                poll(); // between-request safepoint
            }
        });
    }

    // Pause thread: relocate ~256 KiB per pause, frequently.
    std::thread pauser([&] {
        while (served.load(std::memory_order_relaxed) < 40000) {
            service.defrag(256 << 10);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });
    pauser.join();
    stop.store(true);
    for (auto &worker : workers)
        worker.join();

    LatencyDigest all;
    for (auto &digest : digests)
        all.merge(digest);
    EXPECT_GE(all.count(), 40000u);
    EXPECT_GT(all.mean(), 0.0);
    EXPECT_GT(runtime.stats().barriers, 0u);

    // Store is intact after all that movement.
    ThreadRegistration reg(runtime);
    ycsb::Workload verify(ycsb::WorkloadKind::C, 3000, 5, 100);
    for (int i = 0; i < 1000; i++)
        server.serve(verify.next(), verify);
    EXPECT_EQ(server.keyCount(), 3000u);
}

} // namespace
