/**
 * @file
 * Unit tests for the defrag policy layer (src/anchorage/policy.h)
 * against stub mechanisms — no heap, no service: the policies see the
 * world only through PolicyView callbacks and their injected
 * DefragMechanisms, so every decision-table row is testable in
 * isolation. Covered: the abort-rate fallback gate, mesh pacing off
 * physical fragmentation, single alpha-budget deduction across a
 * composed tick, BarrierBudgetAdapter convergence/floor/cap, and
 * mid-pass abandonment below F_lb. The end-to-end equivalence of the
 * legacy DefragMode values is legacy_mode_equivalence_test.cc.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "anchorage/control.h"
#include "anchorage/mechanism.h"
#include "anchorage/policy.h"

namespace
{

using namespace alaska::anchorage;

/**
 * A scriptable mechanism: records every request it receives and
 * returns whatever the script says. State shared through a handle the
 * test keeps after the policy takes ownership of the mechanism.
 */
struct StubState
{
    std::vector<MechanismRequest> requests;
    std::function<MechanismReport(const MechanismRequest &)> onRun;
    bool midPass = false;
    int abandons = 0;
};

class StubMechanism final : public DefragMechanism
{
  public:
    StubMechanism(MechanismKind kind, bool scoped,
                  std::shared_ptr<StubState> state)
        : kind_(kind), scoped_(scoped), state_(std::move(state))
    {
    }

    MechanismKind kind() const override { return kind_; }

    MechanismReport
    run(const MechanismRequest &request) override
    {
        state_->requests.push_back(request);
        if (state_->onRun)
            return state_->onRun(request);
        MechanismReport report;
        report.kind = kind_;
        return report;
    }

    bool midPass() const override { return state_->midPass; }
    void abandon() override { state_->abandons++; }
    bool requiresScopedDiscipline() const override { return scoped_; }

  private:
    MechanismKind kind_;
    bool scoped_;
    std::shared_ptr<StubState> state_;
};

/** A view over scripted metrics. */
PolicyView
viewOf(double frag, double physFrag, size_t extent)
{
    PolicyView view;
    view.fragmentation = [frag] { return frag; };
    view.physicalFragmentation = [physFrag] { return physFrag; };
    view.heapExtent = [extent] { return extent; };
    return view;
}

/** A campaign report moving `moved` bytes with a scripted abort rate. */
MechanismReport
campaignReport(size_t moved, uint64_t attempts, uint64_t aborted)
{
    MechanismReport report;
    report.kind = MechanismKind::Campaign;
    report.stats.movedBytes = moved;
    report.stats.movedObjects = moved > 0 ? 1 : 0;
    report.stats.attempts = attempts;
    report.stats.aborted = aborted;
    report.noProgress = moved == 0;
    return report;
}

/** Hybrid-shaped composition over stubs; returns the two states. */
std::unique_ptr<ComposedPolicy>
hybridOf(std::shared_ptr<StubState> campaign,
         std::shared_ptr<StubState> stw)
{
    std::vector<ComposedPolicy::Stage> stages(2);
    stages[0].mechanism = std::make_unique<StubMechanism>(
        MechanismKind::Campaign, true, std::move(campaign));
    stages[1].mechanism = std::make_unique<StubMechanism>(
        MechanismKind::Stw, false, std::move(stw));
    stages[1].gate = ComposedPolicy::Gate::AbortFallback;
    stages[1].isFallback = true;
    return std::make_unique<ComposedPolicy>(
        "hybrid", ComposedPolicy::Metric::Virtual, std::move(stages));
}

// --- abort-rate fallback ----------------------------------------------------

TEST(AbortFallback, TripsOnHighAbortRateWithRemainderBudget)
{
    auto campaign = std::make_shared<StubState>();
    auto stw = std::make_shared<StubState>();
    campaign->onRun = [](const MechanismRequest &) {
        return campaignReport(/*moved=*/1000, /*attempts=*/100,
                              /*aborted=*/80);
    };
    auto policy = hybridOf(campaign, stw);

    ControlParams params; // abortFallbackRate 0.5, min 32 attempts
    params.alpha = 0.25;
    const PolicyView view = viewOf(1.5, 1.0, /*extent=*/40000);
    const TickResult result = policy->runTick(view, params, SIZE_MAX);

    // Budget = alpha * extent = 10000; the fallback spends only what
    // the campaign left, so one composed tick can never move more
    // than the alpha fraction in total.
    ASSERT_EQ(stw->requests.size(), 1u);
    EXPECT_EQ(stw->requests[0].budgetBytes, 10000u - 1000u);
    EXPECT_TRUE(stw->requests[0].runToCompletion);
    EXPECT_TRUE(result.fellBack);
    ASSERT_EQ(result.reports.size(), 2u);
    EXPECT_EQ(result.reports[0].kind, MechanismKind::Campaign);
    EXPECT_EQ(result.reports[1].kind, MechanismKind::Stw);
}

TEST(AbortFallback, QuietCampaignNeverFallsBack)
{
    auto campaign = std::make_shared<StubState>();
    auto stw = std::make_shared<StubState>();
    campaign->onRun = [](const MechanismRequest &) {
        // High abort count but below the min-attempts floor, then a
        // separate tick above the floor with a low rate: neither trips.
        return campaignReport(1000, /*attempts=*/10, /*aborted=*/9);
    };
    auto policy = hybridOf(campaign, stw);
    ControlParams params;
    const PolicyView view = viewOf(1.5, 1.0, 40000);

    TickResult result = policy->runTick(view, params, SIZE_MAX);
    EXPECT_TRUE(stw->requests.empty());
    EXPECT_FALSE(result.fellBack);

    campaign->onRun = [](const MechanismRequest &) {
        return campaignReport(1000, /*attempts=*/100, /*aborted=*/10);
    };
    result = policy->runTick(view, params, SIZE_MAX);
    EXPECT_TRUE(stw->requests.empty());
    EXPECT_FALSE(result.fellBack);
}

// --- single budget across a composed tick -----------------------------------

TEST(ComposedBudget, ExhaustedBudgetSkipsTheFallbackStage)
{
    auto campaign = std::make_shared<StubState>();
    auto stw = std::make_shared<StubState>();
    campaign->onRun = [](const MechanismRequest &request) {
        // The campaign spends the whole alpha budget; even a tripped
        // abort gate then has nothing left to spend.
        return campaignReport(request.budgetBytes, 100, 90);
    };
    auto policy = hybridOf(campaign, stw);
    ControlParams params;
    const PolicyView view = viewOf(1.5, 1.0, 40000);

    const TickResult result = policy->runTick(view, params, SIZE_MAX);
    ASSERT_EQ(campaign->requests.size(), 1u);
    EXPECT_EQ(campaign->requests[0].budgetBytes, 10000u);
    EXPECT_TRUE(stw->requests.empty());
    EXPECT_FALSE(result.fellBack); // a skipped fallback is no fallback
    EXPECT_EQ(result.reports.size(), 1u);
}

// --- mesh pacing ------------------------------------------------------------

TEST(MeshPacing, GatesOnPhysicalFragmentation)
{
    auto mesh = std::make_shared<StubState>();
    auto campaign = std::make_shared<StubState>();
    auto build = [&] {
        std::vector<ComposedPolicy::Stage> stages(2);
        stages[0].mechanism = std::make_unique<StubMechanism>(
            MechanismKind::Mesh, false, mesh);
        stages[0].gate = ComposedPolicy::Gate::MeshPacing;
        stages[1].mechanism = std::make_unique<StubMechanism>(
            MechanismKind::Campaign, true, campaign);
        return std::make_unique<ComposedPolicy>(
            "mesh_hybrid", ComposedPolicy::Metric::WorseOfBoth,
            std::move(stages));
    };

    ControlParams params;
    params.meshPacingFloor = 1.2;
    auto policy = build();

    // RSS already tight: the mesh stage is skipped, the campaign runs.
    policy->runTick(viewOf(1.5, /*phys=*/1.1, 40000), params, SIZE_MAX);
    EXPECT_TRUE(mesh->requests.empty());
    EXPECT_EQ(campaign->requests.size(), 1u);

    // Physical fragmentation above the floor: meshing is worth it.
    policy->runTick(viewOf(1.5, /*phys=*/1.3, 40000), params, SIZE_MAX);
    EXPECT_EQ(mesh->requests.size(), 1u);

    // Floor 0 (the legacy default) meshes every tick.
    params.meshPacingFloor = 0;
    policy->runTick(viewOf(1.5, /*phys=*/1.0, 40000), params, SIZE_MAX);
    EXPECT_EQ(mesh->requests.size(), 2u);
    // A mesh stage never consumes the byte budget.
    EXPECT_EQ(mesh->requests[0].budgetBytes, 0u);
}

// --- batchBytes adaptation --------------------------------------------------

TEST(BarrierBudgetAdapter, ShrinksOnOvershootAndRecoversUnderTarget)
{
    // Target 1 ms, floor 4 KiB, cap 1 MiB: starts at the floor.
    BarrierBudgetAdapter adapter(1e-3, 4 << 10, 1 << 20);
    ASSERT_TRUE(adapter.enabled());
    EXPECT_EQ(adapter.current(), size_t{4} << 10);

    // Barriers running well under target/2 recover additively toward
    // the cap — slowly (cap/32-ish steps), and never past it.
    for (int i = 0; i < 200; i++)
        adapter.observe(1e-4);
    EXPECT_EQ(adapter.current(), size_t{1} << 20);

    // A 4x overshoot shrinks multiplicatively: one observation lands
    // the next barrier near a quarter of the size (with margin).
    adapter.observe(4e-3);
    const size_t after_overshoot = adapter.current();
    EXPECT_LT(after_overshoot, (size_t{1} << 20) / 3);
    EXPECT_GT(after_overshoot, (size_t{1} << 20) / 8);

    // Synthetic sustained overshoot converges to the floor, never
    // below it.
    for (int i = 0; i < 100; i++)
        adapter.observe(50e-3);
    EXPECT_EQ(adapter.current(), size_t{4} << 10);

    // And it recovers after the overshoot clears.
    for (int i = 0; i < 200; i++)
        adapter.observe(1e-4);
    EXPECT_EQ(adapter.current(), size_t{1} << 20);
}

TEST(BarrierBudgetAdapter, DisabledKeepsTheStaticLegacyBound)
{
    BarrierBudgetAdapter fixed(0, 4 << 10, 1 << 20);
    EXPECT_FALSE(fixed.enabled());
    EXPECT_EQ(fixed.current(), size_t{1} << 20);
    fixed.observe(10.0); // no-op when disabled
    EXPECT_EQ(fixed.current(), size_t{1} << 20);

    // batchBytes == 0 means unbatched, exactly as before the split.
    BarrierBudgetAdapter unbatched(0, 4 << 10, 0);
    EXPECT_EQ(unbatched.current(), SIZE_MAX);
}

TEST(BarrierBudgetAdapter, TinyOvershootStillShrinks)
{
    // A pause barely over target: the 0.9 margin (and the >= guard)
    // must still shrink the bound, or the adapter could plateau while
    // overshooting forever.
    BarrierBudgetAdapter adapter(1e-3, 1 << 10, 1 << 20);
    for (int i = 0; i < 60; i++)
        adapter.observe(1e-4);
    const size_t before = adapter.current();
    adapter.observe(1.0001e-3);
    EXPECT_LT(adapter.current(), before);
}

// --- mid-pass abandonment ---------------------------------------------------

TEST(MidPassAbandon, DropsTheRemainderOnceChurnMetTheGoal)
{
    auto stw = std::make_shared<StubState>();
    stw->midPass = true;
    StwPolicy policy(std::make_unique<StubMechanism>(
        MechanismKind::Stw, false, stw));
    ControlParams params; // fLb = 1.15
    params.midPassAbandonFraction = 1.0;

    // Churn already pushed the metric below fLb: abandon, run nothing.
    const TickResult result =
        policy.runTick(viewOf(1.05, 1.0, 40000), params, SIZE_MAX);
    EXPECT_TRUE(result.abandoned);
    EXPECT_TRUE(result.passDone);
    EXPECT_TRUE(result.reports.empty());
    EXPECT_EQ(stw->abandons, 1);
    EXPECT_TRUE(stw->requests.empty());

    // Metric still above the threshold: the pass resumes (mid-pass,
    // so no fresh alpha budget is computed).
    const TickResult resumed =
        policy.runTick(viewOf(1.3, 1.0, 40000), params, SIZE_MAX);
    EXPECT_FALSE(resumed.abandoned);
    ASSERT_EQ(stw->requests.size(), 1u);
    EXPECT_EQ(stw->requests[0].budgetBytes, 0u);

    // Fraction 0 (the legacy default) never abandons.
    params.midPassAbandonFraction = 0;
    policy.runTick(viewOf(1.0, 1.0, 40000), params, SIZE_MAX);
    EXPECT_EQ(stw->abandons, 1);
    EXPECT_EQ(stw->requests.size(), 2u);
}

TEST(StwPolicy, FreshPassGetsTheAlphaBudgetAndShardCap)
{
    auto stw = std::make_shared<StubState>();
    StwPolicy policy(std::make_unique<StubMechanism>(
        MechanismKind::Stw, false, stw));
    ControlParams params;
    params.alpha = 0.5;
    params.shardBudgetFraction = 0.25;

    policy.runTick(viewOf(1.5, 1.0, 40000), params, /*batch=*/123);
    ASSERT_EQ(stw->requests.size(), 1u);
    EXPECT_EQ(stw->requests[0].budgetBytes, 20000u);
    EXPECT_EQ(stw->requests[0].shardCapBytes, 5000u);
    EXPECT_EQ(stw->requests[0].batchBytes, 123u);
    EXPECT_FALSE(stw->requests[0].runToCompletion);
}

// --- discipline / legacy mapping --------------------------------------------

TEST(Policies, ScopedDisciplineFollowsTheMechanisms)
{
    auto stw = std::make_shared<StubState>();
    StwPolicy stw_policy(std::make_unique<StubMechanism>(
        MechanismKind::Stw, false, stw));
    EXPECT_FALSE(stw_policy.requiresScopedDiscipline());

    auto campaign = std::make_shared<StubState>();
    auto fallback = std::make_shared<StubState>();
    auto hybrid = hybridOf(campaign, fallback);
    EXPECT_TRUE(hybrid->requiresScopedDiscipline());
}

} // namespace
