/**
 * @file
 * Tests for the single-level handle table (§4.2.1).
 */

#include <gtest/gtest.h>

#include <thread>
#include <unordered_set>
#include <vector>

#include "base/rng.h"
#include "core/handle_table.h"

namespace
{

using namespace alaska;

TEST(HandleTable, BumpAllocationStartsAtZero)
{
    HandleTable table(1024);
    EXPECT_EQ(table.allocate(), 0u);
    EXPECT_EQ(table.allocate(), 1u);
    EXPECT_EQ(table.allocate(), 2u);
    EXPECT_EQ(table.watermark(), 3u);
    EXPECT_EQ(table.liveCount(), 3u);
    for (uint32_t id : {0u, 1u, 2u})
        table.release(id);
}

TEST(HandleTable, FreeListIsConsultedBeforeBump)
{
    HandleTable table(1024);
    const uint32_t a = table.allocate();
    const uint32_t b = table.allocate();
    table.release(a);
    // The paper: "The free list is consulted before bump allocation."
    EXPECT_EQ(table.allocate(), a);
    EXPECT_EQ(table.watermark(), 2u);
    table.release(a);
    table.release(b);
}

TEST(HandleTable, ReleaseClearsEntry)
{
    HandleTable table(64);
    const uint32_t id = table.allocate();
    auto &e = table.entry(id);
    e.ptr.store(reinterpret_cast<void *>(0xdeadbeef),
                std::memory_order_relaxed);
    e.size = 99;
    table.release(id);
    EXPECT_EQ(e.ptr.load(std::memory_order_relaxed), nullptr);
    EXPECT_EQ(e.size, 0u);
    EXPECT_FALSE(e.allocated());
}

TEST(HandleTable, EntriesAreSixteenBytes)
{
    // One translation = one load; keep the entry compact.
    EXPECT_EQ(sizeof(HandleTableEntry), 16u);
}

TEST(HandleTable, LargeCapacityIsVirtuallyReserved)
{
    // 2^26 entries = 1 GiB of virtual space; must not consume RSS.
    HandleTable table(1u << 26);
    EXPECT_EQ(table.allocate(), 0u);
    table.release(0);
}

TEST(HandleTable, ConcurrentAllocateYieldsUniqueIds)
{
    HandleTable table(1u << 16);
    constexpr int n_threads = 8;
    constexpr int per_thread = 2000;
    std::vector<std::vector<uint32_t>> got(n_threads);
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (int t = 0; t < n_threads; t++) {
        threads.emplace_back([&table, &got, t] {
            for (int i = 0; i < per_thread; i++)
                got[t].push_back(table.allocate());
        });
    }
    for (auto &th : threads)
        th.join();
    std::unordered_set<uint32_t> all;
    for (const auto &ids : got)
        for (uint32_t id : ids)
            EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    EXPECT_EQ(all.size(), static_cast<size_t>(n_threads * per_thread));
}

/** Property: random alloc/release interleavings keep accounting exact. */
class HandleTableChurn : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HandleTableChurn, LiveCountMatchesModel)
{
    HandleTable table(4096);
    Rng rng(GetParam());
    std::vector<uint32_t> live;
    for (int step = 0; step < 20000; step++) {
        if (live.empty() || (live.size() < 2048 && rng.chance(0.55))) {
            live.push_back(table.allocate());
        } else {
            const size_t idx = rng.below(live.size());
            table.release(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(table.liveCount(), live.size());
    }
    for (uint32_t id : live)
        table.release(id);
    EXPECT_EQ(table.liveCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandleTableChurn,
                         ::testing::Values(11, 22, 33));

} // namespace
