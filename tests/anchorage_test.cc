/**
 * @file
 * Tests for the Anchorage defragmenting service (§4.3): correctness of
 * object movement, pin respect, fragmentation reduction, and kernel
 * memory return.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "base/rng.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::anchorage;

class AnchorageTest : public ::testing::Test
{
  protected:
    AnchorageTest()
        : service_(space_, AnchorageConfig{.subHeapBytes = 1 << 20}),
          runtime_(RuntimeConfig{.tableCapacity = 1u << 18}),
          registration_(runtime_)
    {
        runtime_.attachService(&service_);
    }

    // Declaration order matters: the service must outlive the runtime.
    RealAddressSpace space_;
    AnchorageService service_;
    Runtime runtime_;
    ThreadRegistration registration_;
};

TEST_F(AnchorageTest, AllocationsAreUsableMemory)
{
    void *h = runtime_.halloc(100);
    auto *p = static_cast<char *>(translate(h));
    std::strcpy(p, "anchorage");
    EXPECT_STREQ(static_cast<char *>(translate(h)), "anchorage");
    runtime_.hfree(h);
}

TEST_F(AnchorageTest, FragmentationMetricTracksHoles)
{
    EXPECT_DOUBLE_EQ(service_.fragmentation(), 1.0);
    std::vector<void *> handles;
    for (int i = 0; i < 1000; i++)
        handles.push_back(runtime_.halloc(496));
    EXPECT_NEAR(service_.fragmentation(), 1.0, 0.01);
    // Free every other object: extent unchanged, active halves.
    for (size_t i = 0; i < handles.size(); i += 2)
        runtime_.hfree(handles[i]);
    EXPECT_NEAR(service_.fragmentation(), 2.0, 0.05);
    for (size_t i = 1; i < handles.size(); i += 2)
        runtime_.hfree(handles[i]);
}

TEST_F(AnchorageTest, DefragPreservesContents)
{
    Rng rng(77);
    struct Obj
    {
        void *h;
        std::vector<unsigned char> shadow;
    };
    std::vector<Obj> objects;
    for (int i = 0; i < 2000; i++) {
        const size_t size = 16 + rng.below(256);
        Obj obj;
        obj.h = runtime_.halloc(size);
        obj.shadow.resize(size);
        for (auto &byte : obj.shadow)
            byte = static_cast<unsigned char>(rng.below(256));
        std::memcpy(translate(obj.h), obj.shadow.data(), size);
        objects.push_back(std::move(obj));
    }
    // Punch holes to create fragmentation.
    Rng hole_rng(88);
    for (size_t i = objects.size(); i-- > 0;) {
        if (hole_rng.chance(0.5)) {
            runtime_.hfree(objects[i].h);
            objects[i] = objects.back();
            objects.pop_back();
        }
    }
    const double frag_before = service_.fragmentation();
    const DefragStats stats = service_.defragFully();
    EXPECT_GT(stats.movedObjects, 0u);
    EXPECT_LT(service_.fragmentation(), frag_before);
    // Every surviving object is intact, bit for bit.
    for (auto &obj : objects) {
        ASSERT_EQ(std::memcmp(translate(obj.h), obj.shadow.data(),
                              obj.shadow.size()),
                  0);
        runtime_.hfree(obj.h);
    }
}

TEST_F(AnchorageTest, DefragCompactsToNearOne)
{
    std::vector<void *> handles;
    for (int i = 0; i < 4000; i++)
        handles.push_back(runtime_.halloc(240));
    for (size_t i = 0; i < handles.size(); i++) {
        if (i % 4 != 0)
            runtime_.hfree(handles[i]);
    }
    service_.defragFully();
    // All survivors are equal-sized; compaction can reach density ~1.
    EXPECT_LT(service_.fragmentation(), 1.05);
    for (size_t i = 0; i < handles.size(); i += 4)
        runtime_.hfree(handles[i]);
}

TEST_F(AnchorageTest, PinnedObjectsDoNotMove)
{
    std::vector<void *> handles;
    for (int i = 0; i < 512; i++)
        handles.push_back(runtime_.halloc(128));
    for (size_t i = 0; i < handles.size(); i++) {
        if (i % 2 != 0)
            runtime_.hfree(handles[i]);
    }
    void *target = handles[handles.size() - 2];
    ALASKA_PIN_FRAME(frame, 1);
    auto *before = frame.pin(0, target);
    const DefragStats stats = service_.defrag(SIZE_MAX);
    EXPECT_GT(stats.pinnedSkips, 0u);
    // The pinned object's raw address is unchanged...
    EXPECT_EQ(translate(target), before);
    frame.release(0);
    // ...but once released it is free to move.
    service_.defragFully();
    for (size_t i = 0; i < handles.size(); i += 2)
        runtime_.hfree(handles[i]);
}

TEST_F(AnchorageTest, DefragReducesRss)
{
    std::vector<void *> handles;
    for (int i = 0; i < 8000; i++)
        handles.push_back(runtime_.halloc(496));
    const size_t rss_full = service_.rss();
    for (size_t i = 0; i < handles.size(); i++) {
        if (i % 4 != 0)
            runtime_.hfree(handles[i]);
    }
    // Scattered holes: RSS barely moves before defrag.
    EXPECT_GT(service_.rss(), rss_full / 2);
    service_.defragFully();
    // After compaction, ~3/4 of pages went back to the kernel.
    EXPECT_LT(service_.rss(), rss_full / 2);
    for (size_t i = 0; i < handles.size(); i += 4)
        runtime_.hfree(handles[i]);
}

TEST_F(AnchorageTest, PartialDefragRespectsBudget)
{
    std::vector<void *> handles;
    for (int i = 0; i < 4000; i++)
        handles.push_back(runtime_.halloc(256));
    for (size_t i = 0; i < handles.size(); i++) {
        if (i % 2 != 0)
            runtime_.hfree(handles[i]);
    }
    const DefragStats stats = service_.defrag(64 * 1024);
    // alpha-style budget: no more than budget + one object overshoot.
    EXPECT_LE(stats.movedBytes, 64 * 1024u + 256u);
    for (size_t i = 0; i < handles.size(); i += 2)
        runtime_.hfree(handles[i]);
}

TEST_F(AnchorageTest, HreallocWorksOnAnchorage)
{
    void *h = runtime_.halloc(64);
    std::memset(translate(h), 0x5a, 64);
    runtime_.hrealloc(h, 4096);
    auto *p = static_cast<unsigned char *>(translate(h));
    for (int i = 0; i < 64; i++)
        ASSERT_EQ(p[i], 0x5a);
    runtime_.hfree(h);
}

TEST_F(AnchorageTest, OversizedObjectsGetDedicatedSubHeaps)
{
    const size_t before = service_.subHeapCount();
    void *h = runtime_.halloc(4u << 20); // bigger than subHeapBytes
    EXPECT_GT(service_.subHeapCount(), before);
    auto *p = static_cast<char *>(translate(h));
    p[0] = 'a';
    p[(4u << 20) - 1] = 'z';
    runtime_.hfree(h);
}

/** Property: churn + periodic defrag never corrupts live objects. */
class AnchorageChurn : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AnchorageChurn, ChurnWithDefragIsSound)
{
    RealAddressSpace space;
    AnchorageService service(space,
                             AnchorageConfig{.subHeapBytes = 1 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 18});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);
    Rng rng(GetParam());

    struct Obj
    {
        void *h;
        uint64_t tag;
        size_t size;
    };
    std::vector<Obj> live;

    for (int step = 0; step < 30000; step++) {
        if (live.empty() || rng.chance(0.52)) {
            // Min 16 so the head and tail tags cannot overlap.
            const size_t size = 16 + rng.below(1024);
            void *h = runtime.halloc(size);
            const uint64_t tag = rng.next();
            // Stamp the first and last word with the tag.
            auto *p = static_cast<char *>(translate(h));
            std::memcpy(p, &tag, sizeof(tag));
            std::memcpy(p + size - sizeof(tag), &tag, sizeof(tag));
            live.push_back({h, tag, size});
        } else {
            const size_t idx = rng.below(live.size());
            runtime.hfree(live[idx].h);
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 5000 == 4999)
            service.defrag(SIZE_MAX);
    }
    service.defragFully();
    for (auto &obj : live) {
        auto *p = static_cast<char *>(translate(obj.h));
        uint64_t head, tail;
        std::memcpy(&head, p, sizeof(head));
        std::memcpy(&tail, p + obj.size - sizeof(tail), sizeof(tail));
        ASSERT_EQ(head, obj.tag);
        ASSERT_EQ(tail, obj.tag);
        runtime.hfree(obj.h);
    }
    EXPECT_EQ(runtime.table().liveCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnchorageChurn,
                         ::testing::Values(1, 2, 3));

} // namespace
