/**
 * @file
 * Tests for the Figure-9 cache workload driver and its interaction
 * with every memory manager, including the headline RSS shapes: the
 * baseline never recovers, activedefrag and Anchorage do.
 */

#include <gtest/gtest.h>

#include "alloc_sim/glibc_model.h"
#include "alloc_sim/jemalloc_model.h"
#include "anchorage/alloc_model_adapter.h"
#include "kv/cache_workload.h"
#include "mesh/mesh_model.h"
#include "sim/clock.h"

namespace
{

using namespace alaska;
using namespace alaska::kv;

CacheWorkloadConfig
smallConfig()
{
    CacheWorkloadConfig config;
    config.maxMemory = 4 << 20; // 4 MiB keeps tests quick
    config.valueSize = 500;
    // Scaled with the small heap: the live set (~7.5k records)
    // spans phases, and enough phases pass to reach steady state.
    config.driftPeriod = 5000;
    return config;
}

TEST(CacheWorkload, RespectsMaxmemory)
{
    JemallocModel model;
    CacheWorkload workload(model, smallConfig());
    workload.insert(30000);
    EXPECT_LE(workload.usedMemory(), 4u << 20);
    EXPECT_GT(workload.evictions(), 0u);
    EXPECT_GT(workload.liveRecords(), 1000u);
    workload.drain();
    EXPECT_EQ(model.activeBytes(), 0u);
}

TEST(CacheWorkload, AccountingBalancesOnDrain)
{
    GlibcModel model;
    CacheWorkload workload(model, smallConfig());
    workload.insert(20000);
    workload.drain();
    EXPECT_EQ(workload.usedMemory(), 0u);
    EXPECT_EQ(model.activeBytes(), 0u);
}

TEST(CacheWorkload, ChurnFragmentsTheJemallocBaseline)
{
    // Insert well past maxmemory: scattered sampled-LRU evictions
    // strand slabs, so RSS grows far beyond used memory and stays.
    JemallocModel model;
    CacheWorkload workload(model, smallConfig());
    workload.insert(150000);
    const double frag = static_cast<double>(model.rss()) /
                        static_cast<double>(workload.usedMemory());
    EXPECT_GT(frag, 1.5) << "baseline should fragment under churn";
}

TEST(CacheWorkload, ActivedefragRecoversJemallocRss)
{
    JemallocModel model;
    CacheWorkload workload(model, smallConfig());
    workload.insert(150000);
    const size_t rss_before = model.rss();
    size_t moves = 0;
    for (int cycle = 0; cycle < 200; cycle++)
        moves += workload.defragCycle(workload.liveRecords());
    EXPECT_GT(moves, 0u);
    EXPECT_LT(model.rss(), rss_before);
    const double frag = static_cast<double>(model.rss()) /
                        static_cast<double>(workload.usedMemory());
    EXPECT_LT(frag, 1.4) << "activedefrag should approach density";
    workload.drain();
}

TEST(CacheWorkload, MeshRecoversSomeRss)
{
    MeshModel model(99);
    CacheWorkload workload(model, smallConfig());
    workload.insert(150000);
    const size_t rss_before = model.rss();
    for (int pass = 0; pass < 100; pass++)
        model.maintain();
    EXPECT_GT(model.meshCount(), 0u);
    EXPECT_LT(model.rss(), rss_before);
    workload.drain();
}

TEST(CacheWorkload, AnchorageRecoversRssWithoutHints)
{
    // The same trace through real handles; the controller defragments
    // with zero workload cooperation (shouldMove is never true).
    PhantomAddressSpace space;
    VirtualClock clock;
    anchorage::ControlParams control;
    control.useModeledTime = true;
    control.alpha = 1.0;
    anchorage::AnchorageAllocModel model(space, clock, control);
    CacheWorkload workload(model, smallConfig());
    workload.insert(150000);
    const size_t rss_churned = model.rss();
    const double frag_before =
        static_cast<double>(rss_churned) /
        static_cast<double>(workload.usedMemory());
    EXPECT_GT(frag_before, 1.2);

    // Let the controller run for a while of virtual time.
    for (int tick = 0; tick < 600; tick++) {
        model.maintain();
        clock.advance(0.1);
    }
    const double frag_after =
        static_cast<double>(model.rss()) /
        static_cast<double>(workload.usedMemory());
    EXPECT_LT(frag_after, frag_before * 0.7);
    EXPECT_GT(model.controller().passes(), 0u);
    workload.drain();
}

TEST(CacheWorkload, PhantomScalesToMultiGigabyteHeaps)
{
    // The Figure 11 mechanism: a multi-GiB policy entirely in phantom
    // space. (Scaled down here to keep the test fast.)
    JemallocModel model;
    CacheWorkloadConfig config;
    config.maxMemory = 256 << 20;
    config.valueSize = 500;
    CacheWorkload workload(model, config);
    workload.insert(600000);
    EXPECT_GT(workload.usedMemory(), 200u << 20);
    EXPECT_GT(model.rss(), workload.usedMemory() / 2);
    workload.drain();
}

} // namespace
