/**
 * @file
 * Serving front end tests: bounded-queue backpressure never loses or
 * duplicates a response, graceful shutdown drains everything in
 * flight, worker registration keeps scoped translation correct under
 * a live Concurrent campaign, and the SLO tracker's window judgment
 * and per-mechanism attribution are exact. Runs in the TSAN lane
 * (scripts/check.sh --tsan): the submit/steal/drain protocol is all
 * mutex+cv, so anything TSAN flags here is a real bug.
 */

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "core/runtime.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "services/concurrent_reloc_daemon.h"
#include "sim/address_space.h"
#include "telemetry/windowed.h"
#include "ycsb/ycsb.h"

namespace
{

using namespace alaska;

struct ServeFixture
{
    RealAddressSpace space;
    anchorage::AnchorageService service;
    Runtime runtime;

    explicit ServeFixture(size_t shards = 2)
        : service(space,
                  anchorage::AnchorageConfig{.subHeapBytes = 1u << 20,
                                             .shards = shards}),
          runtime(RuntimeConfig{.tableCapacity = 1u << 20})
    {
        runtime.attachService(&service);
    }
};

TEST(ServeServer, BackpressureNoLostOrDuplicatedResponses)
{
    ServeFixture fx;
    serve::ServerConfig cfg;
    cfg.workers = 3;
    cfg.queueCapacity = 4; // tiny: every producer hits backpressure
    serve::Server server(fx.runtime, cfg);

    constexpr int kProducers = 4;
    constexpr uint64_t kPerProducer = 400;
    constexpr uint64_t kTotal = kProducers * kPerProducer;

    std::vector<std::atomic<uint32_t>> seen(kTotal);
    server.setCompletionHandler([&](const serve::Response &r) {
        seen[r.id].fetch_add(1, std::memory_order_relaxed);
    });
    server.start();

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; p++) {
        producers.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; i++) {
                serve::Request req;
                req.id = static_cast<uint64_t>(p) * kPerProducer + i;
                req.op = serve::OpKind::Get;
                req.key = req.id;
                req.intendedNs = serve::nowNs();
                ASSERT_TRUE(server.submit(req));
            }
        });
    }
    for (auto &t : producers)
        t.join();
    server.stop();

    EXPECT_EQ(server.submitted(), kTotal);
    EXPECT_EQ(server.completed(), kTotal);
    for (uint64_t id = 0; id < kTotal; id++)
        ASSERT_EQ(seen[id].load(std::memory_order_relaxed), 1u)
            << "request " << id << " executed "
            << seen[id].load(std::memory_order_relaxed) << " times";
    // With 4 producers racing into capacity-4 queues, at least some
    // submit had to wait.
    EXPECT_GT(server.backpressureWaits(), 0u);
}

TEST(ServeServer, GracefulShutdownDrainsInFlight)
{
    ServeFixture fx;
    serve::ServerConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 1024;
    serve::Server server(fx.runtime, cfg);

    std::atomic<uint64_t> completions{0};
    server.setCompletionHandler(
        [&](const serve::Response &) { completions.fetch_add(1); });
    server.start();

    constexpr uint64_t kBurst = 512;
    for (uint64_t i = 0; i < kBurst; i++) {
        serve::Request req;
        req.id = i;
        req.op = serve::OpKind::Set;
        req.key = i;
        req.intendedNs = serve::nowNs();
        ASSERT_TRUE(server.submit(req));
    }
    // Stop immediately: everything queued must still execute.
    server.stop();
    EXPECT_EQ(server.completed(), kBurst);
    EXPECT_EQ(completions.load(), kBurst);
    EXPECT_EQ(server.queueDepth(), 0u);

    // After stop, submits are refused (and not half-enqueued).
    serve::Request late;
    late.id = kBurst;
    EXPECT_FALSE(server.submit(late));
    EXPECT_EQ(server.submitted(), kBurst);

    // The stores took the writes (from registered worker threads).
    ThreadRegistration reg(fx.runtime);
    EXPECT_EQ(server.storeStats().keys, kBurst);
}

TEST(ServeServer, ScopedTranslationCorrectUnderConcurrentCampaign)
{
    ServeFixture fx;
    serve::ServerConfig cfg;
    cfg.workers = 2;
    serve::Server server(fx.runtime, cfg);

    constexpr uint64_t kRecords = 4000;
    {
        ThreadRegistration reg(fx.runtime);
        server.populate(kRecords);
        server.fragmentEvenKeys(kRecords);
    }

    anchorage::ControlParams params;
    params.mode = anchorage::DefragMode::Concurrent;
    params.pollInterval = 0.002;
    params.oUb = 1.0;
    params.alpha = 1.0;
    ConcurrentRelocDaemon daemon(fx.runtime, fx.service, params);
    daemon.start();
    server.start();

    // Open-loop traffic over the surviving odd keys while campaigns
    // relocate the heap under the workers' scoped derefs. Workload A
    // only reads and Sets (no byte-flipping Rmw), and Set writes the
    // same deterministic valueFor payload populate loaded, so every
    // odd record must still read back exactly valueFor afterwards.
    serve::LoadGenConfig lcfg;
    lcfg.ratePerSec = 30000;
    lcfg.totalOps = 6000;
    lcfg.kind = ycsb::WorkloadKind::A;
    lcfg.records = kRecords / 2;
    lcfg.seed = 5;
    lcfg.keyMap = [](uint64_t id) { return 2 * id + 1; };
    serve::LoadGen gen(server, lcfg);
    gen.run();

    // Give the daemon a generous window to actually commit moves
    // while traffic keeps the epoch machinery live (a loaded 1-core
    // CI host may need several seconds).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(8);
    while (daemon.totals().committed == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        serve::LoadGen extra(server, lcfg);
        extra.run();
    }

    server.stop();
    daemon.stop();

    EXPECT_EQ(server.completed(), server.submitted());

    {
        ThreadRegistration reg(fx.runtime);
        for (uint64_t id = 1; id < kRecords; id += 97) {
            if (id % 2 == 0)
                continue;
            auto value = server.shard(server.shardOf(id))
                             .get(ycsb::Workload::keyFor(id));
            ASSERT_TRUE(value.has_value()) << "odd record " << id;
            EXPECT_EQ(*value, server.valueFor(id))
                << "odd record " << id << " corrupted";
        }
        server.clearStores();
    }

    if (daemon.totals().committed == 0)
        GTEST_SKIP() << "no campaign committed within the window on "
                        "this host; correctness checks above still ran";
}

TEST(ServeSlo, WindowJudgmentAndMechanismAttribution)
{
    serve::SloTracker slo(serve::SloConfig{.sloUs = 1000});

    auto recordBatch = [&](uint64_t latencyNs, int n) {
        for (int i = 0; i < n; i++) {
            serve::Response r;
            r.op = serve::OpKind::Get;
            r.latencyNs = latencyNs;
            slo.record(r);
        }
    };

    const uint64_t none[anchorage::kNumMechanisms] = {};
    uint64_t stwWork[anchorage::kNumMechanisms] = {};
    stwWork[static_cast<size_t>(anchorage::MechanismKind::Stw)] = 3;

    // Window 1: all fast -> no violation.
    recordBatch(100 * 1000, 100);
    EXPECT_LE(slo.closeWindow(none).p999 / 1000.0, 1000.0);
    // Window 2: tail above the SLO while STW worked -> attributed.
    recordBatch(100 * 1000, 100);
    recordBatch(5 * 1000 * 1000, 10);
    slo.closeWindow(stwWork);
    // Window 3: same tail with no defrag work -> idle violation.
    recordBatch(100 * 1000, 100);
    recordBatch(5 * 1000 * 1000, 10);
    slo.closeWindow(none);
    // Window 4: empty -> counted as a window, never a violation.
    slo.closeWindow(stwWork);

    const serve::SloTracker::Totals t = slo.totals();
    EXPECT_EQ(t.windows, 4u);
    EXPECT_EQ(t.violated, 2u);
    EXPECT_EQ(t.violatedIdle, 1u);
    EXPECT_EQ(t.violatedBy[static_cast<size_t>(
                  anchorage::MechanismKind::Stw)],
              1u);
    EXPECT_EQ(t.violatedBy[static_cast<size_t>(
                  anchorage::MechanismKind::Campaign)],
              0u);
    EXPECT_GE(t.worstWindowP999Us, 1000.0);

    // Whole-run per-op histogram saw every sample across windows.
    EXPECT_EQ(slo.opHistogram(serve::OpKind::Get).count(), 320u);
}

TEST(ServeSlo, WindowedHistogramRotation)
{
    telemetry::WindowedHistogram wh(2);
    wh.record(1000);
    wh.record(1000);
    const telemetry::WindowSummary first = wh.rotate();
    EXPECT_EQ(first.count, 2u);
    EXPECT_GT(first.p50, 0.0);
    // The rotation cleared the live window.
    const telemetry::WindowSummary second = wh.rotate();
    EXPECT_EQ(second.count, 0u);
    wh.record(8);
    wh.rotate();
    EXPECT_EQ(wh.windows(), 3u);
    EXPECT_EQ(wh.recent().size(), 2u); // bounded ring kept the last 2
    EXPECT_EQ(wh.recent().back().count, 1u);
}

} // namespace
