/**
 * @file
 * Figure 10: the envelope of control — the same Figure 9 workload
 * under Anchorage with a sweep of controller parameter sets
 * ([F_lb,F_ub], [O_lb,O_ub], alpha). Each parameter set traces a
 * different RSS curve; the envelope between the most and least
 * aggressive shows the operator's tradeoff space between overhead and
 * fragmentation.
 */

#include <algorithm>
#include <cstdio>

#include "anchorage/alloc_model_adapter.h"
#include "bench/frag_harness.h"
#include "sim/address_space.h"

int
main()
{
    using namespace alaska;
    using namespace alaska::bench;

    std::printf("=== Figure 10: Anchorage's envelope of control ===\n");
    std::printf("Figure 9 workload; each curve is one controller "
                "parameter set\n\n");

    kv::CacheWorkloadConfig workload_config;
    workload_config.maxMemory = 100 << 20;
    workload_config.driftPeriod = 150000;

    FragTimeline timeline;
    timeline.seconds = 10.0;
    timeline.tickSec = 0.1;
    timeline.totalInserts = 1200000;

    struct Sweep
    {
        const char *label;
        anchorage::ControlParams params;
    };
    std::vector<Sweep> sweeps;
    for (double alpha : {0.05, 0.25, 1.0}) {
        for (double oub : {0.01, 0.05, 0.25}) {
            anchorage::ControlParams params;
            params.alpha = alpha;
            params.oLb = oub / 5;
            params.oUb = oub;
            params.fLb = 1.10;
            params.fUb = 1.30;
            params.useModeledTime = true;
            // Monolithic passes: the envelope sweeps alpha, and the
            // 10 Hz maintain() hook would clip batched passes to one
            // small barrier per tick, flattening exactly the knob
            // this figure sweeps (see fig09 for the same reasoning).
            params.batchBytes = 0;
            static char labels[9][64];
            static int next = 0;
            std::snprintf(labels[next], sizeof(labels[next]),
                          "a%.2f_o%.2f", alpha, oub);
            sweeps.push_back({labels[next++], params});
        }
    }

    std::vector<FragCurve> curves;
    std::vector<double> overhead_fraction;
    for (const auto &sweep : sweeps) {
        VirtualClock clock;
        PhantomAddressSpace space;
        anchorage::AnchorageAllocModel model(space, clock,
                                             sweep.params);
        curves.push_back(runFragConfig(
            sweep.label, model, workload_config, timeline, clock,
            [&model](kv::CacheWorkload &) { model.maintain(); }));
        overhead_fraction.push_back(model.controller().totalDefragSec() /
                                    timeline.seconds);
    }

    printCurves(curves, timeline.tickSec);

    // The envelope: per-tick min and max across parameter sets.
    std::printf("\nenvelope (dashed curves in the paper):\n");
    std::printf("time_s,envelope_lo_mb,envelope_hi_mb\n");
    for (size_t t = 0; t < curves.front().rssMb.size(); t += 5) {
        double lo = curves[0].rssMb[t], hi = lo;
        for (const auto &curve : curves) {
            lo = std::min(lo, curve.rssMb[t]);
            hi = std::max(hi, curve.rssMb[t]);
        }
        std::printf("%.1f,%.1f,%.1f\n",
                    static_cast<double>(t + 1) * timeline.tickSec, lo,
                    hi);
    }

    std::printf("\nsummary: parameter set -> final RSS, defrag duty "
                "cycle (must stay within [O_lb,O_ub])\n");
    for (size_t i = 0; i < sweeps.size(); i++) {
        std::printf("  %-13s %7.1f MB   duty %.3f (O_ub %.2f)%s\n",
                    sweeps[i].label, curves[i].rssMb.back(),
                    overhead_fraction[i], sweeps[i].params.oUb,
                    overhead_fraction[i] <=
                            sweeps[i].params.oUb * 1.05
                        ? ""
                        : "  <-- BOUND VIOLATED");
    }
    std::printf("\npaper: a large envelope — aggressive settings reach "
                "low RSS quickly, conservative ones defragment\n"
                "slowly but within tight overhead bounds.\n");
    return 0;
}
