/**
 * @file
 * Figure 9 (and Figure 1): RSS of a Redis-like cache with maxmemory
 * 100 MiB under LRU churn, for the memory managers the paper
 * compares: the non-moving baseline, Redis-style activedefrag over
 * jemalloc hints, Mesh, and Anchorage — plus Anchorage running its
 * own page-meshing mode (DefragMode::Mesh), which recovers RSS with
 * zero object copies and zero barriers. The headline: Anchorage —
 * with zero application cooperation — reduces memory on par with the
 * bespoke activedefrag (up to ~40% below baseline), while the
 * baseline never recovers.
 *
 * Flags: --smoke (smaller memory policy and insert count for CI),
 * --out=FILE (machine-readable per-curve final/floor RSS plus the
 * meshing counters; the run is virtual-clock + fixed-seed
 * deterministic, so the committed BENCH_fig09.json baseline diffs
 * exactly).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "alloc_sim/jemalloc_model.h"
#include "anchorage/alloc_model_adapter.h"
#include "bench/bench_util.h"
#include "bench/frag_harness.h"
#include "mesh/mesh_model.h"
#include "sim/address_space.h"

int
main(int argc, char **argv)
{
    using namespace alaska;
    using namespace alaska::bench;

    bool smoke = false;
    const char *out_file = nullptr;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (const char *v = outFileArg(argv[i])) {
            out_file = v; // points into argv, which outlives the loop
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    kv::CacheWorkloadConfig workload_config;
    workload_config.maxMemory = 100 << 20;
    workload_config.valueSize = 500;
    workload_config.driftPeriod = 100000;

    FragTimeline timeline;
    timeline.seconds = 10.0;
    timeline.tickSec = 0.1;
    timeline.totalInserts = 1500000;
    if (smoke) {
        // Same shape, ~7x turnover of a 20 MiB policy in 30 ticks —
        // enough churn for every manager's mechanism to visibly act.
        workload_config.maxMemory = 20 << 20;
        timeline.seconds = 3.0;
        timeline.totalInserts = 300000;
    }

    std::printf("=== Figure 9 (and Figure 1): Redis-cache RSS under "
                "defragmentation ===\n");
    std::printf("maxmemory %zu MiB, ~500 B values (drifting mix), "
                "sampled-LRU eviction, %.0f s of churn\n\n",
                workload_config.maxMemory >> 20, timeline.seconds);

    std::vector<FragCurve> curves;
    uint64_t pages_meshed = 0;
    uint64_t split_faults = 0;

    { // Baseline: Redis's default allocator, no defragmentation.
        VirtualClock clock;
        JemallocModel model;
        curves.push_back(runFragConfig(
            "baseline", model, workload_config, timeline, clock,
            [](kv::CacheWorkload &) {}));
    }
    { // activedefrag: 10 Hz hint-driven reallocation cycles.
        VirtualClock clock;
        JemallocModel model;
        curves.push_back(runFragConfig(
            "activedefrag", model, workload_config, timeline, clock,
            [](kv::CacheWorkload &workload) {
                workload.defragCycle(workload.liveRecords() / 3 + 1);
            }));
    }
    { // Mesh: background meshing passes.
        VirtualClock clock;
        MeshModel model(timeline.seed);
        model.setProbeBudget(256);
        curves.push_back(runFragConfig(
            "mesh", model, workload_config, timeline, clock,
            [&model](kv::CacheWorkload &) { model.maintain(); }));
    }
    { // Anchorage: handles + controller, zero app cooperation.
        VirtualClock clock;
        PhantomAddressSpace space;
        anchorage::ControlParams control;
        control.useModeledTime = true;
        // Monolithic passes: this figure reproduces the paper's §4.3
        // controller, and the harness only drives maintain() at 10 Hz
        // — batched 1 MiB barriers would be clipped to one per tick
        // and starve the alpha budget. The batched-pause story lives
        // in fig12 and tab_ycsb_latency, which run real clocks.
        control.batchBytes = 0;
        anchorage::AnchorageAllocModel model(space, clock, control);
        curves.push_back(runFragConfig(
            "anchorage", model, workload_config, timeline, clock,
            [&model](kv::CacheWorkload &) { model.maintain(); }));
    }
    { // Anchorage in DefragMode::Mesh: same heap, but RSS is recovered
      // by meshing sparse pages — zero copies, zero barriers.
        VirtualClock clock;
        PhantomAddressSpace space;
        anchorage::ControlParams control;
        control.useModeledTime = true;
        control.batchBytes = 0;
        control.mode = anchorage::DefragMode::Mesh;
        anchorage::AnchorageConfig config;
        config.meshSeed = timeline.seed;
        anchorage::AnchorageAllocModel model(space, clock, control,
                                             config);
        curves.push_back(runFragConfig(
            "anchorage-mesh", model, workload_config, timeline, clock,
            [&model](kv::CacheWorkload &) { model.maintain(); }));
        pages_meshed = model.service().meshDirectory().meshes();
        split_faults = model.service().meshDirectory().splitFaults();
    }

    printCurves(curves, timeline.tickSec);

    std::printf("\nsummary (final RSS):\n");
    const double baseline_final = curves[0].rssMb.back();
    for (const auto &curve : curves) {
        std::printf("  %-14s %7.1f MB  (%+.0f%% vs baseline)\n",
                    curve.name.c_str(), curve.rssMb.back(),
                    (curve.rssMb.back() / baseline_final - 1) * 100);
    }
    std::printf("anchorage-mesh: %zu pages meshed, %zu split faults "
                "over the run\n",
                static_cast<size_t>(pages_meshed),
                static_cast<size_t>(split_faults));
    std::printf("\npaper: baseline ~300 MB flat; Anchorage and "
                "activedefrag both fall to ~150 MB (about 40%%\n"
                "less); Mesh lands in between.\n");

    if (out_file != nullptr) {
        JsonReport report;
        for (const auto &curve : curves) {
            // Metric names use '_' (curve names use '-').
            std::string key = curve.name;
            for (char &c : key)
                if (c == '-')
                    c = '_';
            double floor = curve.rssMb.front();
            for (double r : curve.rssMb)
                floor = std::min(floor, r);
            report.add(key + ".final_rss_mb", curve.rssMb.back(), "MB");
            report.add(key + ".floor_rss_mb", floor, "MB");
        }
        report.add("anchorage_mesh.pages_meshed",
                   static_cast<double>(pages_meshed));
        report.add("anchorage_mesh.split_faults",
                   static_cast<double>(split_faults));
        if (!report.writeTo(out_file, "fig09_redis_defrag"))
            return 1;
    }
    return 0;
}
