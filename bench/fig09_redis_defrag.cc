/**
 * @file
 * Figure 9 (and Figure 1): RSS of a Redis-like cache with maxmemory
 * 100 MiB under LRU churn, for the four memory managers the paper
 * compares: the non-moving baseline, Redis-style activedefrag over
 * jemalloc hints, Mesh, and Anchorage. The headline: Anchorage — with
 * zero application cooperation — reduces memory on par with the
 * bespoke activedefrag (up to ~40% below baseline), while the
 * baseline never recovers.
 */

#include <cstdio>

#include "alloc_sim/jemalloc_model.h"
#include "anchorage/alloc_model_adapter.h"
#include "bench/frag_harness.h"
#include "mesh/mesh_model.h"
#include "sim/address_space.h"

int
main()
{
    using namespace alaska;
    using namespace alaska::bench;

    std::printf("=== Figure 9 (and Figure 1): Redis-cache RSS under "
                "defragmentation ===\n");
    std::printf("maxmemory 100 MiB, ~500 B values (drifting mix), "
                "sampled-LRU eviction, 10 s of churn\n\n");

    kv::CacheWorkloadConfig workload_config;
    workload_config.maxMemory = 100 << 20;
    workload_config.valueSize = 500;
    workload_config.driftPeriod = 100000;

    FragTimeline timeline;
    timeline.seconds = 10.0;
    timeline.tickSec = 0.1;
    timeline.totalInserts = 1500000;

    std::vector<FragCurve> curves;

    { // Baseline: Redis's default allocator, no defragmentation.
        VirtualClock clock;
        JemallocModel model;
        curves.push_back(runFragConfig(
            "baseline", model, workload_config, timeline, clock,
            [](kv::CacheWorkload &) {}));
    }
    { // activedefrag: 10 Hz hint-driven reallocation cycles.
        VirtualClock clock;
        JemallocModel model;
        curves.push_back(runFragConfig(
            "activedefrag", model, workload_config, timeline, clock,
            [](kv::CacheWorkload &workload) {
                workload.defragCycle(workload.liveRecords() / 3 + 1);
            }));
    }
    { // Mesh: background meshing passes.
        VirtualClock clock;
        MeshModel model(2024);
        model.setProbeBudget(256);
        curves.push_back(runFragConfig(
            "mesh", model, workload_config, timeline, clock,
            [&model](kv::CacheWorkload &) { model.maintain(); }));
    }
    { // Anchorage: handles + controller, zero app cooperation.
        VirtualClock clock;
        PhantomAddressSpace space;
        anchorage::ControlParams control;
        control.useModeledTime = true;
        // Monolithic passes: this figure reproduces the paper's §4.3
        // controller, and the harness only drives maintain() at 10 Hz
        // — batched 1 MiB barriers would be clipped to one per tick
        // and starve the alpha budget. The batched-pause story lives
        // in fig12 and tab_ycsb_latency, which run real clocks.
        control.batchBytes = 0;
        anchorage::AnchorageAllocModel model(space, clock, control);
        curves.push_back(runFragConfig(
            "anchorage", model, workload_config, timeline, clock,
            [&model](kv::CacheWorkload &) { model.maintain(); }));
    }

    printCurves(curves, timeline.tickSec);

    std::printf("\nsummary (final RSS):\n");
    const double baseline_final = curves[0].rssMb.back();
    for (const auto &curve : curves) {
        std::printf("  %-13s %7.1f MB  (%+.0f%% vs baseline)\n",
                    curve.name.c_str(), curve.rssMb.back(),
                    (curve.rssMb.back() / baseline_final - 1) * 100);
    }
    std::printf("\npaper: baseline ~300 MB flat; Anchorage and "
                "activedefrag both fall to ~150 MB (about 40%%\n"
                "less); Mesh lands in between.\n");
    return 0;
}
