/**
 * @file
 * Ablations of the design decisions DESIGN.md calls out:
 *
 *  1. Pin tracking: stack pin sets (no atomics) vs the naive atomic
 *     pin counts the paper argues against, under multithreaded pin
 *     pressure (§3.4).
 *  2. The handle-fault check (§7): translate vs translateChecked.
 *  3. Anchorage pause cost vs the aggression parameter alpha (§4.3):
 *     what a single partial pass costs as a function of how much of
 *     the heap it may move.
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "base/timer.h"
#include "core/malloc_service.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;

/** Pins/second across threads for one tracking strategy. */
template <typename PinOp>
double
pinThroughput(Runtime &runtime, void *handle, int n_threads, PinOp op)
{
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> total{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; t++) {
        threads.emplace_back([&] {
            ThreadRegistration reg(runtime);
            uint64_t local = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                op(handle);
                local++;
            }
            total.fetch_add(local);
        });
    }
    Stopwatch watch;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    const double sec = watch.elapsedSec();
    for (auto &thread : threads)
        thread.join();
    return static_cast<double>(total.load()) / sec;
}

} // namespace

int
main()
{
    std::printf("=== Design ablations ===\n\n");

    // --- 1. pin tracking strategies ------------------------------------
    {
        MallocService service;
        Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 12,
                                      .pinMode = PinMode::AtomicPins});
        runtime.attachService(&service);
        void *handle = runtime.halloc(64);

        std::printf("[1] pin tracking: all threads pinning ONE hot "
                    "handle (pins/sec, higher is better)\n");
        std::printf("%10s %16s %16s %8s\n", "threads", "stack pin sets",
                    "atomic counts", "ratio");
        for (int threads : {1, 2, 4, 8}) {
            const double stack = pinThroughput(
                runtime, handle, threads, [](void *h) {
                    uint64_t slots[1];
                    PinFrame frame(slots, 1);
                    volatile auto *p =
                        static_cast<int64_t *>(frame.pin(0, h));
                    (void)p;
                });
            const double atomic = pinThroughput(
                runtime, handle, threads, [](void *h) {
                    AtomicPin pin(h);
                    volatile auto *p =
                        static_cast<int64_t *>(pin.get());
                    (void)p;
                });
            std::printf("%10d %16.2e %16.2e %7.1fx\n", threads, stack,
                        atomic, stack / atomic);
        }
        std::printf("paper: atomic pin counts contend across the "
                    "machine as core counts grow; private stack pin\n"
                    "sets keep the fast path free of atomics.\n\n");
        runtime.hfree(handle);
    }

    // --- 2. handle-fault check -----------------------------------------
    {
        MallocService service;
        Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 12});
        runtime.attachService(&service);
        void *handle = runtime.halloc(64);
        *static_cast<int64_t *>(translate(handle)) = 7;

        constexpr uint64_t iters = 200000000;
        volatile int64_t sink = 0;
        int64_t acc = 0;
        Stopwatch plain_watch;
        for (uint64_t i = 0; i < iters; i++)
            acc += *static_cast<int64_t *>(translate(handle));
        sink = acc;
        const double plain = plain_watch.elapsedSec();
        Stopwatch checked_watch;
        for (uint64_t i = 0; i < iters; i++)
            acc += *static_cast<int64_t *>(translateChecked(handle));
        sink = acc;
        (void)sink;
        const double checked = checked_watch.elapsedSec();
        std::printf("[2] handle-fault check (par.7): translate %.2f ns, "
                    "translateChecked %.2f ns -> +%.1f%%\n",
                    plain / iters * 1e9, checked / iters * 1e9,
                    (checked / plain - 1) * 100);
        std::printf("(per-translation cost; real programs do work "
                    "between translations, which is how the paper's\n"
                    "whole-program figure lands at ~1-2%%.)\n\n");
        runtime.hfree(handle);
    }

    // --- 3. pause cost vs alpha ------------------------------------------
    {
        std::printf("[3] Anchorage pause cost vs aggression alpha "
                    "(one pass over a fragmented 64 MiB heap)\n");
        std::printf("%8s %12s %14s %14s\n", "alpha", "moved(MB)",
                    "pause(ms)", "reclaimed(MB)");
        for (double alpha : {0.05, 0.1, 0.25, 0.5, 1.0}) {
            RealAddressSpace space;
            anchorage::AnchorageService service(
                space, anchorage::AnchorageConfig{});
            Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 20});
            runtime.attachService(&service);
            std::vector<void *> handles;
            for (int i = 0; i < 120000; i++)
                handles.push_back(runtime.halloc(512));
            for (size_t i = 0; i < handles.size(); i++) {
                if (i % 2 != 0)
                    runtime.hfree(handles[i]);
            }
            const auto budget = static_cast<size_t>(
                alpha * static_cast<double>(service.heapExtent()));
            const auto stats = service.defrag(budget);
            std::printf("%8.2f %12.1f %14.3f %14.1f\n", alpha,
                        static_cast<double>(stats.movedBytes) /
                            (1 << 20),
                        stats.measuredSec * 1e3,
                        static_cast<double>(stats.reclaimedBytes) /
                            (1 << 20));
            for (size_t i = 0; i < handles.size(); i += 2)
                runtime.hfree(handles[i]);
        }
        std::printf("paper: alpha bounds the per-pause work so the "
                    "controller can amortize defragmentation across\n"
                    "several pauses (partial defragmentation).\n");
    }
    return 0;
}
