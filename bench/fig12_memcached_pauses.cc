/**
 * @file
 * Figure 12: the latency effect of Anchorage's stop-the-world pauses
 * on a multithreaded memcached-like server, across worker thread
 * counts and pause intervals. Each pause event relocates ~1 MiB
 * regardless of fragmentation (the paper's synthetic setup), but runs
 * it as a batched pass: a sequence of short barriers each moving at
 * most batchBytes, the bound the controller uses in production. The
 * table therefore reports, per cell, both the request-latency impact
 * and the per-barrier pause distribution (max / p99) that batching
 * bounds. Expected shape: noticeable average-latency impact only at
 * impractically short intervals, shrinking as the interval grows, no
 * trend with thread count, and a per-barrier max pause that tracks
 * the batch budget, not the pause-event budget.
 *
 * Flags: --smoke runs one small cell and asserts the batched-mode
 * invariant CI cares about: no single barrier moved more than
 * batchBytes (plus one object's overshoot), i.e. the max per-barrier
 * pause is bounded by the batch-derived bound.
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "base/stats.h"
#include "base/timer.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "kv/alloc_policy.h"
#include "kv/memcached_sim.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::kv;

struct Cell
{
    int threads;
    int interval_ms;
    double mean_us;
    double stddev_us;
    double p99_us;
    uint64_t pauses;
    /** Barriers run across all pause events (>= pauses when batched). */
    uint64_t barriers;
    /** Worst single-barrier move, bytes (the batch-bound check). */
    uint64_t max_barrier_bytes;
    /** Per-barrier pause distribution, microseconds. */
    double max_pause_us;
    double p99_pause_us;
};

Cell
runCell(int n_threads, int interval_ms, double run_sec,
        uint64_t records, size_t pause_budget, size_t batch_bytes)
{
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 4 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
    runtime.attachService(&service);
    AlaskaAlloc alloc(runtime);
    MemcachedSim<AlaskaAlloc> server(alloc, 32);

    ycsb::Workload load_def(ycsb::WorkloadKind::A, records, 11, 100);
    {
        ThreadRegistration reg(runtime);
        server.load(load_def);
    }

    std::atomic<bool> stop{false};
    std::vector<LatencyDigest> digests(
        static_cast<size_t>(n_threads));
    std::vector<std::thread> workers;
    for (int t = 0; t < n_threads; t++) {
        workers.emplace_back([&, t, records] {
            ThreadRegistration reg(runtime);
            ycsb::Workload workload(ycsb::WorkloadKind::A, records,
                                    300 + t, 100);
            while (!stop.load(std::memory_order_relaxed)) {
                Stopwatch watch;
                server.serve(workload.next(), workload);
                digests[static_cast<size_t>(t)].add(watch.elapsedNs());
                poll();
            }
        });
    }

    Cell cell{};
    LatencyDigest barrier_pauses;
    Stopwatch run_watch;
    if (interval_ms > 0) {
        while (run_watch.elapsedSec() < run_sec) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
            // One pause event = one batched pass over ~pause_budget
            // bytes; mutators run between the barriers, so the
            // per-request pause exposure is one barrier, not the
            // whole budget.
            auto pass = service.beginBatchedDefrag(pause_budget);
            while (!pass.done()) {
                const anchorage::DefragStats s =
                    pass.step(batch_bytes);
                barrier_pauses.add(
                    static_cast<uint64_t>(s.measuredSec * 1e9));
                cell.max_barrier_bytes = std::max(
                    cell.max_barrier_bytes, s.maxBarrierBytes);
                cell.barriers++;
            }
            cell.pauses++;
        }
    } else {
        // Control: no pauses at all.
        std::this_thread::sleep_for(std::chrono::duration<double>(run_sec));
    }
    stop.store(true);
    for (auto &worker : workers)
        worker.join();

    LatencyDigest all;
    for (auto &digest : digests)
        all.merge(digest);
    cell.threads = n_threads;
    cell.interval_ms = interval_ms;
    cell.mean_us = all.mean() / 1e3;
    cell.stddev_us = all.stddev() / 1e3;
    cell.p99_us = all.percentile(99) / 1e3;
    cell.max_pause_us = barrier_pauses.percentile(100) / 1e3;
    cell.p99_pause_us = barrier_pauses.percentile(99) / 1e3;
    return cell;
}

/**
 * CI smoke: one small cell; fail loudly if any barrier of a batched
 * pass moved more than the batch budget plus one object's overshoot
 * (the byte-derived per-barrier pause bound — wall time would flake
 * on a loaded host, bytes cannot).
 */
int
runSmoke()
{
    const size_t batch = 128 << 10;
    const size_t budget = 512 << 10;
    // Max memcached object here: ~100 B value + key + entry overhead,
    // far below this slack.
    const uint64_t slack = 4096;
    const Cell cell = runCell(2, 50, 0.4, 4000, budget, batch);

    std::printf("fig12 smoke: %llu pauses, %llu barriers, max barrier "
                "%llu bytes (bound %zu+%llu), max pause %.1f us\n",
                static_cast<unsigned long long>(cell.pauses),
                static_cast<unsigned long long>(cell.barriers),
                static_cast<unsigned long long>(cell.max_barrier_bytes),
                batch, static_cast<unsigned long long>(slack),
                cell.max_pause_us);
    if (cell.max_barrier_bytes > batch + slack) {
        std::fprintf(stderr,
                     "FAIL: a barrier moved %llu bytes, above the "
                     "batch budget %zu (+%llu slack)\n",
                     static_cast<unsigned long long>(
                         cell.max_barrier_bytes),
                     batch, static_cast<unsigned long long>(slack));
        return 1;
    }
    if (cell.pauses > 0 && cell.barriers < cell.pauses) {
        std::fprintf(stderr, "FAIL: %llu pause events ran only %llu "
                             "barriers\n",
                     static_cast<unsigned long long>(cell.pauses),
                     static_cast<unsigned long long>(cell.barriers));
        return 1;
    }
    std::printf("fig12 smoke OK\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            return runSmoke();
        std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
        return 2;
    }

    const size_t budget = 1 << 20;   // ~1 MiB per pause event
    const size_t batch = 256 << 10;  // per-barrier bound

    std::printf("=== Figure 12: memcached latency vs pause interval "
                "and thread count ===\n");
    std::printf("YCSB-A, ~1 MiB relocated per pause event, batched "
                "into <=256 KiB barriers; latencies in microseconds\n\n");
    std::printf("%8s %12s %10s %10s %10s %8s %9s %10s %10s %10s\n",
                "threads", "interval_ms", "mean_us", "stddev_us",
                "p99_us", "pauses", "barriers", "maxp_us", "p99p_us",
                "overhead");

    for (int threads : {1, 2, 4, 8}) {
        // Per-thread-count control without pauses isolates the pause
        // cost from plain lock contention.
        const Cell control =
            runCell(threads, 0, 1.0, 20000, budget, batch);
        std::printf("%8d %12s %10.2f %10.2f %10.2f %8s %9s %10s %10s "
                    "%10s\n",
                    threads, "none", control.mean_us,
                    control.stddev_us, control.p99_us, "-", "-", "-",
                    "-", "-");
        for (int interval : {100, 250, 500, 1000}) {
            const Cell cell =
                runCell(threads, interval, 1.0, 20000, budget, batch);
            std::printf("%8d %12d %10.2f %10.2f %10.2f %8llu %9llu "
                        "%10.1f %10.1f %9.1f%%\n",
                        cell.threads, cell.interval_ms, cell.mean_us,
                        cell.stddev_us, cell.p99_us,
                        static_cast<unsigned long long>(cell.pauses),
                        static_cast<unsigned long long>(cell.barriers),
                        cell.max_pause_us, cell.p99_pause_us,
                        (cell.mean_us / control.mean_us - 1) * 100);
        }
    }
    std::printf("\npaper: ~10%% average overhead across all "
                "configurations (≈4 us), <7%% at practical intervals\n"
                "(>=500 ms); driven by outliers blocked on pauses; no "
                "correlation with thread count. Batching adds the\n"
                "maxp/p99p columns: the worst single barrier tracks "
                "the 256 KiB batch bound, not the 1 MiB event.\n");
    return 0;
}
