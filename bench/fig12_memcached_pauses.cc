/**
 * @file
 * Figure 12: the latency effect of Anchorage's stop-the-world pauses
 * on a multithreaded memcached-like server, across worker thread
 * counts and pause intervals. Each pause relocates ~1 MiB regardless
 * of fragmentation (the paper's synthetic setup). Expected shape:
 * noticeable average-latency impact only at impractically short
 * intervals, shrinking as the interval grows, and no trend with
 * thread count.
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "base/stats.h"
#include "base/timer.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "kv/alloc_policy.h"
#include "kv/memcached_sim.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;
using namespace alaska::kv;

struct Cell
{
    int threads;
    int interval_ms;
    double mean_us;
    double stddev_us;
    double p99_us;
    uint64_t pauses;
};

Cell
runCell(int n_threads, int interval_ms, double run_sec)
{
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 4 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
    runtime.attachService(&service);
    AlaskaAlloc alloc(runtime);
    MemcachedSim<AlaskaAlloc> server(alloc, 32);

    ycsb::Workload load_def(ycsb::WorkloadKind::A, 20000, 11, 100);
    {
        ThreadRegistration reg(runtime);
        server.load(load_def);
    }

    std::atomic<bool> stop{false};
    std::vector<LatencyDigest> digests(
        static_cast<size_t>(n_threads));
    std::vector<std::thread> workers;
    for (int t = 0; t < n_threads; t++) {
        workers.emplace_back([&, t] {
            ThreadRegistration reg(runtime);
            ycsb::Workload workload(ycsb::WorkloadKind::A, 20000,
                                    300 + t, 100);
            while (!stop.load(std::memory_order_relaxed)) {
                Stopwatch watch;
                server.serve(workload.next(), workload);
                digests[static_cast<size_t>(t)].add(watch.elapsedNs());
                poll();
            }
        });
    }

    uint64_t pauses = 0;
    Stopwatch run_watch;
    if (interval_ms > 0) {
        while (run_watch.elapsedSec() < run_sec) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
            service.defrag(1 << 20); // ~1 MiB per pause
            pauses++;
        }
    } else {
        // Control: no pauses at all.
        std::this_thread::sleep_for(std::chrono::duration<double>(run_sec));
    }
    stop.store(true);
    for (auto &worker : workers)
        worker.join();

    LatencyDigest all;
    for (auto &digest : digests)
        all.merge(digest);
    return Cell{n_threads, interval_ms, all.mean() / 1e3,
                all.stddev() / 1e3, all.percentile(99) / 1e3, pauses};
}

} // namespace

int
main()
{
    std::printf("=== Figure 12: memcached latency vs pause interval "
                "and thread count ===\n");
    std::printf("YCSB-A, ~1 MiB relocated per pause; latencies in "
                "microseconds\n\n");
    std::printf("%8s %12s %10s %10s %10s %8s %10s\n", "threads",
                "interval_ms", "mean_us", "stddev_us", "p99_us",
                "pauses", "overhead");

    for (int threads : {1, 2, 4, 8}) {
        // Per-thread-count control without pauses isolates the pause
        // cost from plain lock contention.
        const Cell control = runCell(threads, 0, 1.0);
        std::printf("%8d %12s %10.2f %10.2f %10.2f %8s %10s\n",
                    threads, "none", control.mean_us,
                    control.stddev_us, control.p99_us, "-", "-");
        for (int interval : {100, 250, 500, 1000}) {
            const Cell cell = runCell(threads, interval, 1.0);
            std::printf("%8d %12d %10.2f %10.2f %10.2f %8llu %9.1f%%\n",
                        cell.threads, cell.interval_ms, cell.mean_us,
                        cell.stddev_us, cell.p99_us,
                        static_cast<unsigned long long>(cell.pauses),
                        (cell.mean_us / control.mean_us - 1) * 100);
        }
    }
    std::printf("\npaper: ~10%% average overhead across all "
                "configurations (≈4 us), <7%% at practical intervals\n"
                "(>=500 ms); driven by outliers blocked on pauses; no "
                "correlation with thread count.\n");
    return 0;
}
