/**
 * @file
 * §5.5 "Response latency": YCSB latencies against the minikv store —
 * baseline (libc malloc, raw pointers) vs Alaska+Anchorage. The paper
 * reports ~13% overhead on workload-A reads and ~17% on workload-F
 * updates (translation cost plus the simpler Anchorage allocator).
 */

#include <cstdio>
#include <memory>

#include "anchorage/anchorage_service.h"
#include "base/stats.h"
#include "base/timer.h"
#include "core/runtime.h"
#include "kv/alloc_policy.h"
#include "kv/minikv.h"
#include "sim/address_space.h"
#include "ycsb/ycsb.h"

namespace
{

using namespace alaska;
using namespace alaska::kv;

struct Latencies
{
    double read_us = 0;
    double update_us = 0;
};

template <typename A>
Latencies
runWorkloads(A &alloc, uint64_t records, uint64_t ops)
{
    Latencies out;
    MiniKv<A> kv(alloc);
    {
        ycsb::Workload load_def(ycsb::WorkloadKind::A, records, 3, 500);
        for (uint64_t id = 0; id < records; id++) {
            kv.set(ycsb::Workload::keyFor(id), load_def.valueFor(id));
        }
    }
    // Workload A: measure read latency; F: update (RMW) latency.
    for (auto kind : {ycsb::WorkloadKind::A, ycsb::WorkloadKind::F}) {
        ycsb::Workload workload(kind, records, 17, 500);
        LatencyDigest reads, updates;
        for (uint64_t i = 0; i < ops; i++) {
            const ycsb::Request request = workload.next();
            const std::string key =
                ycsb::Workload::keyFor(request.key);
            Stopwatch watch;
            switch (request.op) {
              case ycsb::OpType::Read:
                kv.get(key);
                reads.add(watch.elapsedNs());
                break;
              case ycsb::OpType::Update:
              case ycsb::OpType::Insert:
                kv.set(key, workload.valueFor(request.key));
                break;
              case ycsb::OpType::ReadModifyWrite: {
                auto value = kv.get(key);
                std::string modified = value.value_or(
                    std::string(workload.valueSize(), 'x'));
                modified[0] ^= 1;
                kv.set(key, modified);
                updates.add(watch.elapsedNs());
                break;
              }
            }
        }
        if (kind == ycsb::WorkloadKind::A)
            out.read_us = reads.mean() / 1e3;
        else
            out.update_us = updates.mean() / 1e3;
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("=== par.5.5 response latency: YCSB on minikv, "
                "baseline vs Alaska+Anchorage ===\n\n");
    constexpr uint64_t records = 100000;
    constexpr uint64_t ops = 400000;

    Latencies baseline;
    {
        LibcAlloc alloc;
        baseline = runWorkloads(alloc, records, ops);
    }

    Latencies alaska_lat;
    {
        RealAddressSpace space;
        anchorage::AnchorageService service(space);
        Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
        runtime.attachService(&service);
        ThreadRegistration reg(runtime);
        AlaskaAlloc alloc(runtime);
        alaska_lat = runWorkloads(alloc, records, ops);
    }

    std::printf("%-26s %12s %12s %10s %10s\n", "metric", "baseline",
                "anchorage", "overhead", "delta");
    std::printf("%-26s %10.2fus %10.2fus %9.1f%% %8.0fns\n",
                "YCSB-A read latency", baseline.read_us,
                alaska_lat.read_us,
                (alaska_lat.read_us / baseline.read_us - 1) * 100,
                (alaska_lat.read_us - baseline.read_us) * 1e3);
    std::printf("%-26s %10.2fus %10.2fus %9.1f%% %8.0fns\n",
                "YCSB-F update latency", baseline.update_us,
                alaska_lat.update_us,
                (alaska_lat.update_us / baseline.update_us - 1) * 100,
                (alaska_lat.update_us - baseline.update_us) * 1e3);
    std::printf("\npaper: ~13%% on reads (workload A), ~17%% on "
                "updates (workload F) — translation plus the\n"
                "lower-throughput Anchorage allocator. NOTE: the paper "
                "measures client latency over loopback\n"
                "(tens of us per request), while this harness measures "
                "the in-process operation (sub-us), so\n"
                "the same absolute slowdown (the delta column) shows "
                "up as a much larger percentage here.\n");
    return 0;
}
