/**
 * @file
 * §5.5 "Response latency": YCSB latencies against the minikv store.
 *
 * Two experiments:
 *
 *  1. Single-thread overhead (the paper's table): baseline (libc
 *     malloc, raw pointers) vs Alaska+Anchorage. The paper reports
 *     ~13% overhead on workload-A reads and ~17% on workload-F updates.
 *
 *  2. Multi-threaded tail latency under defragmentation (the "millions
 *     of users" scaling story): N mutator threads run YCSB-A against
 *     minikv stores over one fragmented Anchorage heap while the
 *     background relocation daemon defragments — once in StopTheWorld
 *     mode (every pass a barrier) and once in Concurrent mode (paper
 *     §7 campaigns, zero barriers). Reports p50/p99/p999 read and
 *     update latency side by side, the abort/commit ratio, and the
 *     fragmentation recovered by each mode.
 *
 *     CLOSED-LOOP CAVEAT: each mutator issues its next operation only
 *     after the previous one returns, so a thread stalled behind a
 *     stop-the-world barrier issues *nothing* during the pause — the
 *     operations that would have queued up never exist, and the
 *     percentiles here understate the pause's impact on an arrival
 *     stream (coordinated omission). These numbers measure per-
 *     operation service time under defrag, which is exactly what the
 *     paper's table reports; for pause-honest tail latency under an
 *     open-loop arrival process (intended-send timestamps, queueing
 *     included), use bench/serve_bench.cc.
 *
 * Flags: --smoke (tiny counts for CI), --threads=N, --shards=N
 * (Anchorage shard count for the multi-thread section, default 8; a
 * Concurrent run at shards=1 is always included as the pre-shard
 * baseline column), --records=N, --ops=N (single-thread section),
 * --mrecords=N --mops=N (per-thread, multi-thread section),
 * --single-only, --multi-only,
 * --mode=stw|concurrent|hybrid|mesh|mesh-hybrid (run only the named
 * defrag mode under the multi-thread load and report its RSS-recovery
 * economics — resident bytes recovered, pages meshed, split faults,
 * recovery per CPU-second and per pause-microsecond, and per-mechanism
 * attribution of all of it — instead of the default sections),
 * --target-pause-us=N (run the StopTheWorld load twice with an
 * oversized batchBytes cap — once with the adaptive barrier budget
 * targeting an N-microsecond pause, once with the static bound — and
 * report each run's per-barrier pause tail; the adaptive run should
 * hold near the target while the fixed run overshoots),
 * --telemetry (print the runtime
 * telemetry snapshot after the run), --trace=FILE (record the defrag
 * pipeline's trace events and export Chrome trace-event JSON, viewable
 * at ui.perfetto.dev — see docs/OBSERVABILITY.md).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "api/api.h"
#include "base/stats.h"
#include "base/timer.h"
#include "bench/bench_util.h"
#include "kv/alloc_policy.h"
#include "kv/minikv.h"
#include "services/concurrent_reloc_daemon.h"
#include "sim/address_space.h"
#include "ycsb/ycsb.h"

namespace
{

using namespace alaska;
using namespace alaska::kv;

struct Latencies
{
    double read_us = 0;
    double update_us = 0;
};

template <typename A>
Latencies
runWorkloads(A &alloc, uint64_t records, uint64_t ops)
{
    Latencies out;
    MiniKv<A> kv(alloc);
    {
        ycsb::Workload load_def(ycsb::WorkloadKind::A, records, 3, 500);
        for (uint64_t id = 0; id < records; id++) {
            kv.set(ycsb::Workload::keyFor(id), load_def.valueFor(id));
        }
    }
    // Workload A: measure read latency; F: update (RMW) latency.
    for (auto kind : {ycsb::WorkloadKind::A, ycsb::WorkloadKind::F}) {
        ycsb::Workload workload(kind, records, 17, 500);
        LatencyDigest reads, updates;
        for (uint64_t i = 0; i < ops; i++) {
            const ycsb::Request request = workload.next();
            const std::string key =
                ycsb::Workload::keyFor(request.key);
            Stopwatch watch;
            switch (request.op) {
              case ycsb::OpType::Read:
                kv.get(key);
                reads.add(watch.elapsedNs());
                break;
              case ycsb::OpType::Update:
              case ycsb::OpType::Insert:
                kv.set(key, workload.valueFor(request.key));
                break;
              case ycsb::OpType::ReadModifyWrite: {
                auto value = kv.get(key);
                std::string modified = value.value_or(
                    std::string(workload.valueSize(), 'x'));
                modified[0] ^= 1;
                kv.set(key, modified);
                updates.add(watch.elapsedNs());
                break;
              }
            }
        }
        if (kind == ycsb::WorkloadKind::A)
            out.read_us = reads.mean() / 1e3;
        else
            out.update_us = updates.mean() / 1e3;
    }
    return out;
}

void
runSingleThreadSection(uint64_t records, uint64_t ops,
                       alaska::bench::JsonReport *report)
{
    std::printf("=== par.5.5 response latency: YCSB on minikv, "
                "baseline vs Alaska+Anchorage ===\n\n");

    Latencies baseline;
    {
        LibcAlloc alloc;
        baseline = runWorkloads(alloc, records, ops);
    }

    Latencies alaska_lat;
    {
        RealAddressSpace space;
        anchorage::AnchorageService service(space);
        Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
        runtime.attachService(&service);
        ThreadRegistration reg(runtime);
        AlaskaAlloc alloc(runtime);
        alaska_lat = runWorkloads(alloc, records, ops);
    }

    std::printf("%-26s %12s %12s %10s %10s\n", "metric", "baseline",
                "anchorage", "overhead", "delta");
    std::printf("%-26s %10.2fus %10.2fus %9.1f%% %8.0fns\n",
                "YCSB-A read latency", baseline.read_us,
                alaska_lat.read_us,
                (alaska_lat.read_us / baseline.read_us - 1) * 100,
                (alaska_lat.read_us - baseline.read_us) * 1e3);
    std::printf("%-26s %10.2fus %10.2fus %9.1f%% %8.0fns\n",
                "YCSB-F update latency", baseline.update_us,
                alaska_lat.update_us,
                (alaska_lat.update_us / baseline.update_us - 1) * 100,
                (alaska_lat.update_us - baseline.update_us) * 1e3);
    if (report != nullptr) {
        report->add("single.baseline_read_us", baseline.read_us, "us");
        report->add("single.baseline_update_us", baseline.update_us,
                    "us");
        report->add("single.anchorage_read_us", alaska_lat.read_us,
                    "us");
        report->add("single.anchorage_update_us", alaska_lat.update_us,
                    "us");
    }
    std::printf("\npaper: ~13%% on reads (workload A), ~17%% on "
                "updates (workload F) — translation plus the\n"
                "lower-throughput Anchorage allocator. NOTE: the paper "
                "measures client latency over loopback\n"
                "(tens of us per request), while this harness measures "
                "the in-process operation (sub-us), so\n"
                "the same absolute slowdown (the delta column) shows "
                "up as a much larger percentage here.\n\n");
}

// --- multi-threaded tail latency under background defrag -------------------

struct ModeResult
{
    double frag_start = 0;
    double frag_before = 0;
    double frag_after = 0;
    /** Lowest fragmentation sampled while the mutators ran. */
    double frag_min = 0;
    /** Fraction of run samples at or below the controller's F_lb. */
    double frag_below_lb = 0;
    double read_p50 = 0, read_p99 = 0, read_p999 = 0;
    double update_p50 = 0, update_p99 = 0, update_p999 = 0;
    double wall_sec = 0;
    uint64_t total_ops = 0;
    uint64_t barriers = 0;
    size_t passes = 0;
    size_t fallbacks = 0;
    double pause_sec = 0;
    /** Per-barrier pause tail of the batched passes (milliseconds). */
    double max_barrier_ms = 0;
    double p99_barrier_ms = 0;
    /** Resident-set samples bracketing the run: right after the heap
     *  is fragmented (the no-defrag level — RSS is monotone without
     *  defrag), the in-run minimum, and the final reading. */
    size_t rss_before = 0;
    size_t rss_min = 0;
    size_t rss_after = 0;
    /** Total defrag work time the daemon charged (CPU seconds). */
    double defrag_sec = 0;
    anchorage::DefragStats totals;
    /** The same work attributed per mechanism (daemon totalsFor()):
     *  a Hybrid run's campaign and its STW fallback land in separate
     *  entries instead of folded into `totals`. */
    anchorage::DefragStats by_mech[anchorage::kNumMechanisms];
    /** Final per-barrier batch budget — the adapted value when
     *  targetBarrierPauseSec is set, else the static batchBytes. */
    size_t batch_bytes_final = 0;
};

/** Per-barrier move bound the harness runs with (ControlParams::batchBytes). */
constexpr size_t kBatchBytes = 256 << 10;

/**
 * One store per mutator thread (minikv is single-writer), all over one
 * shared Anchorage heap, which is what the daemon defragments. The
 * stores are loaded and then half their keys deleted, leaving the heap
 * above F_ub; the mutators then run YCSB-A over the surviving (odd)
 * keys while the daemon reclaims the holes.
 */
ModeResult
runMode(anchorage::DefragMode mode, int threads, size_t shards,
        uint64_t records_per_thread, uint64_t ops_per_thread,
        const std::function<void(anchorage::ControlParams &)> &tweak =
            nullptr)
{
    using Store = MiniKv<AlaskaConcurrentAlloc>;
    ModeResult result;

    // 1 MiB sub-heaps: with N shards the heap holds ~N partially
    // filled bump segments (one per active chain), and that slack is
    // extent the controller can never trim. Finer segments keep the
    // per-shard slack small relative to the live set, so the sharded
    // configurations can reach the same F_lb floor the single chain
    // does (docs/TUNING.md, "subHeapBytes").
    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1u << 20,
                                          .shards = shards});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
    runtime.attachService(&service);
    AlaskaConcurrentAlloc alloc(runtime);

    std::vector<std::unique_ptr<Store>> stores;
    {
        ThreadRegistration reg(runtime);
        ycsb::Workload loader(ycsb::WorkloadKind::A, records_per_thread,
                              3, 500);
        for (int t = 0; t < threads; t++) {
            stores.push_back(std::make_unique<Store>(alloc));
            for (uint64_t id = 0; id < records_per_thread; id++) {
                stores.back()->set(ycsb::Workload::keyFor(id),
                                   loader.valueFor(id));
            }
        }
        result.frag_start = service.fragmentation();
        // Fragment: delete the even half of every store's keyspace.
        for (auto &store : stores) {
            for (uint64_t id = 0; id < records_per_thread; id += 2)
                store->del(ycsb::Workload::keyFor(id));
        }
    }
    result.frag_before = service.fragmentation();
    result.rss_before = service.rss();

    anchorage::ControlParams params;
    params.mode = mode;
    params.pollInterval = 0.005;
    // The paper's 5% duty cycle needs minutes to act; this harness runs
    // seconds, so let defrag work up to half the time (equally in both
    // modes — the comparison stays fair, and the STW pause totals show
    // what that aggressiveness costs the mutators in each mode).
    params.oUb = 1.0;
    // Full-drain budgets: at alpha=0.25 a sharded heap needs many
    // rank+snapshot rounds to finish the same evacuation, and on a
    // busy host the run can end first. Whole-heap budgets in both
    // modes keep the comparison fair: a campaign drains its budget in
    // one tick, a batched STW pass spreads the same budget over
    // ceil(budget / batchBytes) bounded barriers (one per tick).
    params.alpha = 1.0;
    // Batched barriers: no single STW barrier moves more than
    // kBatchBytes — the max/p99 per-barrier rows below show the
    // resulting pause bound.
    params.batchBytes = kBatchBytes;
    // Section-specific overrides (e.g. the --target-pause-us section's
    // oversized batch cap plus adaptive pause target) layer on last.
    if (tweak)
        tweak(params);
    ConcurrentRelocDaemon daemon(runtime, service, params);
    daemon.start();

    std::vector<LatencyDigest> reads(threads), updates(threads);
    std::vector<std::thread> mutators;
    std::atomic<int> running{threads};
    Stopwatch wall;
    for (int t = 0; t < threads; t++) {
        mutators.emplace_back([&, t] {
            ThreadRegistration reg(runtime);
            Store &store = *stores[t];
            // Drive only the surviving odd keys so the live set stays
            // fixed and fragmentation moves only through defrag.
            ycsb::Workload workload(ycsb::WorkloadKind::A,
                                    records_per_thread / 2, 17 + t, 500);
            for (uint64_t i = 0; i < ops_per_thread; i++) {
                const ycsb::Request request = workload.next();
                const std::string key =
                    ycsb::Workload::keyFor(2 * request.key + 1);
                Stopwatch watch;
                {
                    // The typed layer's operation bracket: a real
                    // ConcurrentAccessScope while the daemon's mode
                    // permits campaigns, two loads under pure STW.
                    access_scope scope;
                    switch (request.op) {
                      case ycsb::OpType::Read:
                        store.get(key);
                        break;
                      default:
                        store.set(key,
                                  workload.valueFor(2 * request.key + 1));
                        break;
                    }
                }
                const uint64_t ns = watch.elapsedNs();
                if (request.op == ycsb::OpType::Read)
                    reads[t].add(ns);
                else
                    updates[t].add(ns);
                poll();
            }
            running.fetch_sub(1, std::memory_order_release);
        });
    }
    // Sample fragmentation while the mutators run: the controller's
    // hysteresis lets it relax back into [F_lb, F_ub] once the target
    // is hit, so the minimum — not the final reading — shows whether
    // defrag crossed F_lb under load.
    result.frag_min = result.frag_before;
    result.rss_min = result.rss_before;
    size_t samples = 0, samples_below = 0;
    while (running.load(std::memory_order_acquire) > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        const double frag = service.fragmentation();
        result.frag_min = std::min(result.frag_min, frag);
        result.rss_min = std::min(result.rss_min, service.rss());
        samples++;
        if (frag <= params.fLb)
            samples_below++;
    }
    result.frag_below_lb =
        samples == 0 ? 0
                     : static_cast<double>(samples_below) /
                           static_cast<double>(samples);
    for (auto &m : mutators)
        m.join();
    result.wall_sec = wall.elapsedSec();
    daemon.stop();

    result.frag_after = service.fragmentation();
    result.rss_after = service.rss();
    result.rss_min = std::min(result.rss_min, result.rss_after);
    result.defrag_sec = daemon.totalDefragSec();
    result.barriers = runtime.stats().barriers;
    result.passes = daemon.passes();
    result.fallbacks = daemon.fallbacks();
    result.pause_sec = daemon.totalPauseSec();
    result.max_barrier_ms = daemon.maxBarrierPauseSec() * 1e3;
    result.p99_barrier_ms = daemon.barrierPauses().percentile(99) / 1e6;
    result.totals = daemon.totals();
    for (size_t i = 0; i < anchorage::kNumMechanisms; i++)
        result.by_mech[i] = daemon.totalsFor(
            static_cast<anchorage::MechanismKind>(i));
    result.batch_bytes_final = daemon.batchBytesCurrent();

    LatencyDigest all_reads, all_updates;
    for (int t = 0; t < threads; t++) {
        result.total_ops += reads[t].count() + updates[t].count();
        all_reads.merge(reads[t]);
        all_updates.merge(updates[t]);
    }
    result.read_p50 = all_reads.percentile(50) / 1e3;
    result.read_p99 = all_reads.percentile(99) / 1e3;
    result.read_p999 = all_reads.percentile(99.9) / 1e3;
    result.update_p50 = all_updates.percentile(50) / 1e3;
    result.update_p99 = all_updates.percentile(99) / 1e3;
    result.update_p999 = all_updates.percentile(99.9) / 1e3;

    {
        ThreadRegistration reg(runtime);
        stores.clear();
    }
    return result;
}

/** Fold one mode's result into the JSON report under a prefix. */
void
reportMode(alaska::bench::JsonReport &report, const std::string &prefix,
           const ModeResult &r)
{
    report.add(prefix + ".read_p50_us", r.read_p50, "us");
    report.add(prefix + ".read_p99_us", r.read_p99, "us");
    report.add(prefix + ".read_p999_us", r.read_p999, "us");
    report.add(prefix + ".update_p50_us", r.update_p50, "us");
    report.add(prefix + ".update_p99_us", r.update_p99, "us");
    report.add(prefix + ".update_p999_us", r.update_p999, "us");
    report.add(prefix + ".throughput_mops",
               static_cast<double>(r.total_ops) / r.wall_sec / 1e6,
               "Mops");
    report.add(prefix + ".frag_before", r.frag_before);
    report.add(prefix + ".frag_after", r.frag_after);
    report.add(prefix + ".frag_min", r.frag_min);
    report.add(prefix + ".barriers", static_cast<double>(r.barriers));
    report.add(prefix + ".pause_ms", r.pause_sec * 1e3, "ms");
    report.add(prefix + ".abort_rate", r.totals.abortRate());
    report.add(prefix + ".committed",
               static_cast<double>(r.totals.committed));
    report.add(prefix + ".limbo_parked",
               static_cast<double>(r.totals.limboParked));
    report.add(prefix + ".grace_waits",
               static_cast<double>(r.totals.graceWaits));
    report.add(prefix + ".grace_wait_ms", r.totals.graceWaitSec * 1e3,
               "ms");
}

/**
 * The `--mode=` section: one named defrag mode under the multi-thread
 * YCSB load, reported on the axes that distinguish the meshing modes —
 * resident bytes recovered (not just extent), what that recovery cost
 * in CPU seconds and in mutator pause time, and proof of the zero-copy
 * zero-barrier claim (movedObjects, barriers).
 */
void
runSingleModeSection(const char *mode_name, anchorage::DefragMode mode,
                     int threads, size_t shards,
                     uint64_t records_per_thread,
                     uint64_t ops_per_thread,
                     alaska::bench::JsonReport *report)
{
    std::printf("=== YCSB-A at %d mutator threads, background defrag "
                "mode=%s (shards=%zu) ===\n\n",
                threads, mode_name, shards);
    const ModeResult r = runMode(mode, threads, shards,
                                 records_per_thread, ops_per_thread);

    auto row = [](const char *name, double v, const char *unit) {
        std::printf("%-30s %14.2f %s\n", name, v, unit);
    };
    row("read p50", r.read_p50, "us");
    row("read p99", r.read_p99, "us");
    row("update p99", r.update_p99, "us");
    row("throughput",
        static_cast<double>(r.total_ops) / r.wall_sec / 1e6, "Mops");
    row("virtual fragmentation start", r.frag_before, "");
    row("virtual fragmentation end", r.frag_after, "");
    row("rss after fragmenting",
        static_cast<double>(r.rss_before) / 1e6, "MB");
    row("rss minimum (in run)",
        static_cast<double>(r.rss_min) / 1e6, "MB");
    row("rss at end", static_cast<double>(r.rss_after) / 1e6, "MB");
    // Resident bytes the mechanism returned to the kernel: extent the
    // movers trimmed plus frames meshing released. Attributed at the
    // mechanism, not inferred from RSS samples — the update phase
    // allocates concurrently, so heap growth would mask recovery that
    // is nonetheless real (end RSS sits recovered_mb below where a
    // no-defrag run would land).
    const double recovered_mb =
        static_cast<double>(r.totals.reclaimedBytes +
                            r.totals.bytesRecovered) / 1e6;
    row("resident bytes recovered", recovered_mb, "MB");
    std::printf("%-30s %14zu\n", "pages meshed",
                static_cast<size_t>(r.totals.pagesMeshed));
    std::printf("%-30s %14zu\n", "split faults",
                static_cast<size_t>(r.totals.splitFaults));
    std::printf("%-30s %14zu\n", "objects moved (copies)",
                static_cast<size_t>(r.totals.movedObjects));
    std::printf("%-30s %14zu\n", "campaign commits",
                static_cast<size_t>(r.totals.committed));
    std::printf("%-30s %14zu\n", "stop-the-world barriers",
                static_cast<size_t>(r.barriers));
    row("mutator pause time", r.pause_sec * 1e3, "ms");
    row("defrag cpu time", r.defrag_sec * 1e3, "ms");
    row("recovered per cpu-second",
        r.defrag_sec > 0 ? recovered_mb / r.defrag_sec : 0.0,
        "MB/s");
    if (r.pause_sec > 0)
        row("recovered per pause-us",
            recovered_mb * 1e6 / (r.pause_sec * 1e6), "B/us");
    else
        std::printf("%-30s %14s\n", "recovered per pause-us",
                    "inf (no pause)");

    // Per-mechanism attribution: what each mechanism — not the mode as
    // a whole — moved and recovered. Under hybrid/mesh-hybrid this is
    // the breakdown the folded totals above cannot show (e.g. how much
    // of the recovery the STW fallback did vs the campaigns).
    std::printf("\n%-12s %12s %13s %13s %12s %12s\n", "mechanism",
                "moved objs", "recovered MB", "pages meshed", "commits",
                "aborts");
    for (size_t i = 0; i < anchorage::kNumMechanisms; i++) {
        const anchorage::DefragStats &m = r.by_mech[i];
        std::printf("%-12s %12zu %13.2f %13zu %12zu %12zu\n",
                    anchorage::mechanismName(
                        static_cast<anchorage::MechanismKind>(i)),
                    static_cast<size_t>(m.movedObjects),
                    static_cast<double>(m.reclaimedBytes +
                                        m.bytesRecovered) / 1e6,
                    static_cast<size_t>(m.pagesMeshed),
                    static_cast<size_t>(m.committed),
                    static_cast<size_t>(m.aborted));
    }

    if (report != nullptr) {
        std::string prefix = std::string("mode.") + mode_name;
        reportMode(*report, prefix, r);
        for (size_t i = 0; i < anchorage::kNumMechanisms; i++) {
            const anchorage::DefragStats &m = r.by_mech[i];
            const std::string mp =
                prefix + "." +
                anchorage::mechanismName(
                    static_cast<anchorage::MechanismKind>(i));
            report->add(mp + ".recovered_mb",
                        static_cast<double>(m.reclaimedBytes +
                                            m.bytesRecovered) / 1e6,
                        "MB");
            report->add(mp + ".moved_objects",
                        static_cast<double>(m.movedObjects));
        }
        report->add(prefix + ".rss_before_mb",
                    static_cast<double>(r.rss_before) / 1e6, "MB");
        report->add(prefix + ".rss_min_mb",
                    static_cast<double>(r.rss_min) / 1e6, "MB");
        report->add(prefix + ".recovered_mb", recovered_mb, "MB");
        report->add(prefix + ".pages_meshed",
                    static_cast<double>(r.totals.pagesMeshed));
        report->add(prefix + ".split_faults",
                    static_cast<double>(r.totals.splitFaults));
        report->add(prefix + ".moved_objects",
                    static_cast<double>(r.totals.movedObjects));
        report->add(prefix + ".defrag_sec", r.defrag_sec, "s");
    }
}

void
runMultiThreadSection(int threads, size_t shards,
                      uint64_t records_per_thread,
                      uint64_t ops_per_thread,
                      alaska::bench::JsonReport *report)
{
    std::printf("=== YCSB-A tail latency at %d mutator threads with "
                "background defrag ===\n"
                "=== StopTheWorld vs Concurrent at shards=%zu, plus "
                "Concurrent at shards=1 (pre-shard baseline) ===\n"
                "=== closed-loop: per-op service time; pauses do not "
                "queue (no coordinated-omission correction — see "
                "serve_bench for open-loop) ===\n\n",
                threads, shards);
    const ModeResult stw = runMode(anchorage::DefragMode::StopTheWorld,
                                   threads, shards, records_per_thread,
                                   ops_per_thread);
    const ModeResult conc = runMode(anchorage::DefragMode::Concurrent,
                                    threads, shards, records_per_thread,
                                    ops_per_thread);
    // The shards=1 baseline column; when the run is already at
    // shards=1 the concurrent column IS the baseline, so reuse it
    // instead of measuring the identical configuration twice.
    const ModeResult conc1 =
        shards == 1 ? conc
                    : runMode(anchorage::DefragMode::Concurrent,
                              threads, 1, records_per_thread,
                              ops_per_thread);

    std::printf("%-30s %14s %14s %14s\n", "metric", "stw",
                "concurrent", "conc/1shard");
    auto row = [](const char *name, double a, double b, double c,
                  const char *unit) {
        std::printf("%-30s %12.2f%s %12.2f%s %12.2f%s\n", name, a, unit,
                    b, unit, c, unit);
    };
    row("read p50", stw.read_p50, conc.read_p50, conc1.read_p50, "us");
    row("read p99", stw.read_p99, conc.read_p99, conc1.read_p99, "us");
    row("read p999", stw.read_p999, conc.read_p999, conc1.read_p999,
        "us");
    row("update p50", stw.update_p50, conc.update_p50, conc1.update_p50,
        "us");
    row("update p99", stw.update_p99, conc.update_p99, conc1.update_p99,
        "us");
    row("update p999", stw.update_p999, conc.update_p999,
        conc1.update_p999, "us");
    row("throughput",
        static_cast<double>(stw.total_ops) / stw.wall_sec / 1e6,
        static_cast<double>(conc.total_ops) / conc.wall_sec / 1e6,
        static_cast<double>(conc1.total_ops) / conc1.wall_sec / 1e6,
        "Mops");
    row("fragmentation at start", stw.frag_before, conc.frag_before,
        conc1.frag_before, "  ");
    row("fragmentation at end", stw.frag_after, conc.frag_after,
        conc1.frag_after, "  ");
    row("fragmentation min (in run)", stw.frag_min, conc.frag_min,
        conc1.frag_min, "  ");
    row("run fraction below F_lb", stw.frag_below_lb * 100,
        conc.frag_below_lb * 100, conc1.frag_below_lb * 100, "% ");
    row("mutator pause time", stw.pause_sec * 1e3, conc.pause_sec * 1e3,
        conc1.pause_sec * 1e3, "ms");
    row("max per-barrier pause", stw.max_barrier_ms, conc.max_barrier_ms,
        conc1.max_barrier_ms, "ms");
    row("p99 per-barrier pause", stw.p99_barrier_ms,
        conc.p99_barrier_ms, conc1.p99_barrier_ms, "ms");
    row("max bytes in one barrier",
        static_cast<double>(stw.totals.maxBarrierBytes) / 1024.0,
        static_cast<double>(conc.totals.maxBarrierBytes) / 1024.0,
        static_cast<double>(conc1.totals.maxBarrierBytes) / 1024.0,
        "KB");
    std::printf("%-30s %13zu  %13zu  %13zu\n", "stop-the-world barriers",
                static_cast<size_t>(stw.barriers),
                static_cast<size_t>(conc.barriers),
                static_cast<size_t>(conc1.barriers));
    std::printf("%-30s %13zu  %13zu  %13zu\n", "defrag passes/campaigns",
                stw.passes, conc.passes, conc1.passes);
    std::printf("%-30s %13zu  %13zu  %13zu\n", "objects moved",
                stw.totals.movedObjects, conc.totals.movedObjects,
                conc1.totals.movedObjects);
    std::printf("%-30s %11.1fMB  %11.1fMB  %11.1fMB\n",
                "bytes reclaimed",
                static_cast<double>(stw.totals.reclaimedBytes) / 1e6,
                static_cast<double>(conc.totals.reclaimedBytes) / 1e6,
                static_cast<double>(conc1.totals.reclaimedBytes) / 1e6);
    // Recovery attributed at the mechanism (daemon totalsFor()), not
    // folded per mode: each column should put all its recovery in the
    // one mechanism its policy composes — the attribution proves no
    // hidden fallback did the work.
    const auto mech_mb = [](const ModeResult &r,
                            anchorage::MechanismKind kind) {
        const anchorage::DefragStats &m =
            r.by_mech[static_cast<size_t>(kind)];
        return static_cast<double>(m.reclaimedBytes +
                                   m.bytesRecovered) / 1e6;
    };
    for (const auto kind :
         {anchorage::MechanismKind::Stw,
          anchorage::MechanismKind::Campaign,
          anchorage::MechanismKind::Mesh}) {
        char label[40];
        std::snprintf(label, sizeof label, "  recovered via %s",
                      anchorage::mechanismName(kind));
        std::printf("%-30s %11.1fMB  %11.1fMB  %11.1fMB\n", label,
                    mech_mb(stw, kind), mech_mb(conc, kind),
                    mech_mb(conc1, kind));
    }
    std::printf("%-30s %8zu/%-5zu %8zu/%-5zu %8zu/%-5zu\n",
                "campaign commits/aborts",
                static_cast<size_t>(stw.totals.committed),
                static_cast<size_t>(stw.totals.aborted),
                static_cast<size_t>(conc.totals.committed),
                static_cast<size_t>(conc.totals.aborted),
                static_cast<size_t>(conc1.totals.committed),
                static_cast<size_t>(conc1.totals.aborted));
    std::printf("%-30s %13.3f  %13.3f  %13.3f\n", "campaign abort rate",
                stw.totals.abortRate(), conc.totals.abortRate(),
                conc1.totals.abortRate());
    std::printf("%-30s %13zu  %13zu  %13zu\n", "campaign grace waits",
                static_cast<size_t>(stw.totals.graceWaits),
                static_cast<size_t>(conc.totals.graceWaits),
                static_cast<size_t>(conc1.totals.graceWaits));
    row("campaign grace wait time", stw.totals.graceWaitSec * 1e3,
        conc.totals.graceWaitSec * 1e3, conc1.totals.graceWaitSec * 1e3,
        "ms");
    std::printf("%-30s %13zu  %13zu  %13zu\n", "sources limbo-parked",
                static_cast<size_t>(stw.totals.limboParked),
                static_cast<size_t>(conc.totals.limboParked),
                static_cast<size_t>(conc1.totals.limboParked));

    if (report != nullptr) {
        reportMode(*report, "stw", stw);
        reportMode(*report, "conc", conc);
        if (shards != 1)
            reportMode(*report, "conc1", conc1);
    }

    std::printf("\nConcurrent mode must show zero barriers (relocation "
                "is speculative, paper par.7): defrag\n"
                "happens while all %d mutators run, and only the "
                "abort/commit protocol arbitrates races.\n"
                "All modes should drive fragmentation from above "
                "F_ub=%.2f to below F_lb=%.2f (see the\n"
                "in-run minimum; the controller's hysteresis then lets "
                "churn relax back into the band).\n"
                "The conc/1shard column funnels every halloc/hfree "
                "through one service lock — the pre-shard\n"
                "design; the sharded columns give each thread its own "
                "sub-heap chain and lock.\n"
                "STW passes are batched: no single barrier moves more "
                "than batchBytes=%zu KiB (+1 object), so the\n"
                "max/p99 per-barrier rows — not the pause total — are "
                "the mutator's worst-case exposure.\n",
                threads, anchorage::ControlParams{}.fUb,
                anchorage::ControlParams{}.fLb, kBatchBytes >> 10);
}

/** Deliberately oversized per-barrier bound for the adaptive-barrier
 *  section: a single barrier may move this much, far above any
 *  sub-millisecond pause target, so a static bound overshoots. */
constexpr size_t kOversizedBatchBytes = 8 << 20;

/**
 * The `--target-pause-us=N` section: the same StopTheWorld load twice,
 * both runs capped at kOversizedBatchBytes per barrier. The fixed run
 * uses that cap as its static bound — its barriers move as much as the
 * budget allows and the pause tail lands wherever the copy rate puts
 * it. The adaptive run sets ControlParams::targetBarrierPauseSec: the
 * controller starts each barrier at batchBytesFloor, grows the budget
 * only while pauses sit under half the target, and cuts it
 * multiplicatively on overshoot — so its pause tail should hold near
 * the target while the fixed run overshoots by orders of magnitude.
 */
void
runTargetPauseSection(double target_us, int threads, size_t shards,
                      uint64_t records_per_thread,
                      uint64_t ops_per_thread,
                      alaska::bench::JsonReport *report)
{
    std::printf("=== adaptive barrier budget vs fixed: YCSB-A at %d "
                "threads, StopTheWorld, target pause %.0fus ===\n"
                "=== both runs capped at batchBytes=%zu KiB; the "
                "adaptive run may spend at most that per barrier ===\n\n",
                threads, target_us, kOversizedBatchBytes >> 10);

    const ModeResult adaptive = runMode(
        anchorage::DefragMode::StopTheWorld, threads, shards,
        records_per_thread, ops_per_thread,
        [target_us](anchorage::ControlParams &params) {
            params.batchBytes = kOversizedBatchBytes;
            params.targetBarrierPauseSec = target_us * 1e-6;
        });
    const ModeResult fixed = runMode(
        anchorage::DefragMode::StopTheWorld, threads, shards,
        records_per_thread, ops_per_thread,
        [](anchorage::ControlParams &params) {
            params.batchBytes = kOversizedBatchBytes;
        });

    auto row = [](const char *name, double a, double b,
                  const char *unit) {
        std::printf("%-30s %12.2f%s %12.2f%s\n", name, a, unit, b,
                    unit);
    };
    std::printf("%-30s %14s %14s\n", "metric", "adaptive", "fixed");
    row("max per-barrier pause", adaptive.max_barrier_ms * 1e3,
        fixed.max_barrier_ms * 1e3, "us");
    row("p99 per-barrier pause", adaptive.p99_barrier_ms * 1e3,
        fixed.p99_barrier_ms * 1e3, "us");
    row("total mutator pause", adaptive.pause_sec * 1e3,
        fixed.pause_sec * 1e3, "ms");
    std::printf("%-30s %13zu  %13zu \n", "stop-the-world barriers",
                static_cast<size_t>(adaptive.barriers),
                static_cast<size_t>(fixed.barriers));
    row("final batch budget",
        static_cast<double>(adaptive.batch_bytes_final) / 1024.0,
        static_cast<double>(fixed.batch_bytes_final) / 1024.0, "KiB");
    row("bytes reclaimed",
        static_cast<double>(adaptive.totals.reclaimedBytes) / 1e6,
        static_cast<double>(fixed.totals.reclaimedBytes) / 1e6, "MB");
    row("fragmentation at end", adaptive.frag_after, fixed.frag_after,
        "  ");
    row("read p99", adaptive.read_p99, fixed.read_p99, "us");

    std::printf("\nThe adaptive run's max per-barrier pause should sit "
                "near the %.0fus target (the controller\n"
                "overshoots once, then multiplicatively cuts the batch "
                "budget); the fixed run's first full\n"
                "barrier moves up to %zu KiB in one stop and lands "
                "wherever the copy rate puts it. Both\n"
                "runs reclaim the same holes — the target trades "
                "barrier count for pause bound, not recovery.\n",
                target_us, kOversizedBatchBytes >> 10);

    if (report != nullptr) {
        report->add("pause.target_us", target_us, "us");
        report->add("pause.adaptive_max_barrier_us",
                    adaptive.max_barrier_ms * 1e3, "us");
        report->add("pause.fixed_max_barrier_us",
                    fixed.max_barrier_ms * 1e3, "us");
        report->add("pause.adaptive_p99_barrier_us",
                    adaptive.p99_barrier_ms * 1e3, "us");
        report->add("pause.fixed_p99_barrier_us",
                    fixed.p99_barrier_ms * 1e3, "us");
        report->add("pause.adaptive_barriers",
                    static_cast<double>(adaptive.barriers));
        report->add("pause.fixed_barriers",
                    static_cast<double>(fixed.barriers));
        report->add("pause.adaptive_batch_final_kib",
                    static_cast<double>(adaptive.batch_bytes_final) /
                        1024.0,
                    "KiB");
        report->add("pause.adaptive_reclaimed_mb",
                    static_cast<double>(
                        adaptive.totals.reclaimedBytes) / 1e6,
                    "MB");
        report->add("pause.fixed_reclaimed_mb",
                    static_cast<double>(fixed.totals.reclaimedBytes) /
                        1e6,
                    "MB");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t records = 100000;
    uint64_t ops = 400000;
    int threads = 8;
    size_t shards = 8;
    uint64_t mrecords = 8000;
    uint64_t mops = 300000;
    bool single_only = false;
    bool multi_only = false;
    bool telemetry_dump = false;
    const char *trace_file = nullptr;
    const char *out_file = nullptr;
    const char *mode_name = nullptr;
    double target_pause_us = 0;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            return arg.compare(0, std::strlen(prefix), prefix) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (arg == "--smoke") {
            records = 5000;
            ops = 20000;
            threads = 4;
            mrecords = 2000;
            mops = 8000;
        } else if (const char *v = value("--threads=")) {
            threads = std::atoi(v);
        } else if (const char *v = value("--shards=")) {
            shards = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--records=")) {
            records = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--ops=")) {
            ops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--mrecords=")) {
            mrecords = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--mops=")) {
            mops = std::strtoull(v, nullptr, 10);
        } else if (arg == "--single-only") {
            single_only = true;
        } else if (arg == "--multi-only") {
            multi_only = true;
        } else if (value("--mode=") != nullptr) {
            mode_name = argv[i] + std::strlen("--mode=");
        } else if (const char *v = value("--target-pause-us=")) {
            target_pause_us = std::atof(v);
        } else if (arg == "--telemetry") {
            telemetry_dump = true;
        } else if (value("--trace=") != nullptr) {
            // Point into argv, not the loop-local string.
            trace_file = argv[i] + std::strlen("--trace=");
        } else if (const char *v = alaska::bench::outFileArg(argv[i])) {
            out_file = v; // points into argv, which outlives the loop
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--threads=N] "
                         "[--shards=N] [--records=N] [--ops=N] "
                         "[--mrecords=N] [--mops=N] [--single-only] "
                         "[--multi-only] [--mode=stw|concurrent|hybrid"
                         "|mesh|mesh-hybrid] [--target-pause-us=N] "
                         "[--telemetry] [--trace=FILE] [--out=FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    if (trace_file != nullptr)
        alaska::telemetry::enableTracing();

    alaska::bench::JsonReport report;
    alaska::bench::JsonReport *rp = out_file ? &report : nullptr;
    if (mode_name != nullptr) {
        // Named-mode run: replaces both default sections (the default
        // invocation's report shape — and so the committed baseline's
        // checksum — is untouched by this path).
        anchorage::DefragMode mode;
        const std::string name = mode_name;
        if (name == "stw")
            mode = anchorage::DefragMode::StopTheWorld;
        else if (name == "concurrent")
            mode = anchorage::DefragMode::Concurrent;
        else if (name == "hybrid")
            mode = anchorage::DefragMode::Hybrid;
        else if (name == "mesh")
            mode = anchorage::DefragMode::Mesh;
        else if (name == "mesh-hybrid")
            mode = anchorage::DefragMode::MeshHybrid;
        else {
            std::fprintf(stderr,
                         "--mode= must be one of stw, concurrent, "
                         "hybrid, mesh, mesh-hybrid\n");
            return 2;
        }
        runSingleModeSection(mode_name, mode, threads, shards,
                             mrecords, mops, rp);
    } else if (target_pause_us > 0) {
        // Adaptive-barrier section: replaces the default sections, so
        // the default invocation's report shape (and the committed
        // baseline) stays untouched.
        runTargetPauseSection(target_pause_us, threads, shards,
                              mrecords, mops, rp);
    } else {
        if (!multi_only)
            runSingleThreadSection(records, ops, rp);
        if (!single_only)
            runMultiThreadSection(threads, shards, mrecords, mops, rp);
    }
    if (telemetry_dump) {
        std::printf("\n");
        alaska::telemetry::writeText(alaska::telemetry::snapshot(),
                                     stdout);
    }
    if (trace_file != nullptr) {
        if (!alaska::telemetry::dumpTrace(trace_file)) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         trace_file);
            return 1;
        }
        std::printf("wrote Chrome trace to %s (open at "
                    "https://ui.perfetto.dev)\n",
                    trace_file);
    }
    if (out_file != nullptr &&
        !report.writeTo(out_file, "tab_ycsb_latency"))
        return 1;
    return 0;
}
