/**
 * @file
 * Figure 5 / §3.3 microbenchmarks: the cost of the handle translation
 * sequence itself — the ~6-instruction path of Figure 5 — against a
 * raw dereference, plus the surrounding costs the paper discusses:
 * the handle-fault check (§7, ~1-2%), pin stores (§3.4), safepoint
 * polls (§4.1.3), and halloc vs malloc.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "core/malloc_service.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"

namespace
{

using namespace alaska;

MallocService *gService;
Runtime *gRt;
std::unique_ptr<ThreadRegistration> gReg;
void *gHandle;
void *gRawPtr;

void
setup()
{
    gService = new MallocService();
    gRt = new Runtime(RuntimeConfig{.tableCapacity = 1u << 16});
    gRt->attachService(gService);
    gReg = std::make_unique<ThreadRegistration>(*gRt);
    gHandle = gRt->halloc(64);
    gRawPtr = std::malloc(64);
    *static_cast<int64_t *>(translate(gHandle)) = 42;
    *static_cast<int64_t *>(gRawPtr) = 42;
}

void
BM_RawDeref(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            *static_cast<int64_t *>(gRawPtr));
    }
}
BENCHMARK(BM_RawDeref);

void
BM_TranslateAndDeref(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            *static_cast<int64_t *>(translate(gHandle)));
    }
}
BENCHMARK(BM_TranslateAndDeref);

void
BM_TranslateRawPointerPath(benchmark::State &state)
{
    // The "not a handle" branch: raw pointers skip the table load.
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            *static_cast<int64_t *>(translate(gRawPtr)));
    }
}
BENCHMARK(BM_TranslateRawPointerPath);

void
BM_TranslateCheckedDeref(benchmark::State &state)
{
    // With the handle-fault check (§7): one extra flag test.
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            *static_cast<int64_t *>(translateChecked(gHandle)));
    }
}
BENCHMARK(BM_TranslateCheckedDeref);

void
BM_PinStoreTranslateDeref(benchmark::State &state)
{
    // What the compiler actually emits: pin store + translate.
    uint64_t slots[1];
    PinFrame frame(slots, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            *static_cast<int64_t *>(frame.pin(0, gHandle)));
    }
}
BENCHMARK(BM_PinStoreTranslateDeref);

void
BM_AtomicPinTranslateDeref(benchmark::State &state)
{
    // The naive tracking the paper rejects: atomic pin counts.
    for (auto _ : state) {
        AtomicPin pin(gHandle);
        benchmark::DoNotOptimize(*static_cast<int64_t *>(pin.get()));
    }
}
BENCHMARK(BM_AtomicPinTranslateDeref);

void
BM_SafepointPoll(benchmark::State &state)
{
    for (auto _ : state)
        poll();
}
BENCHMARK(BM_SafepointPoll);

void
BM_MallocFree64(benchmark::State &state)
{
    for (auto _ : state) {
        void *p = std::malloc(64);
        benchmark::DoNotOptimize(p);
        std::free(p);
    }
}
BENCHMARK(BM_MallocFree64);

void
BM_HallocHfree64(benchmark::State &state)
{
    for (auto _ : state) {
        void *h = gRt->halloc(64);
        benchmark::DoNotOptimize(h);
        gRt->hfree(h);
    }
}
BENCHMARK(BM_HallocHfree64);

} // namespace

int
main(int argc, char **argv)
{
    setup();
    std::printf("=== Figure 5 / par.3.3: translation cost "
                "microbenchmarks ===\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    gReg.reset();
    gRt->hfree(gHandle);
    std::free(gRawPtr);
    delete gRt;
    delete gService;
    return 0;
}
