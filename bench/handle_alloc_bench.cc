/**
 * @file
 * Allocation throughput at 1–8 threads, in two sections.
 *
 * Section 1 — handle *ID* allocation, comparing three designs over the
 * same handle-table entry layout:
 *
 *   single-mutex : the pre-sharding design — one global mutex-protected
 *                  free list plus a bump cursor (the baseline).
 *   sharded      : HandleTable as shipped — per-thread free-list shards,
 *                  cache-line padded, plus the global bump cursor.
 *   magazine     : the full fast path — registered threads cache IDs in
 *                  a per-thread magazine and hit no shared state in
 *                  steady state (Runtime::allocateHandleId).
 *
 * Section 2 — full halloc/hfree over the Anchorage service, comparing
 * a single-shard configuration (every allocation behind one service
 * lock, the pre-sharding design) against the sharded service (one
 * sub-heap chain + lock per shard, thread-affine). This is the
 * allocation hot path the sharded sub-heap work targets.
 *
 * Section 3 — translation: the raw translate() fast path against the
 * typed layer it compiles down to (api::deref, the access<T> guard,
 * and an access_scope-bracketed op), first under the stop-the-world
 * discipline and then under Scoped — idle and with a campaign flagged
 * in flight. This is the zero-overhead check for src/api and for the
 * epoch rework: the typed columns must sit within noise of the raw
 * column, and scope-bracketed derefs under Scoped must stay within a
 * few percent of raw (the epoch publish amortizes over the operation;
 * no per-deref RMW remains).
 *
 * Workload: each thread owns a window of live IDs (or handles) and
 * repeatedly releases a slot and allocates a replacement, which is the
 * steady state of a mutator under churn. One "op" is one
 * release+allocate pair (sections 1-2) or one 8-byte load through a
 * translation (section 3).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "api/api.h"
#include "base/logging.h"
#include "base/timer.h"
#include "bench/bench_util.h"
#include "core/handle_table.h"
#include "core/malloc_service.h"
#include "services/concurrent_reloc.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;

constexpr uint32_t kTableCapacity = 1u << 20;
constexpr int kWindow = 256;  // live IDs held per thread
constexpr int kPairsPerThread = 200000;

/**
 * The pre-sharding allocator, reproduced faithfully: one mutex, one
 * free list, one bump cursor, with the same always-on invariant checks
 * and live accounting the original HandleTable::allocate/release had.
 */
class SingleMutexTable
{
  public:
    explicit SingleMutexTable(uint32_t capacity)
        : entries_(capacity), capacity_(capacity)
    {}

    uint32_t
    allocate()
    {
        {
            std::lock_guard<std::mutex> guard(freeMutex_);
            if (!freeList_.empty()) {
                const uint32_t id = freeList_.back();
                freeList_.pop_back();
                entries_[id].state.store(HandleTableEntry::Allocated,
                                         std::memory_order_relaxed);
                live_.fetch_add(1, std::memory_order_relaxed);
                return id;
            }
        }
        const uint32_t id = bump_.fetch_add(1, std::memory_order_relaxed);
        if (id >= capacity_)
            fatal("handle table exhausted (%u entries)", capacity_);
        entries_[id].state.store(HandleTableEntry::Allocated,
                                 std::memory_order_relaxed);
        live_.fetch_add(1, std::memory_order_relaxed);
        return id;
    }

    void
    release(uint32_t id)
    {
        ALASKA_ASSERT(id < capacity_, "id %u out of range", id);
        auto &e = entries_[id];
        ALASKA_ASSERT(e.allocated(), "double free of handle %u", id);
        e.ptr.store(nullptr, std::memory_order_relaxed);
        e.size = 0;
        e.state.store(0, std::memory_order_relaxed);
        live_.fetch_sub(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> guard(freeMutex_);
        freeList_.push_back(id);
    }

  private:
    std::vector<HandleTableEntry> entries_;
    uint32_t capacity_;
    std::atomic<uint32_t> bump_{0};
    std::atomic<uint32_t> live_{0};
    std::mutex freeMutex_;
    std::vector<uint32_t> freeList_;
};

/** Churn fn(): release+allocate pairs over a per-thread window. */
template <typename AllocFn, typename ReleaseFn>
void
churn(AllocFn &&alloc, ReleaseFn &&release)
{
    uint32_t window[kWindow];
    for (int i = 0; i < kWindow; i++)
        window[i] = alloc();
    for (int i = 0; i < kPairsPerThread; i++) {
        const int slot = i % kWindow;
        release(window[slot]);
        window[slot] = alloc();
    }
    for (int i = 0; i < kWindow; i++)
        release(window[i]);
}

/** Run nThreads copies of fn concurrently; return Mops/s (pairs). */
template <typename Fn>
double
run(int nThreads, Fn &&fn)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(nThreads));
    Stopwatch watch;
    for (int t = 0; t < nThreads; t++)
        threads.emplace_back(fn);
    for (auto &th : threads)
        th.join();
    const double sec = watch.elapsedSec();
    return static_cast<double>(kPairsPerThread) * nThreads / sec / 1e6;
}

double
benchSingleMutex(int nThreads)
{
    SingleMutexTable table(kTableCapacity);
    return run(nThreads, [&table] {
        churn([&table] { return table.allocate(); },
              [&table](uint32_t id) { table.release(id); });
    });
}

double
benchSharded(int nThreads)
{
    HandleTable table(kTableCapacity);
    return run(nThreads, [&table] {
        churn([&table] { return table.allocate(); },
              [&table](uint32_t id) { table.release(id); });
    });
}

double
benchMagazine(int nThreads)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = kTableCapacity});
    runtime.attachService(&service);
    return run(nThreads, [&runtime] {
        ThreadRegistration reg(runtime);
        churn([&runtime] { return runtime.allocateHandleId(); },
              [&runtime](uint32_t id) { runtime.releaseHandleId(id); });
    });
}

// --- section 2: halloc/hfree over Anchorage ---------------------------------

constexpr size_t kObjectSize = 256;
constexpr int kHallocPairsPerThread = 100000;

/** Per-thread halloc/hfree churn over a window of live handles. */
double
benchHalloc(int nThreads, size_t shards)
{
    alaska::RealAddressSpace space;
    alaska::anchorage::AnchorageService service(
        space, alaska::anchorage::AnchorageConfig{.shards = shards});
    Runtime runtime(RuntimeConfig{.tableCapacity = kTableCapacity});
    runtime.attachService(&service);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(nThreads));
    Stopwatch watch;
    for (int t = 0; t < nThreads; t++) {
        threads.emplace_back([&runtime] {
            ThreadRegistration reg(runtime);
            void *window[kWindow];
            for (int i = 0; i < kWindow; i++)
                window[i] = runtime.halloc(kObjectSize);
            for (int i = 0; i < kHallocPairsPerThread; i++) {
                const int slot = i % kWindow;
                runtime.hfree(window[slot]);
                window[slot] = runtime.halloc(kObjectSize);
            }
            for (int i = 0; i < kWindow; i++)
                runtime.hfree(window[i]);
        });
    }
    for (auto &th : threads)
        th.join();
    const double sec = watch.elapsedSec();
    return static_cast<double>(kHallocPairsPerThread) * nThreads / sec /
           1e6;
}

// --- section 3: raw translate vs the typed guard path -----------------------

constexpr int kDerefReps = 20000;
// Trials interleave the columns round-robin and each column keeps its
// best; 9 rounds (~a second) rides out the multi-hundred-millisecond
// scheduling swings of a shared host that best-of-5 still fell into.
constexpr int kDerefTrials = 9;

/**
 * One timed pass: sum an int64 out of every object in the window,
 * kDerefReps times, loading through `loadFn(handle, i)`. The checksum
 * defeats dead-code elimination. @return seconds taken.
 */
template <typename LoadFn>
double
derefPass(void *const *window, LoadFn &&loadFn)
{
    int64_t checksum = 0;
    Stopwatch watch;
    for (int rep = 0; rep < kDerefReps; rep++) {
        for (int i = 0; i < kWindow; i++)
            checksum += loadFn(window[i], rep);
    }
    const double sec = watch.elapsedSec();
    // Consume the checksum so the loops cannot be optimized away.
    if (checksum == 0x7fffffffffffffff)
        std::printf("(unlikely checksum)\n");
    return sec;
}

/**
 * One timed scope+deref pass: one access_scope per kOpSize-access
 * operation (the policy-layer granularity), api::deref inside.
 * @return seconds taken.
 */
constexpr int kOpSize = 16;

double
scopedDerefPass(void *const *window)
{
    int64_t checksum = 0;
    Stopwatch watch;
    for (int rep = 0; rep < kDerefReps; rep++) {
        for (int base = 0; base < kWindow; base += kOpSize) {
            access_scope op;
            for (int i = 0; i < kOpSize; i++) {
                checksum += api::deref(static_cast<int64_t *>(
                    window[base + i]))[rep % (kObjectSize / 8)];
            }
        }
    }
    const double sec = watch.elapsedSec();
    if (checksum == 0x7fffffffffffffff)
        std::printf("(unlikely checksum)\n");
    return sec;
}

void
benchTypedGuards(alaska::bench::JsonReport *report)
{
    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = kTableCapacity});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    void *window[kWindow];
    for (int i = 0; i < kWindow; i++) {
        window[i] = runtime.halloc(kObjectSize);
        auto *raw = static_cast<int64_t *>(translate(window[i]));
        for (size_t j = 0; j < kObjectSize / sizeof(int64_t); j++)
            raw[j] = i + static_cast<int64_t>(j);
    }
    const double ops = static_cast<double>(kDerefReps) * kWindow / 1e6;

    // Interleave the configurations round-robin and keep each one's
    // best trial: throughput on a shared host drifts on millisecond
    // scales, and measuring the columns back-to-back would fold that
    // drift into the comparison. All trials still land in the JSON
    // report so the baseline diff can see the spread.
    auto track = [&](const char *metric, double sec, double &best) {
        best = std::min(best, sec);
        if (report != nullptr)
            report->add(metric, ops / sec, "Mops");
    };
    double best[4] = {1e30, 1e30, 1e30, 1e30};
    for (int trial = 0; trial < kDerefTrials; trial++) {
        track("deref.raw_mops", derefPass(window, [](void *h, int rep) {
                  return static_cast<int64_t *>(
                      translate(h))[rep % (kObjectSize / 8)];
              }),
              best[0]);
        track("deref.api_deref_mops",
              derefPass(window, [](void *h, int rep) {
                  return api::deref(
                      static_cast<int64_t *>(h))[rep % (kObjectSize / 8)];
              }),
              best[1]);
        track("deref.access_guard_mops",
              derefPass(window, [](void *h, int rep) {
                  alaska::access<int64_t> guard(static_cast<int64_t *>(h));
                  return guard[rep % (kObjectSize / 8)];
              }),
              best[2]);
        track("deref.scope_deref_mops", scopedDerefPass(window), best[3]);
    }
    const double raw = ops / best[0];
    const double typed_deref = ops / best[1];
    const double typed_guard = ops / best[2];
    const double typed_scope = ops / best[3];

    std::printf("\n# translation throughput, stop-the-world discipline "
                "(M loads per second, 1 thread, best of %d)\n",
                kDerefTrials);
    std::printf("# typed columns are the src/api guard family; all "
                "compile down to the raw fast path\n"
                "# (scope+deref opens one access_scope per %d-access "
                "operation, the policy-layer granularity)\n\n",
                kOpSize);
    std::printf("%-16s %14s %14s %14s %14s\n", "", "raw translate",
                "api::deref", "access<T>", "scope+deref");
    std::printf("%-16s %14.2f %14.2f %14.2f %14.2f\n", "Mops/s", raw,
                typed_deref, typed_guard, typed_scope);
    std::printf("%-16s %14s %13.2fx %13.2fx %13.2fx\n", "vs raw", "-",
                typed_deref / raw, typed_guard / raw, typed_scope / raw);

    // --- the same derefs under the Scoped discipline ------------------------
    // The epoch rework's target: scope-bracketed derefs pay only the
    // per-operation epoch publish (plus, campaign-flagged, the
    // mark-aware seq_cst load) — never a per-deref RMW.
    Runtime::declareConcurrentDefrag();
    double sbest[4] = {1e30, 1e30, 1e30, 1e30};
    for (int trial = 0; trial < kDerefTrials; trial++) {
        track("scoped.raw_mops",
              derefPass(window, [](void *h, int rep) {
                  return static_cast<int64_t *>(
                      translate(h))[rep % (kObjectSize / 8)];
              }),
              sbest[0]);
        {
            // The per-deref acceptance bar: inside an already-open
            // scope, api::deref is the translateScoped fast path —
            // one thread-local test over raw translate, no RMW — and
            // must stay within a few percent of the raw column.
            ConcurrentAccessScope pass_scope;
            track("scoped.api_deref_mops",
                  derefPass(window, [](void *h, int rep) {
                      return api::deref(static_cast<int64_t *>(
                          h))[rep % (kObjectSize / 8)];
                  }),
                  sbest[1]);
        }
        track("scoped.scope_deref_mops", scopedDerefPass(window),
              sbest[2]);
        // With a campaign flagged in flight, scopes go mark-aware:
        // every deref is a seq_cst load plus a mark test.
        Runtime::gConcurrentRelocCampaigns.fetch_add(1);
        track("scoped.campaign_scope_deref_mops", scopedDerefPass(window),
              sbest[3]);
        Runtime::gConcurrentRelocCampaigns.fetch_sub(1);
    }
    Runtime::retireConcurrentDefrag();
    const double s_raw = ops / sbest[0];
    const double s_deref = ops / sbest[1];
    const double s_scope = ops / sbest[2];
    const double s_campaign = ops / sbest[3];

    std::printf("\n# translation throughput, Scoped discipline (epoch "
                "scopes; campaign column has a relocation\n"
                "# campaign flagged in flight, so derefs take the "
                "mark-aware path; api::deref runs inside one\n"
                "# open scope — the marginal per-deref cost, the "
                "epoch rework's within-5%%-of-raw target)\n\n");
    std::printf("%-16s %14s %14s %14s %17s\n", "", "raw translate",
                "api::deref", "scope+deref", "campaign+deref");
    std::printf("%-16s %14.2f %14.2f %14.2f %17.2f\n", "Mops/s", s_raw,
                s_deref, s_scope, s_campaign);
    std::printf("%-16s %14s %13.2fx %13.2fx %16.2fx\n", "vs raw", "-",
                s_deref / s_raw, s_scope / s_raw, s_campaign / s_raw);

    for (int i = 0; i < kWindow; i++)
        runtime.hfree(window[i]);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_file = nullptr;
    for (int i = 1; i < argc; i++) {
        if (const char *v = alaska::bench::outFileArg(argv[i])) {
            out_file = v;
        } else {
            std::fprintf(stderr, "usage: %s [--out=FILE]\n", argv[0]);
            return 2;
        }
    }
    alaska::bench::JsonReport report;
    alaska::bench::JsonReport *rp = out_file ? &report : nullptr;

    std::printf("# Handle allocate/release throughput "
                "(M release+allocate pairs per second)\n");
    std::printf("# window=%d live IDs/thread, %d pairs/thread\n\n",
                kWindow, kPairsPerThread);
    std::printf("%-8s %14s %14s %14s %10s\n", "threads", "single-mutex",
                "sharded", "magazine", "speedup");

    for (int nThreads : {1, 2, 4, 8}) {
        const double base = benchSingleMutex(nThreads);
        const double sharded = benchSharded(nThreads);
        const double magazine = benchMagazine(nThreads);
        std::printf("%-8d %14.2f %14.2f %14.2f %9.2fx\n", nThreads, base,
                    sharded, magazine, magazine / base);
        if (rp != nullptr) {
            const std::string prefix =
                "id_alloc.t" + std::to_string(nThreads);
            rp->add(prefix + ".single_mutex_mops", base, "Mops");
            rp->add(prefix + ".sharded_mops", sharded, "Mops");
            rp->add(prefix + ".magazine_mops", magazine, "Mops");
        }
    }

    std::printf("\n# halloc/hfree throughput over Anchorage "
                "(M free+alloc pairs per second, %zu B objects)\n",
                kObjectSize);
    std::printf("# shards=1 is the pre-sharding single-service-lock "
                "design; shards=8 is thread-affine sub-heap chains\n\n");
    std::printf("%-8s %14s %14s %10s\n", "threads", "shards=1",
                "shards=8", "speedup");
    for (int nThreads : {1, 2, 4, 8}) {
        const double single = benchHalloc(nThreads, 1);
        const double sharded = benchHalloc(nThreads, 8);
        std::printf("%-8d %14.2f %14.2f %9.2fx\n", nThreads, single,
                    sharded, sharded / single);
        if (rp != nullptr) {
            const std::string prefix =
                "halloc.t" + std::to_string(nThreads);
            rp->add(prefix + ".shards1_mops", single, "Mops");
            rp->add(prefix + ".shards8_mops", sharded, "Mops");
        }
    }

    benchTypedGuards(rp);
    if (out_file != nullptr &&
        !report.writeTo(out_file, "handle_alloc_bench"))
        return 1;
    return 0;
}
