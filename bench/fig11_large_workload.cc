/**
 * @file
 * Figure 11: defragmentation at large scale. The paper runs the
 * Figure 9 experiment with a 50 GiB maxmemory policy and >100 GiB
 * inserted on a 512 GiB testbed; this reproduction runs the identical
 * logic scaled by 1/50 (1 GiB policy, ~2.5 GiB inserted) over a
 * phantom address space — layout, metadata, controller dynamics and
 * page accounting are real; only the payload bytes are absent (see
 * DESIGN.md). The paper's qualitative findings to look for:
 *
 *  - >2.5x fragmentation once eviction begins;
 *  - Anchorage converges to activedefrag's steady state but over a
 *    longer time frame, because its first pass badly mispredicts the
 *    pause cost and the controller then backs off to honour O_ub;
 *  - Mesh barely moves at this scale.
 *
 * Flags: --smoke (1/8-scale run for CI: 128 MiB policy, ~300 MB
 * inserted, 250 virtual seconds — same eviction onset fraction),
 * --out=FILE (machine-readable JSON; the run is virtual-clock
 * deterministic, so the numbers are bit-stable across runs).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "alloc_sim/jemalloc_model.h"
#include "anchorage/alloc_model_adapter.h"
#include "bench/bench_util.h"
#include "bench/frag_harness.h"
#include "mesh/mesh_model.h"
#include "sim/address_space.h"

int
main(int argc, char **argv)
{
    using namespace alaska;
    using namespace alaska::bench;

    bool smoke = false;
    const char *out_file = nullptr;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (const char *v = outFileArg(argv[i])) {
            out_file = v;
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out=FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("=== Figure 11: large-memory defragmentation "
                "(paper: 50 GiB policy; here %s, scaled %s) "
                "===\n\n",
                smoke ? "128 MiB" : "1 GiB",
                smoke ? "1/400 (smoke)" : "1/50");

    kv::CacheWorkloadConfig workload_config;
    workload_config.maxMemory = smoke ? 128ull << 20 : 1ull << 30;
    workload_config.valueSize = 500;
    workload_config.driftPeriod = smoke ? 50000 : 400000;

    FragTimeline timeline;
    // Virtual seconds, as in the paper's 2000.
    timeline.seconds = smoke ? 250.0 : 1000.0;
    timeline.tickSec = 5.0;
    // ~2.4 GiB inserted in total (smoke: ~300 MB); eviction begins
    // ~40% through either way, so the curves keep their shape.
    timeline.totalInserts = smoke ? 500000 : 4000000;

    std::vector<FragCurve> curves;

    {
        VirtualClock clock;
        JemallocModel model;
        curves.push_back(runFragConfig(
            "baseline", model, workload_config, timeline, clock,
            [](kv::CacheWorkload &) {}));
    }
    {
        VirtualClock clock;
        JemallocModel model;
        curves.push_back(runFragConfig(
            "activedefrag", model, workload_config, timeline, clock,
            [](kv::CacheWorkload &workload) {
                workload.defragCycle(workload.liveRecords() / 10 + 1);
            }));
    }
    {
        VirtualClock clock;
        MeshModel model(timeline.seed);
        model.setProbeBudget(32); // Mesh's default pacing
        curves.push_back(runFragConfig(
            "mesh", model, workload_config, timeline, clock,
            [&model](kv::CacheWorkload &) { model.maintain(); }));
    }
    // Per-anchorage-mode defrag totals, for the efficiency summary:
    // what each mechanism recovered per CPU-second of defrag work and
    // per microsecond of mutator-visible pause.
    struct ModeTotals
    {
        const char *name;
        anchorage::DefragStats stats;
        double defragSec = 0;
        double pauseSec = 0;
    };
    std::vector<ModeTotals> mode_totals;
    double first_pause = 0;
    size_t passes = 0;
    {
        VirtualClock clock;
        PhantomAddressSpace space;
        anchorage::ControlParams control;
        control.useModeledTime = true;
        control.oUb = 0.05; // the paper's 5% overhead maximum
        control.alpha = 0.25;
        // Monolithic passes on purpose: this figure reproduces the
        // paper's alpha-mispredicts-at-scale pause story; the batched
        // bound that fixes it is fig12's subject.
        control.batchBytes = 0;
        // Tighter fragmentation goals so convergence completes within
        // the (scaled) window; the paper's run is 2x longer.
        control.fUb = 1.25;
        control.fLb = 1.05;
        anchorage::AnchorageAllocModel model(space, clock, control);
        ModeTotals totals{"anchorage (stw)", {}, 0, 0};
        curves.push_back(runFragConfig(
            "anchorage", model, workload_config, timeline, clock,
            [&](kv::CacheWorkload &) {
                model.maintain();
                if (model.lastAction().defragged) {
                    if (first_pause == 0)
                        first_pause = model.lastAction().pauseSec;
                    totals.stats.accumulate(model.lastAction().stats);
                }
            }));
        passes = model.controller().passes();
        totals.defragSec = model.controller().totalDefragSec();
        totals.pauseSec = model.controller().totalPauseSec();
        mode_totals.push_back(totals);
    }
    {
        // Anchorage in DefragMode::Mesh: RSS recovery through page
        // meshing alone — no copies, no barriers — to show what the
        // mechanism is (and is not) worth at scale: like standalone
        // Mesh, it cannot shrink extent, so it converges well above
        // the movers.
        VirtualClock clock;
        PhantomAddressSpace space;
        anchorage::ControlParams control;
        control.useModeledTime = true;
        control.oUb = 0.05;
        control.fUb = 1.25;
        control.fLb = 1.05;
        control.mode = anchorage::DefragMode::Mesh;
        anchorage::AnchorageConfig config;
        config.meshSeed = timeline.seed;
        anchorage::AnchorageAllocModel model(space, clock, control,
                                             config);
        ModeTotals totals{"anchorage (mesh)", {}, 0, 0};
        curves.push_back(runFragConfig(
            "anchorage-mesh", model, workload_config, timeline, clock,
            [&](kv::CacheWorkload &) {
                model.maintain();
                if (model.lastAction().defragged)
                    totals.stats.accumulate(model.lastAction().stats);
            }));
        totals.defragSec = model.controller().totalDefragSec();
        totals.pauseSec = model.controller().totalPauseSec();
        mode_totals.push_back(totals);
    }

    printCurves(curves, timeline.tickSec);

    std::printf("\nsummary (final RSS, %zu MiB policy):\n",
                static_cast<size_t>(workload_config.maxMemory >> 20));
    const double baseline_final = curves[0].rssMb.back();
    for (const auto &curve : curves) {
        std::printf("  %-13s %8.1f MB  (%+.0f%% vs baseline)\n",
                    curve.name.c_str(), curve.rssMb.back(),
                    (curve.rssMb.back() / baseline_final - 1) * 100);
    }
    std::printf("\ndefrag efficiency (bytes back per unit of cost):\n");
    std::printf("  %-18s %12s %12s %14s %16s\n", "mode", "recovered",
                "cpu_sec", "MB/cpu-sec", "KB/pause-us");
    for (const auto &mt : mode_totals) {
        // Movers recover extent (reclaimedBytes); meshing recovers
        // frames (bytesRecovered). Both are resident bytes returned.
        const double recovered =
            static_cast<double>(mt.stats.reclaimedBytes +
                                mt.stats.bytesRecovered);
        std::printf("  %-18s %10.1fMB %11.2fs %14.1f ",
                    mt.name, recovered / 1e6, mt.defragSec,
                    mt.defragSec > 0 ? recovered / 1e6 / mt.defragSec
                                     : 0.0);
        if (mt.pauseSec > 0)
            std::printf("%15.2f\n",
                        recovered / 1024.0 / (mt.pauseSec * 1e6));
        else
            std::printf("%16s\n", "inf (no pause)");
    }
    std::printf("\nanchorage controller: first pause %.3f s (alpha * "
                "heap mispredicts badly at this scale), then\n"
                "backs off ~%.0f s to stay within O_ub=5%%; %zu passes "
                "over the run — the slow convergence the paper\n"
                "describes around its 7 s pause and 250 s backoff.\n",
                first_pause, first_pause / 0.05, passes);

    if (out_file != nullptr) {
        // Everything here runs on the virtual clock over seeded
        // models, so the whole report is deterministic — the diff
        // gate can hold these metrics to exact equality (--strict).
        JsonReport report;
        for (const auto &curve : curves) {
            report.add(curve.name + ".final_rss_mb",
                       curve.rssMb.back(), "MB");
            report.add(curve.name + ".final_frag",
                       curve.usedMb.back() > 0
                           ? curve.rssMb.back() / curve.usedMb.back()
                           : 0.0);
        }
        for (const auto &mt : mode_totals) {
            // "anchorage (stw)" -> "anchorage_stw" metric prefix.
            std::string prefix;
            for (char c : std::string(mt.name)) {
                if (c == ' ' || c == '(' || c == ')') {
                    if (!prefix.empty() && prefix.back() != '_')
                        prefix.push_back('_');
                } else {
                    prefix.push_back(c);
                }
            }
            if (!prefix.empty() && prefix.back() == '_')
                prefix.pop_back();
            const double recovered =
                static_cast<double>(mt.stats.reclaimedBytes +
                                    mt.stats.bytesRecovered) / 1e6;
            report.add(prefix + ".recovered_mb", recovered, "MB");
            report.add(prefix + ".defrag_cpu_sec", mt.defragSec, "s");
            report.add(prefix + ".mb_per_cpu_sec",
                       mt.defragSec > 0 ? recovered / mt.defragSec
                                        : 0.0,
                       "MB/s");
        }
        report.add("anchorage_stw.first_pause_s", first_pause, "s");
        report.add("anchorage_stw.passes",
                   static_cast<double>(passes));
        if (!report.writeTo(out_file, "fig11_large_workload"))
            return 1;
    }
    return 0;
}
