/**
 * @file
 * The translate-cost baseline: nanoseconds per translation on the
 * three paths whose relative cost the paper's story depends on, as a
 * committed regression gate (BENCH_translate.json, diffed by
 * scripts/diff_bench.py in scripts/check.sh and CI):
 *
 *   translate.direct_ns    raw translate() under the Direct
 *                          (stop-the-world) discipline — the paper's
 *                          two-instruction fast path.
 *   translate.mesh_mode_ns the same raw translate() with a Mesh-mode
 *                          relocation daemon attached. Meshing shares
 *                          frames below the virtual address space and
 *                          never touches handle entries, so Mesh mode
 *                          keeps the Direct discipline: this column
 *                          must sit within noise of direct_ns — the
 *                          zero-translation-overhead acceptance check
 *                          for DefragMode::Mesh.
 *   translate.scoped_ns    scope-bracketed translate under the Scoped
 *                          discipline (a campaign-capable daemon
 *                          declared): the epoch publish amortized over
 *                          a 16-deref operation.
 *
 * One "op" is one 8-byte load through a translation. Each column runs
 * several trials and all land in the JSON report, so the diff gate
 * sees the spread; the printed table shows each column's best.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "anchorage/anchorage_service.h"
#include "api/api.h"
#include "base/timer.h"
#include "bench/bench_util.h"
#include "core/malloc_service.h"
#include "services/concurrent_reloc_daemon.h"
#include "sim/address_space.h"

namespace
{

using namespace alaska;

constexpr uint32_t kTableCapacity = 1u << 20;
constexpr int kWindow = 256;
constexpr size_t kObjectSize = 64;
constexpr int kReps = 20000;
constexpr int kTrials = 9;
/** Accesses bracketed by one access_scope in the scoped column. */
constexpr int kOpSize = 16;

/** Populate a window of live handles, each holding its index. */
void
fillWindow(Runtime &runtime, void **window)
{
    for (int i = 0; i < kWindow; i++) {
        window[i] = runtime.halloc(kObjectSize);
        auto *raw = static_cast<int64_t *>(translate(window[i]));
        for (size_t j = 0; j < kObjectSize / sizeof(int64_t); j++)
            raw[j] = i + static_cast<int64_t>(j);
    }
}

/** Seconds for kReps sweeps of raw translate loads over the window. */
double
rawPass(void *const *window)
{
    int64_t checksum = 0;
    Stopwatch watch;
    for (int rep = 0; rep < kReps; rep++) {
        for (int i = 0; i < kWindow; i++) {
            checksum += static_cast<int64_t *>(
                translate(window[i]))[rep % (kObjectSize / 8)];
        }
    }
    const double sec = watch.elapsedSec();
    if (checksum == 0x7fffffffffffffff)
        std::printf("(unlikely checksum)\n");
    return sec;
}

/** The same sweeps with one access_scope per kOpSize loads. */
double
scopedPass(void *const *window)
{
    int64_t checksum = 0;
    Stopwatch watch;
    for (int rep = 0; rep < kReps; rep++) {
        for (int base = 0; base < kWindow; base += kOpSize) {
            access_scope op;
            for (int i = 0; i < kOpSize; i++) {
                checksum += static_cast<int64_t *>(translate(
                    window[base + i]))[rep % (kObjectSize / 8)];
            }
        }
    }
    const double sec = watch.elapsedSec();
    if (checksum == 0x7fffffffffffffff)
        std::printf("(unlikely checksum)\n");
    return sec;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *out_file = nullptr;
    for (int i = 1; i < argc; i++) {
        if (const char *v = alaska::bench::outFileArg(argv[i])) {
            out_file = v; // points into argv, which outlives the loop
        } else {
            std::fprintf(stderr, "usage: %s [--out=FILE]\n", argv[0]);
            return 2;
        }
    }

    alaska::bench::JsonReport report;
    const double ops = static_cast<double>(kReps) * kWindow;
    double best[3] = {1e30, 1e30, 1e30};
    auto track = [&](const char *metric, double sec, double &b) {
        b = std::min(b, sec);
        report.add(metric, sec / ops * 1e9, "ns");
    };

    // Only one Runtime may be live at a time, so the three columns run
    // as sequential blocks (best-of-kTrials within each block absorbs
    // the noise interleaving would have).
    {
        // Direct discipline: no relocation daemon anywhere.
        MallocService service;
        Runtime runtime(RuntimeConfig{.tableCapacity = kTableCapacity});
        runtime.attachService(&service);
        ThreadRegistration reg(runtime);
        void *window[kWindow];
        fillWindow(runtime, window);
        for (int trial = 0; trial < kTrials; trial++)
            track("translate.direct_ns", rawPass(window), best[0]);
        for (int i = 0; i < kWindow; i++)
            runtime.hfree(window[i]);
    }
    {
        // The same raw loads with a Mesh-mode daemon attached
        // (constructing the daemon is what would flip the discipline —
        // Mesh mode must not).
        RealAddressSpace space;
        anchorage::AnchorageService service(space);
        Runtime runtime(RuntimeConfig{.tableCapacity = kTableCapacity});
        runtime.attachService(&service);
        anchorage::ControlParams params;
        params.mode = anchorage::DefragMode::Mesh;
        ConcurrentRelocDaemon daemon(runtime, service, params);
        ThreadRegistration reg(runtime);
        void *window[kWindow];
        fillWindow(runtime, window);
        for (int trial = 0; trial < kTrials; trial++)
            track("translate.mesh_mode_ns", rawPass(window), best[1]);
        for (int i = 0; i < kWindow; i++)
            runtime.hfree(window[i]);
    }
    {
        // Scoped discipline: a campaign-capable daemon declared.
        MallocService service;
        Runtime runtime(RuntimeConfig{.tableCapacity = kTableCapacity});
        runtime.attachService(&service);
        anchorage::ControlParams params;
        params.mode = anchorage::DefragMode::Concurrent;
        RealAddressSpace space;
        anchorage::AnchorageService heap(space);
        ConcurrentRelocDaemon daemon(runtime, heap, params);
        ThreadRegistration reg(runtime);
        void *window[kWindow];
        fillWindow(runtime, window);
        for (int trial = 0; trial < kTrials; trial++)
            track("translate.scoped_ns", scopedPass(window), best[2]);
        for (int i = 0; i < kWindow; i++)
            runtime.hfree(window[i]);
    }

    std::printf("=== translate cost baseline (ns per 8-byte load "
                "through a translation) ===\n\n");
    std::printf("%-24s %10s\n", "path", "best ns/op");
    std::printf("%-24s %10.2f\n", "direct", best[0] / ops * 1e9);
    std::printf("%-24s %10.2f\n", "mesh-mode (direct)",
                best[1] / ops * 1e9);
    std::printf("%-24s %10.2f\n", "scoped (per-op scope)",
                best[2] / ops * 1e9);
    std::printf("\nmesh-mode must match direct: meshing never touches "
                "the handle table, so DefragMode::Mesh\nkeeps the "
                "two-instruction translate. scoped pays one epoch "
                "publish per %d-load operation.\n",
                kOpSize);

    if (out_file != nullptr &&
        !report.writeTo(out_file, "translate_baseline_bench"))
        return 1;
    return 0;
}
