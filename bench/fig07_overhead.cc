/**
 * @file
 * Figure 7: Alaska's end-to-end overhead (translation + pin tracking,
 * no service exploitation — backing memory is plain malloc) on the
 * benchmark kernel suite, as percent wall-clock increase over the raw
 * baseline, with the per-suite layout and closing geomean row of the
 * paper's figure.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "base/stats.h"
#include "bench/bench_util.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "kernels/registry.h"

int
main()
{
    using namespace alaska;
    using namespace alaska::kernels;
    using namespace alaska::bench;

    std::printf("=== Figure 7: overhead of translation + tracking "
                "(%% wall-clock increase vs raw pointers) ===\n");
    std::printf("service: none (malloc backing), hoisting on, "
                "tracking on\n\n");
    std::printf("%-9s %-14s %10s %10s %9s   %s\n", "suite", "kernel",
                "base(ms)", "alaska(ms)", "overhead",
                "stands in for");

    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    std::vector<double> ratios;
    std::string last_suite;
    for (const auto &entry : kernelRegistry()) {
        const double base_s = timeKernel(entry.base, entry.scale);
        const double alaska_s = timeKernel(entry.alaska, entry.scale);
        const double pct = overheadPct(base_s, alaska_s);
        ratios.push_back(alaska_s / base_s);
        if (last_suite != entry.suite && !last_suite.empty())
            std::printf("\n");
        last_suite = entry.suite;
        std::printf("%-9s %-14s %10.2f %10.2f %8.1f%%   (%s)\n",
                    entry.suite, entry.name, base_s * 1e3,
                    alaska_s * 1e3, pct, entry.standsFor);
    }

    const double gm = geomean(ratios);
    std::printf("\n%-9s %-14s %32.1f%%\n", "ALL", "geomean",
                (gm - 1.0) * 100.0);
    std::printf("\npaper: geomean ~10%% (8%% excluding the "
                "strict-aliasing outliers); near-zero for hoistable\n"
                "numeric kernels, largest for pointer chasing "
                "(mcf/xalancbmk/sglib analogues).\n");
    return 0;
}
