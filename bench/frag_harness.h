/**
 * @file
 * Shared harness for the RSS-over-time experiments (Figures 9/10/11):
 * drives the cache workload against an AllocModel at a fixed insert
 * rate over virtual time, giving each memory manager its maintenance
 * beat and sampling RSS each tick.
 */

#ifndef ALASKA_BENCH_FRAG_HARNESS_H
#define ALASKA_BENCH_FRAG_HARNESS_H

#include <functional>
#include <string>
#include <vector>

#include "alloc_sim/alloc_model.h"
#include "base/rng.h"
#include "kv/cache_workload.h"
#include "sim/clock.h"

namespace alaska::bench
{

/** One sampled RSS curve. */
struct FragCurve
{
    std::string name;
    std::vector<double> rssMb;
    std::vector<double> usedMb;
};

/** Timeline parameters. */
struct FragTimeline
{
    double seconds = 10.0;
    double tickSec = 0.1;
    size_t totalInserts = 2000000;
    /**
     * Seed handed to every stochastic model the figure constructs
     * (MeshModel's probe order, AnchorageConfig::meshSeed). One knob
     * per experiment — not a hardcoded literal per call site — keeps
     * the whole figure reproducible and re-seedable in one place.
     */
    uint64_t seed = Rng::defaultSeed;
};

/**
 * Run one manager over the timeline.
 * @param per_tick manager-specific maintenance (activedefrag cycles,
 *        meshing, controller ticks); receives the virtual clock.
 */
inline FragCurve
runFragConfig(const std::string &name, AllocModel &model,
              kv::CacheWorkloadConfig workload_config,
              const FragTimeline &timeline, VirtualClock &clock,
              const std::function<void(kv::CacheWorkload &)> &per_tick)
{
    FragCurve curve;
    curve.name = name;
    kv::CacheWorkload workload(model, workload_config);
    const auto ticks =
        static_cast<size_t>(timeline.seconds / timeline.tickSec);
    const size_t per_tick_inserts = timeline.totalInserts / ticks;
    for (size_t t = 0; t < ticks; t++) {
        workload.insert(per_tick_inserts);
        per_tick(workload);
        clock.advance(timeline.tickSec);
        curve.rssMb.push_back(static_cast<double>(model.rss()) /
                              (1 << 20));
        curve.usedMb.push_back(
            static_cast<double>(workload.usedMemory()) / (1 << 20));
    }
    return curve;
}

/** Print curves as one CSV block: time plus one column per curve. */
inline void
printCurves(const std::vector<FragCurve> &curves, double tick_sec)
{
    std::printf("time_s");
    for (const auto &curve : curves)
        std::printf(",%s_rss_mb", curve.name.c_str());
    std::printf(",used_mb\n");
    const size_t n = curves.front().rssMb.size();
    for (size_t t = 0; t < n; t++) {
        std::printf("%.1f", static_cast<double>(t + 1) * tick_sec);
        for (const auto &curve : curves)
            std::printf(",%.1f", curve.rssMb[t]);
        std::printf(",%.1f\n", curves.front().usedMb[t]);
    }
}

} // namespace alaska::bench

#endif // ALASKA_BENCH_FRAG_HARNESS_H
