/**
 * @file
 * Figure 8: the ablation study on the SPEC-like kernels — full alaska
 * vs "notracking" (no pin stores/polls) vs "nohoisting" (translate
 * before every access). Hoisting is the dominant optimization; the
 * tracking machinery should cost little on top of translation.
 *
 * A second section ablates the *deref protection* itself, three-way:
 * the retired per-deref atomic pin (one RMW per access) vs the
 * shipped epoch scope (one epoch publish per operation, plain loads
 * inside) vs raw translate() (no protection — the lower bound). This
 * is the measurement behind retiring the pin RMW from the scoped
 * translation path.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "api/api.h"
#include "base/stats.h"
#include "base/timer.h"
#include "bench/bench_util.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "kernels/registry.h"
#include "services/concurrent_reloc.h"

int
main()
{
    using namespace alaska;
    using namespace alaska::kernels;
    using namespace alaska::bench;

    std::printf("=== Figure 8: ablation on SPEC-like kernels "
                "(%% overhead vs raw baseline) ===\n\n");
    std::printf("%-14s %9s %12s %12s\n", "kernel", "alaska",
                "notracking", "nohoisting");

    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    std::vector<double> full, notrack, nohoist;
    for (const auto &entry : kernelRegistry()) {
        if (std::strcmp(entry.suite, "spec") != 0)
            continue;
        const double base_s = timeKernel(entry.base, entry.scale);
        const double alaska_s = timeKernel(entry.alaska, entry.scale);
        const double notrack_s = timeKernel(entry.notrack, entry.scale);
        const double nohoist_s = timeKernel(entry.nohoist, entry.scale);
        full.push_back(alaska_s / base_s);
        notrack.push_back(notrack_s / base_s);
        nohoist.push_back(nohoist_s / base_s);
        std::printf("%-14s %8.1f%% %11.1f%% %11.1f%%\n", entry.name,
                    overheadPct(base_s, alaska_s),
                    overheadPct(base_s, notrack_s),
                    overheadPct(base_s, nohoist_s));
    }
    std::printf("\n%-14s %8.1f%% %11.1f%% %11.1f%%\n", "geomean",
                (geomean(full) - 1) * 100, (geomean(notrack) - 1) * 100,
                (geomean(nohoist) - 1) * 100);
    std::printf("\npaper: disabling hoisting roughly doubles most "
                "overheads; removing tracking helps little except for\n"
                "kernels hit by the experimental StackMaps machinery "
                "(nab, xz).\n");

    // --- deref-protection ablation: atomic pin vs epoch scope vs raw --------
    {
        constexpr int kWindow = 256;
        constexpr size_t kObjBytes = 256;
        constexpr int kReps = 20000;
        constexpr int kTrials = 5;
        constexpr int kOpSize = 16;

        void *window[kWindow];
        for (int i = 0; i < kWindow; i++) {
            window[i] = runtime.halloc(kObjBytes);
            auto *p = static_cast<int64_t *>(translate(window[i]));
            for (size_t j = 0; j < kObjBytes / sizeof(int64_t); j++)
                p[j] = i + static_cast<int64_t>(j);
        }

        Runtime::declareConcurrentDefrag();
        double best_raw = 1e30, best_epoch = 1e30, best_pin = 1e30;
        for (int trial = 0; trial < kTrials; trial++) {
            int64_t sum = 0;
            {
                Stopwatch watch;
                for (int rep = 0; rep < kReps; rep++)
                    for (int i = 0; i < kWindow; i++)
                        sum += static_cast<int64_t *>(
                            translate(window[i]))[rep % (kObjBytes / 8)];
                best_raw = std::min(best_raw, watch.elapsedSec());
            }
            {
                // The shipped design: one epoch publish per kOpSize-
                // access operation, plain loads inside.
                Stopwatch watch;
                for (int rep = 0; rep < kReps; rep++) {
                    for (int base = 0; base < kWindow; base += kOpSize) {
                        access_scope op;
                        for (int i = 0; i < kOpSize; i++)
                            sum += api::deref(
                                static_cast<int64_t *>(window[base + i]))
                                [rep % (kObjBytes / 8)];
                    }
                }
                best_epoch = std::min(best_epoch, watch.elapsedSec());
            }
            {
                // The retired design: one atomic pin RMW pair around
                // every single deref.
                Stopwatch watch;
                for (int rep = 0; rep < kReps; rep++) {
                    for (int i = 0; i < kWindow; i++) {
                        HandleTableEntry *e =
                            ConcurrentPin::pinFor(window[i]);
                        sum += static_cast<int64_t *>(translateConcurrent(
                            window[i]))[rep % (kObjBytes / 8)];
                        ConcurrentPin::unpin(e);
                    }
                }
                best_pin = std::min(best_pin, watch.elapsedSec());
            }
            if (sum == 0x7fffffffffffffff)
                std::printf("(unlikely checksum)\n");
        }
        Runtime::retireConcurrentDefrag();
        for (int i = 0; i < kWindow; i++)
            runtime.hfree(window[i]);

        const double ops =
            static_cast<double>(kReps) * kWindow / 1e6;
        std::printf("\n=== deref-protection ablation (1 thread, M "
                    "loads/s, best of %d) ===\n\n",
                    kTrials);
        std::printf("%-14s %14s %14s %14s\n", "", "raw translate",
                    "epoch scope", "atomic pin");
        std::printf("%-14s %14.2f %14.2f %14.2f\n", "Mops/s",
                    ops / best_raw, ops / best_epoch, ops / best_pin);
        std::printf("%-14s %14s %13.1f%% %13.1f%%\n", "overhead", "-",
                    overheadPct(ops / best_raw, ops / best_epoch) * -1,
                    overheadPct(ops / best_raw, ops / best_pin) * -1);
        std::printf("\nthe epoch scope amortizes its one shared-memory "
                    "write over the whole %d-access operation;\n"
                    "the retired per-deref pin pays two RMWs per "
                    "access — the gap is the campaign-mode deref\n"
                    "overhead this rework removed.\n",
                    kOpSize);
    }
    return 0;
}
