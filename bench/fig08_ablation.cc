/**
 * @file
 * Figure 8: the ablation study on the SPEC-like kernels — full alaska
 * vs "notracking" (no pin stores/polls) vs "nohoisting" (translate
 * before every access). Hoisting is the dominant optimization; the
 * tracking machinery should cost little on top of translation.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "base/stats.h"
#include "bench/bench_util.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "kernels/registry.h"

int
main()
{
    using namespace alaska;
    using namespace alaska::kernels;
    using namespace alaska::bench;

    std::printf("=== Figure 8: ablation on SPEC-like kernels "
                "(%% overhead vs raw baseline) ===\n\n");
    std::printf("%-14s %9s %12s %12s\n", "kernel", "alaska",
                "notracking", "nohoisting");

    MallocService service;
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 22});
    runtime.attachService(&service);
    ThreadRegistration reg(runtime);

    std::vector<double> full, notrack, nohoist;
    for (const auto &entry : kernelRegistry()) {
        if (std::strcmp(entry.suite, "spec") != 0)
            continue;
        const double base_s = timeKernel(entry.base, entry.scale);
        const double alaska_s = timeKernel(entry.alaska, entry.scale);
        const double notrack_s = timeKernel(entry.notrack, entry.scale);
        const double nohoist_s = timeKernel(entry.nohoist, entry.scale);
        full.push_back(alaska_s / base_s);
        notrack.push_back(notrack_s / base_s);
        nohoist.push_back(nohoist_s / base_s);
        std::printf("%-14s %8.1f%% %11.1f%% %11.1f%%\n", entry.name,
                    overheadPct(base_s, alaska_s),
                    overheadPct(base_s, notrack_s),
                    overheadPct(base_s, nohoist_s));
    }
    std::printf("\n%-14s %8.1f%% %11.1f%% %11.1f%%\n", "geomean",
                (geomean(full) - 1) * 100, (geomean(notrack) - 1) * 100,
                (geomean(nohoist) - 1) * 100);
    std::printf("\npaper: disabling hoisting roughly doubles most "
                "overheads; removing tracking helps little except for\n"
                "kernels hit by the experimental StackMaps machinery "
                "(nab, xz).\n");
    return 0;
}
