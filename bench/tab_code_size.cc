/**
 * @file
 * §5.2 (Q2) code-size study: instruction growth from the Alaska
 * transformations over an IR corpus, with and without hoisting. The
 * paper reports ~48% geomean executable growth, a worst case of ~2x
 * when hoisting cannot apply (xalancbmk's linked structures), and
 * negligible growth for hoisting-friendly NAS-style code.
 */

#include <cstdio>

#include "base/stats.h"
#include "compiler/passes.h"
#include "ir/builder.h"
#include "ir/ir.h"

namespace
{

using namespace alaska::ir;
using namespace alaska::compiler;

/** Hoisting-friendly: arrays written in counted loops. */
void
buildNasLike(Module &module, int arrays)
{
    Function *fn = module.addFunction("nas_like", 0);
    Builder b(*fn);
    std::vector<Instruction *> bases;
    for (int a = 0; a < arrays; a++)
        bases.push_back(b.mallocBytes(b.constant(512)));
    Instruction *zero = b.constant(0);
    BasicBlock *entry = b.block();
    BasicBlock *header = b.newBlock("header");
    BasicBlock *body = b.newBlock("body");
    BasicBlock *exit = b.newBlock("exit");
    b.br(header);
    b.setBlock(header);
    Instruction *i = b.phi();
    Builder::addIncoming(i, zero, entry);
    b.condBr(b.cmpLt(i, b.constant(64)), body, exit);
    b.setBlock(body);
    for (Instruction *base : bases)
        b.store(b.gep(base, i), i);
    Instruction *next = b.add(i, b.constant(1));
    Builder::addIncoming(i, next, body);
    b.br(header);
    b.setBlock(exit);
    Instruction *sum = b.constant(0);
    for (Instruction *base : bases)
        sum = b.add(sum, b.load(b.gep(base, zero)));
    for (Instruction *base : bases)
        b.freePtr(base);
    b.ret(sum);
    fn->computeCfg();
}

/** Pointer-chasing: per-iteration loads of pointers from memory. */
void
buildXalancLike(Module &module, int chains)
{
    Function *fn = module.addFunction("xalanc_like", 1);
    Builder b(*fn);
    b.declarePointerArg(0);
    Instruction *zero = b.constant(0);
    BasicBlock *entry = b.block();
    BasicBlock *header = b.newBlock("header");
    BasicBlock *body = b.newBlock("body");
    BasicBlock *exit = b.newBlock("exit");
    b.br(header);
    b.setBlock(header);
    Instruction *node = b.phi();
    Builder::addIncoming(node, b.arg(0), entry);
    b.condBr(b.cmpEq(node, zero), exit, body);
    b.setBlock(body);
    Instruction *walk = node;
    for (int c = 0; c < chains; c++) {
        // Every hop loads a fresh pointer: nothing is hoistable.
        walk = b.load(b.gep(walk, b.constant(c % 3)), true);
        b.store(b.gep(walk, b.constant(1)),
                b.add(b.load(b.gep(walk, b.constant(2))),
                      b.constant(1)));
    }
    Builder::addIncoming(node, walk, body);
    b.br(header);
    b.setBlock(exit);
    b.ret(zero);
    fn->computeCfg();
}

double
growthOf(void (*build)(Module &, int), int param, bool hoisting)
{
    Module module;
    build(module, param);
    PassOptions options;
    options.hoisting = hoisting;
    const PassMetrics metrics = runPipeline(module, options);
    return metrics.codeGrowth();
}

} // namespace

int
main()
{
    std::printf("=== par.5.2 (Q2): code growth from the Alaska "
                "transformations (IR instruction count) ===\n\n");
    std::printf("%-22s %10s %12s\n", "program shape", "hoisting",
                "no hoisting");

    std::vector<double> growths;
    struct Case
    {
        const char *name;
        void (*build)(Module &, int);
        int param;
    };
    const Case cases[] = {
        {"nas-like (2 arrays)", buildNasLike, 2},
        {"nas-like (6 arrays)", buildNasLike, 6},
        {"xalanc-like (1 hop)", buildXalancLike, 1},
        {"xalanc-like (4 hops)", buildXalancLike, 4},
    };
    for (const auto &c : cases) {
        const double with = growthOf(c.build, c.param, true);
        const double without = growthOf(c.build, c.param, false);
        growths.push_back(with);
        std::printf("%-22s %9.2fx %11.2fx\n", c.name, with, without);
    }

    std::printf("\n%-22s %9.2fx\n", "geomean (hand cases)",
                alaska::geomean(growths));
    std::printf("\npaper: ~1.48x geomean executable growth; ~2x when "
                "hoisting cannot apply (xalancbmk), negligible\n"
                "for hoisting-friendly NAS code.\n");
    return 0;
}
