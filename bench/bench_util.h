/**
 * @file
 * Shared helpers for the figure-reproduction harnesses.
 */

#ifndef ALASKA_BENCH_BENCH_UTIL_H
#define ALASKA_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "base/timer.h"

namespace alaska::bench
{

/** Median-of-reps wall time of fn(scale), with one warmup run. */
inline double
timeKernel(int64_t (*fn)(size_t), size_t scale, int reps = 5)
{
    volatile int64_t sink = fn(scale); // warmup
    (void)sink;
    std::vector<double> times;
    times.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; r++) {
        Stopwatch watch;
        sink = fn(scale);
        times.push_back(watch.elapsedSec());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

/** Percent overhead of t over baseline. */
inline double
overheadPct(double baseline, double t)
{
    return (t / baseline - 1.0) * 100.0;
}

} // namespace alaska::bench

#endif // ALASKA_BENCH_BENCH_UTIL_H
