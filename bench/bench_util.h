/**
 * @file
 * Shared helpers for the figure-reproduction harnesses, including the
 * machine-readable `--out <file>` JSON mode: harnesses funnel every
 * reported number through a JsonReport, which summarizes each metric
 * (median/p95/p999/CV over its samples) and stamps the file with a
 * structural checksum so a baseline diff (scripts/diff_bench.py) can
 * tell "the harness changed shape" from "the numbers drifted".
 */

#ifndef ALASKA_BENCH_BENCH_UTIL_H
#define ALASKA_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "base/timer.h"

namespace alaska::bench
{

/** Median-of-reps wall time of fn(scale), with one warmup run. */
inline double
timeKernel(int64_t (*fn)(size_t), size_t scale, int reps = 5)
{
    volatile int64_t sink = fn(scale); // warmup
    (void)sink;
    std::vector<double> times;
    times.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; r++) {
        Stopwatch watch;
        sink = fn(scale);
        times.push_back(watch.elapsedSec());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

/** Percent overhead of t over baseline. */
inline double
overheadPct(double baseline, double t)
{
    return (t / baseline - 1.0) * 100.0;
}

/**
 * Machine-readable benchmark output (the `--out <file>` mode).
 *
 * Usage: call add() once per observation — repeated adds under the
 * same metric name become that metric's sample set — then writeTo()
 * at exit. Each metric is summarized as median/p95/p999 plus the
 * coefficient of variation (stddev/mean; 0 for single samples), so a
 * baseline diff can scale its noise band to how jittery the metric
 * actually is. The file-level checksum is FNV-1a over the sorted
 * metric names only: it identifies the *shape* of the report, letting
 * the diff distinguish a harness change from numeric drift.
 */
class JsonReport
{
  public:
    void
    add(const std::string &metric, double value, const char *unit = "")
    {
        Metric &m = metrics_[metric];
        m.unit = unit;
        m.samples.push_back(value);
    }

    /** @return false (with a perror-style message) on I/O failure. */
    bool
    writeTo(const char *path, const char *bench_name) const
    {
        std::FILE *f = std::fopen(path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", path);
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n", bench_name);
        std::fprintf(f, "  \"checksum\": \"%016llx\",\n",
                     static_cast<unsigned long long>(checksum()));
        std::fprintf(f, "  \"metrics\": {\n");
        size_t i = 0;
        for (const auto &[name, m] : metrics_) {
            std::vector<double> sorted = m.samples;
            std::sort(sorted.begin(), sorted.end());
            std::fprintf(
                f,
                "    \"%s\": {\"unit\": \"%s\", \"count\": %zu, "
                "\"median\": %.6g, \"p95\": %.6g, \"p999\": %.6g, "
                "\"cv\": %.4g}%s\n",
                name.c_str(), m.unit.c_str(), sorted.size(),
                percentile(sorted, 50.0), percentile(sorted, 95.0),
                percentile(sorted, 99.9), cvOf(m.samples),
                ++i < metrics_.size() ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        const bool ok = std::fclose(f) == 0;
        if (ok)
            std::printf("wrote %s (%zu metrics)\n", path,
                        metrics_.size());
        return ok;
    }

  private:
    struct Metric
    {
        std::string unit;
        std::vector<double> samples;
    };

    static double
    percentile(const std::vector<double> &sorted, double p)
    {
        if (sorted.empty())
            return 0.0;
        const double rank =
            p / 100.0 * static_cast<double>(sorted.size() - 1);
        const size_t lo = static_cast<size_t>(rank);
        const size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
    }

    static double
    cvOf(const std::vector<double> &samples)
    {
        if (samples.size() < 2)
            return 0.0;
        double mean = 0.0;
        for (double s : samples)
            mean += s;
        mean /= static_cast<double>(samples.size());
        if (mean == 0.0)
            return 0.0;
        double var = 0.0;
        for (double s : samples)
            var += (s - mean) * (s - mean);
        var /= static_cast<double>(samples.size() - 1);
        return std::sqrt(var) / std::fabs(mean);
    }

    uint64_t
    checksum() const
    {
        // FNV-1a over the sorted metric names (std::map iterates
        // sorted), so the value pins the report's structure only.
        uint64_t h = 0xcbf29ce484222325ull;
        for (const auto &[name, m] : metrics_) {
            for (char c : name) {
                h ^= static_cast<unsigned char>(c);
                h *= 0x100000001b3ull;
            }
            h ^= '\n';
            h *= 0x100000001b3ull;
        }
        return h;
    }

    std::map<std::string, Metric> metrics_;
};

/** Parse a `--out=FILE` argument; @return the file or nullptr. */
inline const char *
outFileArg(const char *arg)
{
    constexpr const char prefix[] = "--out=";
    return std::strncmp(arg, prefix, sizeof prefix - 1) == 0
               ? arg + sizeof prefix - 1
               : nullptr;
}

} // namespace alaska::bench

#endif // ALASKA_BENCH_BENCH_UTIL_H
