/**
 * @file
 * Bench-grade serving front end: open-loop tail latency per defrag
 * mode, with SLO-window attribution.
 *
 * The closed system under test is src/serve: a thread-pool KV server
 * (registered Alaska workers over one fragmented Anchorage heap) driven
 * by an open-loop Poisson load generator whose requests carry their
 * *intended* arrival times — so every defrag pause shows up, amplified
 * by queueing, in the completion latencies (no coordinated omission;
 * see src/serve/load_gen.h). An SloTracker judges fixed windows of the
 * completion stream against --slo-us and attributes each violated
 * window to the defrag mechanisms that did work during it (via the
 * daemon's per-mechanism totals), separating "the pause did it" from
 * "the server was just overloaded" (violated_idle).
 *
 * Default run: all five defrag modes (stw, concurrent, hybrid, mesh,
 * mesh-hybrid) under the same offered load, reporting per-op
 * p50/p99/p999, violated windows (and their mechanism attribution),
 * queue depth, steals, backpressure, and the mode's recovery/pause
 * economics. --mode=NAME runs one mode only.
 *
 * The --target-pause-us section (always part of --smoke) runs the
 * StopTheWorld load twice with an oversized per-barrier byte cap: once
 * with the pause-SLO-adaptive barrier budget targeting that pause,
 * once with the static bound. Open-loop p999 is the money metric: the
 * fixed run's long barriers turn into queueing spikes the adaptive run
 * avoids. On a single-core CI host the head-to-head is asserted only
 * as "adaptive no worse than fixed plus a generous noise envelope" —
 * see BENCH_serve.json and docs/SERVING.md for the real comparison.
 *
 * Flags: --smoke (small counts + assertions for CI), --mode=NAME,
 * --rate=N (req/s), --threads=N (workers), --records=N, --ops=N,
 * --slo-us=N, --window-ms=N, --target-pause-us=N,
 * --workload=a|b|c|f, --queue-cap=N, --value-size=N, --fixed-rate
 * (constant inter-arrival instead of Poisson), --trace=FILE,
 * --out=FILE.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "anchorage/mechanism.h"
#include "base/timer.h"
#include "bench/bench_util.h"
#include "core/runtime.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "services/concurrent_reloc_daemon.h"
#include "sim/address_space.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace
{

using namespace alaska;

struct ServeOptions
{
    int workers = 4;
    double ratePerSec = 20000;
    uint64_t records = 200000;
    uint64_t ops = 120000;
    double sloUs = 2000;
    double windowMs = 100;
    size_t queueCap = 4096;
    size_t valueSize = 300;
    ycsb::WorkloadKind kind = ycsb::WorkloadKind::A;
    bool poisson = true;
};

struct RunResult
{
    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t lost = 0;
    double get_p50 = 0, get_p99 = 0, get_p999 = 0;
    double upd_p50 = 0, upd_p99 = 0, upd_p999 = 0;
    /** All ops merged — the number the smoke assertions compare. */
    double all_p999 = 0;
    serve::SloTracker::Totals slo;
    uint64_t maxQueueDepth = 0;
    uint64_t steals = 0;
    uint64_t backpressure = 0;
    uint64_t maxLagUs = 0;
    double wallSec = 0;
    size_t barriers = 0;
    double pauseMs = 0;
    anchorage::DefragStats totals;
    size_t batchBytesFinal = 0;
};

/** Next power of two at or above n. */
uint64_t
pow2AtLeast(uint64_t n)
{
    uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * One complete serving run: fragmented heap, background daemon in the
 * given mode, open-loop load over the surviving odd keys, graceful
 * drain, SLO accounting. Mirrors tab_ycsb_latency's runMode() knobs
 * (1 MiB sub-heaps, aggressive duty cycle, 256 KiB batched barriers)
 * so the two harnesses measure the same defrag configurations.
 */
RunResult
runServe(anchorage::DefragMode mode, const ServeOptions &opt,
         const std::function<void(anchorage::ControlParams &)> &tweak =
             nullptr)
{
    RunResult result;

    RealAddressSpace space;
    anchorage::AnchorageService service(
        space,
        anchorage::AnchorageConfig{
            .subHeapBytes = 1u << 20,
            .shards = static_cast<size_t>(opt.workers)});
    Runtime runtime(RuntimeConfig{
        .tableCapacity = static_cast<uint32_t>(
            std::max<uint64_t>(1u << 22, pow2AtLeast(opt.records * 4)))});
    runtime.attachService(&service);

    serve::ServerConfig scfg;
    scfg.workers = opt.workers;
    scfg.queueCapacity = opt.queueCap;
    scfg.valueSize = opt.valueSize;
    serve::Server server(runtime, scfg);

    {
        ThreadRegistration reg(runtime);
        server.populate(opt.records);
        server.fragmentEvenKeys(opt.records);
    }

    serve::SloTracker slo(serve::SloConfig{.sloUs = opt.sloUs});
    server.setCompletionHandler(
        [&slo](const serve::Response &r) { slo.record(r); });

    anchorage::ControlParams params;
    params.mode = mode;
    params.pollInterval = 0.005;
    params.oUb = 1.0;
    params.alpha = 1.0;
    params.batchBytes = 256 << 10;
    if (tweak)
        tweak(params);
    ConcurrentRelocDaemon daemon(runtime, service, params);
    daemon.start();
    server.start();

    // Sampler: tracks peak queue depth at fine grain and closes one
    // SLO window per --window-ms, attributing it to the mechanisms
    // whose per-mechanism totals advanced during the window.
    std::atomic<bool> samplerDone{false};
    std::thread sampler([&] {
        uint64_t lastWork[anchorage::kNumMechanisms] = {};
        const auto workOf = [&](size_t k) {
            const anchorage::DefragStats s = daemon.totalsFor(
                static_cast<anchorage::MechanismKind>(k));
            return s.movedObjects + s.pagesMeshed + s.barriers +
                   s.committed;
        };
        const int64_t windowUs =
            static_cast<int64_t>(opt.windowMs * 1000);
        while (!samplerDone.load(std::memory_order_acquire)) {
            int64_t sleptUs = 0;
            while (sleptUs < windowUs &&
                   !samplerDone.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                sleptUs += 2000;
                const uint64_t depth = server.queueDepth();
                if (depth > result.maxQueueDepth)
                    result.maxQueueDepth = depth;
            }
            uint64_t delta[anchorage::kNumMechanisms];
            for (size_t k = 0; k < anchorage::kNumMechanisms; k++) {
                const uint64_t w = workOf(k);
                delta[k] = w - lastWork[k];
                lastWork[k] = w;
            }
            slo.closeWindow(delta);
        }
    });

    serve::LoadGenConfig lcfg;
    lcfg.ratePerSec = opt.ratePerSec;
    lcfg.poisson = opt.poisson;
    lcfg.totalOps = opt.ops;
    lcfg.kind = opt.kind;
    lcfg.records = opt.records / 2;
    lcfg.seed = 11;
    // Traffic stays on the odd (surviving) record ids, so the even
    // holes are defrag's to reclaim and the live set only churns in
    // place.
    lcfg.keyMap = [](uint64_t id) { return 2 * id + 1; };
    serve::LoadGen gen(server, lcfg);

    Stopwatch wall;
    gen.run();
    server.stop(); // graceful: drains every queued request
    result.wallSec = wall.elapsedSec();
    samplerDone.store(true, std::memory_order_release);
    sampler.join();
    daemon.stop();

    result.offered = gen.offered();
    result.completed = server.completed();
    result.lost =
        result.offered > result.completed
            ? result.offered - result.completed
            : 0;
    result.maxLagUs = gen.maxLagNs() / 1000;
    result.steals = server.steals();
    result.backpressure = server.backpressureWaits();
    result.slo = slo.totals();

    result.get_p50 = slo.opPercentileUs(serve::OpKind::Get, 50);
    result.get_p99 = slo.opPercentileUs(serve::OpKind::Get, 99);
    result.get_p999 = slo.opPercentileUs(serve::OpKind::Get, 99.9);
    telemetry::Histogram upd = slo.opHistogram(serve::OpKind::Set);
    upd.merge(slo.opHistogram(serve::OpKind::Rmw));
    result.upd_p50 = upd.percentile(50) / 1e3;
    result.upd_p99 = upd.percentile(99) / 1e3;
    result.upd_p999 = upd.percentile(99.9) / 1e3;
    telemetry::Histogram all = upd;
    all.merge(slo.opHistogram(serve::OpKind::Get));
    result.all_p999 = all.percentile(99.9) / 1e3;

    result.barriers = daemon.barriers();
    result.pauseMs = daemon.totalPauseSec() * 1e3;
    result.totals = daemon.totals();
    result.batchBytesFinal = daemon.batchBytesCurrent();

    {
        ThreadRegistration reg(runtime);
        server.clearStores();
    }
    return result;
}

void
printRun(const char *name, const RunResult &r, double sloUs)
{
    std::printf("--- mode=%s ---\n", name);
    auto row = [](const char *label, double v, const char *unit) {
        std::printf("%-30s %14.2f %s\n", label, v, unit);
    };
    std::printf("%-30s %14zu / %zu lost\n", "offered / lost",
                static_cast<size_t>(r.offered),
                static_cast<size_t>(r.lost));
    row("throughput",
        r.wallSec > 0
            ? static_cast<double>(r.completed) / r.wallSec / 1e3
            : 0,
        "kreq/s");
    row("get p50", r.get_p50, "us");
    row("get p99", r.get_p99, "us");
    row("get p999", r.get_p999, "us");
    row("update p999", r.upd_p999, "us");
    row("all-op p999", r.all_p999, "us");
    row("generator max lag",
        static_cast<double>(r.maxLagUs), "us");
    std::printf("%-30s %14zu of %zu (SLO %.0fus p999)\n",
                "violated windows",
                static_cast<size_t>(r.slo.violated),
                static_cast<size_t>(r.slo.windows), sloUs);
    for (size_t k = 0; k < anchorage::kNumMechanisms; k++) {
        if (r.slo.violatedBy[k] == 0)
            continue;
        std::printf("%-30s %14zu windows\n",
                    (std::string("  during ") +
                     anchorage::mechanismName(
                         static_cast<anchorage::MechanismKind>(k)) +
                     " work")
                        .c_str(),
                    static_cast<size_t>(r.slo.violatedBy[k]));
    }
    if (r.slo.violatedIdle > 0)
        std::printf("%-30s %14zu windows\n", "  with defrag idle",
                    static_cast<size_t>(r.slo.violatedIdle));
    row("worst window p999", r.slo.worstWindowP999Us, "us");
    std::printf("%-30s %14zu\n", "max queue depth",
                static_cast<size_t>(r.maxQueueDepth));
    std::printf("%-30s %14zu / %zu\n", "steals / backpressure",
                static_cast<size_t>(r.steals),
                static_cast<size_t>(r.backpressure));
    std::printf("%-30s %14zu\n", "stop-the-world barriers",
                r.barriers);
    row("mutator pause time", r.pauseMs, "ms");
    row("resident bytes recovered",
        static_cast<double>(r.totals.reclaimedBytes +
                            r.totals.bytesRecovered) / 1e6,
        "MB");
    std::printf("\n");
}

void
reportRun(bench::JsonReport &report, const std::string &prefix,
          const RunResult &r)
{
    report.add(prefix + ".offered", static_cast<double>(r.offered));
    report.add(prefix + ".completed",
               static_cast<double>(r.completed));
    report.add(prefix + ".lost", static_cast<double>(r.lost));
    report.add(prefix + ".get_p50_us", r.get_p50, "us");
    report.add(prefix + ".get_p99_us", r.get_p99, "us");
    report.add(prefix + ".get_p999_us", r.get_p999, "us");
    report.add(prefix + ".update_p50_us", r.upd_p50, "us");
    report.add(prefix + ".update_p99_us", r.upd_p99, "us");
    report.add(prefix + ".update_p999_us", r.upd_p999, "us");
    report.add(prefix + ".all_p999_us", r.all_p999, "us");
    report.add(prefix + ".windows",
               static_cast<double>(r.slo.windows));
    report.add(prefix + ".violated_windows",
               static_cast<double>(r.slo.violated));
    report.add(prefix + ".violated_idle",
               static_cast<double>(r.slo.violatedIdle));
    for (size_t k = 0; k < anchorage::kNumMechanisms; k++)
        report.add(prefix + ".violated_" +
                       anchorage::mechanismName(
                           static_cast<anchorage::MechanismKind>(k)),
                   static_cast<double>(r.slo.violatedBy[k]));
    report.add(prefix + ".worst_window_p999_us",
               r.slo.worstWindowP999Us, "us");
    report.add(prefix + ".max_queue_depth",
               static_cast<double>(r.maxQueueDepth));
    report.add(prefix + ".steals", static_cast<double>(r.steals));
    report.add(prefix + ".backpressure",
               static_cast<double>(r.backpressure));
    report.add(prefix + ".gen_max_lag_us",
               static_cast<double>(r.maxLagUs), "us");
    report.add(prefix + ".barriers",
               static_cast<double>(r.barriers));
    report.add(prefix + ".pause_ms", r.pauseMs, "ms");
    report.add(prefix + ".moved_objects",
               static_cast<double>(r.totals.movedObjects));
    report.add(prefix + ".pages_meshed",
               static_cast<double>(r.totals.pagesMeshed));
    report.add(prefix + ".recovered_mb",
               static_cast<double>(r.totals.reclaimedBytes +
                                   r.totals.bytesRecovered) / 1e6,
               "MB");
}

struct NamedMode
{
    const char *name;
    anchorage::DefragMode mode;
};

constexpr NamedMode kModes[] = {
    {"stw", anchorage::DefragMode::StopTheWorld},
    {"concurrent", anchorage::DefragMode::Concurrent},
    {"hybrid", anchorage::DefragMode::Hybrid},
    {"mesh", anchorage::DefragMode::Mesh},
    {"mesh-hybrid", anchorage::DefragMode::MeshHybrid},
};

/** Oversized per-barrier cap for the adaptive-vs-fixed head-to-head:
 *  far above any sub-millisecond pause target, so the static bound's
 *  barriers land wherever the copy rate puts them. */
constexpr size_t kOversizedBatchBytes = 8 << 20;

} // namespace

int
main(int argc, char **argv)
{
    ServeOptions opt;
    bool smoke = false;
    const char *mode_name = nullptr;
    double target_pause_us = 0;
    const char *trace_file = nullptr;
    const char *out_file = nullptr;

    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            return arg.compare(0, std::strlen(prefix), prefix) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (arg == "--smoke") {
            smoke = true;
            opt.workers = 2;
            opt.ratePerSec = 2500;
            opt.records = 6000;
            opt.ops = 2500;
            opt.windowMs = 50;
            if (target_pause_us == 0)
                target_pause_us = 200;
        } else if (const char *v = value("--mode=")) {
            mode_name = argv[i] + std::strlen("--mode=");
            (void)v;
        } else if (const char *v = value("--rate=")) {
            opt.ratePerSec = std::atof(v);
        } else if (const char *v = value("--threads=")) {
            opt.workers = std::atoi(v);
        } else if (const char *v = value("--records=")) {
            opt.records = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--ops=")) {
            opt.ops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--slo-us=")) {
            opt.sloUs = std::atof(v);
        } else if (const char *v = value("--window-ms=")) {
            opt.windowMs = std::atof(v);
        } else if (const char *v = value("--target-pause-us=")) {
            target_pause_us = std::atof(v);
        } else if (const char *v = value("--queue-cap=")) {
            opt.queueCap = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--value-size=")) {
            opt.valueSize = std::strtoull(v, nullptr, 10);
        } else if (arg == "--fixed-rate") {
            opt.poisson = false;
        } else if (const char *v = value("--workload=")) {
            switch (v[0]) {
            case 'a': opt.kind = ycsb::WorkloadKind::A; break;
            case 'b': opt.kind = ycsb::WorkloadKind::B; break;
            case 'c': opt.kind = ycsb::WorkloadKind::C; break;
            case 'f': opt.kind = ycsb::WorkloadKind::F; break;
            default:
                std::fprintf(stderr,
                             "--workload= must be a, b, c or f\n");
                return 2;
            }
        } else if (value("--trace=") != nullptr) {
            trace_file = argv[i] + std::strlen("--trace=");
        } else if (const char *v = bench::outFileArg(argv[i])) {
            out_file = v;
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--smoke] [--mode=stw|concurrent|hybrid|"
                "mesh|mesh-hybrid] [--rate=N] [--threads=N] "
                "[--records=N] [--ops=N] [--slo-us=N] [--window-ms=N] "
                "[--target-pause-us=N] [--workload=a|b|c|f] "
                "[--queue-cap=N] [--value-size=N] [--fixed-rate] "
                "[--trace=FILE] [--out=FILE]\n",
                argv[0]);
            return 2;
        }
    }

    if (trace_file != nullptr)
        telemetry::enableTracing();

    bench::JsonReport report;
    bench::JsonReport *rp = out_file ? &report : nullptr;
    std::vector<std::string> failures;

    std::printf("=== open-loop KV serving: %.0f req/s %s over %d "
                "workers, SLO p999 <= %.0fus per %.0fms window ===\n\n",
                opt.ratePerSec, opt.poisson ? "Poisson" : "fixed-rate",
                opt.workers, opt.sloUs, opt.windowMs);

    for (const NamedMode &m : kModes) {
        if (mode_name != nullptr &&
            std::strcmp(mode_name, m.name) != 0)
            continue;
        const RunResult r = runServe(m.mode, opt);
        printRun(m.name, r, opt.sloUs);
        if (rp != nullptr)
            reportRun(*rp, m.name, r);
        if (smoke && r.lost != 0)
            failures.push_back(std::string("mode ") + m.name + ": " +
                               std::to_string(r.lost) +
                               " lost responses");
    }

    if (mode_name == nullptr && target_pause_us > 0) {
        std::printf(
            "=== adaptive barrier budget vs fixed under open-loop "
            "load: StopTheWorld, cap %zu KiB, target %.0fus ===\n\n",
            kOversizedBatchBytes >> 10, target_pause_us);
        const RunResult adaptive = runServe(
            anchorage::DefragMode::StopTheWorld, opt,
            [target_pause_us](anchorage::ControlParams &p) {
                p.batchBytes = kOversizedBatchBytes;
                p.targetBarrierPauseSec = target_pause_us * 1e-6;
            });
        const RunResult fixed = runServe(
            anchorage::DefragMode::StopTheWorld, opt,
            [](anchorage::ControlParams &p) {
                p.batchBytes = kOversizedBatchBytes;
            });
        printRun("pause.adaptive", adaptive, opt.sloUs);
        printRun("pause.fixed", fixed, opt.sloUs);
        std::printf("adaptive final batch budget %zu KiB (fixed %zu "
                    "KiB); all-op p999 %.0fus adaptive vs %.0fus "
                    "fixed\n\n",
                    adaptive.batchBytesFinal >> 10,
                    fixed.batchBytesFinal >> 10, adaptive.all_p999,
                    fixed.all_p999);
        if (rp != nullptr) {
            reportRun(*rp, "pause.adaptive", adaptive);
            reportRun(*rp, "pause.fixed", fixed);
            rp->add("pause.target_us", target_pause_us, "us");
        }
        if (smoke) {
            if (adaptive.lost != 0 || fixed.lost != 0)
                failures.push_back("pause section lost responses");
            // One core serializes generator, workers and daemon, so
            // the full "adaptive p999 < fixed p999" claim cannot be
            // asserted here — hold the adaptive run to a generous
            // noise envelope instead and leave the real comparison to
            // the committed BENCH_serve.json numbers.
            const double bound = std::max(fixed.all_p999 * 1.5,
                                          fixed.all_p999 + 2000.0);
            if (adaptive.all_p999 > bound)
                failures.push_back(
                    "adaptive p999 " +
                    std::to_string(adaptive.all_p999) +
                    "us exceeds envelope " + std::to_string(bound) +
                    "us over fixed " +
                    std::to_string(fixed.all_p999) + "us");
        }
    }

    if (trace_file != nullptr) {
        if (!telemetry::dumpTrace(trace_file)) {
            std::fprintf(stderr, "cannot write trace to %s\n",
                         trace_file);
            return 1;
        }
        std::printf("wrote Chrome trace to %s\n", trace_file);
    }
    if (out_file != nullptr &&
        !report.writeTo(out_file, "serve_bench"))
        return 1;

    if (smoke) {
        if (failures.empty()) {
            std::printf("SMOKE PASS: zero lost responses in every "
                        "mode; adaptive within envelope\n");
        } else {
            for (const std::string &f : failures)
                std::printf("SMOKE FAIL: %s\n", f.c_str());
            return 1;
        }
    }
    return 0;
}
