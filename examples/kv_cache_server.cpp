/**
 * @file
 * A Redis-style cache served by the multi-threaded serving front end
 * (src/serve) with a live background defragmenter: worker threads
 * execute requests over handle-based stores while a
 * ConcurrentRelocDaemon relocates the heap under them — no
 * activedefrag, no application cooperation — and an SloTracker judges
 * every 100 ms window of completion latencies against a p999
 * objective, attributing each violated window to the defrag mechanism
 * that was active (or to the server itself when defrag was idle).
 *
 * The request path is the typed layer end to end: every worker
 * brackets each request in an alaska::access_scope, which under this
 * demo's Concurrent mode is a real epoch scope (paper §7) — campaigns
 * move objects while these very requests dereference them, and the
 * commit protocol plus grace-deferred reclaim keep every access safe.
 * Load arrives open-loop (Poisson, intended-arrival timestamps), so
 * the printed percentiles include queueing delay and cannot hide a
 * pause (see src/serve/load_gen.h on coordinated omission).
 *
 * Build & run:  ./build/example_kv_cache_server
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "anchorage/mechanism.h"
#include "core/runtime.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "services/concurrent_reloc_daemon.h"
#include "sim/address_space.h"
#include "telemetry/telemetry.h"
#include "ycsb/ycsb.h"

int
main()
{
    using namespace alaska;

    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 1u << 20,
                                          .shards = 3});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 20});
    runtime.attachService(&service);

    serve::ServerConfig scfg;
    scfg.workers = 3;
    scfg.valueSize = 400;
    scfg.maxMemoryPerShard = 8u << 20; // LRU eviction per shard
    serve::Server server(runtime, scfg);

    // Preload a working set, then punch holes in it (delete every even
    // record) so the daemon has fragmentation to chase from the start.
    constexpr uint64_t kRecords = 20000;
    {
        ThreadRegistration reg(runtime);
        server.populate(kRecords);
        server.fragmentEvenKeys(kRecords);
    }
    std::printf("cache server: %d workers, 8 MiB/shard LRU, "
                "fragmentation %.2fx after hole-punching\n",
                scfg.workers, service.fragmentation());

    serve::SloTracker slo(serve::SloConfig{.sloUs = 2000});
    server.setCompletionHandler(
        [&slo](const serve::Response &r) { slo.record(r); });

    anchorage::ControlParams params;
    params.mode = anchorage::DefragMode::Concurrent;
    params.pollInterval = 0.005;
    params.oUb = 1.0;
    params.alpha = 1.0;
    ConcurrentRelocDaemon daemon(runtime, service, params);
    daemon.start();
    server.start();

    // SLO sampler: closes one window per 100 ms, charging it to the
    // mechanisms whose totals advanced (serve_bench does the same).
    std::atomic<bool> samplerDone{false};
    std::thread sampler([&] {
        uint64_t last[anchorage::kNumMechanisms] = {};
        while (!samplerDone.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            uint64_t delta[anchorage::kNumMechanisms];
            for (size_t k = 0; k < anchorage::kNumMechanisms; k++) {
                const anchorage::DefragStats s = daemon.totalsFor(
                    static_cast<anchorage::MechanismKind>(k));
                const uint64_t w = s.movedObjects + s.pagesMeshed +
                                   s.barriers + s.committed;
                delta[k] = w - last[k];
                last[k] = w;
            }
            slo.closeWindow(delta);
        }
    });

    // Open-loop Poisson load over a keyspace larger than the resident
    // set, so inserts and LRU evictions churn the heap while the
    // daemon defragments it.
    serve::LoadGenConfig lcfg;
    lcfg.ratePerSec = 4000;
    lcfg.totalOps = 12000;
    lcfg.kind = ycsb::WorkloadKind::A;
    lcfg.records = kRecords;
    lcfg.seed = 2026;
    serve::LoadGen gen(server, lcfg);
    gen.run();

    server.stop(); // graceful: drains everything in flight
    samplerDone.store(true, std::memory_order_release);
    sampler.join();
    daemon.stop();

    // --- the exit SLO summary -------------------------------------
    const serve::SloTracker::Totals t = slo.totals();
    std::printf("\nserved %llu requests (%llu offered, 0 lost), "
                "%llu stolen cross-queue\n",
                static_cast<unsigned long long>(server.completed()),
                static_cast<unsigned long long>(gen.offered()),
                static_cast<unsigned long long>(server.steals()));
    for (const auto op : {serve::OpKind::Get, serve::OpKind::Set,
                          serve::OpKind::Rmw}) {
        if (slo.opHistogram(op).count() == 0)
            continue;
        std::printf("%-4s p50 %8.1fus   p99 %8.1fus   p999 %8.1fus\n",
                    serve::opName(op), slo.opPercentileUs(op, 50),
                    slo.opPercentileUs(op, 99),
                    slo.opPercentileUs(op, 99.9));
    }
    std::printf("SLO (p999 <= %.0fus/window): %llu of %llu windows "
                "violated, worst window p999 %.0fus\n",
                slo.sloUs(), static_cast<unsigned long long>(t.violated),
                static_cast<unsigned long long>(t.windows),
                t.worstWindowP999Us);
    for (size_t k = 0; k < anchorage::kNumMechanisms; k++)
        if (t.violatedBy[k] > 0)
            std::printf("  %llu during %s work\n",
                        static_cast<unsigned long long>(t.violatedBy[k]),
                        anchorage::mechanismName(
                            static_cast<anchorage::MechanismKind>(k)));
    if (t.violatedIdle > 0)
        std::printf("  %llu with defrag idle (the server's own "
                    "queueing, not a pause)\n",
                    static_cast<unsigned long long>(t.violatedIdle));

    const anchorage::DefragStats totals = daemon.totals();
    std::printf("defrag while serving: %llu objects moved, %llu "
                "commits / %llu aborts, frag %.2fx",
                static_cast<unsigned long long>(totals.movedObjects),
                static_cast<unsigned long long>(totals.committed),
                static_cast<unsigned long long>(totals.aborted),
                service.fragmentation());
    {
        ThreadRegistration reg(runtime);
        const kv::KvStats s = server.storeStats();
        std::printf(", %zu keys resident, %llu evictions\n", s.keys,
                    static_cast<unsigned long long>(s.evictions));
        server.clearStores();
    }
    std::printf("the KV code never heard about any of this — that is "
                "the point.\n");

    // What the runtime saw while serving: the telemetry counters and
    // histograms the defrag pipeline recorded (docs/OBSERVABILITY.md).
    std::printf("\n");
    telemetry::writeText(telemetry::snapshot(), stdout);
    return 0;
}
