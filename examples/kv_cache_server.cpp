/**
 * @file
 * A Redis-style cache on Alaska + Anchorage with a live controller:
 * the store's data structures (dict, sds strings, LRU list) run
 * unmodified over handles, fragmentation builds up under eviction
 * churn, and the control thread defragments it away — no activedefrag,
 * no application cooperation.
 *
 * The store is written against the AlaskaAlloc policy, whose deref is
 * the typed layer's mode-aware translation; each request below is
 * bracketed in an alaska::access_scope, so this exact code is also
 * safe if the controller were hosted on a ConcurrentRelocDaemon in
 * Concurrent mode (the scope is two loads and nothing else under the
 * stop-the-world mode this demo runs).
 *
 * Build & run:  ./build/example_kv_cache_server
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "api/api.h"
#include "base/rng.h"
#include "kv/alloc_policy.h"
#include "kv/minikv.h"
#include "sim/address_space.h"
#include "sim/clock.h"
#include "telemetry/telemetry.h"

int
main()
{
    using namespace alaska;
    using namespace alaska::kv;

    RealAddressSpace space;
    anchorage::AnchorageService service(
        space, anchorage::AnchorageConfig{.subHeapBytes = 4 << 20});
    Runtime runtime(RuntimeConfig{.tableCapacity = 1u << 20});
    runtime.attachService(&service);
    ThreadRegistration self(runtime);

    AlaskaAlloc alloc(runtime);
    MiniKv<AlaskaAlloc> kv(alloc, /*maxmemory=*/24 << 20);

    RealClock clock;
    anchorage::ControlParams params;
    params.fLb = 1.10;
    params.fUb = 1.30;
    params.alpha = 0.5;
    params.pollInterval = 0.05; // a demo-friendly observation cadence
    anchorage::DefragController controller(service, clock, params);

    std::printf("cache server: maxmemory 24 MiB, LRU eviction, "
                "Anchorage controller [F 1.10..1.30]\n\n");
    std::printf("%10s %10s %10s %12s %8s %9s\n", "inserts", "keys",
                "used(MB)", "heapRSS(MB)", "frag", "defrags");

    Rng rng(2026);
    size_t inserted = 0;
    for (int round = 1; round <= 12; round++) {
        // A burst of inserts with a drifting value-size mix.
        for (int i = 0; i < 30000; i++) {
            const std::string key =
                "user:" + std::to_string(rng.below(1u << 20));
            const size_t value_size =
                200 + (round % 4) * 150 + rng.below(100);
            access_scope request;
            kv.set(key, std::string(value_size, 'v'));
            inserted++;
        }
        // The server "stays up" a moment; the controller acts on its
        // own schedule while requests would normally keep flowing.
        const double deadline = clock.now() + 0.2;
        while (clock.now() < deadline) {
            controller.tick();
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }

        const auto stats = kv.stats();
        std::printf("%10zu %10zu %10.1f %12.1f %7.2fx %9zu\n",
                    inserted, stats.keys,
                    static_cast<double>(stats.usedMemory) / (1 << 20),
                    static_cast<double>(service.rss()) / (1 << 20),
                    service.fragmentation(), controller.passes());
    }

    access_scope final_read;
    std::printf("\nfinal: %zu keys, frag %.2fx after %zu controller "
                "passes; a sample read: %s\n",
                kv.stats().keys, service.fragmentation(),
                controller.passes(),
                kv.get("user:1").has_value() ? "hit" : "miss (evicted)");
    std::printf("the KV code never heard about any of this — that is "
                "the point.\n");

    // What the runtime saw while serving: the telemetry counters and
    // histograms the defrag pipeline recorded (docs/OBSERVABILITY.md).
    std::printf("\n");
    alaska::telemetry::writeText(alaska::telemetry::snapshot(), stdout);
    return 0;
}
