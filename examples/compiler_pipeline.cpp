/**
 * @file
 * The Alaska compiler at work: build a small pointer-chasing program
 * in the IR, run the pass pipeline (malloc rewrite, Algorithm 1
 * translation insertion with hoisting, releases, pin-set coloring,
 * safepoints), print the before/after IR, and execute both on the
 * real runtime to show they agree.
 *
 * This is the third face of the same contract: C callers use the raw
 * halloc/translate surface, C++ callers the typed guards in src/api,
 * and compiled code gets the exact raw operations inserted for it by
 * these passes — all three meet at the handle table.
 *
 * Build & run:  ./build/example_compiler_pipeline
 */

#include <cstdio>

#include "compiler/passes.h"
#include "core/malloc_service.h"
#include "core/runtime.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/verifier.h"

namespace
{

using namespace alaska;
using namespace alaska::ir;

/** sum = 0; for i in 0..n: a[i] = i; for i: sum += a[i]; return sum */
Function *
buildProgram(Module &module)
{
    Function *fn = module.addFunction("sum_array", 1);
    Builder b(*fn);
    BasicBlock *entry = b.block();
    BasicBlock *header = b.newBlock("fill.header");
    BasicBlock *body = b.newBlock("fill.body");
    BasicBlock *header2 = b.newBlock("sum.header");
    BasicBlock *body2 = b.newBlock("sum.body");
    BasicBlock *exit = b.newBlock("exit");

    Instruction *n = b.arg(0);
    Instruction *zero = b.constant(0);
    Instruction *array = b.mallocBytes(b.shl(n, b.constant(3)));
    b.br(header);

    b.setBlock(header);
    Instruction *i = b.phi();
    Builder::addIncoming(i, zero, entry);
    b.condBr(b.cmpLt(i, n), body, header2);
    b.setBlock(body);
    b.store(b.gep(array, i), i);
    Instruction *i2 = b.add(i, b.constant(1));
    Builder::addIncoming(i, i2, body);
    b.br(header);

    b.setBlock(header2);
    Instruction *j = b.phi();
    Instruction *sum = b.phi();
    Builder::addIncoming(j, zero, header);
    Builder::addIncoming(sum, zero, header);
    b.condBr(b.cmpLt(j, n), body2, exit);
    b.setBlock(body2);
    Instruction *sum2 = b.add(sum, b.load(b.gep(array, j)));
    Instruction *j2 = b.add(j, b.constant(1));
    Builder::addIncoming(j, j2, body2);
    Builder::addIncoming(sum, sum2, body2);
    b.br(header2);

    b.setBlock(exit);
    b.freePtr(array);
    b.ret(sum);
    fn->computeCfg();
    fn->renumber();
    return fn;
}

} // namespace

int
main()
{
    using namespace alaska::compiler;

    // Baseline module.
    Module baseline;
    Function *base_fn = buildProgram(baseline);
    std::printf("=== before the Alaska passes ===\n%s\n",
                toString(*base_fn).c_str());

    Interpreter base_interp(baseline);
    const int64_t expected = base_interp.run(*base_fn, {100});
    std::printf("baseline result: sum_array(100) = %lld\n\n",
                static_cast<long long>(expected));

    // Transformed module (same program, full pipeline).
    Module transformed;
    Function *trans_fn = buildProgram(transformed);
    const PassMetrics metrics = runPipeline(transformed);
    std::printf("=== after the Alaska passes ===\n%s\n",
                toString(*trans_fn).c_str());
    std::printf("pipeline: %zu allocation sites rewritten, %zu "
                "translations (%zu hoisted to preheaders),\n"
                "%zu pin slots, %zu safepoints; code growth %.2fx\n",
                metrics.allocationsReplaced,
                metrics.translationsInserted,
                metrics.translationsHoisted, metrics.pinSlots,
                metrics.safepointsInserted, metrics.codeGrowth());

    const VerifyResult check = verifyTransformed(*trans_fn);
    std::printf("verifier: %s\n",
                check.ok() ? "all Alaska invariants hold"
                           : check.joined().c_str());

    // Execute on the real runtime: halloc, real translation, pins.
    MallocService service;
    Runtime runtime;
    runtime.attachService(&service);
    ThreadRegistration self(runtime);
    Interpreter interp(transformed, &runtime);
    const int64_t got = interp.run(*trans_fn, {100});
    std::printf("\ntransformed result on the real runtime: %lld "
                "(%s), %llu dynamic translations for %llu memory "
                "accesses\n",
                static_cast<long long>(got),
                got == expected ? "matches" : "MISMATCH",
                static_cast<unsigned long long>(
                    interp.stats().translations),
                static_cast<unsigned long long>(interp.stats().loads +
                                                interp.stats().stores));
    std::printf("(hoisting at work: two loops of accesses, one "
                "translation)\n");
    return 0;
}
