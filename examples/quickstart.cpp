/**
 * @file
 * Quickstart: the Alaska runtime in thirty lines.
 *
 * Allocate behind handles, use the memory exactly like pointers (after
 * the translation the compiler would insert), pin what must not move,
 * and watch a single handle-table store relocate an object under every
 * alias at once.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>

#include "core/malloc_service.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"

int
main()
{
    using namespace alaska;

    // A runtime with a malloc-backed service (no defragmentation yet;
    // see kv_cache_server.cpp for Anchorage).
    MallocService service;
    Runtime runtime;
    runtime.attachService(&service);
    ThreadRegistration self(runtime);

    // halloc returns a *handle*: top bit set, not a real address.
    char *greeting = static_cast<char *>(runtime.halloc(64));
    std::printf("handle value:     %p (top bit tagged)\n",
                static_cast<void *>(greeting));

    // Translation gives the current raw pointer; the compiler inserts
    // these automatically — here we play compiler ourselves.
    std::strcpy(static_cast<char *>(translate(greeting)),
                "hello from a movable object");
    std::printf("translates to:    %p\n", translate(greeting));
    std::printf("contents:         %s\n",
                static_cast<char *>(translate(greeting)));

    // Aliases are just copies of the handle. Interior pointers work:
    // arithmetic happens in the handle's offset bits.
    char *alias = greeting + 6;
    std::printf("interior alias:   '%s'\n",
                static_cast<char *>(translate(alias)));

    // Move the object: one store in the handle table republishes it
    // for every alias — this is the O(1) relocation handles buy.
    auto &entry =
        runtime.table().entry(handleId(reinterpret_cast<uint64_t>(greeting)));
    void *old_spot = entry.ptr.load();
    void *new_spot = std::malloc(64);
    std::memcpy(new_spot, old_spot, 64);
    entry.ptr.store(new_spot);
    std::free(old_spot);
    std::printf("after a move:     %p -> '%s' (same handle!)\n",
                translate(greeting),
                static_cast<char *>(translate(alias)));

    // Pinning: while pinned, a barrier reports the object immobile.
    {
        Pinned<char> pin(greeting);
        runtime.barrier([&](const PinnedSet &pinned) {
            std::printf("pinned during barrier: %s\n",
                        pinned.contains(handleId(reinterpret_cast<uint64_t>(
                            greeting)))
                            ? "yes"
                            : "no");
        });
    }

    runtime.hfree(greeting);
    std::printf("done.\n");
    return 0;
}
