/**
 * @file
 * Quickstart: the typed Alaska API in forty lines.
 *
 * Allocate behind handles with an owning hbox, read and write through
 * RAII access guards (which insert the translation the compiler
 * would), take typed interior views with href, pin what must not
 * move, and watch a single handle-table store relocate an object under
 * every alias at once. The raw halloc/translate surface underneath is
 * still there (docs/API.md, "escape hatch") — this file never needs
 * it.
 *
 * Build & run:  ./build/example_quickstart
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "api/api.h"
#include "core/malloc_service.h"

int
main()
{
    using namespace alaska;

    // A runtime with a malloc-backed service (no defragmentation yet;
    // see kv_cache_server.cpp for Anchorage).
    MallocService service;
    Runtime runtime;
    runtime.attachService(&service);
    ThreadRegistration self(runtime);

    // hbox allocates behind a *handle*: top bit set, not a real
    // address. The box owns the allocation and frees it on scope exit.
    hbox<char> greeting(runtime, 64);
    std::printf("handle value:     %p (top bit tagged)\n",
                static_cast<void *>(greeting.get()));

    // An access guard translates once; the raw pointer is valid for
    // the guard's lifetime (and the guard picks the right translation
    // idiom for the runtime's defrag mode automatically).
    {
        alaska::access<char> mem(greeting);
        std::strcpy(mem.get(), "hello from a movable object");
        std::printf("translates to:    %p\n",
                    static_cast<void *>(mem.get()));
        std::printf("contents:         %s\n", mem.get());
    }

    // Aliases are typed views; interior arithmetic happens in the
    // handle's offset bits and can never corrupt the handle ID.
    href<char> alias = greeting.ref() + 6;
    std::printf("interior alias:   '%s'\n",
                alaska::access<char>(alias).get());

    // Move the object: one store in the handle table republishes it
    // for every alias — this is the O(1) relocation handles buy.
    auto &entry = runtime.table().entry(greeting.ref().id());
    void *old_spot = entry.ptr.load();
    void *new_spot = std::malloc(64);
    std::memcpy(new_spot, old_spot, 64);
    entry.ptr.store(new_spot);
    std::free(old_spot);
    std::printf("after a move:     %p -> '%s' (same handle!)\n",
                static_cast<void *>(alaska::access<char>(greeting).get()),
                alaska::access<char>(alias).get());

    // Pinning: while a pinned<> guard lives, a barrier reports the
    // object immobile (and concurrent campaigns abort on it).
    {
        pinned<char> pin(greeting);
        runtime.barrier([&](const PinnedSet &pinned_set) {
            std::printf("pinned during barrier: %s\n",
                        pinned_set.contains(greeting.ref().id()) ? "yes"
                                                                 : "no");
        });
    }

    // STL containers live behind handles too: vector's backing array
    // is one movable handle allocation.
    std::vector<int, allocator<int>> numbers;
    for (int i = 1; i <= 10; i++)
        numbers.push_back(i * i);
    int sum = 0;
    for (int v : numbers)
        sum += v;
    std::printf("vector behind a handle: sum of squares = %d\n", sum);

    // greeting's hbox frees the allocation here — no hfree to forget.
    std::printf("done.\n");
    return 0;
}
