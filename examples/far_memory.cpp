/**
 * @file
 * Object-granularity swapping via handle faults (paper §7): evict cold
 * objects to a slow tier and fault them back in transparently on the
 * next checked translation — paging semantics at object granularity,
 * with no page tables involved. Written against the typed API: hbox
 * owns each object, pinned<> guards what must stay hot, and
 * `alaska::access<T>(h, alaska::checked)` is the fault-checked
 * translation.
 *
 * Build & run:  ./build/example_far_memory
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "api/api.h"
#include "services/swap_service.h"

int
main()
{
    using namespace alaska;

    SwapService service;
    Runtime runtime;
    runtime.attachService(&service);
    ThreadRegistration self(runtime);

    // A working set of 1 KiB objects, each owned by an hbox.
    constexpr int n = 1000;
    std::vector<hbox<unsigned char>> objects;
    objects.reserve(n);
    for (int i = 0; i < n; i++) {
        objects.emplace_back(runtime, 1024);
        alaska::access<unsigned char> mem(objects.back());
        std::memset(mem.get(), i & 0xff, 1024);
    }
    std::printf("allocated %d KiB hot\n", n);
    std::printf("hot=%zu KiB cold=%zu KiB\n", service.hotBytes() / 1024,
                service.coldBytes() / 1024);

    // Keep a few pinned (imagine they are mid-I/O), evict the rest.
    {
        pinned<unsigned char> io0(objects[0]);
        pinned<unsigned char> io1(objects[1]);
        const size_t evicted = service.swapOutAllUnpinned();
        std::printf("\nswapped out %zu unpinned objects\n", evicted);
    }
    std::printf("hot=%zu KiB cold=%zu KiB\n", service.hotBytes() / 1024,
                service.coldBytes() / 1024);

    // Touch a working set: each first touch faults the object in.
    long checksum = 0;
    for (int i = 0; i < 50; i++) {
        alaska::access<unsigned char> mem(objects[static_cast<size_t>(i)],
                                          checked);
        checksum += mem[512];
    }
    std::printf("\ntouched 50 objects -> %zu handle faults served, "
                "checksum %ld\n", service.swapIns(), checksum);
    std::printf("hot=%zu KiB cold=%zu KiB\n", service.hotBytes() / 1024,
                service.coldBytes() / 1024);

    objects.clear(); // every hbox frees its object
    std::printf("\nall freed; cold tier drained to %zu bytes\n",
                service.coldBytes());
    return 0;
}
