/**
 * @file
 * Object-granularity swapping via handle faults (paper §7): evict cold
 * objects to a slow tier and fault them back in transparently on the
 * next checked translation — paging semantics at object granularity,
 * with no page tables involved.
 *
 * Build & run:  ./build/examples/far_memory
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "services/swap_service.h"

int
main()
{
    using namespace alaska;

    SwapService service;
    Runtime runtime;
    runtime.attachService(&service);
    ThreadRegistration self(runtime);

    // A working set of 1 KiB objects.
    constexpr int n = 1000;
    std::vector<void *> objects;
    for (int i = 0; i < n; i++) {
        void *h = runtime.halloc(1024);
        std::memset(translate(h), i & 0xff, 1024);
        objects.push_back(h);
    }
    std::printf("allocated %d KiB hot\n", n);
    std::printf("hot=%zu KiB cold=%zu KiB\n", service.hotBytes() / 1024,
                service.coldBytes() / 1024);

    // Keep a few pinned (imagine they are mid-I/O), evict the rest.
    {
        ALASKA_PIN_FRAME(frame, 2);
        frame.pin(0, objects[0]);
        frame.pin(1, objects[1]);
        const size_t evicted = service.swapOutAllUnpinned();
        std::printf("\nswapped out %zu unpinned objects\n", evicted);
    }
    std::printf("hot=%zu KiB cold=%zu KiB\n", service.hotBytes() / 1024,
                service.coldBytes() / 1024);

    // Touch a working set: each first touch faults the object in.
    long checksum = 0;
    for (int i = 0; i < 50; i++) {
        auto *p = static_cast<unsigned char *>(
            translateChecked(objects[static_cast<size_t>(i)]));
        checksum += p[512];
    }
    std::printf("\ntouched 50 objects -> %zu handle faults served, "
                "checksum %ld\n", service.swapIns(), checksum);
    std::printf("hot=%zu KiB cold=%zu KiB\n", service.hotBytes() / 1024,
                service.coldBytes() / 1024);

    for (void *h : objects)
        runtime.hfree(h);
    std::printf("\nall freed; cold tier drained to %zu bytes\n",
                service.coldBytes());
    return 0;
}
