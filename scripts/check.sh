#!/usr/bin/env sh
# Tier-1 verify: configure, build (with -Wall -Wextra), and run every
# registered test suite, then smoke the bench binaries so they cannot
# bit-rot. Developers run this locally; CI runs the same steps
# (.github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.."

# TSAN mode (`scripts/check.sh --tsan`): build the concurrency suites
# under ThreadSanitizer in a separate tree and run just them — the
# suites that drive the epoch-scope / pin-handshake /
# grace-deferred-reclaim protocol and the mesh/split path end to end
# (the full suite under TSAN is slow and mostly single-threaded). The
# intentional mark-window copy race is whitelisted in
# base/speculative_copy.h; anything else TSAN reports is a real
# protocol bug.
if [ "${1:-}" = "--tsan" ]; then
    cmake -B build-tsan -S . -DALASKA_TSAN=ON
    cmake --build build-tsan -j "$(nproc)" --target \
        concurrent_reloc_daemon_test --target \
        handle_shard_stress_test --target epoch_grace_test \
        --target telemetry_test --target mesh_runtime_test \
        --target defrag_equivalence_test --target policy_test \
        --target serve_test
    for t in concurrent_reloc_daemon_test handle_shard_stress_test \
             epoch_grace_test telemetry_test mesh_runtime_test \
             defrag_equivalence_test policy_test serve_test; do
        ./build-tsan/"$t"
    done
    echo "tsan OK"
    exit 0
fi

# Telemetry level-0 lane (`scripts/check.sh --telemetry0`): build the
# whole tree with every count()/setGauge()/record() site compiled out
# and run the test suite — proof that level 0 really is zero-cost and
# that no code path grew a functional dependency on a telemetry side
# effect (the counter-delta tests GTEST_SKIP themselves).
if [ "${1:-}" = "--telemetry0" ]; then
    cmake -B build-tel0 -S . -DALASKA_TELEMETRY_LEVEL=0
    cmake --build build-tel0 -j "$(nproc)"
    (cd build-tel0 && ctest --output-on-failure -j "$(nproc)")
    echo "telemetry0 OK"
    exit 0
fi

# Docs gate: public headers in src/core/, src/api/, src/anchorage/ and
# src/services/ must document every public class (the raw and typed
# API contracts and the locking/shard-affinity contracts live there;
# see docs/ARCHITECTURE.md and docs/API.md).
sh scripts/check_header_docs.sh

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"

# Bench smoke: tiny iteration counts, output discarded — this only
# proves the harnesses still run end to end (the multi-threaded YCSB
# smoke covers the concurrent-relocation daemon path). The YCSB smoke
# runs once sharded (shards=8) and once with the single-shard
# configuration so neither allocation path can bit-rot. The fig12
# smoke additionally asserts the batched-defrag invariant: no single
# barrier of a batched pass moves more than its batch budget.
./handle_alloc_bench --out=bench_handle_alloc.json > /dev/null
./translate_baseline_bench --out=bench_translate.json > /dev/null
./tab_ycsb_latency --smoke --shards=8 --telemetry \
    --trace=bench_trace.json --out=bench_ycsb.json > /dev/null
./tab_ycsb_latency --smoke --multi-only --shards=1 > /dev/null
./tab_ycsb_latency --smoke --mode=mesh --telemetry \
    --trace=mesh_trace.json > /dev/null
# Adaptive-barrier smoke: the pause-SLO run must complete and adapt
# (its value claim — bounded pauses vs the fixed run — is shown in the
# printed table; run unasserted here since pause tails are wall-clock).
./tab_ycsb_latency --smoke --target-pause-us=200 > /dev/null
./fig09_redis_defrag --smoke --out=bench_fig09.json > /dev/null
./fig11_large_workload --smoke --out=bench_fig11.json > /dev/null
./fig12_memcached_pauses --smoke > /dev/null
# Serving smoke: open-loop load over all five defrag modes plus the
# adaptive-vs-fixed pause head-to-head. The binary asserts its own
# invariants — zero lost responses in every mode, adaptive p999 inside
# the noise envelope over fixed — and exits nonzero on violation.
./serve_bench --smoke --trace=serve_trace.json \
    --out=bench_serve.json > /dev/null
echo "bench smoke OK"

# Trace gates: the telemetry-instrumented YCSB smoke must emit a
# parseable Chrome trace with at least one campaign span, one barrier
# span and one policy_decision span (the policy layer's per-tick
# deliberation), and the mesh-mode smoke at least one mesh span —
# proof the defrag pipeline's tracer stays wired for every mechanism
# and for the policy above them (see docs/OBSERVABILITY.md for the
# event schema).
if command -v python3 > /dev/null 2>&1; then
    python3 ../scripts/check_trace.py bench_trace.json campaign \
        barrier policy_decision
    python3 ../scripts/check_trace.py mesh_trace.json mesh
    # The serving smoke must emit at least one request span — proof
    # every served request is bracketed by the tracer.
    python3 ../scripts/check_trace.py serve_trace.json request
else
    echo "check_trace skipped (no python3)"
fi

# Bench regression gate: each smoke's JSON is diffed against its
# committed baseline — structural changes (metric set, units) always
# fail; numeric drift beyond the per-metric noise band warns, except
# on the promoted metrics below, where it fails:
#   * YCSB: the workload-invariant columns (a concurrent run has zero
#     barriers and zero pause by construction, an STW run zero
#     campaign traffic, and the pre-run fragmentation is set by the
#     deterministic load) — these are correctness claims, not timings;
#   * handle_alloc: the deref/scoped translate costs (multi-sample,
#     low CV); the single-sample alloc throughputs stay advisory;
#   * translate: the whole report (multi-sample medians, low CV);
#   * fig11: the whole report (virtual-clock run, bit-deterministic).
if command -v python3 > /dev/null 2>&1; then
    python3 ../scripts/diff_bench.py ../BENCH_ycsb.json \
        bench_ycsb.json \
        --strict-metrics='conc.barriers,conc.pause_ms,conc1.barriers,conc1.pause_ms,stw.committed,stw.abort_rate,stw.grace_waits,stw.grace_wait_ms,stw.limbo_parked,stw.frag_before,conc.frag_before,conc1.frag_before'
    python3 ../scripts/diff_bench.py ../BENCH_handle_alloc.json \
        bench_handle_alloc.json --strict-metrics='deref.*,scoped.*'
    python3 ../scripts/diff_bench.py ../BENCH_translate.json \
        bench_translate.json --strict
    python3 ../scripts/diff_bench.py ../BENCH_fig09.json \
        bench_fig09.json
    python3 ../scripts/diff_bench.py ../BENCH_fig11.json \
        bench_fig11.json --strict
    #   * serve: the by-construction columns — every offered request
    #     completes (lost == 0 exactly), and the load generator's
    #     offered count is fixed by the deterministic schedule; the
    #     latency percentiles stay advisory (wall-clock).
    python3 ../scripts/diff_bench.py ../BENCH_serve.json \
        bench_serve.json \
        --strict-metrics='*.offered,*.completed,*.lost'
else
    echo "diff_bench skipped (no python3)"
fi

# Example smoke: every example binary must run to completion — the
# examples are the typed-API documentation that compiles, so they may
# not bit-rot either.
./example_quickstart > /dev/null
./example_far_memory > /dev/null
./example_kv_cache_server > /dev/null
./example_compiler_pipeline > /dev/null
echo "example smoke OK"
