#!/usr/bin/env sh
# Tier-1 verify: configure, build (with -Wall -Wextra), and run every
# registered test suite. Developers run this locally; CI runs the same
# steps (.github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
