#!/usr/bin/env sh
# Tier-1 verify: configure, build (with -Wall -Wextra), and run every
# registered test suite, then smoke the bench binaries so they cannot
# bit-rot. Developers run this locally; CI runs the same steps
# (.github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.."

# TSAN mode (`scripts/check.sh --tsan`): build the concurrency suites
# under ThreadSanitizer in a separate tree and run just them — the
# suites that drive the epoch-scope / pin-handshake /
# grace-deferred-reclaim protocol and the mesh/split path end to end
# (the full suite under TSAN is slow and mostly single-threaded). The
# intentional mark-window copy race is whitelisted in
# base/speculative_copy.h; anything else TSAN reports is a real
# protocol bug.
if [ "${1:-}" = "--tsan" ]; then
    cmake -B build-tsan -S . -DALASKA_TSAN=ON
    cmake --build build-tsan -j "$(nproc)" --target \
        concurrent_reloc_daemon_test --target \
        handle_shard_stress_test --target epoch_grace_test \
        --target telemetry_test --target mesh_runtime_test \
        --target defrag_equivalence_test
    for t in concurrent_reloc_daemon_test handle_shard_stress_test \
             epoch_grace_test telemetry_test mesh_runtime_test \
             defrag_equivalence_test; do
        ./build-tsan/"$t"
    done
    echo "tsan OK"
    exit 0
fi

# Docs gate: public headers in src/core/, src/api/, src/anchorage/ and
# src/services/ must document every public class (the raw and typed
# API contracts and the locking/shard-affinity contracts live there;
# see docs/ARCHITECTURE.md and docs/API.md).
sh scripts/check_header_docs.sh

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"

# Bench smoke: tiny iteration counts, output discarded — this only
# proves the harnesses still run end to end (the multi-threaded YCSB
# smoke covers the concurrent-relocation daemon path). The YCSB smoke
# runs once sharded (shards=8) and once with the single-shard
# configuration so neither allocation path can bit-rot. The fig12
# smoke additionally asserts the batched-defrag invariant: no single
# barrier of a batched pass moves more than its batch budget.
./handle_alloc_bench --out=bench_handle_alloc.json > /dev/null
./translate_baseline_bench --out=bench_translate.json > /dev/null
./tab_ycsb_latency --smoke --shards=8 --telemetry \
    --trace=bench_trace.json --out=bench_ycsb.json > /dev/null
./tab_ycsb_latency --smoke --multi-only --shards=1 > /dev/null
./tab_ycsb_latency --smoke --mode=mesh --telemetry \
    --trace=mesh_trace.json > /dev/null
./fig09_redis_defrag --smoke --out=bench_fig09.json > /dev/null
./fig12_memcached_pauses --smoke > /dev/null
echo "bench smoke OK"

# Trace gates: the telemetry-instrumented YCSB smoke must emit a
# parseable Chrome trace with at least one campaign span and one
# barrier span, and the mesh-mode smoke at least one mesh span —
# proof the defrag pipeline's tracer stays wired for every mechanism
# (see docs/OBSERVABILITY.md for the event schema).
if command -v python3 > /dev/null 2>&1; then
    python3 ../scripts/check_trace.py bench_trace.json campaign barrier
    python3 ../scripts/check_trace.py mesh_trace.json mesh
else
    echo "check_trace skipped (no python3)"
fi

# Bench regression gate: the sharded YCSB smoke's JSON is diffed
# against the committed baseline — structural changes (metric set,
# units) fail; numeric drift beyond the per-metric noise band only
# warns (pass --strict in a quiet environment to enforce it).
if command -v python3 > /dev/null 2>&1; then
    python3 ../scripts/diff_bench.py ../BENCH_ycsb.json bench_ycsb.json
    python3 ../scripts/diff_bench.py ../BENCH_handle_alloc.json \
        bench_handle_alloc.json
    python3 ../scripts/diff_bench.py ../BENCH_translate.json \
        bench_translate.json
    python3 ../scripts/diff_bench.py ../BENCH_fig09.json \
        bench_fig09.json
else
    echo "diff_bench skipped (no python3)"
fi

# Example smoke: every example binary must run to completion — the
# examples are the typed-API documentation that compiles, so they may
# not bit-rot either.
./example_quickstart > /dev/null
./example_far_memory > /dev/null
./example_kv_cache_server > /dev/null
./example_compiler_pipeline > /dev/null
echo "example smoke OK"
