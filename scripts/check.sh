#!/usr/bin/env sh
# Tier-1 verify: configure, build (with -Wall -Wextra), and run every
# registered test suite, then smoke the bench binaries so they cannot
# bit-rot. Developers run this locally; CI runs the same steps
# (.github/workflows/ci.yml).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"

# Bench smoke: tiny iteration counts, output discarded — this only
# proves the harnesses still run end to end (the multi-threaded YCSB
# smoke covers the concurrent-relocation daemon path).
./handle_alloc_bench > /dev/null
./tab_ycsb_latency --smoke > /dev/null
echo "bench smoke OK"
