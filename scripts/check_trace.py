#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON produced by --trace / dumpTrace.

Asserts the file parses as JSON, has the traceEvents array, and
contains at least one of each required span — the smoke proof that the
defrag pipeline's tracer is actually wired (a trace without its
mode's signature span means that mode never ran or the tracer broke).
Prints a one-line event summary on success.

Usage: check_trace.py trace.json [required_event ...]
The arguments name the events that must each appear at least once and
*replace* the default, so mode-specific gates (a Mesh-mode run has
`mesh` spans but no `campaign`) can name exactly their own signature
spans. With no arguments, "campaign" is required.
"""

import collections
import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    required = set(sys.argv[2:]) or {"campaign"}

    with open(path, "r", encoding="utf-8") as f:
        trace = json.load(f)

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        print(f"FAIL: {path}: no traceEvents array", file=sys.stderr)
        return 1

    counts = collections.Counter()
    for ev in events:
        if not isinstance(ev, dict) or "name" not in ev or "ph" not in ev:
            print(f"FAIL: {path}: malformed event {ev!r}", file=sys.stderr)
            return 1
        counts[ev["name"]] += 1

    missing = sorted(name for name in required if counts[name] == 0)
    if missing:
        print(
            f"FAIL: {path}: no '{', '.join(missing)}' events "
            f"(saw: {dict(counts) or 'nothing'})",
            file=sys.stderr,
        )
        return 1

    summary = ", ".join(f"{name}={n}" for name, n in sorted(counts.items()))
    print(f"trace OK: {len(events)} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
