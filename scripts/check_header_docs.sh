#!/usr/bin/env sh
# Docs gate: every top-level (public) class/struct declared in the
# public headers under src/core/, src/api/, src/anchorage/,
# src/services/, src/telemetry/, src/base/, src/mesh/ and src/serve/
# must carry a doc comment
# (a /** ... */ block or /// line immediately above it). These are the
# layers new code builds on: core is the raw contract, api the typed
# surface, anchorage/services carry the locking and shard-affinity
# contracts, telemetry the metric/trace contracts, base the shared
# utilities. Forward declarations (lines ending in ';') are exempt.
# Nested types are indented and therefore not matched; their
# documentation is reviewed with the enclosing class.
set -eu

cd "$(dirname "$0")/.."

status=0
for header in src/core/*.h src/api/*.h src/anchorage/*.h \
              src/services/*.h src/telemetry/*.h src/base/*.h \
              src/mesh/*.h src/serve/*.h; do
    if ! awk -v file="$header" '
        /^[[:space:]]*$/ { next }
        /^(class|struct)[[:space:]]+[A-Za-z_]/ && $0 !~ /;[[:space:]]*$/ {
            ok = (prev ~ /\*\//) || (prev ~ /^\/\//)
            # A template header line between the doc and the class is
            # fine: template<...> on prev, doc on prev2.
            if (!ok && prev ~ /^template/)
                ok = (prev2 ~ /\*\//) || (prev2 ~ /^\/\//)
            if (!ok) {
                printf "%s:%d: undocumented public type: %s\n", \
                       file, NR, $0
                bad = 1
            }
        }
        { prev2 = prev; prev = $0 }
        END { exit bad }
    ' "$header"; then
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "header docs check FAILED: document the types above" >&2
    exit 1
fi
echo "header docs OK"
