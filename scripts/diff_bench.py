#!/usr/bin/env python3
"""Diff a fresh benchmark JSON report against a committed baseline.

Both files are JsonReport output (bench/bench_util.h): a structural
checksum over the sorted metric names plus per-metric summaries
(median/p95/p999/CV). The diff separates two failure classes:

  * structural drift — the checksum (metric set) changed, or the bench
    name differs. This means the harness itself changed shape; the fix
    is to regenerate the committed baseline, and the diff FAILS so that
    can't happen silently.
  * numeric drift — a metric's median moved outside its noise band.
    Shared-host timings are jittery, so this only WARNS by default;
    --strict promotes it to a failure for quiet machines, and
    --strict-metrics=GLOB[,GLOB...] promotes just the metrics matching
    an fnmatch glob — use it to enforce the deterministic or low-CV
    subset of a report while leaving wall-clock tails advisory.

The noise band per metric is max(--band, k * cv) relative: a metric
that recorded its own run-to-run spread (cv > 0) gets a band scaled to
that spread (k = 4 sample standard deviations on either side), and
everything gets at least the generous flat band (default 60%) that a
timeshared CI box needs. Count-like exact metrics (cv == 0, integral
medians, unitless) still get the flat band — many of them (barriers,
abort counts) are workload-dependent, not deterministic.

Usage: diff_bench.py BASELINE FRESH [--band=0.6] [--strict]
       [--strict-metrics=GLOB[,GLOB...]]
Exit: 0 ok (warnings allowed), 1 structural mismatch (or numeric drift
on a strict metric), 2 usage/IO error.
"""

import fnmatch
import json
import sys

CV_SIGMAS = 4.0


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"diff_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("bench", "checksum", "metrics"):
        if key not in doc:
            print(f"diff_bench: {path}: missing '{key}'", file=sys.stderr)
            sys.exit(2)
    return doc


def main(argv):
    band = 0.6
    strict = False
    strict_globs = []
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--band="):
            band = float(arg[len("--band="):])
        elif arg == "--strict":
            strict = True
        elif arg.startswith("--strict-metrics="):
            strict_globs += [g for g in
                             arg[len("--strict-metrics="):].split(",")
                             if g]
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    base, fresh = load(paths[0]), load(paths[1])

    if base["bench"] != fresh["bench"]:
        print(f"FAIL: bench name changed: {base['bench']!r} -> "
              f"{fresh['bench']!r}")
        return 1
    if base["checksum"] != fresh["checksum"]:
        gone = sorted(set(base["metrics"]) - set(fresh["metrics"]))
        new = sorted(set(fresh["metrics"]) - set(base["metrics"]))
        print(f"FAIL: report shape changed (checksum "
              f"{base['checksum']} -> {fresh['checksum']})")
        for name in gone:
            print(f"  - removed metric: {name}")
        for name in new:
            print(f"  - added metric:   {name}")
        print("  regenerate the committed baseline to match the "
              "harness (see scripts/check.sh)")
        return 1

    drifted = 0
    failed = 0
    for name in sorted(base["metrics"]):
        b, f = base["metrics"][name], fresh["metrics"][name]
        bm, fm = b["median"], f["median"]
        if bm == 0.0 and fm == 0.0:
            continue
        # Scale the band to the metric's own recorded jitter when it
        # has one; never below the flat floor.
        rel_band = max(band, CV_SIGMAS * max(b.get("cv", 0.0),
                                             f.get("cv", 0.0)))
        scale = max(abs(bm), abs(fm))
        if abs(fm - bm) > rel_band * scale:
            drifted += 1
            enforce = strict or any(fnmatch.fnmatch(name, g)
                                    for g in strict_globs)
            failed += enforce
            print(f"{'FAIL' if enforce else 'WARN'}: {name}: median "
                  f"{bm:g} -> {fm:g} (band +/-{rel_band * 100:.0f}%)")
    if drifted == 0:
        print(f"diff_bench: {fresh['bench']}: "
              f"{len(base['metrics'])} metrics within noise bands")
    elif not failed:
        print(f"diff_bench: {fresh['bench']}: {drifted} metric(s) "
              f"outside noise bands (warning only; --strict to fail)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
