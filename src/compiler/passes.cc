#include "compiler/passes.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.h"
#include "ir/analysis.h"

namespace alaska::compiler
{

using namespace alaska::ir;

namespace
{

/** Follow address arithmetic to the base pointer value. */
Instruction *
addressRoot(Instruction *addr)
{
    while (addr->op == Op::Gep || addr->op == Op::Add ||
           addr->op == Op::Sub) {
        addr = addr->operands[0];
    }
    return addr;
}

/** Index of the first non-phi instruction in a block. */
size_t
firstNonPhi(const BasicBlock *block)
{
    size_t i = 0;
    while (i < block->insts.size() && block->insts[i]->op == Op::Phi)
        i++;
    return i;
}

/** All users of each instruction in a function. */
std::unordered_map<Instruction *, std::vector<Instruction *>>
userMap(Function &function)
{
    std::unordered_map<Instruction *, std::vector<Instruction *>> users;
    for (auto &block : function.blocks) {
        for (auto &inst : block->insts) {
            for (Instruction *operand : inst->operands)
                users[operand].push_back(inst.get());
        }
    }
    return users;
}

} // anonymous namespace

size_t
replaceAllocations(ir::Function &function)
{
    size_t replaced = 0;
    for (auto &block : function.blocks) {
        for (auto &inst : block->insts) {
            if (inst->op == Op::Malloc) {
                inst->op = Op::Halloc;
                replaced++;
            } else if (inst->op == Op::Free) {
                inst->op = Op::Hfree;
                replaced++;
            }
        }
    }
    return replaced;
}

size_t
handleEscapes(ir::Function &function)
{
    function.inferPointers();
    size_t pinned = 0;
    for (auto &block : function.blocks) {
        // Index loop: we insert while iterating.
        for (size_t i = 0; i < block->insts.size(); i++) {
            Instruction *inst = block->insts[i].get();
            if (inst->op != Op::CallExternal)
                continue;
            for (Instruction *&arg : inst->operands) {
                if (!arg->pointerLike || arg->op == Op::Translate)
                    continue;
                // Pin the escapee and hand the raw pointer to the
                // precompiled code (§4.1.4).
                auto translate = std::make_unique<Instruction>(
                    Op::Translate, std::vector<Instruction *>{arg});
                translate->pointerLike = true;
                Instruction *t =
                    block->insertAt(i, std::move(translate));
                arg = t;
                i++; // account for the inserted instruction
                pinned++;
            }
        }
    }
    return pinned;
}

size_t
insertTranslations(ir::Function &function, bool hoisting,
                   size_t *hoisted_out)
{
    function.inferPointers();
    function.computeCfg();

    // Collect handle-bearing memory accesses, grouped by root pointer.
    struct Access
    {
        Instruction *inst; ///< the load/store
    };
    std::vector<std::pair<Instruction *, std::vector<Access>>> groups;
    std::unordered_map<Instruction *, size_t> group_of;
    for (auto &block : function.blocks) {
        for (auto &inst : block->insts) {
            if (inst->op != Op::Load && inst->op != Op::Store)
                continue;
            Instruction *root = addressRoot(inst->operands[0]);
            if (!root->pointerLike || root->op == Op::Translate)
                continue; // raw pointers need no translation
            auto it = group_of.find(root);
            if (it == group_of.end()) {
                group_of[root] = groups.size();
                groups.push_back({root, {}});
                it = group_of.find(root);
            }
            groups[it->second].second.push_back({inst.get()});
        }
    }

    size_t inserted = 0;

    // Rewrites one access's address chain onto a translated base.
    auto rewrite = [&](Instruction *access, Instruction *root,
                       Instruction *translated) {
        // Clone the gep/add/sub chain with the root substituted,
        // placing clones immediately before the access.
        BasicBlock *block = access->parent;
        std::vector<Instruction *> chain;
        for (Instruction *a = access->operands[0]; a != root;
             a = a->operands[0]) {
            chain.push_back(a);
        }
        Instruction *base = translated;
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            std::vector<Instruction *> operands = (*it)->operands;
            operands[0] = base;
            auto clone = std::make_unique<Instruction>(
                (*it)->op, std::move(operands), (*it)->imm);
            clone->pointerLike = true;
            base = block->insertBefore(access, std::move(clone));
        }
        access->operands[0] = base;
    };

    if (!hoisting) {
        // -fno-strict-aliasing mode: translate before every access.
        for (auto &[root, accesses] : groups) {
            for (auto &access : accesses) {
                auto translate = std::make_unique<Instruction>(
                    Op::Translate,
                    std::vector<Instruction *>{access.inst->operands[0]});
                translate->pointerLike = true;
                Instruction *t = access.inst->parent->insertBefore(
                    access.inst, std::move(translate));
                access.inst->operands[0] = t;
                inserted++;
            }
        }
        return inserted;
    }

    DominatorTree domtree(function);
    LoopInfo loop_info(function, domtree);

    for (auto &[root, accesses] : groups) {
        // Dominator placement: the nearest common dominator of all
        // accesses (the dominator-forest root of Algorithm 1).
        BasicBlock *dom = accesses[0].inst->parent;
        for (const auto &access : accesses)
            dom = domtree.nearestCommonDominator(dom,
                                                 access.inst->parent);

        // FindNestingLoop: hoist into the preheader of the outermost
        // loop that contains the insertion point but not the root's
        // definition.
        BasicBlock *insert_block = dom;
        bool hoisted = false;
        for (Loop *loop = loop_info.innermostLoop(insert_block); loop;
             loop = loop->parent) {
            if (root->parent && loop->contains(root->parent))
                break; // pointer is produced inside this loop
            ALASKA_ASSERT(loop->preheader != nullptr,
                          "loop %s lacks a preheader; run "
                          "ensurePreheaders first",
                          loop->header->name.c_str());
            insert_block = loop->preheader;
            hoisted = true;
        }

        // Insertion index within the chosen block.
        size_t idx;
        if (insert_block == dom) {
            // Before the earliest access in this block, or before the
            // terminator if all accesses are in strict successors.
            idx = insert_block->insts.size() - 1;
            for (const auto &access : accesses) {
                if (access.inst->parent == insert_block) {
                    idx = std::min(
                        idx, static_cast<size_t>(
                                 insert_block->indexOf(access.inst)));
                }
            }
        } else {
            idx = insert_block->insts.size() - 1; // before terminator
        }
        if (root->parent == insert_block) {
            idx = std::max(
                idx, static_cast<size_t>(insert_block->indexOf(root)) + 1);
        }
        idx = std::max(idx, firstNonPhi(insert_block));

        auto translate = std::make_unique<Instruction>(
            Op::Translate, std::vector<Instruction *>{root});
        translate->pointerLike = true;
        Instruction *t = insert_block->insertAt(idx, std::move(translate));
        inserted++;
        if (hoisted && hoisted_out)
            (*hoisted_out)++;

        for (auto &access : accesses)
            rewrite(access.inst, root, t);
    }
    return inserted;
}

size_t
insertReleases(ir::Function &function)
{
    // Collect translates first: inserting releases changes liveness.
    std::vector<Instruction *> translates;
    for (auto &block : function.blocks) {
        for (auto &inst : block->insts) {
            if (inst->op == Op::Translate)
                translates.push_back(inst.get());
        }
    }

    Liveness liveness(function);
    size_t inserted = 0;
    for (Instruction *t : translates) {
        for (Instruction *last : liveness.lastUses(t)) {
            BasicBlock *block = last->parent;
            auto release = std::make_unique<Instruction>(
                Op::Release, std::vector<Instruction *>{t});
            if (last->isTerminator()) {
                block->insertBefore(last, std::move(release));
            } else {
                const int idx = block->indexOf(last);
                block->insertAt(static_cast<size_t>(idx) + 1,
                                std::move(release));
            }
            inserted++;
        }
    }
    return inserted;
}

void
removeReleases(ir::Function &function)
{
    for (auto &block : function.blocks) {
        for (size_t i = 0; i < block->insts.size();) {
            if (block->insts[i]->op == Op::Release) {
                block->insts.erase(block->insts.begin() + i);
            } else {
                i++;
            }
        }
    }
}

size_t
insertPinTracking(ir::Function &function)
{
    std::vector<Instruction *> translates;
    for (auto &block : function.blocks) {
        for (auto &inst : block->insts) {
            if (inst->op == Op::Translate)
                translates.push_back(inst.get());
        }
    }
    if (translates.empty()) {
        removeReleases(function);
        return 0;
    }

    // Interference: two translations conflict when their live ranges
    // overlap — one is live where the other is defined. Releases are
    // still in place, so liveness reflects pin lifetimes.
    Liveness liveness(function);
    const size_t n = translates.size();
    std::vector<std::vector<bool>> conflict(n, std::vector<bool>(n));
    for (size_t i = 0; i < n; i++) {
        for (size_t j = i + 1; j < n; j++) {
            const bool overlap =
                liveness.liveAfter(translates[i], translates[j]) ||
                liveness.liveAfter(translates[j], translates[i]);
            conflict[i][j] = conflict[j][i] = overlap;
        }
    }

    // Greedy coloring in program order (the paper: "a greedy
    // interference graph-based allocation strategy similar to a
    // register allocation algorithm").
    std::vector<int> slot(n, -1);
    size_t slots = 0;
    for (size_t i = 0; i < n; i++) {
        std::unordered_set<int> taken;
        for (size_t j = 0; j < n; j++) {
            if (conflict[i][j] && slot[j] >= 0)
                taken.insert(slot[j]);
        }
        int s = 0;
        while (taken.count(s))
            s++;
        slot[i] = s;
        slots = std::max(slots, static_cast<size_t>(s) + 1);
    }

    // Pin set in the prelude; a pin store before every translation.
    auto pinset = std::make_unique<Instruction>(
        Op::PinSetAlloc, std::vector<Instruction *>{},
        static_cast<int64_t>(slots));
    function.entry()->insertAt(0, std::move(pinset));

    for (size_t i = 0; i < n; i++) {
        Instruction *t = translates[i];
        auto pin = std::make_unique<Instruction>(
            Op::PinStore, std::vector<Instruction *>{t->operands[0]},
            slot[i]);
        t->parent->insertBefore(t, std::move(pin));
    }

    removeReleases(function);
    return slots;
}

size_t
insertSafepoints(ir::Function &function)
{
    size_t inserted = 0;
    function.computeCfg();
    DominatorTree domtree(function);
    LoopInfo loop_info(function, domtree);

    // Function entry (after the pin-set prelude).
    {
        size_t idx = 0;
        while (idx < function.entry()->insts.size() &&
               (function.entry()->insts[idx]->op == Op::PinSetAlloc ||
                function.entry()->insts[idx]->op == Op::Arg)) {
            idx++;
        }
        function.entry()->insertAt(
            idx, std::make_unique<Instruction>(Op::Safepoint));
        inserted++;
    }

    // Loop back edges: in every latch, right before the branch.
    for (const auto &loop : loop_info.loops()) {
        for (BasicBlock *pred : loop->header->preds) {
            if (!loop->contains(pred))
                continue;
            pred->insertBefore(pred->terminator(),
                               std::make_unique<Instruction>(Op::Safepoint));
            inserted++;
        }
    }

    // Before calls into external code.
    for (auto &block : function.blocks) {
        for (size_t i = 0; i < block->insts.size(); i++) {
            if (block->insts[i]->op == Op::CallExternal) {
                block->insertAt(
                    i, std::make_unique<Instruction>(Op::Safepoint));
                i++;
                inserted++;
            }
        }
    }
    return inserted;
}

size_t
deadCodeElim(ir::Function &function)
{
    size_t removed = 0;
    for (;;) {
        auto users = userMap(function);
        std::vector<Instruction *> dead;
        for (auto &block : function.blocks) {
            for (auto &inst : block->insts) {
                if (!users[inst.get()].empty())
                    continue;
                switch (inst->op) {
                  case Op::Const:
                  case Op::Add:
                  case Op::Sub:
                  case Op::Mul:
                  case Op::Div:
                  case Op::Shl:
                  case Op::Shr:
                  case Op::And:
                  case Op::Or:
                  case Op::Xor:
                  case Op::CmpEq:
                  case Op::CmpLt:
                  case Op::Gep:
                  case Op::Phi:
                    dead.push_back(inst.get());
                    break;
                  default:
                    break;
                }
            }
        }
        if (dead.empty())
            return removed;
        for (Instruction *inst : dead) {
            inst->parent->erase(inst);
            removed++;
        }
    }
}

PassMetrics
runPipeline(ir::Module &module, PassOptions options)
{
    PassMetrics metrics;
    metrics.instructionsBefore = module.instructionCount();

    for (auto &fn : module.functions) {
        if (options.replaceAllocations)
            metrics.allocationsReplaced += replaceAllocations(*fn);
        ensurePreheaders(*fn);
        metrics.escapesPinned += handleEscapes(*fn);
        metrics.translationsInserted += insertTranslations(
            *fn, options.hoisting, &metrics.translationsHoisted);
        metrics.releasesInserted += insertReleases(*fn);
        if (options.tracking) {
            metrics.pinSlots += insertPinTracking(*fn);
        } else {
            removeReleases(*fn);
        }
        if (options.safepoints)
            metrics.safepointsInserted += insertSafepoints(*fn);
        deadCodeElim(*fn);
        fn->renumber();
    }

    metrics.instructionsAfter = module.instructionCount();
    return metrics;
}

} // namespace alaska::compiler
