/**
 * @file
 * The Alaska compiler passes (paper §4.1), reimplemented over the mini
 * IR:
 *
 *  - replaceAllocations: malloc/free -> halloc/hfree (§4.1.1)
 *  - handleEscapes: pin-and-translate arguments that escape to
 *    precompiled external code (§4.1.4)
 *  - insertTranslations: Algorithm 1 — place one translation at a point
 *    dominating each group of accesses, hoisted out of loops whose
 *    bodies do not define the pointer (§4.1.2)
 *  - insertReleases: liveness-bounded ends of translation lifetimes
 *  - insertPinTracking: interference-graph slot assignment and stack
 *    pin sets (§4.1.3); consumes the releases
 *  - insertSafepoints: polls on loop back edges, function entry and
 *    before external calls (§4.1.3)
 *
 * runPipeline() applies them in order and reports the static metrics
 * (code growth, hoisted fraction, pin-set sizes) used to answer the
 * paper's Q2.
 */

#ifndef ALASKA_COMPILER_PASSES_H
#define ALASKA_COMPILER_PASSES_H

#include <cstddef>

#include "ir/ir.h"

namespace alaska::compiler
{

/** Pipeline configuration (the Figure 8 ablation axes). */
struct PassOptions
{
    /** Rewrite malloc/free to halloc/hfree. */
    bool replaceAllocations = true;
    /** Hoist translations out of loops ("nohoisting" disables). */
    bool hoisting = true;
    /** Emit pin sets and stores ("notracking" disables). */
    bool tracking = true;
    /** Emit safepoint polls. */
    bool safepoints = true;
};

/** Static metrics of one pipeline run. */
struct PassMetrics
{
    size_t instructionsBefore = 0;
    size_t instructionsAfter = 0;
    size_t allocationsReplaced = 0;
    size_t translationsInserted = 0;
    size_t translationsHoisted = 0;
    size_t releasesInserted = 0;
    size_t pinSlots = 0;
    size_t safepointsInserted = 0;
    size_t escapesPinned = 0;

    /** Code growth factor (the paper reports geomean 1.48x). */
    double
    codeGrowth() const
    {
        return instructionsBefore == 0
                   ? 1.0
                   : static_cast<double>(instructionsAfter) /
                         static_cast<double>(instructionsBefore);
    }
};

/** malloc/free/calloc-style rewrites. @return sites replaced. */
size_t replaceAllocations(ir::Function &function);

/** Escape handling for external calls. @return arguments pinned. */
size_t handleEscapes(ir::Function &function);

/**
 * Algorithm 1: translation insertion with optional hoisting.
 * @param hoisted_out if non-null, incremented per hoisted translation.
 * @return translations inserted.
 */
size_t insertTranslations(ir::Function &function, bool hoisting,
                          size_t *hoisted_out = nullptr);

/** Liveness-based release placement. @return releases inserted. */
size_t insertReleases(ir::Function &function);

/**
 * Pin-set slot assignment (greedy interference coloring) and pin-store
 * emission; consumes Release instructions.
 * @return the function's pin-set size in slots.
 */
size_t insertPinTracking(ir::Function &function);

/** Strip Release instructions without emitting pins (notracking). */
void removeReleases(ir::Function &function);

/** Safepoint insertion. @return polls inserted. */
size_t insertSafepoints(ir::Function &function);

/** Remove dead pure instructions. @return instructions removed. */
size_t deadCodeElim(ir::Function &function);

/** Run the full pipeline over a module. */
PassMetrics runPipeline(ir::Module &module, PassOptions options = {});

} // namespace alaska::compiler

#endif // ALASKA_COMPILER_PASSES_H
