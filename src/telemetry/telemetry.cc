#include "telemetry/telemetry.h"

#include <cinttypes>
#include <mutex>
#include <string>

namespace alaska::telemetry
{

const char *
counterName(Counter c)
{
    switch (c) {
    case Counter::TranslateFast: return "translate_fast";
    case Counter::DerefScoped: return "deref_scoped";
    case Counter::ScopeOpen: return "scope_open";
    case Counter::Halloc: return "halloc";
    case Counter::Hfree: return "hfree";
    case Counter::DerefPinned: return "deref_pinned";
    case Counter::HandleFault: return "handle_fault";
    case Counter::MagazineRefill: return "magazine_refill";
    case Counter::MagazineSpill: return "magazine_spill";
    case Counter::CrossShardFree: return "cross_shard_free";
    case Counter::ShardHoleSteal: return "shard_hole_steal";
    case Counter::IdShardSteal: return "id_shard_steal";
    case Counter::CampaignCommit: return "campaign_commit";
    case Counter::CampaignAbort: return "campaign_abort";
    case Counter::CampaignNoSpace: return "campaign_no_space";
    case Counter::GraceWait: return "grace_wait";
    case Counter::LimboSeal: return "limbo_seal";
    case Counter::LimboRetire: return "limbo_retire";
    case Counter::LimboStall: return "limbo_stall";
    case Counter::Barrier: return "barrier";
    case Counter::PageMesh: return "page_mesh";
    case Counter::PageSplit: return "page_split";
    case Counter::MeshDissolve: return "mesh_dissolve";
    case Counter::StwRecoveredBytes: return "stw_recovered_bytes";
    case Counter::CampaignRecoveredBytes:
        return "campaign_recovered_bytes";
    case Counter::MeshRecoveredBytes: return "mesh_recovered_bytes";
    case Counter::ServeSteal: return "serve_steal";
    case Counter::ServeBackpressure: return "serve_backpressure";
    case Counter::kCount: break;
    }
    return "unknown";
}

const char *
gaugeName(Gauge g)
{
    switch (g) {
    case Gauge::BatchBytesCurrent: return "batch_bytes_current";
    case Gauge::ServeQueueDepth: return "serve_queue_depth";
    case Gauge::kCount: break;
    }
    return "unknown";
}

const char *
histName(Hist h)
{
    switch (h) {
    case Hist::BarrierPauseNs: return "barrier_pause_ns";
    case Hist::CampaignCopyNs: return "campaign_copy_ns";
    case Hist::GraceAgeNs: return "grace_age_ns";
    case Hist::AllocMissDepth: return "alloc_miss_depth";
    case Hist::MeshPassNs: return "mesh_pass_ns";
    case Hist::kCount: break;
    }
    return "unknown";
}

namespace detail
{

thread_local constinit CounterBlock *tlsCounters
    __attribute__((tls_model("local-exec"))) = nullptr;

namespace
{

/**
 * Registry of every CounterBlock ever handed out. Blocks are never
 * destroyed (each is ~200 bytes); a thread exit pushes its block onto
 * the free list, counts intact, for the next thread to reuse — so
 * snapshot() keeps seeing exited threads' counts and thread churn
 * does not grow memory. allBlocks is a lock-free push-only list so
 * snapshot() can walk it without the mutex; the mutex only serializes
 * free-list pops and pushes.
 */
struct BlockRegistry {
    std::atomic<CounterBlock *> allBlocks{nullptr};
    std::mutex freeMutex;
    CounterBlock *freeList = nullptr;
    /** Shared overflow cell for increments after thread teardown. */
    CounterBlock lateBlock;
};

BlockRegistry &
blockRegistry()
{
    static BlockRegistry *r = new BlockRegistry(); // leaked: outlives TLS dtors
    return *r;
}

CounterBlock *
acquireBlock()
{
    BlockRegistry &r = blockRegistry();
    {
        std::lock_guard<std::mutex> guard(r.freeMutex);
        if (r.freeList != nullptr) {
            CounterBlock *b = r.freeList;
            r.freeList = b->nextFree;
            b->nextFree = nullptr;
            return b; // already on allBlocks
        }
    }
    CounterBlock *b = new CounterBlock();
    CounterBlock *head = r.allBlocks.load(std::memory_order_relaxed);
    do {
        b->next = head;
    } while (!r.allBlocks.compare_exchange_weak(head, b,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
    return b;
}

/**
 * TLS owner whose destructor retires this thread's block: the block
 * (counts intact) goes back to the pool and tlsCounters is pointed at
 * the shared late block so destructors running after us still count.
 */
struct ThreadOwner {
    CounterBlock *block = nullptr;
    ~ThreadOwner()
    {
        BlockRegistry &r = blockRegistry();
        if (block != nullptr) {
            std::lock_guard<std::mutex> guard(r.freeMutex);
            block->nextFree = r.freeList;
            r.freeList = block;
        }
        tlsCounters = &r.lateBlock;
    }
};

thread_local ThreadOwner tlsOwner;

} // namespace

CounterBlock &
countersSlow()
{
    CounterBlock *b = acquireBlock();
    tlsOwner.block = b;
    tlsCounters = b;
    return *b;
}

std::atomic<uint64_t> gGauges[kNumGauges] = {};

} // namespace detail

namespace
{

Histogram gHists[kNumHists];

} // namespace

Histogram &
hist(Hist h)
{
    return gHists[static_cast<size_t>(h)];
}

Snapshot
snapshot()
{
    Snapshot snap;
    auto &r = detail::blockRegistry();
    for (detail::CounterBlock *b =
             r.allBlocks.load(std::memory_order_acquire);
         b != nullptr; b = b->next)
        for (size_t i = 0; i < kNumCounters; i++)
            snap.counters[i] +=
                b->cells[i].load(std::memory_order_relaxed);
    for (size_t i = 0; i < kNumCounters; i++)
        snap.counters[i] +=
            r.lateBlock.cells[i].load(std::memory_order_relaxed);
    for (size_t i = 0; i < kNumGauges; i++)
        snap.gauges[i] =
            detail::gGauges[i].load(std::memory_order_relaxed);
    for (size_t i = 0; i < kNumHists; i++)
        snap.hists[i] = gHists[i];
    return snap;
}

void
reset()
{
    auto &r = detail::blockRegistry();
    for (detail::CounterBlock *b =
             r.allBlocks.load(std::memory_order_acquire);
         b != nullptr; b = b->next)
        for (size_t i = 0; i < kNumCounters; i++)
            b->cells[i].store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < kNumCounters; i++)
        r.lateBlock.cells[i].store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < kNumGauges; i++)
        detail::gGauges[i].store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < kNumHists; i++)
        gHists[i].clear();
}

void
writeText(const Snapshot &snap, FILE *out)
{
    fprintf(out, "# telemetry counters (cumulative, level %d)\n",
            ALASKA_TELEMETRY_LEVEL);
    for (size_t i = 0; i < kNumCounters; i++) {
        if (snap.counters[i] == 0)
            continue;
        fprintf(out, "%-20s %12" PRIu64 "\n",
                counterName(static_cast<Counter>(i)), snap.counters[i]);
    }
    fprintf(out, "# telemetry gauges (instantaneous)\n");
    for (size_t i = 0; i < kNumGauges; i++) {
        if (snap.gauges[i] == 0)
            continue;
        fprintf(out, "%-20s %12" PRIu64 "\n",
                gaugeName(static_cast<Gauge>(i)), snap.gauges[i]);
    }
    fprintf(out, "# telemetry histograms\n");
    for (size_t i = 0; i < kNumHists; i++) {
        const Histogram &h = snap.hists[i];
        if (h.count() == 0)
            continue;
        fprintf(out,
                "%-20s count=%" PRIu64 " mean=%.1f p50=%.1f p99=%.1f"
                " max=%" PRIu64 "\n",
                histName(static_cast<Hist>(i)), h.count(), h.mean(),
                h.percentile(50), h.percentile(99), h.max());
    }
}

bool
writeJson(const Snapshot &snap, const char *path)
{
    FILE *out = fopen(path, "w");
    if (out == nullptr)
        return false;
    fprintf(out, "{\n  \"level\": %d,\n  \"counters\": {",
            ALASKA_TELEMETRY_LEVEL);
    bool first = true;
    for (size_t i = 0; i < kNumCounters; i++) {
        fprintf(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
                counterName(static_cast<Counter>(i)), snap.counters[i]);
        first = false;
    }
    fprintf(out, "\n  },\n  \"gauges\": {");
    first = true;
    for (size_t i = 0; i < kNumGauges; i++) {
        fprintf(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
                gaugeName(static_cast<Gauge>(i)), snap.gauges[i]);
        first = false;
    }
    fprintf(out, "\n  },\n  \"histograms\": {");
    first = true;
    for (size_t i = 0; i < kNumHists; i++) {
        const Histogram &h = snap.hists[i];
        fprintf(out,
                "%s\n    \"%s\": {\"count\": %" PRIu64
                ", \"sum\": %" PRIu64 ", \"max\": %" PRIu64
                ", \"mean\": %.3f, \"p50\": %.1f, \"p99\": %.1f}",
                first ? "" : ",", histName(static_cast<Hist>(i)),
                h.count(), h.sum(), h.max(), h.mean(), h.percentile(50),
                h.percentile(99));
        first = false;
    }
    fprintf(out, "\n  }\n}\n");
    bool ok = (fclose(out) == 0);
    return ok;
}

} // namespace alaska::telemetry
