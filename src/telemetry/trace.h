/**
 * @file
 * Chrome-trace event tracer: per-thread fixed-capacity ring buffers
 * of timestamped spans and instants, exported as Chrome trace-event
 * JSON (load the file at https://ui.perfetto.dev). Disabled by
 * default; when disabled a trace point costs one relaxed bool load.
 * Event names must be string literals (the rings store the pointer).
 * See docs/OBSERVABILITY.md for the event schema.
 */

#ifndef ALASKA_TELEMETRY_TRACE_H
#define ALASKA_TELEMETRY_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace alaska::telemetry
{

namespace detail
{
extern std::atomic<bool> gTracingEnabled;
} // namespace detail

/** True between enableTracing() and disableTracing(). One relaxed
 *  load; every trace point checks it first. */
inline bool
tracingEnabled()
{
    return detail::gTracingEnabled.load(std::memory_order_relaxed);
}

/** Nanoseconds on the tracer's steady clock (the timebase of every
 *  event timestamp). */
uint64_t traceNowNs();

/**
 * Start recording. ringCapacity is the per-thread event capacity;
 * when a ring fills, the oldest events are overwritten and counted as
 * dropped (reported on the trace's metadata thread). Idempotent;
 * capacity applies to rings created after the call.
 */
void enableTracing(size_t ringCapacity = 8192);

/** Stop recording. Already-buffered events stay dumpable. */
void disableTracing();

/** Drop all buffered events (rings stay allocated). */
void clearTrace();

/**
 * Record a complete span [beginNs, endNs] on this thread's ring.
 * name must be a string literal. No-op when tracing is disabled.
 */
void traceComplete(const char *name, uint64_t beginNs, uint64_t endNs);

/** Record an instantaneous event at now. name must be a string
 *  literal. No-op when tracing is disabled. */
void traceInstant(const char *name);

/**
 * Write every buffered event (all threads, live and exited) as
 * Chrome trace-event JSON to path, sorted by timestamp. Safe to call
 * while other threads keep tracing — each ring is copied under its
 * lock; events recorded during the dump may or may not appear.
 * Returns false on I/O error.
 */
bool dumpTrace(const char *path);

/**
 * RAII span: samples the clock at construction and records a complete
 * event at destruction. Arms only if tracing is enabled at
 * construction, so a span crossing disableTracing() still lands in
 * the ring. name must be a string literal.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
        : name_(name), armed_(tracingEnabled()),
          begin_(armed_ ? traceNowNs() : 0)
    {
    }

    ~TraceSpan()
    {
        if (armed_)
            traceComplete(name_, begin_, traceNowNs());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_;
    bool armed_;
    uint64_t begin_;
};

} // namespace alaska::telemetry

#endif // ALASKA_TELEMETRY_TRACE_H
