#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <vector>

namespace alaska::telemetry
{

namespace detail
{
std::atomic<bool> gTracingEnabled{false};
} // namespace detail

namespace
{

/** One buffered event. phase 'X' = complete span, 'i' = instant. */
struct Event {
    const char *name;
    uint64_t beginNs;
    uint64_t endNs; ///< == beginNs for instants
    char phase;
};

/**
 * One thread's ring. The owning thread appends; dumpTrace() copies
 * under the same mutex (every trace point is on a cold path —
 * campaigns, barriers, controller ticks — so an uncontended lock is
 * cheap and keeps the TSAN lane clean). Rings are never freed: an
 * exited thread's events stay dumpable, and the registry list only
 * grows by live-thread count.
 */
struct TraceRing {
    std::mutex mutex;
    std::vector<Event> events; ///< grows to cap, then wraps
    size_t cap = 0;            ///< fixed at creation
    size_t head = 0;           ///< next slot once events is full
    uint64_t dropped = 0;
    uint32_t tid = 0;
    TraceRing *next = nullptr;
};

struct TraceRegistry {
    std::atomic<TraceRing *> rings{nullptr};
    std::atomic<uint32_t> nextTid{1};
    std::atomic<size_t> ringCapacity{8192};
};

TraceRegistry &
traceRegistry()
{
    static TraceRegistry *r = new TraceRegistry(); // outlives TLS dtors
    return *r;
}

thread_local constinit TraceRing *tlsRing
    __attribute__((tls_model("local-exec"))) = nullptr;

TraceRing &
ringSlow()
{
    TraceRegistry &r = traceRegistry();
    TraceRing *ring = new TraceRing();
    ring->tid = r.nextTid.fetch_add(1, std::memory_order_relaxed);
    ring->cap = r.ringCapacity.load(std::memory_order_relaxed);
    ring->events.reserve(ring->cap);
    TraceRing *head = r.rings.load(std::memory_order_relaxed);
    do {
        ring->next = head;
    } while (!r.rings.compare_exchange_weak(head, ring,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
    tlsRing = ring;
    return *ring;
}

inline TraceRing &
ring()
{
    TraceRing *r = tlsRing;
    if (__builtin_expect(r == nullptr, 0))
        return ringSlow();
    return *r;
}

void
push(TraceRing &r, const Event &ev)
{
    std::lock_guard<std::mutex> guard(r.mutex);
    if (r.events.size() < r.cap) {
        r.events.push_back(ev);
        return;
    }
    if (r.cap == 0)
        return;
    r.events[r.head] = ev; // wrap: overwrite oldest
    r.head = (r.head + 1) % r.events.size();
    r.dropped++;
}

} // namespace

uint64_t
traceNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
enableTracing(size_t ringCapacity)
{
    TraceRegistry &r = traceRegistry();
    r.ringCapacity.store(ringCapacity, std::memory_order_relaxed);
    detail::gTracingEnabled.store(true, std::memory_order_relaxed);
}

void
disableTracing()
{
    detail::gTracingEnabled.store(false, std::memory_order_relaxed);
}

void
clearTrace()
{
    TraceRegistry &r = traceRegistry();
    for (TraceRing *ring = r.rings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next) {
        std::lock_guard<std::mutex> guard(ring->mutex);
        ring->events.clear();
        ring->head = 0;
        ring->dropped = 0;
    }
}

void
traceComplete(const char *name, uint64_t beginNs, uint64_t endNs)
{
    if (!tracingEnabled())
        return;
    push(ring(), Event{name, beginNs, endNs, 'X'});
}

void
traceInstant(const char *name)
{
    if (!tracingEnabled())
        return;
    uint64_t now = traceNowNs();
    push(ring(), Event{name, now, now, 'i'});
}

bool
dumpTrace(const char *path)
{
    struct Tagged {
        Event ev;
        uint32_t tid;
    };
    std::vector<Tagged> all;
    uint64_t dropped = 0;
    TraceRegistry &r = traceRegistry();
    for (TraceRing *ring = r.rings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next) {
        std::lock_guard<std::mutex> guard(ring->mutex);
        for (const Event &ev : ring->events)
            all.push_back(Tagged{ev, ring->tid});
        dropped += ring->dropped;
    }
    std::sort(all.begin(), all.end(),
              [](const Tagged &a, const Tagged &b) {
                  return a.ev.beginNs < b.ev.beginNs;
              });

    FILE *out = fopen(path, "w");
    if (out == nullptr)
        return false;
    // Chrome trace-event format: ts/dur in microseconds. Timestamps
    // are rebased to the earliest event so Perfetto's timeline starts
    // near zero.
    uint64_t base = all.empty() ? 0 : all.front().ev.beginNs;
    fprintf(out, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    bool first = true;
    for (const Tagged &t : all) {
        double ts = static_cast<double>(t.ev.beginNs - base) / 1e3;
        if (t.ev.phase == 'X') {
            double dur =
                static_cast<double>(t.ev.endNs - t.ev.beginNs) / 1e3;
            fprintf(out,
                    "%s\n{\"name\": \"%s\", \"cat\": \"alaska\", "
                    "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 1, \"tid\": %" PRIu32 "}",
                    first ? "" : ",", t.ev.name, ts, dur, t.tid);
        } else {
            fprintf(out,
                    "%s\n{\"name\": \"%s\", \"cat\": \"alaska\", "
                    "\"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, "
                    "\"pid\": 1, \"tid\": %" PRIu32 "}",
                    first ? "" : ",", t.ev.name, ts, t.tid);
        }
        first = false;
    }
    if (dropped > 0)
        fprintf(out,
                "%s\n{\"name\": \"dropped_events: %" PRIu64
                "\", \"cat\": \"alaska\", \"ph\": \"i\", \"s\": \"g\", "
                "\"ts\": 0, \"pid\": 1, \"tid\": 0}",
                first ? "" : ",", dropped);
    fprintf(out, "\n]}\n");
    return fclose(out) == 0;
}

} // namespace alaska::telemetry
