/**
 * @file
 * Fixed-size log2-bucketed histogram: constant memory regardless of
 * sample count, mergeable across threads, safe to record into
 * concurrently. Replaces the store-every-sample LatencyDigest
 * (base/stats.h) in long-running paths — a daemon that records one
 * barrier pause per tick for a week must not grow a vector forever.
 */

#ifndef ALASKA_TELEMETRY_HISTOGRAM_H
#define ALASKA_TELEMETRY_HISTOGRAM_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace alaska::telemetry
{

/**
 * A 64-bucket power-of-two histogram over uint64_t samples.
 *
 * Bucket 0 holds only the value 0; bucket b (b >= 1) holds values in
 * [2^(b-1), 2^b). With 64 buckets every uint64_t value has a bucket,
 * so record() never saturates or clamps. Alongside the buckets the
 * histogram tracks exact count, sum and max, so mean() and max() are
 * exact; percentile() is bucket-resolution (within 2x, linearly
 * interpolated inside the winning bucket).
 *
 * Concurrency: record() and merge() use relaxed atomics and may race
 * freely with readers; readers see a possibly-torn but
 * monotonically-growing view (each bucket individually exact). For an
 * exact cross-thread total, have each thread record into its own
 * Histogram and merge() them after the threads quiesce — merge of
 * quiescent histograms is exact (tested in tests/telemetry_test.cc).
 * Copy construction/assignment snapshot with relaxed loads.
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 64;

    Histogram() = default;

    Histogram(const Histogram &other) { copyFrom(other); }

    Histogram &
    operator=(const Histogram &other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    /** Bucket index for a value: 0 -> 0, else floor(log2(v)) + 1,
     *  clamped so the top bucket absorbs [2^62, 2^64). */
    static constexpr size_t
    bucketOf(uint64_t v)
    {
        if (v == 0)
            return 0;
        const size_t b = static_cast<size_t>(64 - __builtin_clzll(v));
        return b < kBuckets ? b : kBuckets - 1;
    }

    /** Smallest value that lands in bucket b. */
    static constexpr uint64_t
    bucketLow(size_t b)
    {
        return b == 0 ? 0 : uint64_t(1) << (b - 1);
    }

    /** Largest value that lands in bucket b. */
    static constexpr uint64_t
    bucketHigh(size_t b)
    {
        return b == 0 ? 0
               : b == kBuckets - 1 ? ~uint64_t(0)
                                   : (uint64_t(1) << b) - 1;
    }

    /** Add one sample. Thread-safe, wait-free (3 relaxed RMWs). */
    void
    record(uint64_t v)
    {
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (v > prev &&
               !max_.compare_exchange_weak(prev, v,
                                           std::memory_order_relaxed))
            ;
    }

    /** Fold another histogram's samples into this one. */
    void
    merge(const Histogram &other)
    {
        for (size_t b = 0; b < kBuckets; b++)
            buckets_[b].fetch_add(
                other.buckets_[b].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        uint64_t omax = other.max_.load(std::memory_order_relaxed);
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (omax > prev &&
               !max_.compare_exchange_weak(prev, omax,
                                           std::memory_order_relaxed))
            ;
    }

    /** Drop all samples. Not safe against concurrent record(). */
    void
    clear()
    {
        for (size_t b = 0; b < kBuckets; b++)
            buckets_[b].store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Exact largest recorded sample (0 when empty). */
    uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /** Exact arithmetic mean (0 when empty). */
    double
    mean() const
    {
        uint64_t n = count();
        return n == 0 ? 0.0 : static_cast<double>(sum()) / n;
    }

    /** Samples in bucket b. */
    uint64_t
    bucketCount(size_t b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    /**
     * Approximate percentile p in [0, 100]: finds the bucket holding
     * the rank-ceil(p/100 * count) sample and linearly interpolates
     * inside it. Exact for single-valued buckets (e.g. bucket 0);
     * within the bucket's 2x span otherwise. Returns 0 when empty.
     */
    double
    percentile(double p) const
    {
        uint64_t n = count();
        if (n == 0)
            return 0.0;
        if (p < 0)
            p = 0;
        if (p > 100)
            p = 100;
        uint64_t rank = static_cast<uint64_t>(p / 100.0 * n + 0.5);
        if (rank == 0)
            rank = 1;
        if (rank > n)
            rank = n;
        uint64_t cum = 0;
        for (size_t b = 0; b < kBuckets; b++) {
            uint64_t c = bucketCount(b);
            if (c == 0)
                continue;
            if (cum + c >= rank) {
                double lo = static_cast<double>(bucketLow(b));
                double hi = static_cast<double>(bucketHigh(b));
                double frac =
                    static_cast<double>(rank - cum) / static_cast<double>(c);
                return lo + (hi - lo) * frac;
            }
            cum += c;
        }
        return static_cast<double>(max());
    }

  private:
    void
    copyFrom(const Histogram &other)
    {
        for (size_t b = 0; b < kBuckets; b++)
            buckets_[b].store(
                other.buckets_[b].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        count_.store(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        sum_.store(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
        max_.store(other.max_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    }

    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

} // namespace alaska::telemetry

#endif // ALASKA_TELEMETRY_HISTOGRAM_H
