/**
 * @file
 * Windowed percentile helper over telemetry::Histogram: record samples
 * continuously, rotate() at window boundaries to get that window's
 * count/percentile summary while the next window keeps recording.
 * Built for tail-latency SLO tracking (src/serve/slo.h): a cumulative
 * histogram answers "what was p999 over the whole run", a windowed one
 * answers "in which 100 ms windows did p999 blow the SLO" — the
 * question that attributes violations to defrag activity.
 */

#ifndef ALASKA_TELEMETRY_WINDOWED_H
#define ALASKA_TELEMETRY_WINDOWED_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/histogram.h"

namespace alaska::telemetry
{

/** One closed window's summary (values in the samples' own unit). */
struct WindowSummary
{
    uint64_t count = 0;
    uint64_t max = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
    double p999 = 0;
};

/**
 * A histogram that is periodically rotated into per-window summaries.
 *
 * record() is thread-safe and wait-free (it is Histogram::record on
 * the current window). rotate() must be called by a single rotator
 * thread (typically a sampler on the window cadence); it summarizes
 * and clears the current window and appends the summary to a bounded
 * ring of recent windows. record() may race rotate(): a sample landing
 * exactly on the boundary is counted in whichever window the race
 * resolves to — or, rarely, split across the summary fields (the
 * clear() is not atomic with the snapshot). Percentile windows
 * tolerate that by design; never use rotate() output for exact
 * conservation accounting (use a cumulative Histogram for totals).
 */
class WindowedHistogram
{
  public:
    /** @param keep how many recent window summaries recent() retains */
    explicit WindowedHistogram(size_t keep = 256) : keep_(keep) {}

    /** Add one sample to the current window. Any thread. */
    void record(uint64_t v) { current_.record(v); }

    /**
     * Close the current window: snapshot its summary, clear it, and
     * append the summary to the recent ring. Single rotator thread.
     */
    WindowSummary
    rotate()
    {
        const Histogram snap = current_; // relaxed-copy snapshot
        current_.clear();
        WindowSummary s;
        s.count = snap.count();
        s.max = snap.max();
        s.mean = snap.mean();
        s.p50 = snap.percentile(50);
        s.p99 = snap.percentile(99);
        s.p999 = snap.percentile(99.9);
        if (recent_.size() == keep_ && keep_ > 0)
            recent_.erase(recent_.begin());
        if (keep_ > 0)
            recent_.push_back(s);
        windows_++;
        return s;
    }

    /** Windows rotated so far. Rotator thread (or after it quiesces). */
    uint64_t windows() const { return windows_; }

    /** Copy of the retained recent summaries, oldest first. Rotator
     *  thread (or after it quiesces). */
    const std::vector<WindowSummary> &recent() const { return recent_; }

  private:
    Histogram current_;
    size_t keep_;
    uint64_t windows_ = 0;
    std::vector<WindowSummary> recent_;
};

} // namespace alaska::telemetry

#endif // ALASKA_TELEMETRY_WINDOWED_H
