/**
 * @file
 * Runtime telemetry: named per-thread relaxed-atomic counters and a
 * small set of well-known histograms, aggregated lazily at snapshot
 * time. A hot path pays one relaxed fetch_add on a thread-local cell
 * — or nothing at all when the counter's level is compiled out via
 * ALASKA_TELEMETRY_LEVEL. No core/ dependencies; core depends on this
 * layer, never the reverse. See docs/OBSERVABILITY.md for the metric
 * catalog and overhead levels.
 */

#ifndef ALASKA_TELEMETRY_TELEMETRY_H
#define ALASKA_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <cstdio>

#include "telemetry/histogram.h"

/**
 * Compile-time telemetry level:
 *   0 — everything compiles to nothing (count()/countHot() are empty
 *       inline functions; histograms and tracing still link but no
 *       runtime path records into them).
 *   1 — default: cold/medium-path counters and histograms (faults,
 *       magazine traffic, defrag pipeline, grace/limbo). Nothing on
 *       the per-deref fast path, so translate keeps its two-
 *       instruction body.
 *   2 — additionally count every translate/deref/scope-open
 *       (countHot). Costs one thread-local relaxed add per deref;
 *       measurably slows the fast path. For debugging, not benching.
 */
#ifndef ALASKA_TELEMETRY_LEVEL
#define ALASKA_TELEMETRY_LEVEL 1
#endif

namespace alaska::telemetry
{

/**
 * Every counter the runtime exposes. Keep in sync with counterName()
 * in telemetry.cc and the catalog in docs/OBSERVABILITY.md. Counters
 * are process-global and cumulative; snapshot() sums all per-thread
 * cells.
 */
enum class Counter : uint32_t {
    /* hot (level >= 2) */
    TranslateFast,    ///< translate() fast-path hits (STW discipline)
    DerefScoped,      ///< translateScoped() calls (epoch-scope path)
    ScopeOpen,        ///< outermost access_scope/ConcurrentAccessScope opens
    Halloc,           ///< Runtime::halloc/hcalloc allocations
    Hfree,            ///< Runtime::hfree frees
    /* default (level >= 1) */
    DerefPinned,      ///< ConcurrentPin pin+translate derefs
    HandleFault,      ///< translateChecked faults on invalid handles
    MagazineRefill,   ///< handle-id magazine refills (reserveBatch)
    MagazineSpill,    ///< handle-id magazine spills (unreserveBatch)
    CrossShardFree,   ///< frees landing on a non-home shard
    ShardHoleSteal,   ///< alloc miss path stole a heap hole cross-shard
    IdShardSteal,     ///< handle-id reserve stole from a foreign shard
    CampaignCommit,   ///< concurrent relocations committed
    CampaignAbort,    ///< concurrent relocations aborted (pin/mark lost)
    CampaignNoSpace,  ///< concurrent relocations skipped for want of space
    GraceWait,        ///< blocking waits for an epoch grace period
    LimboSeal,        ///< limbo batches sealed behind a grace ticket
    LimboRetire,      ///< limbo batches whose grace elapsed and freed
    LimboStall,       ///< allocations stalled on the limbo byte cap
    Barrier,          ///< stop-the-world barriers executed
    PageMesh,         ///< virtual pages meshed onto a shared frame
    PageSplit,        ///< meshes split by a write landing on a member page
    MeshDissolve,     ///< meshes dissolved because a member page was discarded
    StwRecoveredBytes,      ///< bytes recovered by stop-the-world passes
    CampaignRecoveredBytes, ///< bytes recovered by concurrent campaigns
    MeshRecoveredBytes,     ///< bytes recovered by page meshing
    ServeSteal,       ///< serve worker stole a request from another queue
    ServeBackpressure, ///< serve submits that waited on a full queue
    kCount
};

constexpr size_t kNumCounters = static_cast<size_t>(Counter::kCount);

/** Stable snake_case name for a counter (never nullptr). */
const char *counterName(Counter c);

/**
 * Well-known histograms. All nanosecond-valued except AllocMissDepth
 * (sub-heaps probed beyond the cursor on an alloc miss). Keep in sync
 * with histName() in telemetry.cc and docs/OBSERVABILITY.md.
 */
enum class Hist : uint32_t {
    BarrierPauseNs,   ///< stop-the-world barrier duration
    CampaignCopyNs,   ///< per-object speculative copy latency
    GraceAgeNs,       ///< limbo-batch age from seal to retire
    AllocMissDepth,   ///< sub-heaps probed on the alloc miss path
    MeshPassNs,       ///< one whole-service mesh pass's duration
    kCount
};

constexpr size_t kNumHists = static_cast<size_t>(Hist::kCount);

/** Stable snake_case name for a histogram (never nullptr). */
const char *histName(Hist h);

/**
 * Well-known gauges: last-write-wins instantaneous values (unlike the
 * cumulative counters). One relaxed store per set; a single global
 * cell per gauge, so keep writers off the per-deref fast path. Keep
 * in sync with gaugeName() in telemetry.cc and docs/OBSERVABILITY.md.
 */
enum class Gauge : uint32_t {
    BatchBytesCurrent, ///< controller's current per-barrier byte bound
    ServeQueueDepth,   ///< requests queued across all serve workers
    kCount
};

constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kCount);

/** Stable snake_case name for a gauge (never nullptr). */
const char *gaugeName(Gauge g);

namespace detail
{

/**
 * One thread's counter cells. Writers are the owning thread via
 * relaxed fetch_add; snapshot() reads concurrently with relaxed
 * loads, so totals are monotonic but may miss in-flight increments
 * (exact once the writers quiesce). Blocks are pooled: a thread exit
 * returns its block to a free list with counts intact (snapshot sums
 * every block ever handed out, so totals never go backwards), and the
 * next thread to start reuses it.
 */
struct CounterBlock {
    std::atomic<uint64_t> cells[kNumCounters] = {};
    CounterBlock *next = nullptr; ///< registry's all-blocks list
    CounterBlock *nextFree = nullptr;
};

/**
 * This thread's cell block, nullptr before first use. After thread
 * teardown it points at a shared fallback block so late increments
 * (from other TLS destructors) stay counted. constinit + local-exec
 * for the same reason as tlsScopeMarkAware (services/concurrent_reloc.h):
 * the level-2 hot-path increment must not call the TLS wrapper.
 */
extern thread_local constinit CounterBlock *tlsCounters
    __attribute__((tls_model("local-exec")));

/** Acquire (or pool-reuse) this thread's block; sets tlsCounters. */
CounterBlock &countersSlow();

inline CounterBlock &
counters()
{
    CounterBlock *b = tlsCounters;
    if (__builtin_expect(b == nullptr, 0))
        return countersSlow();
    return *b;
}

} // namespace detail

/**
 * Bump a default-level counter. One relaxed fetch_add on a
 * thread-local cell; compiled out below level 1.
 */
inline void
count(Counter c, uint64_t n = 1)
{
#if ALASKA_TELEMETRY_LEVEL >= 1
    detail::counters().cells[static_cast<size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)c;
    (void)n;
#endif
}

/**
 * Bump a hot-path counter (per-deref granularity). Compiled out below
 * level 2 so the default build's translate fast path is untouched.
 */
inline void
countHot(Counter c, uint64_t n = 1)
{
#if ALASKA_TELEMETRY_LEVEL >= 2
    count(c, n);
#else
    (void)c;
    (void)n;
#endif
}

/** The process-global histogram for h. Record with hist(h).record(v). */
Histogram &hist(Hist h);

namespace detail
{
/** The global gauge cells (one relaxed store/load each). */
extern std::atomic<uint64_t> gGauges[kNumGauges];
} // namespace detail

/**
 * Publish an instantaneous value for gauge g (last write wins). One
 * relaxed store; compiled out below level 1.
 */
inline void
setGauge(Gauge g, uint64_t v)
{
#if ALASKA_TELEMETRY_LEVEL >= 1
    detail::gGauges[static_cast<size_t>(g)].store(
        v, std::memory_order_relaxed);
#else
    (void)g;
    (void)v;
#endif
}

/**
 * Record v into histogram h. Compiled out below level 1; three
 * relaxed RMWs on shared (not per-thread) cache lines otherwise, so
 * keep call sites off the per-deref fast path.
 */
inline void
record(Hist h, uint64_t v)
{
#if ALASKA_TELEMETRY_LEVEL >= 1
    hist(h).record(v);
#else
    (void)h;
    (void)v;
#endif
}

/**
 * A point-in-time aggregate of every counter (summed over all thread
 * cells, live and exited) and a copy of every histogram. Plain data;
 * copyable; safe to take while mutators, campaigns and barriers run
 * (values lag in-flight increments by at most one relaxed add).
 */
struct Snapshot {
    uint64_t counters[kNumCounters] = {};
    uint64_t gauges[kNumGauges] = {};
    Histogram hists[kNumHists];

    uint64_t
    counter(Counter c) const
    {
        return counters[static_cast<size_t>(c)];
    }

    uint64_t
    gauge(Gauge g) const
    {
        return gauges[static_cast<size_t>(g)];
    }

    const Histogram &
    histogram(Hist h) const
    {
        return hists[static_cast<size_t>(h)];
    }
};

/** Aggregate all per-thread cells and histograms. Any thread. */
Snapshot snapshot();

/**
 * Zero every counter cell and histogram. Test/bench convenience: racy
 * against concurrent increments (a straggler add can survive the
 * sweep), so quiesce writers first for exact deltas.
 */
void reset();

/** Human-readable dump: one `name value` line per nonzero counter and
 *  gauge, then count/mean/p50/p99/max per nonzero histogram. */
void writeText(const Snapshot &snap, FILE *out);

/** Machine-readable dump of the same data as a single JSON object
 *  ({"counters": {...}, "gauges": {...}, "histograms": {...}}).
 *  Returns false on I/O error. */
bool writeJson(const Snapshot &snap, const char *path);

} // namespace alaska::telemetry

#endif // ALASKA_TELEMETRY_TELEMETRY_H
