/**
 * @file
 * A swapping service built on "handle faults" (paper §7).
 *
 * The paper's discussion section proposes marking handle table entries
 * invalid so that translation traps into the runtime, which can then
 * restore the object — approximating page faults at object granularity.
 * This service implements that mechanism: swapOut() evicts an unpinned
 * object's bytes into a cold store and marks the entry Invalid; the
 * next translateChecked() of any alias faults, and the service swaps
 * the object back in. This is the building block the paper names for
 * object-granularity swapping, compression, and far memory.
 *
 * The cold store models a slower tier: bytes are kept in a side arena
 * with its own accounting, standing in for disk or far memory.
 */

#ifndef ALASKA_SERVICES_SWAP_SERVICE_H
#define ALASKA_SERVICES_SWAP_SERVICE_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/runtime.h"
#include "core/service.h"

namespace alaska
{

/** malloc-backed service with object-granularity swapping. */
class SwapService : public Service
{
  public:
    void init(Runtime &runtime) override;
    void deinit() override;
    void *alloc(uint32_t id, size_t size) override;
    void free(uint32_t id, void *ptr) override;
    size_t usableSize(const void *ptr) const override;
    size_t heapExtent() const override;
    size_t activeBytes() const override;
    const char *name() const override { return "swap"; }

    /**
     * Restore a swapped-out object (the handle-fault slow path).
     * Called by the runtime from translateChecked().
     */
    void *fault(uint32_t id) override;

    /**
     * Evict an object to the cold store. Must be called with the world
     * stopped (inside a barrier) for unpinned handles only, exactly
     * like a relocation.
     * @return false if the object was already swapped out.
     */
    bool swapOut(uint32_t id);

    /** Evict all unpinned objects over a barrier; returns count. */
    size_t swapOutAllUnpinned();

    /** Bytes currently in the hot (resident) tier. */
    size_t hotBytes() const;
    /** Bytes currently in the cold (swapped) tier. */
    size_t coldBytes() const;
    /** Number of faults served (swap-ins). */
    size_t swapIns() const { return swapIns_; }

  private:
    Runtime *runtime_ = nullptr;
    mutable std::mutex mutex_;
    /** Cold store: id -> evicted bytes. */
    std::unordered_map<uint32_t, std::vector<unsigned char>> cold_;
    size_t hotBytes_ = 0;
    size_t coldBytes_ = 0;
    size_t swapIns_ = 0;
};

} // namespace alaska

#endif // ALASKA_SERVICES_SWAP_SERVICE_H
