#include "services/concurrent_reloc_daemon.h"

#include <algorithm>
#include <chrono>

#include "base/logging.h"
#include "core/translate.h"

namespace alaska
{

namespace
{

/** Longest uninterruptible sleep; bounds stop() latency. */
constexpr double maxSleepSec = 0.05;
/** Shortest sleep, so a hot controller cannot spin the CPU. */
constexpr double minSleepSec = 0.0002;

} // anonymous namespace

ConcurrentRelocDaemon::ConcurrentRelocDaemon(
    Runtime &runtime, anchorage::AnchorageService &service,
    anchorage::ControlParams params)
    : runtime_(runtime), service_(service),
      controller_(service, clock_, params),
      declaresConcurrentDefrag_(
          controller_.policy().requiresScopedDiscipline())
{
    // The policy knows which mechanisms it may ever run, so it — not
    // a mode switch — decides the translation discipline. Campaigns
    // are possible for this daemon's whole lifetime (a fallback tick
    // may resume campaigns later), so the Scoped discipline must be
    // visible to mutators before the first tick — declare here, not
    // in start(), so constructing the daemon before spawning mutators
    // is sufficient. Policies without campaigns (pure StopTheWorld,
    // pure Mesh) change no handle entries under running mutators, so
    // their mutators keep the Direct discipline and its
    // two-instruction translate.
    if (declaresConcurrentDefrag_)
        Runtime::declareConcurrentDefrag();
}

ConcurrentRelocDaemon::~ConcurrentRelocDaemon()
{
    stop();
    if (declaresConcurrentDefrag_)
        Runtime::retireConcurrentDefrag();
}

void
ConcurrentRelocDaemon::start()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ALASKA_ASSERT(!running_, "daemon already running");
    stopRequested_ = false;
    running_ = true;
    thread_ = std::thread([this] { run(); });
}

void
ConcurrentRelocDaemon::stop()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> guard(mutex_);
    running_ = false;
}

bool
ConcurrentRelocDaemon::running() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return running_;
}

anchorage::DefragStats
ConcurrentRelocDaemon::totals() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return totals_;
}

anchorage::DefragStats
ConcurrentRelocDaemon::totalsFor(anchorage::MechanismKind kind) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return mechTotals_[static_cast<size_t>(kind)];
}

size_t
ConcurrentRelocDaemon::passes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return passes_;
}

size_t
ConcurrentRelocDaemon::fallbacks() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return fallbacks_;
}

double
ConcurrentRelocDaemon::totalDefragSec() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return totalDefragSec_;
}

double
ConcurrentRelocDaemon::totalPauseSec() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return totalPauseSec_;
}

size_t
ConcurrentRelocDaemon::barriers() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return barriers_;
}

double
ConcurrentRelocDaemon::maxBarrierPauseSec() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return maxBarrierPauseSec_;
}

size_t
ConcurrentRelocDaemon::batchBytesCurrent() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return batchBytesCurrent_;
}

telemetry::Histogram
ConcurrentRelocDaemon::barrierPauses() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return barrierPauses_;
}

void
ConcurrentRelocDaemon::run()
{
    // Registered so Hybrid/STW barriers started here behave normally
    // and so campaign loops reach safepoints for barriers started by
    // anyone else.
    ThreadRegistration registration(runtime_);

    for (;;) {
        poll();
        const anchorage::ControlAction action = controller_.tick();
        {
            std::lock_guard<std::mutex> guard(mutex_);
            batchBytesCurrent_ = controller_.batchBytesCurrent();
        }
        if (action.defragged) {
            std::lock_guard<std::mutex> guard(mutex_);
            totals_.accumulate(action.stats);
            for (const anchorage::MechanismReport &report :
                 action.byMechanism)
                mechTotals_[static_cast<size_t>(report.kind)]
                    .accumulate(report.stats);
            passes_ = controller_.passes();
            fallbacks_ = controller_.fallbacks();
            barriers_ = controller_.barriers();
            totalDefragSec_ = controller_.totalDefragSec();
            totalPauseSec_ = controller_.totalPauseSec();
            maxBarrierPauseSec_ = controller_.maxBarrierPauseSec();
            if (action.stats.barriers > 0)
                barrierPauses_.record(static_cast<uint64_t>(
                    action.stats.maxBarrierSec * 1e9));
        }

        const double wait = std::clamp(
            controller_.nextWake() - clock_.now(), minSleepSec,
            maxSleepSec);

        // Sleep in external mode: a barrier must not wait out our nap.
        runtime_.enterExternal();
        bool should_stop;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait_for(lock,
                         std::chrono::duration<double>(wait),
                         [this] { return stopRequested_; });
            should_stop = stopRequested_;
        }
        runtime_.leaveExternal();
        if (should_stop)
            break;
    }
}

} // namespace alaska
