#include "services/swap_service.h"

#include <cstdlib>
#include <cstring>

#include "base/logging.h"

namespace alaska
{

void
SwapService::init(Runtime &runtime)
{
    runtime_ = &runtime;
}

void
SwapService::deinit()
{
    runtime_ = nullptr;
}

void *
SwapService::alloc(uint32_t id, size_t size)
{
    (void)id;
    void *p = std::malloc(size ? size : 1);
    if (p) {
        std::lock_guard<std::mutex> guard(mutex_);
        hotBytes_ += size;
    }
    return p;
}

void
SwapService::free(uint32_t id, void *ptr)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = cold_.find(id);
    if (it != cold_.end()) {
        // Freed while swapped out: drop the cold copy.
        coldBytes_ -= it->second.size();
        cold_.erase(it);
        return;
    }
    hotBytes_ -= runtime_->table().entry(id).size;
    std::free(ptr);
}

size_t
SwapService::usableSize(const void *ptr) const
{
    (void)ptr;
    return 0; // sizes are tracked by the handle table
}

size_t
SwapService::heapExtent() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return hotBytes_ + coldBytes_;
}

size_t
SwapService::activeBytes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return hotBytes_ + coldBytes_;
}

size_t
SwapService::hotBytes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return hotBytes_;
}

size_t
SwapService::coldBytes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return coldBytes_;
}

bool
SwapService::swapOut(uint32_t id)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (cold_.count(id))
        return false;
    auto &entry = runtime_->table().entry(id);
    ALASKA_ASSERT(entry.allocated(), "swapOut of freed handle %u", id);
    void *ptr = entry.ptr.load(std::memory_order_acquire);
    const size_t size = entry.size;

    std::vector<unsigned char> bytes(size);
    std::memcpy(bytes.data(), ptr, size);
    cold_.emplace(id, std::move(bytes));
    coldBytes_ += size;
    hotBytes_ -= size;

    // Mark the entry Invalid *before* dropping the backing memory; the
    // checked translation path will trap to fault().
    entry.state.fetch_or(HandleTableEntry::Invalid,
                         std::memory_order_release);
    entry.ptr.store(nullptr, std::memory_order_release);
    std::free(ptr);
    return true;
}

size_t
SwapService::swapOutAllUnpinned()
{
    size_t evicted = 0;
    runtime_->barrier([&](const PinnedSet &pinned) {
        const uint32_t wm = runtime_->table().watermark();
        for (uint32_t id = 0; id < wm; id++) {
            auto &entry = runtime_->table().entry(id);
            if (!entry.allocated() || entry.invalid() ||
                pinned.contains(id)) {
                continue;
            }
            if (swapOut(id))
                evicted++;
        }
    });
    return evicted;
}

void *
SwapService::fault(uint32_t id)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto &entry = runtime_->table().entry(id);
    auto it = cold_.find(id);
    if (it == cold_.end()) {
        // Another thread faulted it in between our check and the lock.
        void *ptr = entry.ptr.load(std::memory_order_acquire);
        ALASKA_ASSERT(ptr != nullptr, "fault on handle %u with no cold "
                      "copy and no backing", id);
        return ptr;
    }

    const size_t size = it->second.size();
    void *fresh = std::malloc(size ? size : 1);
    std::memcpy(fresh, it->second.data(), size);
    coldBytes_ -= size;
    hotBytes_ += size;
    cold_.erase(it);

    entry.ptr.store(fresh, std::memory_order_release);
    entry.state.fetch_and(~HandleTableEntry::Invalid,
                          std::memory_order_release);
    swapIns_++;
    return fresh;
}

} // namespace alaska
