/**
 * @file
 * The background concurrent-relocation daemon: Anchorage defrag as a
 * service thread instead of an in-barrier pass.
 *
 * The daemon hosts a DefragController on its own runtime-registered
 * thread and drives it against the wall clock. In Concurrent mode every
 * pass the controller schedules is a relocation campaign
 * (AnchorageService::relocateCampaign): the thread snapshots sparse
 * sub-heaps, walks candidates top-down, and moves each object through
 * paper §7's mark -> copy -> commit protocol with no wait in the
 * window — mutators keep running, their scoped derefs pay no RMW and
 * never abort a move, and moved sources are reclaimed only after a
 * grace period (the limbo list) rather than readers being drained
 * up front or aborted via pins. Which mechanisms actually run is the
 * hosted DefragPolicy's decision (ControlParams::mode constructs it):
 * the daemon itself is mechanism-agnostic — it declares the Scoped
 * translation discipline iff the policy's mechanisms require it, and
 * attributes every tick's stats per mechanism (totalsFor()).
 *
 * Between ticks the daemon parks in external mode, so barriers (its
 * own Hybrid fallbacks included) never wait on its sleep.
 */

#ifndef ALASKA_SERVICES_CONCURRENT_RELOC_DAEMON_H
#define ALASKA_SERVICES_CONCURRENT_RELOC_DAEMON_H

#include <condition_variable>
#include <mutex>
#include <thread>

#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "base/stats.h"
#include "core/runtime.h"
#include "telemetry/histogram.h"
#include "sim/clock.h"

namespace alaska
{

/**
 * The background relocator.
 *
 * Threading contract: start()/stop()/running() and every stats
 * accessor may be called from any thread — the counters are snapshots
 * published by the daemon thread under the daemon's own mutex. The
 * hosted DefragController is touched only by the daemon thread, which
 * is also the single driver of relocation campaigns (preserving the
 * service's single-mover invariant). Campaigns themselves take the
 * service's per-shard locks one at a time, so the daemon never blocks
 * a mutator for longer than one shard-local operation.
 */
class ConcurrentRelocDaemon
{
  public:
    /**
     * @param runtime the runtime whose heap the daemon defragments
     * @param service the Anchorage service backing that runtime
     * @param params  controller tuning; params.mode selects the
     *                execution model for every scheduled pass
     */
    ConcurrentRelocDaemon(Runtime &runtime,
                          anchorage::AnchorageService &service,
                          anchorage::ControlParams params = {});
    ~ConcurrentRelocDaemon();

    ConcurrentRelocDaemon(const ConcurrentRelocDaemon &) = delete;
    ConcurrentRelocDaemon &operator=(const ConcurrentRelocDaemon &) =
        delete;

    /** Launch the daemon thread. Not reentrant; call once per stop(). */
    void start();

    /** Stop and join the daemon thread; idempotent, any thread. */
    void stop();

    /** True between start() and stop(). Any thread. */
    bool running() const;

    /** Stats of every action the daemon has run so far, folded over
     *  all mechanisms and shards — use totalsFor() when the
     *  per-mechanism attribution matters. Any thread. */
    anchorage::DefragStats totals() const;

    /** Stats attributed to one mechanism: exactly what that
     *  mechanism's invocations did, never folded with the others
     *  (a Hybrid tick's campaign and its stop-the-world fallback
     *  land in separate buckets). Any thread. */
    anchorage::DefragStats totalsFor(anchorage::MechanismKind kind) const;

    /** Controller passes run so far. Any thread. */
    size_t passes() const;

    /** Ticks whose abort-rate fallback stage ran. */
    size_t fallbacks() const;

    /** Total defrag work time charged so far, seconds. */
    double totalDefragSec() const;

    /** Total mutator-visible pause time caused so far, seconds. */
    double totalPauseSec() const;

    /** Stop-the-world barriers run so far (batched passes run many
     *  short ones per logical pass). Any thread. */
    size_t barriers() const;

    /** Longest single barrier so far in the controller's charged
     *  time: measured wall seconds normally, modeled seconds under
     *  ControlParams::useModeledTime. Any thread. */
    double maxBarrierPauseSec() const;

    /** The controller's current per-barrier batch budget in bytes —
     *  the adaptive value when ControlParams::targetBarrierPauseSec
     *  is set, else the static ControlParams::batchBytes bound.
     *  Snapshot published per tick; any thread. */
    size_t batchBytesCurrent() const;

    /**
     * Distribution of per-tick worst-barrier pauses, always in
     * *measured* wall nanoseconds (unlike maxBarrierPauseSec(), which
     * follows useModeledTime — the daemon normally runs a real clock,
     * where the two agree). In batched StopTheWorld mode a tick runs
     * exactly one barrier, so this is the exact per-barrier pause
     * distribution; a Hybrid fallback tick contributes its worst
     * barrier. A bounded telemetry::Histogram (log2 buckets), not a
     * LatencyDigest: the daemon is long-lived and must not accumulate
     * one sample per tick forever. Snapshot copy; any thread.
     */
    telemetry::Histogram barrierPauses() const;

  private:
    void run();

    Runtime &runtime_;
    anchorage::AnchorageService &service_;
    RealClock clock_;
    /** Touched only by the daemon thread once start()ed. */
    anchorage::DefragController controller_;

    /**
     * True when the controller's policy owns a mechanism that
     * requires the Scoped discipline (concurrent campaigns): the
     * constructor then declares it (Runtime::declareConcurrentDefrag)
     * until destruction.
     */
    bool declaresConcurrentDefrag_ = false;

    std::thread thread_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopRequested_ = false;
    bool running_ = false;

    /** Snapshot counters, published by the daemon thread per tick. */
    anchorage::DefragStats totals_;
    /** Per-mechanism attribution, indexed by MechanismKind. */
    anchorage::DefragStats mechTotals_[anchorage::kNumMechanisms];
    size_t passes_ = 0;
    size_t fallbacks_ = 0;
    size_t barriers_ = 0;
    size_t batchBytesCurrent_ = 0;
    double totalDefragSec_ = 0;
    double totalPauseSec_ = 0;
    double maxBarrierPauseSec_ = 0;
    telemetry::Histogram barrierPauses_;
};

} // namespace alaska

#endif // ALASKA_SERVICES_CONCURRENT_RELOC_DAEMON_H
