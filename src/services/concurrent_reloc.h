/**
 * @file
 * Speculative concurrent object relocation (paper §7).
 *
 * The paper sketches a way to move objects *without* stopping the
 * world, resembling Shenandoah's concurrent compaction:
 *
 *   1. the mover marks the handle's entry (we set the low bit of the
 *      backing pointer — objects are 16-byte aligned) and speculatively
 *      copies the bytes to a new location;
 *   2. an accessor that translates meanwhile detects the mark, and
 *      atomically clears it — aborting the relocation — then proceeds
 *      on the old memory;
 *   3. the mover finally tries to CAS {marked old} -> {new}. Success
 *      publishes the move and the old memory is freed; failure means
 *      an accessor intervened, so the copy is discarded.
 *
 * Accessors must use the mark-aware paths while a relocator is active;
 * writes through stale translations are excluded by the abort protocol,
 * not by pausing threads. Two accessor APIs exist:
 *
 *  - ConcurrentPin: RAII pin + translate for a single access. Always
 *    safe, pays one atomic RMW pair per access.
 *  - ConcurrentAccessScope + translateScoped(): scope one application
 *    operation; inside it, translations pin only while a campaign is
 *    actually in flight (Runtime::concurrentRelocActive()), and all
 *    pins drop at scope end. When no campaign runs, translateScoped()
 *    is a thread-local flag test in front of the ordinary one-load
 *    translate() — this is the path AnchorageService::relocateCampaign
 *    expects mutators to be on.
 */

#ifndef ALASKA_SERVICES_CONCURRENT_RELOC_H
#define ALASKA_SERVICES_CONCURRENT_RELOC_H

#include <cstdint>

#include "core/runtime.h"
#include "core/translate.h"

namespace alaska
{

/**
 * Try to relocate one object concurrently with running mutators.
 * Backing memory is allocated/freed through the runtime's service.
 * This is the low-level protocol; Anchorage campaigns implement the
 * same state machine with placement-aware destinations
 * (AnchorageService::relocateCampaign).
 *
 * Aborts if the object is pinned (atomic pin count, see ConcurrentPin)
 * — the paper: "the relocation is aborted ... as some other thread has
 * pinned that handle while the copy was being made".
 *
 * @return true if the move committed, false if it was aborted.
 */
bool tryRelocateConcurrent(Runtime &runtime, uint32_t id);

/**
 * Translation that cooperates with concurrent relocation: if the entry
 * is marked, the accessor aborts the in-flight move and wins.
 */
void *translateConcurrent(const void *maybe_handle);

/**
 * Pin guard for mutators racing with concurrent relocation. Orders an
 * atomic pin-count increment before the translation so a mover always
 * observes either the pin or the mark-clear. This is the one
 * implementation of the pin half of the mover handshake; the typed
 * api guards hold one rather than re-deriving the protocol. Inline
 * (including the destructor) so guards composed from it stay
 * optimizable in translation-heavy loops.
 */
class ConcurrentPin
{
  public:
    explicit ConcurrentPin(const void *maybe_handle)
        : entry_(pinFor(maybe_handle)),
          raw_(translateConcurrent(maybe_handle))
    {
    }

    ~ConcurrentPin() { unpin(entry_); }

    ConcurrentPin(const ConcurrentPin &) = delete;
    ConcurrentPin &operator=(const ConcurrentPin &) = delete;

    void *get() const { return raw_; }

    /**
     * The pin half of the handshake, for guards composed from this
     * protocol (the typed api guards): pin the value's entry and
     * return it, or nullptr for raw pointers. Pair with unpin(); the
     * caller must translate through translateConcurrent() *after* the
     * pin so the mover observes either the pin or the mark-clear.
     */
    static HandleTableEntry *
    pinFor(const void *maybe_handle)
    {
        const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
        if (!isHandle(v))
            return nullptr;
        HandleTableEntry *entry =
            &Runtime::gRuntime->table().entry(handleId(v));
        // seq_cst: the increment must be globally ordered against the
        // mover's mark/pin-check pair.
        entry->state.fetch_add(HandleTableEntry::pinCountOne,
                               std::memory_order_seq_cst);
        return entry;
    }

    /** Drop a pin taken by pinFor(); nullptr is a no-op. */
    static void
    unpin(HandleTableEntry *entry)
    {
        if (entry) {
            entry->state.fetch_sub(HandleTableEntry::pinCountOne,
                                   std::memory_order_seq_cst);
        }
    }

  private:
    HandleTableEntry *entry_ = nullptr;
    void *raw_ = nullptr;
};

namespace creloc_detail
{

/**
 * True while the innermost ConcurrentAccessScope on this thread decided
 * to pin (i.e. a campaign was active when the scope opened). Read by
 * the translateScoped() fast path; written only by the scope.
 * constinit: without it, every access from another TU calls the TLS
 * init wrapper, which costs ~20% on the translation fast path.
 */
extern thread_local constinit bool tlsScopePinning
    __attribute__((tls_model("local-exec")));

/** Slow path: pin the handle into the scope's log, then translate. */
void *pinScopedAndTranslate(const void *maybe_handle);

} // namespace creloc_detail

/**
 * Brackets one application operation (e.g. one KV request) on a mutator
 * thread. On entry the scope publishes the thread as "accessing" (see
 * ThreadState::accessSeq) and samples the global campaign flag; every
 * translateScoped() inside the scope then pins iff a campaign was
 * active. On exit all scoped pins drop. Scopes nest; only the outermost
 * publishes and releases. Must not span a safepoint poll: pins held at
 * a barrier would be seen by the stop-the-world pinned-set scan and
 * block compaction of those objects.
 *
 * Registered threads get the full drain protocol (a campaign waits for
 * in-flight scopes that missed the flag). Unregistered threads still
 * pin correctly once they see the flag but are invisible to the drain;
 * mutators racing a relocator should be registered.
 */
class ConcurrentAccessScope
{
  public:
    ConcurrentAccessScope();
    ~ConcurrentAccessScope();

    ConcurrentAccessScope(const ConcurrentAccessScope &) = delete;
    ConcurrentAccessScope &operator=(const ConcurrentAccessScope &) =
        delete;

  private:
    ThreadState *state_ = nullptr;
    bool outermost_ = false;
};

/**
 * The mutator translation path for concurrent-relocation-aware code:
 * identical to translate() (one thread-local test more) when no
 * campaign runs, pin+mark-aware when one does. Requires an enclosing
 * ConcurrentAccessScope on this thread.
 */
inline void *
translateScoped(const void *maybe_handle)
{
    if (__builtin_expect(!creloc_detail::tlsScopePinning, 1))
        return translate(maybe_handle);
    return creloc_detail::pinScopedAndTranslate(maybe_handle);
}

} // namespace alaska

#endif // ALASKA_SERVICES_CONCURRENT_RELOC_H
