/**
 * @file
 * Speculative concurrent object relocation (paper §7).
 *
 * The paper sketches a way to move objects *without* stopping the
 * world, resembling Shenandoah's concurrent compaction:
 *
 *   1. the mover marks the handle's entry (we set the low bit of the
 *      backing pointer — objects are 16-byte aligned), checks the
 *      entry's pin count, and immediately speculatively copies the
 *      bytes to a new location — no drain, no wait: the abort window
 *      is the copy itself, microseconds;
 *   2. a *pinning* accessor that translates meanwhile detects the
 *      mark, and atomically clears it — aborting the relocation —
 *      then proceeds on the old memory;
 *   3. the mover finally tries to CAS {marked old} -> {new}. Success
 *      publishes the move, but the old memory is NOT freed inline: it
 *      is only reclaimed after one grace period
 *      (Runtime::waitForGrace) — campaigns park it on a limbo list —
 *      so every scope that translated the object before the commit
 *      keeps reading valid bytes until it closes. A failed CAS means
 *      an accessor intervened; the copy is discarded.
 *
 * Two accessor APIs split the safety argument between reads and
 * writes:
 *
 *  - ConcurrentAccessScope + translateScoped(): scope one application
 *    operation; the *read* path. The scope's only shared-memory
 *    traffic is one epoch store at each outermost boundary
 *    (ThreadState::accessEpoch); derefs inside it are plain loads —
 *    never an RMW, not even against an in-flight move (a mover's mark
 *    is stripped, not cleared). Validity comes from grace-deferred
 *    reclamation: the source bytes a stale translation points at
 *    outlive every scope open at commit time. What epochs cannot
 *    order is a *store* — a write issued through a pre-mark
 *    translation after the mover's copy would land in the doomed
 *    source block and be lost when the commit publishes the copy.
 *  - ConcurrentPin: RAII atomic pin + mark-aware translate; the
 *    *write* path (and the raw-pointer escape hatch, pinned<T>). The
 *    pin/mark Dekker handshake closes the lost-store window: a pin
 *    taken before the mover's mark fails its pin check; one taken
 *    after clears the mark and fails its commit CAS. Either way the
 *    pinned translation is writable for the pin's lifetime.
 *
 * This is the discipline AnchorageService::relocateCampaign expects
 * mutators on: reads inside scopes, stores under pins.
 */

#ifndef ALASKA_SERVICES_CONCURRENT_RELOC_H
#define ALASKA_SERVICES_CONCURRENT_RELOC_H

#include <cstdint>

#include "core/runtime.h"
#include "core/translate.h"

namespace alaska
{

/**
 * Try to relocate one object concurrently with running mutators:
 * mark, check pins, copy, CAS-commit — all immediately — then wait
 * one grace period before freeing the source, so every scope holding
 * a pre-commit translation has closed by the time the bytes are
 * reused. Backing memory is allocated/freed through the runtime's
 * service. This is the low-level single-object protocol; Anchorage
 * campaigns implement the same state machine with placement-aware
 * destinations and the source parked on a limbo list so one grace
 * covers many reclaims (AnchorageService::relocateCampaign).
 *
 * Aborts if the object is pinned (atomic pin count, see ConcurrentPin)
 * — the paper: "the relocation is aborted ... as some other thread has
 * pinned that handle while the copy was being made". Scoped accessors
 * neither pin nor abort the move; their stale reads are covered by the
 * grace-deferred free instead.
 *
 * @return true if the move committed, false if it was aborted.
 */
bool tryRelocateConcurrent(Runtime &runtime, uint32_t id);

/**
 * The write-capable translation under concurrent relocation: if the
 * entry is marked, the accessor aborts the in-flight move and wins,
 * then proceeds on the old memory. Callers that intend to store must
 * pair this with a pin taken *first* (ConcurrentPin::pinFor) — the
 * clearing CAS here is the accessor half of the mover handshake, and
 * the pin is what makes it cover the store's whole duration rather
 * than the translation instant. Read-only callers want
 * translateScoped() instead, which never RMWs.
 *
 * Defined inline so guards composed from it (pinned<T>, the KV write
 * path) pay no call overhead; cold keeps it out of the way of the
 * read-path loops it shares headers with.
 */
__attribute__((cold)) inline void *
translateConcurrent(const void *maybe_handle)
{
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (static_cast<int64_t>(v) >= 0)
        return const_cast<void *>(maybe_handle);
    HandleTableEntry &e =
        Runtime::gTableBase[(v >> 32) & (maxHandleId - 1)];

    // seq_cst, not acquire: this load must participate in the single
    // total order with the mover's mark/grace/commit sequence (and,
    // for pinned<T>, with the caller's pin increment and the mover's
    // pin check — a Dekker handshake across two locations). With a
    // weaker load, non-TSO hardware could let the accessor and the
    // mark go mutually unseen, and a write through this translation
    // would land in an abandoned copy.
    void *ptr = e.ptr.load(std::memory_order_seq_cst);
    while (reloc::isMarked(ptr)) {
        // Abort the in-flight relocation: clear the mark. Whether our
        // CAS or the mover's commit wins, the loop re-reads a stable
        // pointer.
        void *expected = ptr;
        e.ptr.compare_exchange_strong(expected, reloc::unmarked(ptr),
                                      std::memory_order_seq_cst);
        ptr = e.ptr.load(std::memory_order_acquire);
    }
    return static_cast<char *>(ptr) + static_cast<uint32_t>(v);
}

/**
 * Pin guard for mutators racing with concurrent relocation. Orders an
 * atomic pin-count increment before the translation so a mover always
 * observes either the pin or the mark-clear. This is the one
 * implementation of the pin half of the mover handshake; the typed
 * api guards hold one rather than re-deriving the protocol. Inline
 * (including the destructor) so guards composed from it stay
 * optimizable in translation-heavy loops.
 */
class ConcurrentPin
{
  public:
    explicit ConcurrentPin(const void *maybe_handle)
        : entry_(pinFor(maybe_handle)),
          raw_(translateConcurrent(maybe_handle))
    {
    }

    ~ConcurrentPin() { unpin(entry_); }

    ConcurrentPin(const ConcurrentPin &) = delete;
    ConcurrentPin &operator=(const ConcurrentPin &) = delete;

    void *get() const { return raw_; }

    /**
     * The pin half of the handshake, for guards composed from this
     * protocol (the typed api guards): pin the value's entry and
     * return it, or nullptr for raw pointers. Pair with unpin(); the
     * caller must translate through translateConcurrent() *after* the
     * pin so the mover observes either the pin or the mark-clear.
     */
    static HandleTableEntry *
    pinFor(const void *maybe_handle)
    {
        const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
        if (!isHandle(v))
            return nullptr;
        telemetry::count(telemetry::Counter::DerefPinned);
        HandleTableEntry *entry =
            &Runtime::gRuntime->table().entry(handleId(v));
        // seq_cst: the increment must be globally ordered against the
        // mover's mark/pin-check pair.
        entry->state.fetch_add(HandleTableEntry::pinCountOne,
                               std::memory_order_seq_cst);
        return entry;
    }

    /** Drop a pin taken by pinFor(); nullptr is a no-op. */
    static void
    unpin(HandleTableEntry *entry)
    {
        if (entry) {
            entry->state.fetch_sub(HandleTableEntry::pinCountOne,
                                   std::memory_order_seq_cst);
        }
    }

  private:
    HandleTableEntry *entry_ = nullptr;
    void *raw_ = nullptr;
};

namespace creloc_detail
{

/**
 * True while the innermost ConcurrentAccessScope on this thread opened
 * with a campaign active (Runtime::concurrentRelocActive()): derefs
 * must then take the mark-aware load. Read by the translateScoped()
 * fast path; written only by the scope.
 * constinit: without it, every access from another TU calls the TLS
 * init wrapper, which costs ~20% on the translation fast path.
 */
extern thread_local constinit bool tlsScopeMarkAware
    __attribute__((tls_model("local-exec")));

} // namespace creloc_detail

/**
 * Brackets one application operation (e.g. one KV request) on a mutator
 * thread. On entry the scope publishes the thread as "accessing" by
 * advancing its epoch to odd (see ThreadState::accessEpoch) and samples
 * the global campaign flag; every translateScoped() inside the scope
 * then takes the mark-stripping load iff a campaign was active — never
 * a shared-memory RMW. On exit the epoch advances to even, which is
 * what a campaign's grace wait (Runtime::waitForGrace) observes: the
 * mover copies and commits without waiting for anyone, but it only
 * *frees* an evacuated source block after every scope open at commit
 * time has closed — so every translation obtained inside this scope
 * reads valid bytes (old copy or new, both correct) until the scope
 * ends. Stores are NOT covered: an epoch cannot stop a store through a
 * stale translation from landing in an already-copied source block.
 * Store through a pin (pinned<T>, the KV policies' write path), whose
 * handshake aborts the mover instead. Scopes nest; only the outermost
 * publishes and releases. Must not span a safepoint poll (a scope held
 * across a park would stall campaigns' grace periods for the barrier's
 * whole duration); use pinned<T> to keep a raw pointer across polls.
 *
 * Registered threads get the full drain protocol (campaign grace waits
 * cover their scopes). Unregistered threads are invisible to grace
 * waits and get no reclamation deferral; mutators racing a relocator
 * must be registered.
 */
class ConcurrentAccessScope
{
  public:
    ConcurrentAccessScope();
    ~ConcurrentAccessScope();

    ConcurrentAccessScope(const ConcurrentAccessScope &) = delete;
    ConcurrentAccessScope &operator=(const ConcurrentAccessScope &) =
        delete;

  private:
    ThreadState *state_ = nullptr;
    bool outermost_ = false;
};

/**
 * The mutator *read* path for concurrent-relocation-aware code:
 * identical to translate() (one thread-local test more) when no
 * campaign runs, and still a plain load-translate when one does — a
 * mover's mark is stripped, never cleared, so this path costs no RMW
 * and aborts no move even mid-copy. Requires an enclosing
 * ConcurrentAccessScope on this thread — the scope's epoch, honored by
 * the mover's grace-deferred reclamation, is what keeps the returned
 * pointer readable; nothing per-object is recorded here. The pointer
 * is NOT writable while campaigns can run: a store may need to abort
 * an in-flight copy of this very object, which only the pin handshake
 * (translateConcurrent under ConcurrentPin/pinned<T>) can do.
 */
inline void *
translateScoped(const void *maybe_handle)
{
    telemetry::countHot(telemetry::Counter::DerefScoped);
    if (__builtin_expect(!creloc_detail::tlsScopeMarkAware, 1))
        return translate(maybe_handle);
    // Campaign in flight: same shape as translate(), plus the mark
    // strip (one AND). A marked entry is an in-flight move whose
    // source is still the authoritative bytes; a committed entry
    // points at the copy. Either read is correct — the source stays
    // mapped until a grace period covers this scope (limbo).
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (static_cast<int64_t>(v) >= 0)
        return const_cast<void *>(maybe_handle);
    const HandleTableEntry &e =
        Runtime::gTableBase[(v >> 32) & (maxHandleId - 1)];
    // acquire: a load that observes the mover's committed pointer must
    // also observe the copied bytes it points at.
    void *ptr = e.ptr.load(std::memory_order_acquire);
    return static_cast<char *>(reloc::unmarked(ptr)) +
           static_cast<uint32_t>(v);
}

} // namespace alaska

#endif // ALASKA_SERVICES_CONCURRENT_RELOC_H
