/**
 * @file
 * Speculative concurrent object relocation (paper §7).
 *
 * The paper sketches a way to move objects *without* stopping the
 * world, resembling Shenandoah's concurrent compaction:
 *
 *   1. the mover marks the handle's entry (we set the low bit of the
 *      backing pointer — objects are 16-byte aligned) and speculatively
 *      copies the bytes to a new location;
 *   2. an accessor that translates meanwhile detects the mark, and
 *      atomically clears it — aborting the relocation — then proceeds
 *      on the old memory;
 *   3. the mover finally tries to CAS {marked old} -> {new}. Success
 *      publishes the move and the old memory is freed; failure means
 *      an accessor intervened, so the copy is discarded.
 *
 * Accessors must use translateConcurrent() while a relocator is active;
 * writes through stale translations are excluded by the abort protocol,
 * not by pausing threads.
 */

#ifndef ALASKA_SERVICES_CONCURRENT_RELOC_H
#define ALASKA_SERVICES_CONCURRENT_RELOC_H

#include <cstdint>

#include "core/runtime.h"

namespace alaska
{

/** Statistics for a relocation campaign. */
struct RelocStats
{
    uint64_t attempts = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
};

/**
 * Try to relocate one object concurrently with running mutators.
 * Backing memory is allocated/freed through the runtime's service.
 *
 * Aborts if the object is pinned (atomic pin count, see ConcurrentPin)
 * — the paper: "the relocation is aborted ... as some other thread has
 * pinned that handle while the copy was being made".
 *
 * @return true if the move committed, false if it was aborted.
 */
bool tryRelocateConcurrent(Runtime &runtime, uint32_t id);

/**
 * Translation that cooperates with concurrent relocation: if the entry
 * is marked, the accessor aborts the in-flight move and wins.
 */
void *translateConcurrent(const void *maybe_handle);

/**
 * Pin guard for mutators racing with concurrent relocation. Orders an
 * atomic pin-count increment before the translation so a mover always
 * observes either the pin or the mark-clear.
 */
class ConcurrentPin
{
  public:
    explicit ConcurrentPin(const void *maybe_handle);
    ~ConcurrentPin();

    ConcurrentPin(const ConcurrentPin &) = delete;
    ConcurrentPin &operator=(const ConcurrentPin &) = delete;

    void *get() const { return raw_; }

  private:
    HandleTableEntry *entry_ = nullptr;
    void *raw_ = nullptr;
};

} // namespace alaska

#endif // ALASKA_SERVICES_CONCURRENT_RELOC_H
