#include "services/concurrent_reloc.h"

#include "base/logging.h"
#include "base/speculative_copy.h"
#include "core/handle.h"

namespace alaska
{

bool
tryRelocateConcurrent(Runtime &runtime, uint32_t id)
{
    auto &entry = runtime.table().entry(id);
    ALASKA_ASSERT(entry.allocated(), "relocation of freed handle %u", id);
    const size_t size = entry.size;

    // Phase 1: mark. Fails if someone else is relocating this object.
    void *old_ptr = entry.ptr.load(std::memory_order_acquire);
    if (reloc::isMarked(old_ptr) || old_ptr == nullptr)
        return false;
    if (!entry.ptr.compare_exchange_strong(old_ptr, reloc::marked(old_ptr),
                                           std::memory_order_seq_cst)) {
        return false;
    }

    // Pinned objects cannot move: an accessor that pinned *before* our
    // mark holds a raw pointer we must not invalidate. Accessors that
    // pin *after* the mark will clear it and fail our commit CAS.
    if (entry.state.load(std::memory_order_seq_cst) >>
        HandleTableEntry::pinCountShift) {
        void *expected = reloc::marked(old_ptr);
        entry.ptr.compare_exchange_strong(expected, old_ptr,
                                          std::memory_order_seq_cst);
        return false;
    }

    // Phase 2: speculative copy, immediately — no drain. Scoped
    // accessors may keep *reading* pre-mark translations of old_ptr
    // throughout (and we read it too; fine), and any *writer* holds a
    // pin: one pinned before our mark was caught above, one pinning
    // now clears the mark and fails our commit, discarding the
    // (possibly torn) copy.
    void *new_ptr = runtime.service().alloc(id, size);
    speculativeCopy(new_ptr, old_ptr, size);

    // Phase 3: commit. An accessor that pinned meanwhile has cleared
    // the mark, and this CAS fails — the relocation is aborted.
    void *expected = reloc::marked(old_ptr);
    if (entry.ptr.compare_exchange_strong(expected, new_ptr,
                                          std::memory_order_seq_cst)) {
        // Phase 4: grace-deferred reclaim. Scopes that translated
        // before the commit still read old_ptr; free it only once
        // every scope open at commit time has closed. (Campaigns
        // amortize this wait over a limbo list of many sources; the
        // single-object protocol just eats it.)
        runtime.waitForGrace(Runtime::advanceCampaignEpoch());
        runtime.service().free(id, old_ptr);
        return true;
    }
    runtime.service().free(id, new_ptr);
    return false;
}

// --- scoped concurrent access ----------------------------------------------

namespace creloc_detail
{

// local-exec: this library only ever links statically into the final
// executable, so the flag can skip the GOT indirection — together with
// constinit this makes the translateScoped() fast path a single
// %fs-relative load (verified in handle_alloc_bench section 3).
thread_local constinit bool
    __attribute__((tls_model("local-exec"))) tlsScopeMarkAware = false;

namespace
{
/** Nesting depth of ConcurrentAccessScope on this thread. */
thread_local uint32_t tlsScopeDepth = 0;
} // anonymous namespace

} // namespace creloc_detail

ConcurrentAccessScope::ConcurrentAccessScope()
{
    using creloc_detail::tlsScopeDepth;
    if (tlsScopeDepth++ > 0)
        return;
    outermost_ = true;
    telemetry::countHot(telemetry::Counter::ScopeOpen);
    Runtime *runtime = Runtime::gRuntime;
    state_ = runtime ? runtime->currentThreadStateOrNull() : nullptr;
    // Publish "in scope" (odd epoch) *before* sampling the campaign
    // flag, both seq_cst: either the mover's flag store is visible here
    // (we translate mark-aware), or our odd epoch is visible to the
    // mover's grace wait (it drains us before marking anything). The
    // epoch advance is the scope's only shared-memory write — derefs
    // inside the scope are plain loads.
    if (state_)
        state_->accessEpoch.fetch_add(1, std::memory_order_seq_cst);
    creloc_detail::tlsScopeMarkAware = Runtime::concurrentRelocActive();
}

ConcurrentAccessScope::~ConcurrentAccessScope()
{
    using creloc_detail::tlsScopeDepth;
    if (!outermost_) {
        tlsScopeDepth--;
        return;
    }
    creloc_detail::tlsScopeMarkAware = false;
    // Advance to even: every translation this scope obtained is now
    // dead, and any grace wait snapshotting our odd epoch unblocks.
    if (state_)
        state_->accessEpoch.fetch_add(1, std::memory_order_seq_cst);
    tlsScopeDepth--;
}

} // namespace alaska
