#include "services/concurrent_reloc.h"

#include <cstring>
#include <vector>

#include "base/logging.h"
#include "core/handle.h"

namespace alaska
{

bool
tryRelocateConcurrent(Runtime &runtime, uint32_t id)
{
    auto &entry = runtime.table().entry(id);
    ALASKA_ASSERT(entry.allocated(), "relocation of freed handle %u", id);
    const size_t size = entry.size;

    // Phase 1: mark. Fails if someone else is relocating this object.
    void *old_ptr = entry.ptr.load(std::memory_order_acquire);
    if (reloc::isMarked(old_ptr) || old_ptr == nullptr)
        return false;
    if (!entry.ptr.compare_exchange_strong(old_ptr, reloc::marked(old_ptr),
                                           std::memory_order_seq_cst)) {
        return false;
    }

    // Pinned objects cannot move: an accessor that pinned *before* our
    // mark holds a raw pointer we must not invalidate. Accessors that
    // pin *after* the mark will clear it and fail our commit CAS.
    if (entry.state.load(std::memory_order_seq_cst) >>
        HandleTableEntry::pinCountShift) {
        void *expected = reloc::marked(old_ptr);
        entry.ptr.compare_exchange_strong(expected, old_ptr,
                                          std::memory_order_seq_cst);
        return false;
    }

    // Phase 2: speculative copy while mutators may still read old_ptr.
    void *new_ptr = runtime.service().alloc(id, size);
    std::memcpy(new_ptr, old_ptr, size);

    // Phase 3: commit. An accessor that faulted meanwhile has cleared
    // the mark, and this CAS fails — the relocation is aborted.
    void *expected = reloc::marked(old_ptr);
    if (entry.ptr.compare_exchange_strong(expected, new_ptr,
                                          std::memory_order_acq_rel)) {
        runtime.service().free(id, old_ptr);
        return true;
    }
    runtime.service().free(id, new_ptr);
    return false;
}

void *
translateConcurrent(const void *maybe_handle)
{
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (static_cast<int64_t>(v) >= 0)
        return const_cast<void *>(maybe_handle);
    HandleTableEntry &e =
        Runtime::gTableBase[(v >> 32) & (maxHandleId - 1)];

    // seq_cst, not acquire: this load must participate in the single
    // total order with the caller's pin increment and the mover's
    // mark/pin-check pair (a Dekker handshake across two locations).
    // With a weaker load, non-TSO hardware could let the pin and the
    // mark go mutually unseen, and a write through this translation
    // would land in an abandoned copy.
    void *ptr = e.ptr.load(std::memory_order_seq_cst);
    while (reloc::isMarked(ptr)) {
        // Abort the in-flight relocation: clear the mark. Whether our
        // CAS or the mover's commit wins, the loop re-reads a stable
        // pointer.
        void *expected = ptr;
        e.ptr.compare_exchange_strong(expected, reloc::unmarked(ptr),
                                      std::memory_order_seq_cst);
        ptr = e.ptr.load(std::memory_order_acquire);
    }
    return static_cast<char *>(ptr) + static_cast<uint32_t>(v);
}

// --- scoped concurrent access ----------------------------------------------

namespace creloc_detail
{

// local-exec: this library only ever links statically into the final
// executable, so the flag can skip the GOT indirection — together with
// constinit this makes the translateScoped() fast path a single
// %fs-relative load (verified in handle_alloc_bench section 3).
thread_local constinit bool
    __attribute__((tls_model("local-exec"))) tlsScopePinning = false;

namespace
{
/** Nesting depth of ConcurrentAccessScope on this thread. */
thread_local uint32_t tlsScopeDepth = 0;
/** Entries pinned by translateScoped() inside the current scope. */
thread_local std::vector<HandleTableEntry *> tlsPinLog;
} // anonymous namespace

void *
pinScopedAndTranslate(const void *maybe_handle)
{
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (isHandle(v)) {
        HandleTableEntry *entry =
            &Runtime::gRuntime->table().entry(handleId(v));
        entry->state.fetch_add(HandleTableEntry::pinCountOne,
                               std::memory_order_seq_cst);
        tlsPinLog.push_back(entry);
    }
    return translateConcurrent(maybe_handle);
}

} // namespace creloc_detail

ConcurrentAccessScope::ConcurrentAccessScope()
{
    using creloc_detail::tlsScopeDepth;
    if (tlsScopeDepth++ > 0)
        return;
    outermost_ = true;
    Runtime *runtime = Runtime::gRuntime;
    state_ = runtime ? runtime->currentThreadStateOrNull() : nullptr;
    // Publish "in scope" (odd phase) *before* sampling the campaign
    // flag, both seq_cst: either the mover's flag store is visible here
    // (we pin), or our odd phase is visible to the mover's quiescence
    // wait (it drains us before marking anything).
    if (state_)
        state_->accessSeq.fetch_add(1, std::memory_order_seq_cst);
    creloc_detail::tlsScopePinning = Runtime::concurrentRelocActive();
}

ConcurrentAccessScope::~ConcurrentAccessScope()
{
    using creloc_detail::tlsScopeDepth;
    if (!outermost_) {
        tlsScopeDepth--;
        return;
    }
    for (HandleTableEntry *entry : creloc_detail::tlsPinLog) {
        const uint32_t old = entry->state.fetch_sub(
            HandleTableEntry::pinCountOne, std::memory_order_seq_cst);
        ALASKA_ASSERT((old >> HandleTableEntry::pinCountShift) > 0,
                      "scoped unpin underflow");
    }
    creloc_detail::tlsPinLog.clear();
    creloc_detail::tlsScopePinning = false;
    if (state_)
        state_->accessSeq.fetch_add(1, std::memory_order_seq_cst);
    tlsScopeDepth--;
}

} // namespace alaska
