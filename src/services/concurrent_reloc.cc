#include "services/concurrent_reloc.h"

#include <cstring>

#include "base/logging.h"
#include "core/handle.h"

namespace alaska
{

namespace
{

constexpr uint64_t relocMark = 1;

void *
marked(void *ptr)
{
    return reinterpret_cast<void *>(reinterpret_cast<uint64_t>(ptr) |
                                    relocMark);
}

void *
unmarked(void *ptr)
{
    return reinterpret_cast<void *>(reinterpret_cast<uint64_t>(ptr) &
                                    ~relocMark);
}

bool
isMarked(const void *ptr)
{
    return reinterpret_cast<uint64_t>(ptr) & relocMark;
}

} // anonymous namespace

bool
tryRelocateConcurrent(Runtime &runtime, uint32_t id)
{
    auto &entry = runtime.table().entry(id);
    ALASKA_ASSERT(entry.allocated(), "relocation of freed handle %u", id);
    const size_t size = entry.size;

    // Phase 1: mark. Fails if someone else is relocating this object.
    void *old_ptr = entry.ptr.load(std::memory_order_acquire);
    if (isMarked(old_ptr))
        return false;
    if (!entry.ptr.compare_exchange_strong(old_ptr, marked(old_ptr),
                                           std::memory_order_seq_cst)) {
        return false;
    }

    // Pinned objects cannot move: an accessor that pinned *before* our
    // mark holds a raw pointer we must not invalidate. Accessors that
    // pin *after* the mark will clear it and fail our commit CAS.
    if (entry.state.load(std::memory_order_seq_cst) >>
        HandleTableEntry::pinCountShift) {
        void *expected = marked(old_ptr);
        entry.ptr.compare_exchange_strong(expected, old_ptr,
                                          std::memory_order_seq_cst);
        return false;
    }

    // Phase 2: speculative copy while mutators may still read old_ptr.
    void *new_ptr = runtime.service().alloc(id, size);
    std::memcpy(new_ptr, old_ptr, size);

    // Phase 3: commit. An accessor that faulted meanwhile has cleared
    // the mark, and this CAS fails — the relocation is aborted.
    void *expected = marked(old_ptr);
    if (entry.ptr.compare_exchange_strong(expected, new_ptr,
                                          std::memory_order_acq_rel)) {
        runtime.service().free(id, old_ptr);
        return true;
    }
    runtime.service().free(id, new_ptr);
    return false;
}

void *
translateConcurrent(const void *maybe_handle)
{
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (static_cast<int64_t>(v) >= 0)
        return const_cast<void *>(maybe_handle);
    HandleTableEntry &e =
        Runtime::gTableBase[(v >> 32) & (maxHandleId - 1)];

    void *ptr = e.ptr.load(std::memory_order_acquire);
    while (isMarked(ptr)) {
        // Abort the in-flight relocation: clear the mark. Whether our
        // CAS or the mover's commit wins, the loop re-reads a stable
        // pointer.
        void *expected = ptr;
        e.ptr.compare_exchange_strong(expected, unmarked(ptr),
                                      std::memory_order_seq_cst);
        ptr = e.ptr.load(std::memory_order_acquire);
    }
    return static_cast<char *>(ptr) + static_cast<uint32_t>(v);
}

ConcurrentPin::ConcurrentPin(const void *maybe_handle)
{
    const uint64_t v = reinterpret_cast<uint64_t>(maybe_handle);
    if (isHandle(v)) {
        entry_ = &Runtime::gRuntime->table().entry(handleId(v));
        // seq_cst: the increment must be globally ordered against the
        // mover's mark/pin-check pair.
        entry_->state.fetch_add(HandleTableEntry::pinCountOne,
                                std::memory_order_seq_cst);
    }
    raw_ = translateConcurrent(maybe_handle);
}

ConcurrentPin::~ConcurrentPin()
{
    if (entry_) {
        entry_->state.fetch_sub(HandleTableEntry::pinCountOne,
                                std::memory_order_seq_cst);
    }
}

} // namespace alaska
