/**
 * @file
 * A glibc-malloc-like allocator model: address-ordered first fit over a
 * brk-style arena with free-range coalescing. Its defining property for
 * the fragmentation experiments is that interior frees never return
 * pages to the kernel — only a free top of heap can be trimmed. Under
 * LRU-churn workloads this makes RSS a high-water mark, which is exactly
 * the baseline behaviour in the paper's Figure 9.
 */

#ifndef ALASKA_ALLOC_SIM_GLIBC_MODEL_H
#define ALASKA_ALLOC_SIM_GLIBC_MODEL_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>

#include "alloc_sim/alloc_model.h"
#include "sim/address_space.h"

namespace alaska
{

/** Baseline allocator model (glibc-like). */
class GlibcModel : public AllocModel
{
  public:
    /**
     * @param space the arena's address space; default is an owned
     * phantom space. The arena is reserved up front (NORESERVE-style).
     * @param arena_bytes maximum arena size.
     */
    explicit GlibcModel(AddressSpace *space = nullptr,
                        size_t arena_bytes = 8ull << 30)
    {
        if (space) {
            space_ = space;
        } else {
            owned_ = std::make_unique<PhantomAddressSpace>();
            space_ = owned_.get();
        }
        arenaBase_ = space_->map(arena_bytes);
        arenaBytes_ = arena_bytes;
    }

    uint64_t alloc(size_t size) override;
    void free(uint64_t token) override;
    size_t rss() const override { return space_->rss(); }
    size_t activeBytes() const override { return active_; }
    const char *name() const override { return "glibc-baseline"; }

    /** Current arena extent (the brk pointer). */
    size_t extent() const { return top_; }

  private:
    AddressSpace *space_ = nullptr;
    std::unique_ptr<PhantomAddressSpace> owned_;
    uint64_t arenaBase_ = 0;
    size_t arenaBytes_ = 0;
    /** Free ranges, keyed by address, coalesced on insert. */
    std::map<uint64_t, size_t> freeRanges_;
    /** Live allocation sizes by token. */
    std::unordered_map<uint64_t, size_t> live_;
    uint64_t top_ = 0;
    size_t active_ = 0;
};

} // namespace alaska

#endif // ALASKA_ALLOC_SIM_GLIBC_MODEL_H
