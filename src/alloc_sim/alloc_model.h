/**
 * @file
 * The allocator-model interface used by the fragmentation experiments
 * (Figures 1, 9, 10, 11).
 *
 * The paper compares Anchorage against three non-mobile memory managers
 * under Redis: glibc malloc (baseline), jemalloc + activedefrag, and
 * Mesh. We reproduce their RSS behaviour with faithful allocator models
 * driven by the same allocation/lifetime stream as the real run; page
 * residency flows through PageModel, making every curve deterministic.
 * See DESIGN.md ("Substitutions").
 */

#ifndef ALASKA_ALLOC_SIM_ALLOC_MODEL_H
#define ALASKA_ALLOC_SIM_ALLOC_MODEL_H

#include <cstddef>
#include <cstdint>

namespace alaska
{

/**
 * An allocator model: hands out address tokens, accounts pages.
 *
 * Tokens are synthetic heap addresses; they are stable for the lifetime
 * of the allocation unless the owner explicitly moves it (activedefrag).
 */
class AllocModel
{
  public:
    virtual ~AllocModel() = default;

    /** Allocate size bytes; returns the address token. */
    virtual uint64_t alloc(size_t size) = 0;

    /** Free a token from alloc(). */
    virtual void free(uint64_t token) = 0;

    /** Resident set size attributable to the heap, bytes. */
    virtual size_t rss() const = 0;

    /** Bytes in live allocations. */
    virtual size_t activeBytes() const = 0;

    /** Model name for reports. */
    virtual const char *name() const = 0;

    /**
     * Periodic background maintenance (Mesh's meshing passes, decay,
     * ...). Called by harnesses on their sampling cadence. Default: none.
     */
    virtual void maintain() {}

    /**
     * Defragmentation hint (the jemalloc API activedefrag is built on):
     * true if the application should reallocate this token to reduce
     * fragmentation. Default: allocator cannot benefit from moves.
     */
    virtual bool shouldMove(uint64_t token) const
    {
        (void)token;
        return false;
    }
};

} // namespace alaska

#endif // ALASKA_ALLOC_SIM_ALLOC_MODEL_H
