#include "alloc_sim/jemalloc_model.h"

#include <algorithm>

#include "base/logging.h"

namespace alaska
{

namespace
{

/** jemalloc-style size classes: 16..128 by 16, then 1.25x spacing. */
constexpr size_t smallClasses[] = {
    16,  32,  48,  64,  80,  96,   112,  128,  160,  192,  224,  256,
    320, 384, 448, 512, 640, 768,  896,  1024, 1280, 1536, 1792, 2048,
    2560, 3072, 3584,
};
constexpr int nSmallClasses =
    static_cast<int>(sizeof(smallClasses) / sizeof(smallClasses[0]));

} // anonymous namespace

int
JemallocModel::numClasses()
{
    return nSmallClasses;
}

size_t
JemallocModel::classSize(int cls)
{
    return smallClasses[cls];
}

int
JemallocModel::classOf(size_t size)
{
    if (size > maxSmall)
        return -1;
    for (int c = 0; c < nSmallClasses; c++) {
        if (smallClasses[c] >= size)
            return c;
    }
    return -1;
}

int
JemallocModel::decileOf(const Slab &slab)
{
    const int d = static_cast<int>(slab.occupancy() * 10.0);
    return std::min(d, 9);
}

uint64_t
JemallocModel::alloc(size_t size)
{
    if (size == 0)
        size = 1;
    const int cls = classOf(size);
    const uint64_t token =
        cls < 0 ? allocLarge(size) : allocSmall(cls);
    return token;
}

uint64_t
JemallocModel::allocLarge(size_t size)
{
    const size_t page = space_->pages().pageSize();
    const size_t need = (size + page - 1) / page * page;
    const uint64_t addr = space_->map(need);
    large_.emplace(addr, need);
    active_ += need;
    space_->touch(addr, need);
    return addr;
}

uint64_t
JemallocModel::allocSmall(int cls)
{
    Bin &bin = bins_[cls];

    // Densest-first: scan occupancy buckets from high to low. This is
    // what makes defrag-driven reallocation drain sparse slabs.
    Slab *slab = nullptr;
    for (int d = 9; d >= 0 && !slab; d--) {
        auto &bucket = bin.buckets[d];
        while (!bucket.empty()) {
            auto it = slabs_.find(bucket.back());
            Slab *cand = it == slabs_.end() ? nullptr : it->second.get();
            if (!cand || cand->full() || cand->decile != d) {
                bucket.pop_back(); // stale: released or rebucketed
                continue;
            }
            slab = cand;
            break;
        }
    }

    if (!slab) {
        // New slab run from the OS.
        auto fresh = std::make_unique<Slab>();
        fresh->base = space_->map(slabBytes);
        fresh->cls = cls;
        fresh->slots = static_cast<uint32_t>(slabBytes / classSize(cls));
        fresh->bitmap.assign((fresh->slots + 63) / 64, 0);
        fresh->decile = 0;
        slab = fresh.get();
        slabs_.emplace(fresh->base, std::move(fresh));
        bin.counts[0]++;
        bin.nonFull++;
        bin.buckets[0].push_back(slab->base);
    }

    // First free slot.
    uint32_t slot = 0;
    for (size_t w = 0; w < slab->bitmap.size(); w++) {
        if (slab->bitmap[w] != ~UINT64_C(0)) {
            slot = static_cast<uint32_t>(
                w * 64 +
                static_cast<uint32_t>(__builtin_ctzll(~slab->bitmap[w])));
            break;
        }
    }
    ALASKA_ASSERT(slot < slab->slots, "slab bookkeeping broken");
    slab->bitmap[slot >> 6] |= (UINT64_C(1) << (slot & 63));
    slab->liveSlots++;
    if (slab->full()) {
        // Leaves the non-full population (its previous liveSlots-1
        // slots were counted there).
        bin.nonFull--;
        bin.liveInNonFull -= slab->liveSlots - 1;
    } else {
        bin.liveInNonFull++;
    }
    rebucket(slab, /*was_full=*/false);

    const uint64_t token = slab->base + slot * classSize(cls);
    active_ += classSize(cls);
    space_->touch(token, classSize(cls));
    return token;
}

JemallocModel::Slab *
JemallocModel::slabOf(uint64_t token) const
{
    auto it = slabs_.upper_bound(token);
    if (it == slabs_.begin())
        return nullptr;
    --it;
    if (token >= it->first + slabBytes)
        return nullptr;
    return it->second.get();
}

void
JemallocModel::rebucket(Slab *slab, bool was_full)
{
    const int now = slab->full() ? -1 : decileOf(*slab);
    const int before = was_full ? -1 : slab->decile;
    if (now == before && !was_full)
        return;
    Bin &bin = bins_[slab->cls];
    if (before >= 0)
        bin.counts[before]--;
    if (now >= 0) {
        bin.counts[now]++;
        slab->decile = now;
        bin.buckets[now].push_back(slab->base);
    }
}

void
JemallocModel::free(uint64_t token)
{
    auto large_it = large_.find(token);
    if (large_it != large_.end()) {
        active_ -= large_it->second;
        // Large runs go straight back to the kernel.
        space_->unmap(token, large_it->second);
        large_.erase(large_it);
        return;
    }

    Slab *slab = slabOf(token);
    ALASKA_ASSERT(slab != nullptr, "free of unknown token");
    const size_t csize = classSize(slab->cls);
    const auto slot = static_cast<uint32_t>((token - slab->base) / csize);
    const uint64_t mask = UINT64_C(1) << (slot & 63);
    ALASKA_ASSERT(slab->bitmap[slot >> 6] & mask, "double free");
    const bool was_full = slab->full();
    slab->bitmap[slot >> 6] &= ~mask;
    slab->liveSlots--;
    active_ -= csize;

    Bin &bin = bins_[slab->cls];
    if (was_full) {
        bin.nonFull++;
        bin.liveInNonFull += slab->liveSlots;
    } else {
        bin.liveInNonFull--;
    }

    if (slab->empty()) {
        // The whole run is free: release it (jemalloc decay, modeled
        // as immediate).
        bin.counts[slab->decile]--;
        bin.nonFull--;
        space_->unmap(slab->base, slabBytes);
        slabs_.erase(slab->base); // stale bucket entries pruned lazily
        return;
    }
    rebucket(slab, was_full);
}

bool
JemallocModel::shouldMove(uint64_t token) const
{
    if (large_.count(token))
        return false;
    const Slab *slab = slabOf(token);
    if (!slab || slab->full())
        return false;
    // jemalloc's je_get_defrag_hint: move allocations whose run is
    // utilized below the bin average — reallocation (served
    // densest-first) then drains below-average runs until their pages
    // can be released. The 0.95 factor provides hysteresis so equal
    // slabs do not ping-pong forever.
    const Bin &bin = bins_[slab->cls];
    if (bin.nonFull <= 1)
        return false; // nowhere better to go
    const double avg = static_cast<double>(bin.liveInNonFull) /
                       (static_cast<double>(bin.nonFull) *
                        static_cast<double>(slab->slots));
    return slab->occupancy() < avg * 0.95;
}

} // namespace alaska
