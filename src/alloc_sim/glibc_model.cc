#include "alloc_sim/glibc_model.h"

#include "base/logging.h"

namespace alaska
{

namespace
{

constexpr size_t
align16(size_t size)
{
    return (size + 15) & ~size_t{15};
}

} // anonymous namespace

uint64_t
GlibcModel::alloc(size_t size)
{
    const size_t need = align16(size ? size : 1);

    // Address-ordered first fit over the free ranges.
    for (auto it = freeRanges_.begin(); it != freeRanges_.end(); ++it) {
        if (it->second < need)
            continue;
        const uint64_t addr = it->first;
        const size_t remainder = it->second - need;
        freeRanges_.erase(it);
        if (remainder > 0)
            freeRanges_.emplace(addr + need, remainder);
        live_.emplace(addr, need);
        active_ += need;
        space_->touch(addr, need);
        return addr;
    }

    // Extend the arena (brk).
    ALASKA_ASSERT(top_ + need <= arenaBytes_, "glibc arena exhausted");
    const uint64_t addr = arenaBase_ + top_;
    top_ += need;
    live_.emplace(addr, need);
    active_ += need;
    space_->touch(addr, need);
    return addr;
}

void
GlibcModel::free(uint64_t token)
{
    auto it = live_.find(token);
    ALASKA_ASSERT(it != live_.end(), "free of unknown token");
    uint64_t addr = token;
    size_t size = it->second;
    live_.erase(it);
    active_ -= size;

    // Coalesce with the preceding free range.
    auto next = freeRanges_.lower_bound(addr);
    if (next != freeRanges_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == addr) {
            addr = prev->first;
            size += prev->second;
            freeRanges_.erase(prev);
        }
    }
    // Coalesce with the following free range.
    next = freeRanges_.lower_bound(addr + size);
    if (next != freeRanges_.end() && next->first == addr + size) {
        size += next->second;
        freeRanges_.erase(next);
    }

    // Top-of-heap trim is the *only* way pages go back to the kernel.
    if (addr + size == arenaBase_ + top_) {
        top_ = addr - arenaBase_;
        space_->discard(addr, size);
        return;
    }
    freeRanges_.emplace(addr, size);
    // Interior pages stay resident: glibc cannot give them back.
}

} // namespace alaska
