/**
 * @file
 * A jemalloc-like slab allocator model with the defrag-hint API that
 * Redis's activedefrag is built on.
 *
 * Small allocations live in fixed-size-class slabs (16 KiB runs); a
 * fully-empty slab is returned to the kernel. The model exposes
 * shouldMove(): true when a token sits in a sparse slab and denser
 * slabs of the same class could absorb it — the application (our
 * minikv's activedefrag port) then reallocates the object, which this
 * model serves densest-slab-first so the sparse slab drains and its
 * pages are released. This is the mechanism behind the paper's
 * "activedefrag" curve in Figures 9 and 11.
 */

#ifndef ALASKA_ALLOC_SIM_JEMALLOC_MODEL_H
#define ALASKA_ALLOC_SIM_JEMALLOC_MODEL_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc_sim/alloc_model.h"
#include "sim/address_space.h"

namespace alaska
{

/** jemalloc-like allocator model with defrag hints. */
class JemallocModel : public AllocModel
{
  public:
    /** Slab size (one jemalloc "run"). */
    static constexpr size_t slabBytes = 16384;
    /** Largest size served from slabs; bigger goes to page runs. */
    static constexpr size_t maxSmall = 3584;

    /**
     * @param space where slabs live. Over a RealAddressSpace the
     * tokens are usable memory (the real minikv runs on it); default
     * is an owned phantom space (accounting only).
     */
    explicit JemallocModel(AddressSpace *space = nullptr)
    {
        if (space) {
            space_ = space;
        } else {
            owned_ = std::make_unique<PhantomAddressSpace>();
            space_ = owned_.get();
        }
    }

    uint64_t alloc(size_t size) override;
    void free(uint64_t token) override;
    size_t rss() const override { return space_->rss(); }
    size_t activeBytes() const override { return active_; }
    const char *name() const override { return "jemalloc"; }

    /** Defrag hint (see file comment). */
    bool shouldMove(uint64_t token) const override;

    /** Size class index for a small request; -1 if large. */
    static int classOf(size_t size);
    /** Byte size of class c. */
    static size_t classSize(int cls);
    /** Number of small size classes. */
    static int numClasses();

  private:
    struct Slab
    {
        uint64_t base = 0;
        int cls = 0;
        uint32_t slots = 0;
        uint32_t liveSlots = 0;
        /** Current occupancy decile (0..9), for bin bucketing. */
        int decile = 0;
        std::vector<uint64_t> bitmap;

        bool full() const { return liveSlots == slots; }
        bool empty() const { return liveSlots == 0; }
        double
        occupancy() const
        {
            return static_cast<double>(liveSlots) /
                   static_cast<double>(slots);
        }
    };

    /** Per-class bin: non-full slabs bucketed by occupancy decile. */
    struct Bin
    {
        /** Buckets hold possibly-stale slab base addresses (the slab
         *  may have been released or rebucketed); validated on pop. */
        std::array<std::vector<uint64_t>, 10> buckets;
        /** Exact count of non-full slabs per decile. */
        std::array<int, 10> counts{};
        /** Non-full slab count and their live-slot sum, for the
         *  bin-average occupancy the defrag hint compares against. */
        int nonFull = 0;
        int64_t liveInNonFull = 0;
    };

    uint64_t allocSmall(int cls);
    uint64_t allocLarge(size_t size);
    Slab *slabOf(uint64_t token) const;
    void rebucket(Slab *slab, bool was_full);
    static int decileOf(const Slab &slab);

    AddressSpace *space_ = nullptr;
    std::unique_ptr<PhantomAddressSpace> owned_;
    std::vector<Bin> bins_ = std::vector<Bin>(numClasses());
    /** Slab lookup by base address (ordered: interior lookups). */
    std::map<uint64_t, std::unique_ptr<Slab>> slabs_;
    /** Live large allocations (token -> page-aligned size). */
    std::unordered_map<uint64_t, size_t> large_;
    size_t active_ = 0;
};

} // namespace alaska

#endif // ALASKA_ALLOC_SIM_JEMALLOC_MODEL_H
