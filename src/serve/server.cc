#include "serve/server.h"

#include <chrono>

#include "api/api.h"
#include "core/translate.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace alaska::serve
{

namespace
{

/** Mixes a record id into a balanced shard hash (splitmix64 finish —
 *  consecutive ids must not all land on one shard). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Brackets a blocking wait in external mode iff the calling thread is
 * registered, so a submitter parked on backpressure can never stall a
 * stop-the-world barrier (the same idiom as the daemon's sleep).
 */
class ExternalGuard
{
  public:
    explicit ExternalGuard(Runtime &runtime)
        : runtime_(runtime),
          active_(runtime.currentThreadStateOrNull() != nullptr)
    {
        if (active_)
            runtime_.enterExternal();
    }

    ~ExternalGuard()
    {
        if (active_)
            runtime_.leaveExternal();
    }

    ExternalGuard(const ExternalGuard &) = delete;
    ExternalGuard &operator=(const ExternalGuard &) = delete;

  private:
    Runtime &runtime_;
    bool active_;
};

} // namespace

const char *
opName(OpKind op)
{
    switch (op) {
    case OpKind::Get: return "get";
    case OpKind::Set: return "set";
    case OpKind::Rmw: return "rmw";
    }
    return "unknown";
}

Server::Server(Runtime &runtime, ServerConfig config)
    : runtime_(runtime), config_(config), alloc_(runtime),
      valueGen_(ycsb::WorkloadKind::A, 1, 3, config.valueSize)
{
    if (config_.workers < 1)
        config_.workers = 1;
    if (config_.queueCapacity < 1)
        config_.queueCapacity = 1;
    for (int i = 0; i < config_.workers; i++) {
        queues_.push_back(std::make_unique<WorkerQueue>());
        auto shard = std::make_unique<Shard>();
        shard->store =
            std::make_unique<Store>(alloc_, config_.maxMemoryPerShard);
        shards_.push_back(std::move(shard));
    }
}

Server::~Server()
{
    stop();
    clearStores();
}

void
Server::setCompletionHandler(CompletionFn fn)
{
    completion_ = std::move(fn);
}

void
Server::start()
{
    if (started_.load(std::memory_order_acquire))
        return;
    stopping_.store(false, std::memory_order_release);
    started_.store(true, std::memory_order_release);
    for (size_t i = 0; i < queues_.size(); i++)
        threads_.emplace_back([this, i] { workerMain(i); });
}

void
Server::stop()
{
    stopping_.store(true, std::memory_order_seq_cst);
    for (auto &q : queues_) {
        {
            // Pairs with the predicate checks under the queue mutex:
            // a waiter between its check and its wait must see the
            // notify.
            std::lock_guard<std::mutex> lock(q->mutex);
        }
        q->notEmpty.notify_all();
        q->notFull.notify_all();
    }
    for (auto &t : threads_)
        if (t.joinable())
            t.join();
    threads_.clear();
    started_.store(false, std::memory_order_release);
}

bool
Server::submit(const Request &request)
{
    if (stopping_.load(std::memory_order_acquire))
        return false;
    WorkerQueue &q = *queues_[shardOf(request.key)];
    bool accepted = false;
    {
        ExternalGuard external(runtime_);
        std::unique_lock<std::mutex> lock(q.mutex);
        if (q.queue.size() >= config_.queueCapacity) {
            backpressure_.fetch_add(1, std::memory_order_relaxed);
            telemetry::count(telemetry::Counter::ServeBackpressure);
            q.notFull.wait(lock, [&] {
                return q.queue.size() < config_.queueCapacity ||
                       stopping_.load(std::memory_order_relaxed);
            });
        }
        if (!stopping_.load(std::memory_order_relaxed)) {
            q.queue.push_back(request);
            accepted = true;
            const size_t depth =
                totalQueued_.fetch_add(1, std::memory_order_relaxed) + 1;
            telemetry::setGauge(telemetry::Gauge::ServeQueueDepth, depth);
        }
    }
    if (accepted) {
        submitted_.fetch_add(1, std::memory_order_relaxed);
        q.notEmpty.notify_one();
    }
    return accepted;
}

uint64_t
Server::submitted() const
{
    return submitted_.load(std::memory_order_acquire);
}

uint64_t
Server::completed() const
{
    return completed_.load(std::memory_order_acquire);
}

size_t
Server::queueDepth() const
{
    return totalQueued_.load(std::memory_order_acquire);
}

uint64_t
Server::steals() const
{
    return steals_.load(std::memory_order_acquire);
}

uint64_t
Server::backpressureWaits() const
{
    return backpressure_.load(std::memory_order_acquire);
}

size_t
Server::shardOf(uint64_t key) const
{
    return static_cast<size_t>(mix64(key) % shards_.size());
}

kv::KvStats
Server::storeStats() const
{
    kv::KvStats total;
    for (const auto &shard : shards_) {
        const kv::KvStats s = shard->store->stats();
        total.keys += s.keys;
        total.usedMemory += s.usedMemory;
        total.evictions += s.evictions;
        total.defragMoves += s.defragMoves;
    }
    return total;
}

std::string
Server::valueFor(uint64_t id) const
{
    return valueGen_.valueFor(id);
}

void
Server::populate(uint64_t records)
{
    for (uint64_t id = 0; id < records; id++) {
        shard(shardOf(id)).set(ycsb::Workload::keyFor(id),
                               valueFor(id));
    }
}

void
Server::fragmentEvenKeys(uint64_t records)
{
    for (uint64_t id = 0; id < records; id += 2)
        shard(shardOf(id)).del(ycsb::Workload::keyFor(id));
}

void
Server::clearStores()
{
    for (auto &shard : shards_)
        shard->store->clear();
}

void
Server::workerMain(size_t index)
{
    ThreadRegistration registration(runtime_);
    WorkerQueue &own = *queues_[index];
    for (;;) {
        poll();
        Request request;
        if (popFrom(index, request, /*stolen=*/false)) {
            execute(request);
            continue;
        }
        bool stole = false;
        for (size_t i = 1; i < queues_.size() && !stole; i++)
            stole = popFrom((index + i) % queues_.size(), request,
                            /*stolen=*/true);
        if (stole) {
            execute(request);
            continue;
        }
        if (stopping_.load(std::memory_order_acquire) &&
            totalQueued_.load(std::memory_order_acquire) == 0)
            break;
        // Idle: nap on the own-queue cv in external mode (a parked
        // worker must not hold up a barrier), waking early for new
        // work or shutdown; the timeout bounds how long a steal-only
        // opportunity can sit unnoticed.
        runtime_.enterExternal();
        {
            std::unique_lock<std::mutex> lock(own.mutex);
            own.notEmpty.wait_for(
                lock, std::chrono::microseconds(200), [&] {
                    return !own.queue.empty() ||
                           stopping_.load(std::memory_order_relaxed);
                });
        }
        runtime_.leaveExternal();
    }
}

bool
Server::popFrom(size_t index, Request &out, bool stolen)
{
    WorkerQueue &q = *queues_[index];
    std::unique_lock<std::mutex> lock(q.mutex, std::defer_lock);
    if (stolen) {
        // A thief never waits on a busy queue — it has its own.
        if (!lock.try_lock())
            return false;
    } else {
        lock.lock();
    }
    if (q.queue.empty())
        return false;
    out = q.queue.front();
    q.queue.pop_front();
    const size_t depth =
        totalQueued_.fetch_sub(1, std::memory_order_relaxed) - 1;
    telemetry::setGauge(telemetry::Gauge::ServeQueueDepth, depth);
    lock.unlock();
    q.notFull.notify_one();
    if (stolen) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        telemetry::count(telemetry::Counter::ServeSteal);
    }
    return true;
}

void
Server::execute(const Request &request)
{
    telemetry::TraceSpan span("request");
    Shard &shard = *shards_[shardOf(request.key)];
    const std::string key = ycsb::Workload::keyFor(request.key);
    bool hit = true;
    {
        // The shard lock admits thieves; nearly always uncontended
        // (requests route to the owning worker). The access_scope is
        // the typed layer's request bracket: two loads under pure
        // stop-the-world defrag, a real ConcurrentAccessScope while a
        // daemon declares campaigns.
        std::lock_guard<std::mutex> lock(shard.mutex);
        access_scope scope;
        switch (request.op) {
        case OpKind::Get:
            hit = shard.store->get(key).has_value();
            break;
        case OpKind::Set:
            shard.store->set(key, valueFor(request.key));
            break;
        case OpKind::Rmw: {
            auto value = shard.store->get(key);
            hit = value.has_value();
            std::string modified =
                value.value_or(std::string(config_.valueSize, 'x'));
            modified[0] = static_cast<char>(modified[0] ^ 1);
            shard.store->set(key, modified);
            break;
        }
        }
    }
    Response response;
    response.id = request.id;
    response.op = request.op;
    response.hit = hit;
    const uint64_t now = nowNs();
    response.latencyNs =
        now > request.intendedNs ? now - request.intendedNs : 0;
    if (completion_)
        completion_(response);
    completed_.fetch_add(1, std::memory_order_release);
}

} // namespace alaska::serve
