/**
 * @file
 * Open-loop load generator for serve::Server.
 *
 * The generator precomputes an arrival schedule — Poisson (exponential
 * inter-arrivals) or fixed-rate — and stamps every request with its
 * *intended* arrival time before sending. When the server (or a defrag
 * pause behind it) falls behind, the generator does not slow down: it
 * keeps sending, immediately, with the original intended stamps. That
 * is the open-loop discipline that defeats coordinated omission — a
 * closed-loop driver (like bench/tab_ycsb_latency's mutator threads)
 * silently stops issuing requests while it is stuck behind a pause, so
 * the requests that *would have* queued during the pause never exist
 * and the pause vanishes from the latency distribution. Here they do
 * exist, their latency runs from intendedNs, and a 5 ms barrier shows
 * up as a 5 ms+ queueing spike at p999.
 *
 * Request mixes come from src/ycsb (zipfian A/B/C/F); an optional
 * keyMap lets the harness confine traffic to a key subset (e.g. odd
 * record ids, so even ids stay read-only for post-run verification).
 */

#ifndef ALASKA_SERVE_LOAD_GEN_H
#define ALASKA_SERVE_LOAD_GEN_H

#include <cstdint>
#include <functional>

#include "serve/server.h"
#include "ycsb/ycsb.h"

namespace alaska::serve
{

/** Load-generator tuning. */
struct LoadGenConfig
{
    /** Offered load in requests/second. Must be > 0. */
    double ratePerSec = 10000;
    /** Poisson (exponential inter-arrival) vs fixed-interval. */
    bool poisson = true;
    /** Requests to offer in total. */
    uint64_t totalOps = 100000;
    /** YCSB mix driving op types and zipfian key popularity. */
    ycsb::WorkloadKind kind = ycsb::WorkloadKind::A;
    /** Keyspace size the mix draws record ids from. */
    uint64_t records = 100000;
    /** Deterministic schedule/mix seed. */
    uint64_t seed = 7;
    /** Optional record-id remap applied to every generated id (e.g.
     *  id -> 2*id+1 to confine traffic to odd records). Identity when
     *  unset. */
    std::function<uint64_t(uint64_t)> keyMap;
};

/**
 * Drives a Server open-loop from the calling thread.
 *
 * run() is blocking and single-threaded: one generator thread is the
 * right model for an arrival *process* (the server's workers provide
 * the concurrency). The generator thread should NOT be a registered
 * Alaska thread — it only calls Server::submit(), which tolerates
 * either, but an unregistered sender can never delay a barrier, so the
 * measured pauses stay attributable to the serving threads alone.
 */
class LoadGen
{
  public:
    LoadGen(Server &server, LoadGenConfig config);

    /**
     * Send the whole schedule. Returns when every request has been
     * submitted (not necessarily completed — pair with Server::stop()
     * to drain) or when submit() reports the server is stopping.
     */
    void run();

    /** Requests actually accepted by the server. */
    uint64_t offered() const { return offered_; }

    /** Worst (send − intended) lag over the run, ns: how far behind
     *  schedule the generator itself fell. An open-loop run is honest
     *  as long as this stays well below the latencies it reports. */
    uint64_t maxLagNs() const { return maxLagNs_; }

  private:
    Server &server_;
    LoadGenConfig config_;
    ycsb::Workload workload_;
    Rng arrivalRng_;
    uint64_t offered_ = 0;
    uint64_t maxLagNs_ = 0;
};

} // namespace alaska::serve

#endif // ALASKA_SERVE_LOAD_GEN_H
