/**
 * @file
 * Tail-latency SLO tracking for the serving front end.
 *
 * Two views of the same completion stream: cumulative per-op-type
 * histograms (whole-run p50/p99/p999 per get/set/rmw) and a windowed
 * combined histogram whose per-window p999 is compared against the SLO
 * each time the sampler closes a window. A violated window is
 * attributed to whichever defrag mechanisms did work during it — the
 * sampler passes per-mechanism work deltas (from
 * ConcurrentRelocDaemon::totalsFor) into closeWindow() — so a run's
 * report can say "7 of 9 violated windows coincided with
 * stop-the-world work" instead of just "p999 was bad". Windows
 * violated with no defrag work at all are counted separately
 * (violatedIdle): those are the server's own fault (overload,
 * scheduling), not the defrag pipeline's.
 */

#ifndef ALASKA_SERVE_SLO_H
#define ALASKA_SERVE_SLO_H

#include <cstdint>
#include <mutex>

#include "anchorage/mechanism.h"
#include "serve/server.h"
#include "telemetry/histogram.h"
#include "telemetry/windowed.h"

namespace alaska::serve
{

/** SLO-tracker tuning. */
struct SloConfig
{
    /** The p999 latency objective, microseconds. */
    double sloUs = 1000;
};

/**
 * Aggregates Response latencies and judges SLO windows.
 *
 * record() is called from the server's completion handler (worker
 * threads, concurrently). closeWindow() must be called by a single
 * sampler thread on its window cadence; it rotates the windowed
 * histogram and updates the violation totals under a mutex, so the
 * totals are consistent whenever the sampler is quiesced.
 */
class SloTracker
{
  public:
    /** Violation totals (read after the sampler quiesces). */
    struct Totals
    {
        /** Windows closed. */
        uint64_t windows = 0;
        /** Windows with traffic whose p999 exceeded the SLO. */
        uint64_t violated = 0;
        /** Violated windows during which no mechanism did work. */
        uint64_t violatedIdle = 0;
        /** Violated windows during which mechanism k did work (a
         *  window with two active mechanisms counts toward both). */
        uint64_t violatedBy[anchorage::kNumMechanisms] = {};
        /** Worst per-window p999 seen, microseconds. */
        double worstWindowP999Us = 0;
    };

    explicit SloTracker(SloConfig config = {}) : config_(config) {}

    /** Record one completion. Any thread (wait-free histogram adds). */
    void record(const Response &response);

    /**
     * Close the current window: judge its p999 against the SLO and
     * attribute a violation to every mechanism with nonzero work this
     * window. @param mechWork per-mechanism work delta (any monotone
     * progress measure — moved objects + barriers + meshed pages)
     * indexed by anchorage::MechanismKind. Single sampler thread.
     * @return the closed window's summary.
     */
    telemetry::WindowSummary
    closeWindow(const uint64_t (&mechWork)[anchorage::kNumMechanisms]);

    /** Violation totals so far. Call with the sampler quiesced. */
    Totals totals() const;

    /** Whole-run latency histogram for one op kind (ns samples). */
    const telemetry::Histogram &opHistogram(OpKind op) const;

    /** Whole-run percentile for one op kind, microseconds. */
    double opPercentileUs(OpKind op, double p) const;

    /** The configured objective, microseconds. */
    double sloUs() const { return config_.sloUs; }

  private:
    static constexpr size_t kNumOps = 3;

    SloConfig config_;
    telemetry::Histogram perOpNs_[kNumOps];
    telemetry::WindowedHistogram windowedNs_;
    mutable std::mutex mutex_; ///< guards totals_ (sampler vs readers)
    Totals totals_;
};

} // namespace alaska::serve

#endif // ALASKA_SERVE_SLO_H
