/**
 * @file
 * The serving front end: a bench-grade, simulated-connection KV server
 * over Alaska + Anchorage.
 *
 * N worker threads — each a registered Alaska thread that brackets
 * every request in an access_scope — pull from bounded per-worker
 * request queues with work stealing. The keyspace is sharded across
 * the workers (one MiniKv store per worker, all over the one shared
 * Anchorage heap), so a request normally executes on the worker that
 * owns its shard; a stolen request takes the owning shard's store lock
 * instead. Submission exerts backpressure: submit() blocks while the
 * target queue is full, so under overload the queueing delay shows up
 * in request latency (measured from the *intended* arrival time — see
 * load_gen.h) instead of requests being dropped. No request is ever
 * lost or executed twice; stop() drains everything in flight before
 * joining the workers.
 *
 * This is the subsystem the defrag pipeline is judged against: run a
 * ConcurrentRelocDaemon over the same heap and the per-request
 * latencies expose every barrier pause — amplified by queueing — while
 * the epoch/grace machinery (docs/ARCHITECTURE.md) keeps the workers'
 * scoped translations safe against live campaigns.
 */

#ifndef ALASKA_SERVE_SERVER_H
#define ALASKA_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "kv/alloc_policy.h"
#include "kv/minikv.h"
#include "ycsb/ycsb.h"

namespace alaska::serve
{

/** Nanoseconds on the serving layer's steady clock — the shared
 *  timebase of Request::intendedNs and completion stamps. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Request kinds the server executes (the YCSB op set: F's
 *  read-modify-write is Rmw; Update and Insert are both Set). */
enum class OpKind : uint8_t
{
    Get,
    Set,
    Rmw,
};

/** Stable lowercase name for an op kind (never nullptr). */
const char *opName(OpKind op);

/**
 * One request. `key` is a YCSB record id (the worker derives the
 * store key via ycsb::Workload::keyFor). `intendedNs` is the moment
 * the open-loop schedule intended this request to arrive — latency is
 * measured from it, so queueing delay (including time spent blocked
 * in submit() backpressure) is charged to the request and coordinated
 * omission cannot hide a pause.
 */
struct Request
{
    uint64_t id = 0;
    OpKind op = OpKind::Get;
    uint64_t key = 0;
    uint64_t intendedNs = 0;
};

/** What the server reports back per completed request. */
struct Response
{
    uint64_t id = 0;
    OpKind op = OpKind::Get;
    /** Get/Rmw: whether the key was present. Set: always true. */
    bool hit = true;
    /** completion − intended arrival (0 if the clock read raced). */
    uint64_t latencyNs = 0;
};

/** Server tuning. */
struct ServerConfig
{
    /** Worker threads == store shards. */
    int workers = 4;
    /** Per-worker queue bound; submit() blocks when full. */
    size_t queueCapacity = 1024;
    /** Value payload size for Set, and for populate(). */
    size_t valueSize = 300;
    /** Per-shard MiniKv maxmemory (LRU eviction); 0 = unbounded. */
    size_t maxMemoryPerShard = 0;
};

/**
 * The thread-pool server.
 *
 * Threading contract: submit() may be called from any number of
 * producer threads (registered or not — a registered submitter's
 * backpressure wait happens in external mode so it can never stall a
 * barrier). start()/stop() are for the owning thread; stop() is
 * idempotent and drains all queued requests before joining. The
 * completion handler runs on worker threads, possibly concurrently
 * with itself. populate()/fragmentEvenKeys()/clearStores() touch the
 * stores without locking and must run while the workers are stopped,
 * from a registered thread.
 */
class Server
{
  public:
    using Store = kv::MiniKv<kv::AlaskaAlloc>;
    using CompletionFn = std::function<void(const Response &)>;

    Server(Runtime &runtime, ServerConfig config = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Install the per-completion hook (e.g. SloTracker::record).
     *  Call before start(). */
    void setCompletionHandler(CompletionFn fn);

    /** Launch the worker threads. Call once per stop(). */
    void start();

    /**
     * Graceful shutdown: refuse new submits, drain every queued
     * request, join the workers. Idempotent; any thread.
     */
    void stop();

    /**
     * Enqueue a request on its shard owner's queue. Blocks while the
     * queue is full (backpressure; counted in serve_backpressure and,
     * because latency runs from intendedNs, charged to the requests
     * behind the block). @return false iff the server is stopping —
     * the request was not enqueued.
     */
    bool submit(const Request &request);

    /** Requests accepted by submit() so far. Any thread. */
    uint64_t submitted() const;

    /** Requests fully executed (completion handler run) so far. */
    uint64_t completed() const;

    /** Requests currently queued across all workers. Any thread. */
    size_t queueDepth() const;

    /** Requests executed by a worker that stole them. Any thread. */
    uint64_t steals() const;

    /** submit() calls that had to wait on a full queue. Any thread. */
    uint64_t backpressureWaits() const;

    /** Store shard a key routes to. */
    size_t shardOf(uint64_t key) const;

    /** Number of store shards (== workers). */
    size_t shardCount() const { return shards_.size(); }

    /** Direct access to a shard's store — only while stopped, from a
     *  registered thread (load/verify phases). */
    Store &shard(size_t i) { return *shards_[i]->store; }

    /** Aggregate KvStats over all shards (keys, memory, evictions).
     *  Only while stopped. */
    kv::KvStats storeStats() const;

    /** The deterministic value payload for a record id (what Set
     *  writes and populate() loads; ycsb::Workload::valueFor). */
    std::string valueFor(uint64_t id) const;

    /**
     * Load records [0, records) into their shards. Must run while
     * stopped, from a registered thread.
     */
    void populate(uint64_t records);

    /**
     * Delete every even record id in [0, records) — the standard way
     * the harnesses fragment the heap (half of every sub-heap becomes
     * holes) before defrag runs. Same contract as populate().
     */
    void fragmentEvenKeys(uint64_t records);

    /** Drop every shard's contents. Same contract as populate(); the
     *  destructor calls it as a fallback, which is only safe under
     *  the Direct discipline (no daemon declaring campaigns). */
    void clearStores();

  private:
    /** One worker's bounded queue (mutex + two cv sides). */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::condition_variable notEmpty;
        std::condition_variable notFull;
        std::deque<Request> queue;
    };

    /** One store shard and the lock a thief must take to touch it. */
    struct Shard
    {
        std::mutex mutex;
        std::unique_ptr<Store> store;
    };

    void workerMain(size_t index);
    bool popFrom(size_t index, Request &out, bool stolen);
    void execute(const Request &request);

    Runtime &runtime_;
    ServerConfig config_;
    kv::AlaskaAlloc alloc_;
    /** Value-payload generator (valueFor is const and thread-safe). */
    ycsb::Workload valueGen_;

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> threads_;
    CompletionFn completion_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> backpressure_{0};
    std::atomic<size_t> totalQueued_{0};
};

} // namespace alaska::serve

#endif // ALASKA_SERVE_SERVER_H
