#include "serve/load_gen.h"

#include <chrono>
#include <cmath>
#include <thread>

namespace alaska::serve
{

namespace
{

/** Map a YCSB op onto the server's op set (Update and Insert are both
 *  an unconditional Set; F's read-modify-write keeps its two-phase
 *  shape). */
OpKind
opKindFor(ycsb::OpType op)
{
    switch (op) {
    case ycsb::OpType::Read: return OpKind::Get;
    case ycsb::OpType::Update: return OpKind::Set;
    case ycsb::OpType::Insert: return OpKind::Set;
    case ycsb::OpType::ReadModifyWrite: return OpKind::Rmw;
    }
    return OpKind::Get;
}

/**
 * Sleep until the intended send time. Coarse sleep_for until ~150 us
 * out, then spin on the clock — sleep_for alone overshoots by a
 * scheduler quantum, which at 20 kreq/s would smear every
 * inter-arrival gap.
 */
void
waitUntilNs(uint64_t deadline)
{
    constexpr uint64_t kSpinWindowNs = 150 * 1000;
    uint64_t now = nowNs();
    if (now + kSpinWindowNs < deadline)
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(deadline - now - kSpinWindowNs));
    while (nowNs() < deadline) {
        // spin
    }
}

} // namespace

LoadGen::LoadGen(Server &server, LoadGenConfig config)
    : server_(server), config_(config),
      workload_(config.kind, config.records, config.seed,
                server.valueFor(0).size()),
      arrivalRng_(config.seed * 0x9e3779b97f4a7c15ULL + 0x5e47e)
{
}

void
LoadGen::run()
{
    const double rate =
        config_.ratePerSec > 0 ? config_.ratePerSec : 1.0;
    const double meanGapNs = 1e9 / rate;
    // Small startup slack so the first few arrivals are not already
    // late before the loop spins up.
    uint64_t intendedNs = nowNs() + 2 * 1000 * 1000;
    for (uint64_t i = 0; i < config_.totalOps; i++) {
        waitUntilNs(intendedNs);
        const ycsb::Request mix = workload_.next();
        Request request;
        request.id = i;
        request.op = opKindFor(mix.op);
        request.key =
            config_.keyMap ? config_.keyMap(mix.key) : mix.key;
        request.intendedNs = intendedNs;
        if (!server_.submit(request))
            break; // server stopping; the schedule ends here
        offered_++;
        const uint64_t now = nowNs();
        if (now > intendedNs && now - intendedNs > maxLagNs_)
            maxLagNs_ = now - intendedNs;
        // Advance the schedule from the *intended* time, never from
        // now: falling behind must not stretch later arrivals, or the
        // loop closes and coordinated omission sneaks back in.
        double gapNs = meanGapNs;
        if (config_.poisson) {
            double u = arrivalRng_.real();
            if (u > 0.999999999)
                u = 0.999999999;
            gapNs = -std::log(1.0 - u) * meanGapNs;
        }
        intendedNs += static_cast<uint64_t>(gapNs);
    }
}

} // namespace alaska::serve
