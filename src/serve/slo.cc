#include "serve/slo.h"

namespace alaska::serve
{

void
SloTracker::record(const Response &response)
{
    perOpNs_[static_cast<size_t>(response.op)].record(
        response.latencyNs);
    windowedNs_.record(response.latencyNs);
}

telemetry::WindowSummary
SloTracker::closeWindow(
    const uint64_t (&mechWork)[anchorage::kNumMechanisms])
{
    const telemetry::WindowSummary s = windowedNs_.rotate();
    std::lock_guard<std::mutex> lock(mutex_);
    totals_.windows++;
    if (s.count == 0)
        return s; // an empty window cannot violate anything
    const double p999Us = s.p999 / 1000.0;
    if (p999Us > totals_.worstWindowP999Us)
        totals_.worstWindowP999Us = p999Us;
    if (p999Us <= config_.sloUs)
        return s;
    totals_.violated++;
    bool anyWork = false;
    for (size_t k = 0; k < anchorage::kNumMechanisms; k++) {
        if (mechWork[k] > 0) {
            totals_.violatedBy[k]++;
            anyWork = true;
        }
    }
    if (!anyWork)
        totals_.violatedIdle++;
    return s;
}

SloTracker::Totals
SloTracker::totals() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return totals_;
}

const telemetry::Histogram &
SloTracker::opHistogram(OpKind op) const
{
    return perOpNs_[static_cast<size_t>(op)];
}

double
SloTracker::opPercentileUs(OpKind op, double p) const
{
    return opHistogram(op).percentile(p) / 1000.0;
}

} // namespace alaska::serve
