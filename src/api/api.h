/**
 * @file
 * The typed Alaska API — the surface new workloads build on.
 *
 * One include pulls in the whole typed layer:
 *
 *   hbox<T>       owning, unique, typed handle (href.h/hbox.h):
 *                 allocates on construction, frees on destruction,
 *                 move-only, knows its element count.
 *   href<T>       non-owning typed view with field-safe element
 *                 arithmetic (offset wrap can never corrupt the ID).
 *   access<T>     RAII access guard: translates once, valid for the
 *                 guard's lifetime, picks the correct idiom from
 *                 Runtime::translationDiscipline() (plain translate
 *                 under stop-the-world defrag, pin-against-campaigns
 *                 under concurrent defrag). `alaska::checked` selects
 *                 the handle-fault-checked path (swap services).
 *   pinned<T>     must-not-move guard: survives barriers and aborts
 *                 campaigns; for spans handed to external code.
 *   access_scope  brackets one application operation; free under
 *                 stop-the-world, a real ConcurrentAccessScope under
 *                 concurrent defrag.
 *   api::deref    per-access translation inside an access_scope (what
 *                 the KV policies compile to).
 *   allocator<T>  STL allocator over halloc/hfree via the handle_ptr
 *                 fancy pointer, so std::vector and friends live
 *                 behind handles unmodified.
 *
 * Everything is header-only and compiles down to the raw surface
 * (halloc/hfree + translate/translateScoped), which remains the
 * documented low-level escape hatch: hbox::release()/adopt() bridge
 * between the two. See docs/API.md for the tour and the rules on which
 * guard to reach for.
 */

#ifndef ALASKA_API_API_H
#define ALASKA_API_API_H

#include "api/access.h"
#include "api/allocator.h"
#include "api/hbox.h"
#include "api/href.h"

#endif // ALASKA_API_API_H
