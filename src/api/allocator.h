/**
 * @file
 * alaska::allocator<T> — an STL allocator whose memory lives behind
 * handles, via the fancy pointer alaska::handle_ptr<T>.
 *
 * allocate() returns a handle (tagged, movable by defrag); the
 * container stores and does arithmetic on handle_ptr values, and every
 * dereference translates through the mode-aware api::deref. A
 * std::vector<T, alaska::allocator<T>> therefore keeps working while
 * Anchorage relocates its backing array — the translation happens per
 * element access, exactly the conservative placement the compiler
 * would emit — and the container code itself needs no changes (the
 * paper's "unmodified application" property, here for C++ containers).
 *
 * Same discipline as every per-access idiom: raw pointers escaping a
 * dereference (including std::to_address / vector::data()) are valid
 * until the next safepoint under the Direct discipline, and must be
 * bracketed in an access_scope under Scoped.
 */

#ifndef ALASKA_API_ALLOCATOR_H
#define ALASKA_API_ALLOCATOR_H

#include <cstddef>
#include <iterator>
#include <memory>
#include <type_traits>

#include "api/access.h"
#include "api/href.h"
#include "base/logging.h"
#include "core/handle.h"
#include "core/runtime.h"

namespace alaska
{

/**
 * A maybe-handle fancy pointer: one pointer wide, holds either a
 * tagged handle or a raw pointer, translates on dereference, and does
 * field-safe element arithmetic (see href<T>). Models random access
 * iterator so allocator-aware containers can use it directly.
 */
template <typename T>
class handle_ptr
{
  public:
    using element_type = T;
    using value_type = std::remove_cv_t<T>;
    using difference_type = ptrdiff_t;
    using pointer = handle_ptr;
    using reference = std::add_lvalue_reference_t<T>;
    using iterator_category = std::random_access_iterator_tag;

    /** Rebind hook for std::pointer_traits. */
    template <typename U>
    using rebind = handle_ptr<U>;

    constexpr handle_ptr() = default;
    constexpr handle_ptr(std::nullptr_t) {}

    /** Wrap a maybe-handle (or raw pointer). */
    constexpr explicit handle_ptr(T *maybe_handle) : value_(maybe_handle)
    {
    }

    /** Converting copy (T* must be implicitly convertible from U*). */
    template <typename U,
              typename = std::enable_if_t<std::is_convertible_v<U *, T *>>>
    constexpr handle_ptr(const handle_ptr<U> &other)
        : value_(other.get())
    {
    }

    /** The wrapped maybe-handle value (NOT dereferenceable if tagged). */
    constexpr T *get() const { return value_; }

    /** Required by std::pointer_traits (containers rebuild pointers
     *  from references to node members). */
    template <typename U = T,
              typename = std::enable_if_t<!std::is_void_v<U>>>
    static handle_ptr
    pointer_to(U &r)
    {
        return handle_ptr(std::addressof(r));
    }

    /** Translate and dereference (mode-aware; see api::deref). */
    reference
    operator*() const
        requires(!std::is_void_v<T>)
    {
        return *api::deref(value_);
    }

    /** Translate to the current raw pointer (mode-aware). */
    T *
    operator->() const
        requires(!std::is_void_v<T>)
    {
        return api::deref(value_);
    }

    /** Translated element access. */
    reference
    operator[](difference_type i) const
        requires(!std::is_void_v<T>)
    {
        return *api::deref((*this + i).value_);
    }

    explicit operator bool() const { return value_ != nullptr; }

    // --- random access arithmetic (field-safe, as href<T>) --------------
    handle_ptr
    operator+(difference_type n) const
        requires(!std::is_void_v<T>)
    {
        return handle_ptr(
            (href<T>(value_) + n).get());
    }

    handle_ptr
    operator-(difference_type n) const
        requires(!std::is_void_v<T>)
    {
        return *this + (-n);
    }

    difference_type
    operator-(const handle_ptr &other) const
        requires(!std::is_void_v<T>)
    {
        return href<T>(value_) - href<T>(other.value_);
    }

    handle_ptr &
    operator+=(difference_type n)
        requires(!std::is_void_v<T>)
    {
        value_ = (*this + n).value_;
        return *this;
    }

    handle_ptr &
    operator-=(difference_type n)
        requires(!std::is_void_v<T>)
    {
        return *this += -n;
    }

    handle_ptr &
    operator++()
        requires(!std::is_void_v<T>)
    {
        return *this += 1;
    }

    handle_ptr
    operator++(int)
        requires(!std::is_void_v<T>)
    {
        handle_ptr old = *this;
        ++*this;
        return old;
    }

    handle_ptr &
    operator--()
        requires(!std::is_void_v<T>)
    {
        return *this -= 1;
    }

    handle_ptr
    operator--(int)
        requires(!std::is_void_v<T>)
    {
        handle_ptr old = *this;
        --*this;
        return old;
    }

    /** Ordering compares the composed values; meaningful within one
     *  object (same handle) or between raw pointers. */
    friend bool
    operator==(const handle_ptr &a, const handle_ptr &b)
    {
        return a.value_ == b.value_;
    }

    friend auto
    operator<=>(const handle_ptr &a, const handle_ptr &b)
    {
        return reinterpret_cast<uint64_t>(a.value_) <=>
               reinterpret_cast<uint64_t>(b.value_);
    }

  private:
    T *value_ = nullptr;
};

/** n + p, for random-access-iterator completeness. */
template <typename T>
inline handle_ptr<T>
operator+(ptrdiff_t n, const handle_ptr<T> &p)
{
    return p + n;
}

/**
 * The STL allocator over halloc/hfree. Stateful: it remembers which
 * Runtime it allocates from (default: the live Runtime::gRuntime);
 * allocators over the same runtime compare equal. Containers that
 * outlive the runtime are a use-after-free, exactly as with halloc.
 */
template <typename T>
class allocator
{
  public:
    using value_type = T;
    using pointer = handle_ptr<T>;
    using const_pointer = handle_ptr<const T>;
    using size_type = size_t;
    using difference_type = ptrdiff_t;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_copy_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    /** Allocate from the currently live runtime. */
    allocator() : runtime_(Runtime::gRuntime)
    {
        if (runtime_ == nullptr) {
            fatal("alaska::allocator: no live Runtime — construct one "
                  "before any handle-backed container");
        }
    }

    /** Allocate from a specific runtime. */
    explicit allocator(Runtime &runtime) : runtime_(&runtime) {}

    template <typename U>
    allocator(const allocator<U> &other) : runtime_(other.runtime_)
    {
    }

    /** Allocate n elements behind one fresh handle. */
    pointer
    allocate(size_type n)
    {
        if (n > maxObjectElements(sizeof(T))) {
            fatal("alaska::allocator: %zu elements of %zu bytes exceed "
                  "the 4 GiB handle offset range",
                  n, sizeof(T));
        }
        return pointer(
            static_cast<T *>(runtime_->halloc(n * sizeof(T))));
    }

    /** Free an allocation made by allocate(). */
    void
    deallocate(pointer p, size_type)
    {
        runtime_->hfree(p.get());
    }

    size_type max_size() const { return maxObjectElements(sizeof(T)); }

    friend bool
    operator==(const allocator &a, const allocator &b)
    {
        return a.runtime_ == b.runtime_;
    }

  private:
    template <typename U>
    friend class allocator;

    Runtime *runtime_;
};

} // namespace alaska

#endif // ALASKA_API_ALLOCATOR_H
