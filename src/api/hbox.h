/**
 * @file
 * alaska::hbox<T> — an owning, typed, move-only handle box.
 *
 * The RAII face of halloc/hfree: construction allocates `count`
 * elements of T behind a fresh handle (zero-initialized, the hcalloc
 * path), destruction frees it, and ownership moves like unique_ptr.
 * The box knows its element count, so guards and views derived from it
 * can be bounds-talked-about in elements instead of bytes.
 *
 * T must be trivially copyable: the runtime relocates backing memory
 * with byte copies (memcpy in defrag passes and campaigns), which is
 * only defined for such types — the same constraint the compiler path
 * imposes on every handle-backed object.
 *
 * Dereferencing goes through the guards in access.h (access<T> /
 * pinned<T>) or, for per-access idioms, api::deref on ref().get(); the
 * box itself never hands out raw memory. The raw surface stays
 * available as the escape hatch: release() relinquishes ownership of
 * the handle for code that manages lifetime by hand.
 */

#ifndef ALASKA_API_HBOX_H
#define ALASKA_API_HBOX_H

#include <cstddef>
#include <type_traits>
#include <utility>

#include "api/href.h"
#include "base/logging.h"
#include "core/handle.h"
#include "core/runtime.h"

namespace alaska
{

/**
 * Owning, unique, typed handle. Move-only; frees on destruction.
 *
 * Thread-compat: a box is owned by one thread at a time (like
 * unique_ptr); the *contents* follow the runtime's translation rules.
 */
template <typename T>
class hbox
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "hbox<T> requires trivially copyable T: the runtime "
                  "relocates objects with byte copies");

  public:
    /** The empty box. */
    hbox() = default;

    /**
     * Allocate `count` zero-initialized elements behind a fresh
     * handle. Fails fatally (like halloc) if the span exceeds the
     * 4 GiB offset range.
     */
    explicit hbox(Runtime &runtime, size_t count = 1)
        : runtime_(&runtime), count_(count)
    {
        if (count > maxObjectElements(sizeof(T))) {
            fatal("hbox: %zu elements of %zu bytes exceed the 4 GiB "
                  "handle offset range",
                  count, sizeof(T));
        }
        handle_ = static_cast<T *>(runtime.hcalloc(count, sizeof(T)));
    }

    /**
     * Adopt a raw maybe-handle allocated through the escape hatch
     * (halloc or a policy): the box takes ownership and will hfree it.
     */
    static hbox
    adopt(Runtime &runtime, T *handle, size_t count)
    {
        hbox box;
        box.runtime_ = &runtime;
        box.handle_ = handle;
        box.count_ = count;
        return box;
    }

    ~hbox() { reset(); }

    hbox(hbox &&other) noexcept
        : runtime_(std::exchange(other.runtime_, nullptr)),
          handle_(std::exchange(other.handle_, nullptr)),
          count_(std::exchange(other.count_, 0))
    {
    }

    hbox &
    operator=(hbox &&other) noexcept
    {
        if (this != &other) {
            reset();
            runtime_ = std::exchange(other.runtime_, nullptr);
            handle_ = std::exchange(other.handle_, nullptr);
            count_ = std::exchange(other.count_, 0);
        }
        return *this;
    }

    hbox(const hbox &) = delete;
    hbox &operator=(const hbox &) = delete;

    /** The owned maybe-handle value; nullptr when empty/moved-from. */
    T *get() const { return handle_; }

    /** A non-owning typed view of the owned handle. */
    href<T> ref() const { return href<T>(handle_); }

    /** Element count this box was allocated with. */
    size_t size() const { return count_; }

    /** Span size in bytes. */
    size_t sizeBytes() const { return count_ * sizeof(T); }

    /** True unless empty or moved-from. */
    explicit operator bool() const { return handle_ != nullptr; }

    /**
     * Relinquish ownership: returns the handle and leaves the box
     * empty. The caller becomes responsible for hfree — this is the
     * documented bridge back to the raw API.
     */
    T *
    release()
    {
        runtime_ = nullptr;
        count_ = 0;
        return std::exchange(handle_, nullptr);
    }

    /** Free the owned allocation (no-op when empty). */
    void
    reset()
    {
        if (handle_ != nullptr)
            runtime_->hfree(handle_);
        runtime_ = nullptr;
        handle_ = nullptr;
        count_ = 0;
    }

  private:
    Runtime *runtime_ = nullptr;
    T *handle_ = nullptr;
    size_t count_ = 0;
};

} // namespace alaska

#endif // ALASKA_API_HBOX_H
