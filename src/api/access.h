/**
 * @file
 * The unified access-guard family of the typed API: one set of types
 * that picks the correct translation idiom from the runtime's active
 * defrag mode (Runtime::translationDiscipline()), so callers no longer
 * choose between translate() and translateScoped() by hand — the
 * choice PR 2 left to every call site, where picking wrong silently
 * races relocation campaigns.
 *
 *  - alaska::access_scope   brackets one application operation. Free
 *                           under the Direct discipline; a real
 *                           ConcurrentAccessScope under Scoped. The
 *                           scope's epoch is what keeps every deref
 *                           inside it readable — campaigns copy and
 *                           commit immediately but only *reclaim* an
 *                           evacuated source after open scopes close
 *                           (grace periods over a limbo list).
 *  - alaska::api::deref<T>  per-access translation inside a scope —
 *                           what the KV policies' deref() compiles to.
 *                           No shared-memory RMW in any mode. The
 *                           result is readable for the scope's
 *                           lifetime; under Scoped it is NOT a store
 *                           target (see pinned<T>).
 *  - alaska::access<T>      RAII guard for one object: the raw pointer
 *                           is valid for the guard's lifetime (its own
 *                           epoch scope under Scoped — read access
 *                           only, like api::deref; plain translation
 *                           under Direct — then valid until the next
 *                           safepoint, so don't hold it across poll()
 *                           in either mode).
 *  - alaska::pinned<T>      must-not-move guard, and under Scoped the
 *                           one way to *store* through a translation:
 *                           the object cannot be relocated while the
 *                           guard lives, across barriers included
 *                           (stack pin frame under Direct, plus an
 *                           atomic pin under Scoped — since the epoch
 *                           rework the *only* per-object pin; both are
 *                           honored by STW passes and campaigns).
 *
 * Everything is header-only and compiles down to the raw surface; the
 * Direct fast paths are measured against raw translate() in
 * bench/handle_alloc_bench.cc (section 3).
 */

#ifndef ALASKA_API_ACCESS_H
#define ALASKA_API_ACCESS_H

#include <cstddef>
#include <optional>

#include "api/href.h"
#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"
#include "services/concurrent_reloc.h"

namespace alaska
{

template <typename T>
class hbox;

namespace api
{

/**
 * Mode-aware per-access translation: the typed layer's equivalent of
 * the compiler-inserted translate. Compiles to translateScoped(),
 * whose fast path is the ordinary one-load translate() behind a single
 * thread-local test — the test only fires when the enclosing
 * access_scope opened during an in-flight campaign, in which case the
 * deref is the same one-load translate with a mover's mark stripped.
 * No shared-memory RMW in any case. Validity comes from the scope, not
 * from the deref: campaigns commit moves immediately but grace-wait on
 * the scope's published epoch before *freeing* an evacuated source, so
 * whichever copy this deref resolved to stays readable until the scope
 * closes. Contract: under the Scoped discipline
 * (Runtime::translationDiscipline()) the caller must be inside an
 * access_scope bracketing the operation, and the result is a read-only
 * view — route stores through pinned<T> (or the KV policies' write()),
 * whose pin handshake is what aborts an in-flight copy a store would
 * otherwise vanish into. Under Direct no scope is needed and the raw
 * pointer is valid, for reads and writes, until the next safepoint.
 */
template <typename T>
inline T *
deref(T *maybe_handle)
{
    return static_cast<T *>(
        translateScoped(const_cast<const T *>(maybe_handle)));
}

} // namespace api

/**
 * Tag selecting the handle-fault-checked translation (paper §7): an
 * access constructed with `alaska::checked` traps into the service for
 * entries marked Invalid (e.g. swapped-out objects) instead of
 * dereferencing a poisoned pointer. Meaningful with fault-based
 * services (SwapService); those do not run relocation campaigns, so
 * the checked path always uses the Direct idiom.
 */
struct checked_t
{
    explicit checked_t() = default;
};

/** The checked_t tag value (see checked_t). */
inline constexpr checked_t checked{};

/**
 * Brackets one application operation (one KV request, one graph query)
 * in the discipline the runtime currently requires. Under Direct this
 * is two uncontended loads and nothing else; under Scoped it opens a
 * real ConcurrentAccessScope, publishing this thread's access epoch —
 * a campaign moves objects without waiting for anyone, but it defers
 * *reclaiming* an evacuated source until the epoch advances (the scope
 * closes), so everything translated inside the scope stays readable.
 * Derefs inside the scope are therefore plain loads; the epoch bump at
 * the scope boundary is the only shared-memory write. Must not span a
 * safepoint poll (an open scope stalls campaign grace periods, and
 * parked threads read as quiesced). Scopes nest.
 */
class access_scope
{
  public:
    access_scope()
    {
        if (Runtime::translationDiscipline() ==
            TranslationDiscipline::Scoped) {
            // ConcurrentAccessScope counts the scope_open itself.
            scope_.emplace();
        } else {
            telemetry::countHot(telemetry::Counter::ScopeOpen);
        }
    }

    access_scope(const access_scope &) = delete;
    access_scope &operator=(const access_scope &) = delete;

  private:
    std::optional<ConcurrentAccessScope> scope_;
};

/**
 * RAII typed access to one object behind a maybe-handle: construction
 * translates once, and the raw pointer stays valid for the guard's
 * lifetime. Under the Scoped discipline the guard opens its own epoch
 * scope, so a relocation campaign racing the guard grace-waits for the
 * guard to drop before reclaiming the object's old storage — no
 * per-object pin, no shared-memory RMW — and, like every epoch-backed
 * translation, the pointer is a read-only view (a store could land in
 * a source block a campaign has already copied out of); under Direct
 * the translation is the plain one-load fast path, writable as ever.
 * In both modes the guard must not outlive the next safepoint poll
 * (exactly the raw translate() contract — under Scoped, parking reads
 * as quiesced and voids the epoch protection). Use pinned<T> when the
 * object must survive barriers unmoved, the pointer must cross a poll,
 * or a store must race campaigns safely.
 */
template <typename T>
class access
{
  public:
    /** Translate a maybe-handle for the guard's lifetime. */
    explicit access(T *maybe_handle)
    {
        if (__builtin_expect(Runtime::translationDiscipline() ==
                                 TranslationDiscipline::Scoped,
                             0)) {
            // The guard's own epoch scope: campaigns grace-wait on it
            // before freeing anything this translation may reference.
            scope_.emplace();
            raw_ = static_cast<T *>(translateScoped(
                static_cast<const void *>(maybe_handle)));
        } else {
            raw_ = static_cast<T *>(
                translate(static_cast<const void *>(maybe_handle)));
        }
    }

    /**
     * Fault-checked translation (see checked_t): swapped-out objects
     * are faulted back in by the service before the guard returns.
     */
    access(T *maybe_handle, checked_t)
        : raw_(static_cast<T *>(
              translateChecked(static_cast<const void *>(maybe_handle))))
    {
    }

    /** Access the contents of an owning box. */
    explicit access(const hbox<T> &box) : access(box.get()) {}

    /** Checked access to an owning box's contents. */
    access(const hbox<T> &box, checked_t) : access(box.get(), checked) {}

    /** Access through a typed view. */
    explicit access(href<T> ref) : access(ref.get()) {}

    access(const access &) = delete;
    access &operator=(const access &) = delete;

    /** The translated raw pointer (guard-lifetime validity). */
    T *get() const { return raw_; }
    T &operator*() const { return *raw_; }
    T *operator->() const { return raw_; }
    /** Element access for array objects. */
    T &operator[](size_t i) const { return raw_[i]; }

  private:
    std::optional<ConcurrentAccessScope> scope_;
    T *raw_ = nullptr;
};

/**
 * RAII must-not-move guard: while a pinned<T> lives, neither a
 * stop-the-world pass nor a concurrent campaign will relocate the
 * object (barriers see the pin in the unified pin set; campaigns abort
 * on the pin count). Since the epoch rework this is the *only*
 * per-object pin in the API — access<T> and api::deref rely on epoch
 * grace instead — and consequently the only guard whose pointer may be
 * *stored through* while campaigns run: the pin/mark handshake aborts
 * any in-flight copy the store would otherwise be lost against. The
 * raw pointer is also stable across safepoints — this is the guard for
 * spans handed to external code or held across polls. Requires a
 * registered thread (the pin lives in a stack pin frame; PinFrame
 * enforces the requirement loudly).
 */
template <typename T>
class pinned
{
  public:
    /** Pin a maybe-handle for the guard's lifetime. */
    explicit pinned(T *maybe_handle) : frame_(&slot_, 1)
    {
        // Stack pin set, no atomics — the paper-default idiom, seen by
        // every stop-the-world barrier.
        raw_ = static_cast<T *>(
            frame_.pin(0, static_cast<const void *>(maybe_handle)));
        if (__builtin_expect(Runtime::translationDiscipline() ==
                                 TranslationDiscipline::Scoped,
                             0)) {
            // Additionally take an atomic pin (ConcurrentPin's
            // handshake): campaigns check pin counts, not other
            // threads' stacks, so this is what makes an in-flight
            // mover abort; the mark-aware re-translation replaces a
            // possibly marked pointer from the plain path. pinFor
            // counts the deref_pinned telemetry for this branch.
            entry_ = ConcurrentPin::pinFor(maybe_handle);
            raw_ = static_cast<T *>(translateConcurrent(maybe_handle));
        } else {
            telemetry::countHot(telemetry::Counter::DerefPinned);
        }
    }

    ~pinned() { ConcurrentPin::unpin(entry_); }

    /** Pin an owning box's contents. */
    explicit pinned(const hbox<T> &box) : pinned(box.get()) {}

    /** Pin through a typed view. */
    explicit pinned(href<T> ref) : pinned(ref.get()) {}

    pinned(const pinned &) = delete;
    pinned &operator=(const pinned &) = delete;

    /** The translated raw pointer (stable until the guard drops). */
    T *get() const { return raw_; }
    T &operator*() const { return *raw_; }
    T *operator->() const { return raw_; }
    /** Element access for array objects. */
    T &operator[](size_t i) const { return raw_[i]; }

  private:
    uint64_t slot_ = 0;
    PinFrame frame_;
    HandleTableEntry *entry_ = nullptr;
    T *raw_ = nullptr;
};

} // namespace alaska

#endif // ALASKA_API_ACCESS_H
