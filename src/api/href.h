/**
 * @file
 * alaska::href<T> — a typed, non-owning view of a maybe-handle.
 *
 * The raw surface stores handles in ordinary `T *` variables and does
 * pointer arithmetic directly on them, relying on the paper's §3.2
 * in-bounds assumption: offset arithmetic that carries out of the
 * 32-bit offset field silently corrupts the handle-ID field. href<T>
 * keeps the convenience (it is one `T *` wide, trivially copyable,
 * coexists with raw pointers) but makes the arithmetic *typed* and
 * *field-safe*: element arithmetic on a handle recomposes the value
 * from (id, offset) so the offset wraps within its own 32 bits and the
 * ID field is never touched.
 *
 * An href does not own backing memory (see hbox<T>) and cannot be
 * dereferenced directly — go through alaska::access<T> /
 * alaska::pinned<T> (access.h), which pick the translation idiom from
 * the runtime's active defrag mode.
 */

#ifndef ALASKA_API_HREF_H
#define ALASKA_API_HREF_H

#include <cstddef>
#include <cstdint>

#include "core/handle.h"

namespace alaska
{

/**
 * Typed non-owning handle view with field-safe element arithmetic.
 *
 * Thread-compat: an href is a value; copies are free and carry no
 * lifetime. Validity follows the underlying allocation, not the href.
 */
template <typename T>
class href
{
  public:
    /** The null view. */
    constexpr href() = default;

    /** Wrap a maybe-handle (or raw pointer — both coexist). */
    constexpr explicit href(T *maybe_handle) : value_(maybe_handle) {}

    /** The wrapped maybe-handle value (NOT dereferenceable if tagged). */
    constexpr T *get() const { return value_; }

    /** True iff the view wraps a tagged handle (vs a raw pointer). */
    bool isHandle() const { return alaska::isHandle(value_); }

    /** Handle ID; only meaningful when isHandle(). */
    uint32_t
    id() const
    {
        return handleId(reinterpret_cast<uint64_t>(value_));
    }

    /** Byte offset into the object; only meaningful when isHandle(). */
    uint32_t
    offset() const
    {
        return handleOffset(reinterpret_cast<uint64_t>(value_));
    }

    explicit operator bool() const { return value_ != nullptr; }

    // --- typed, field-safe element arithmetic ---------------------------
    /**
     * Advance by n elements. On a handle the new offset wraps within
     * the 32-bit offset field (mod 4 GiB) and the ID/tag bits are
     * recomposed unchanged; on a raw pointer this is plain arithmetic.
     * Staying in bounds is still the caller's contract (§3.2) — the
     * field safety only guarantees a wrapped offset never silently
     * redirects the view to a *different object*.
     */
    href
    operator+(ptrdiff_t n) const
    {
        return href(advancedBy(n * static_cast<ptrdiff_t>(sizeof(T))));
    }

    /** Retreat by n elements (see operator+ for wrap semantics). */
    href operator-(ptrdiff_t n) const { return *this + (-n); }

    href &
    operator+=(ptrdiff_t n)
    {
        value_ = (*this + n).value_;
        return *this;
    }

    href &
    operator-=(ptrdiff_t n)
    {
        value_ = (*this - n).value_;
        return *this;
    }

    href &
    operator++()
    {
        return *this += 1;
    }

    href &
    operator--()
    {
        return *this -= 1;
    }

    /**
     * Element distance between two views of the *same object* (same
     * handle ID, or both raw). For handles the distance is computed in
     * the offset field alone.
     */
    ptrdiff_t
    operator-(href other) const
    {
        if (isHandle() && other.isHandle()) {
            return (static_cast<ptrdiff_t>(offset()) -
                    static_cast<ptrdiff_t>(other.offset())) /
                   static_cast<ptrdiff_t>(sizeof(T));
        }
        return value_ - other.value_;
    }

    bool operator==(const href &other) const = default;

  private:
    T *
    advancedBy(ptrdiff_t bytes) const
    {
        const uint64_t v = reinterpret_cast<uint64_t>(value_);
        if (!alaska::isHandle(v)) {
            return reinterpret_cast<T *>(
                reinterpret_cast<char *>(value_) + bytes);
        }
        // Recompose: the offset wraps mod 2^32, the ID field is rebuilt
        // from the original value — a carry can never leak into it.
        const uint32_t off = static_cast<uint32_t>(
            handleOffset(v) + static_cast<uint64_t>(bytes));
        return reinterpret_cast<T *>(makeHandle(handleId(v), off));
    }

    T *value_ = nullptr;
};

} // namespace alaska

#endif // ALASKA_API_HREF_H
