#include "anchorage/mechanism.h"

namespace alaska::anchorage
{

const char *
mechanismName(MechanismKind kind)
{
    switch (kind) {
    case MechanismKind::Stw: return "stw";
    case MechanismKind::Campaign: return "campaign";
    case MechanismKind::Mesh: return "mesh";
    case MechanismKind::kCount: break;
    }
    return "unknown";
}

} // namespace alaska::anchorage
