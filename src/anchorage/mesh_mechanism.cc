/**
 * @file
 * MeshMechanism: zero-copy page meshing as a DefragMechanism. One
 * meshPass per run(): sparse pages with disjoint live slots merge
 * onto shared physical frames — RSS recovery with zero object
 * copies, zero handle-table writes, and zero barriers, so pauseSec
 * stays zero and mutators keep the Direct translation discipline.
 */

#include "anchorage/mechanism.h"

#include "telemetry/telemetry.h"

namespace alaska::anchorage
{

namespace
{

class MeshMechanism final : public DefragMechanism
{
  public:
    explicit MeshMechanism(AnchorageService &service)
        : service_(service)
    {
    }

    MechanismKind
    kind() const override
    {
        return MechanismKind::Mesh;
    }

    MechanismReport
    run(const MechanismRequest &request) override
    {
        MechanismReport report;
        report.kind = MechanismKind::Mesh;
        report.stats = service_.meshPass(request.meshProbeBudget,
                                         request.meshMaxOccupancy);
        report.costSec = request.useModeledTime
                             ? report.stats.modeledSec
                             : report.stats.measuredSec;
        report.noProgress = report.stats.pagesMeshed == 0;
        if (report.stats.bytesRecovered > 0)
            telemetry::count(telemetry::Counter::MeshRecoveredBytes,
                             report.stats.bytesRecovered);
        return report;
    }

    bool
    requiresScopedDiscipline() const override
    {
        return false;
    }

  private:
    AnchorageService &service_;
};

} // anonymous namespace

std::unique_ptr<DefragMechanism>
makeMeshMechanism(AnchorageService &service)
{
    return std::make_unique<MeshMechanism>(service);
}

} // namespace alaska::anchorage
