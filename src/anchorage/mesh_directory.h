/**
 * @file
 * Registry of active page meshes (paper §2.3 related work; Powers et
 * al., PLDI 2019).
 *
 * A mesh merges two virtual pages whose live blocks occupy disjoint
 * 16-byte slots onto one physical frame: the *loser* page is remapped
 * (PageModel::alias) onto the *root* page's frame and its own frame is
 * released — RSS drops by a page with zero object copies and no
 * handle-table change. The directory remembers who is meshed onto
 * whom so the runtime can undo a mesh the moment its disjointness
 * argument stops holding:
 *
 *  - split-on-write (noteWrite): an *allocation* landing on a meshed
 *    page may place a new live block in slots the partner page uses,
 *    so the sub-heap alloc paths report every placement here first
 *    and any mesh covering the written range is split — the loser
 *    gets a private frame back (the model of the kernel's
 *    copy-on-write fault). Plain stores to *existing* live blocks
 *    need no hook: meshing only ever merged pages whose live slots
 *    were disjoint, and that set only shrinks until the next
 *    allocation.
 *
 *  - dissolve-on-discard (noteDiscard): a sub-heap trim returning a
 *    page to the kernel would erase the shared frame under the
 *    partner page, so trims report the range first and any mesh with
 *    a member inside it is dissolved.
 *
 * Thread safety: all methods are safe to call concurrently (one
 * internal mutex). The hot no-mesh case — every allocation in every
 * non-meshing configuration — is a single relaxed atomic load.
 * Callers hold their own shard lock when recording meshes; the
 * directory itself never calls back into a sub-heap.
 */

#ifndef ALASKA_ANCHORAGE_MESH_DIRECTORY_H
#define ALASKA_ANCHORAGE_MESH_DIRECTORY_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/page_model.h"

namespace alaska::anchorage
{

/** Tracks loser→root page meshes and splits/dissolves them. */
class MeshDirectory
{
  public:
    explicit MeshDirectory(PageModel &pages) : pages_(pages) {}

    MeshDirectory(const MeshDirectory &) = delete;
    MeshDirectory &operator=(const MeshDirectory &) = delete;

    /**
     * Mesh loser_page onto root_page (both page-aligned): performs the
     * PageModel::alias and records the pair. The caller must have
     * checked disjointness and that loser is unmeshed and root is not
     * a loser (meshable()); a root may accumulate several losers.
     */
    void recordMesh(uint64_t loser_page, uint64_t root_page);

    /**
     * An allocation is about to land on [addr, addr+len): split every
     * mesh with a member page overlapping the range. Losers in the
     * range get private frames back; a root in the range sheds all its
     * losers (the root keeps the frame). @return meshes split.
     */
    size_t noteWrite(uint64_t addr, size_t len);

    /**
     * [addr, addr+len) is about to be discarded (sub-heap trim):
     * dissolve every mesh whose member pages would lose their frame —
     * same fully-contained page rounding as PageModel::discard.
     * @return meshes dissolved.
     */
    size_t noteDiscard(uint64_t addr, size_t len);

    /** True iff page may enter a new mesh as a loser (not already a
     *  member of any mesh). Roots may only gain further losers. */
    bool meshable(uint64_t page_addr) const;

    /** True iff page is meshed away (is a loser). */
    bool meshed(uint64_t page_addr) const;

    /** True iff page is the root of at least one mesh. */
    bool isRoot(uint64_t page_addr) const;

    /** Split every mesh (teardown / tests). Losers become resident. */
    void dissolveAll();

    /** Currently meshed-away (loser) pages. */
    size_t activeMeshes() const
    {
        return active_.load(std::memory_order_acquire);
    }

    /** Cumulative meshes recorded / split by writes / dissolved by
     *  discards. */
    uint64_t meshes() const;
    uint64_t splitFaults() const;
    uint64_t dissolves() const;

  private:
    /** Split one loser under mutex_: unalias + erase both maps. */
    void splitLocked(uint64_t loser_page);

    PageModel &pages_;
    mutable std::mutex mutex_;
    /** loser page addr -> root page addr. */
    std::unordered_map<uint64_t, uint64_t> loserToRoot_;
    /** root page addr -> its loser page addrs. */
    std::unordered_map<uint64_t, std::vector<uint64_t>> rootToLosers_;
    /** Mirrors loserToRoot_.size(); the lock-free empty check. */
    std::atomic<size_t> active_{0};
    uint64_t meshes_ = 0;
    uint64_t splitFaults_ = 0;
    uint64_t dissolves_ = 0;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_MESH_DIRECTORY_H
