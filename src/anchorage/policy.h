/**
 * @file
 * The policy half of the defrag pipeline's mechanism/policy split.
 *
 * A DefragPolicy decides, once per controller tick, which mechanisms
 * run, in what order, with what share of the tick's alpha budget —
 * and reports the outcome as per-mechanism MechanismReports. The
 * legacy DefragMode values survive as constructors of equivalent
 * policies (makePolicy): StopTheWorld is the resumable batched-pass
 * policy, Concurrent/Hybrid/Mesh/MeshHybrid are declarative
 * compositions of stages with gates (run always, run on abort-rate
 * fallback, run when physical fragmentation warrants meshing) instead
 * of hand-coded enum branches.
 *
 * The policy layer also owns the two online controller adaptations
 * (ROADMAP follow-ups to the batched-pass PR): BarrierBudgetAdapter
 * steers batchBytes toward ControlParams::targetBarrierPauseSec from
 * the measured per-barrier pause, and StwPolicy abandons a mid-pass
 * remainder when churn has already pushed fragmentation below F_lb.
 *
 * Policies are deliberately testable without a heap: they see the
 * world only through PolicyView callbacks and their injected
 * DefragMechanisms, so unit tests drive them with stubs
 * (tests/policy_test.cc).
 */

#ifndef ALASKA_ANCHORAGE_POLICY_H
#define ALASKA_ANCHORAGE_POLICY_H

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "anchorage/mechanism.h"

namespace alaska::anchorage
{

struct ControlParams;

/**
 * The slice of heap state a policy may consult. Callbacks, not a
 * service reference, so tests can script the metrics; every callback
 * must be set before the policy runs.
 */
struct PolicyView
{
    /** Paper metric: virtual extent / live bytes. */
    std::function<double()> fragmentation;
    /** RSS / live bytes (what meshing can and must drive). */
    std::function<double()> physicalFragmentation;
    /** Whole-heap extent, bytes (the alpha budget's base). */
    std::function<size_t()> heapExtent;
};

/**
 * What one policy tick did: the per-mechanism reports in execution
 * order plus the scheduling facts the controller needs (pass
 * completion, progress, fallback/abandonment flags).
 */
struct TickResult
{
    /** One report per mechanism invocation, in execution order. */
    std::vector<MechanismReport> reports;
    /** The tick's logical pass reached its end state (a mid-pass
     *  batched barrier leaves this false). */
    bool passDone = true;
    /** The pass completed with nothing left for any mechanism. */
    bool noProgress = false;
    /** An abort-rate fallback stage ran this tick. */
    bool fellBack = false;
    /** A mid-pass remainder was abandoned (no mechanism ran). */
    bool abandoned = false;
};

/**
 * One tick's worth of decisions over a set of owned mechanisms. The
 * controller stays a thin hysteresis loop; everything mode-shaped
 * lives behind this interface.
 */
class DefragPolicy
{
  public:
    virtual ~DefragPolicy() = default;

    /** Stable name for traces and logs. */
    virtual const char *name() const = 0;

    /**
     * The fragmentation metric the hysteresis band watches for this
     * policy (virtual, physical, or the worse of the two — a policy
     * with mesh work must watch RSS, which extent never reflects).
     */
    virtual double controlMetric(const PolicyView &view) const = 0;

    /**
     * Run one tick of defrag work. batchBytesNow is the current
     * per-barrier byte bound (the adaptive value when a pause target
     * is set, else the static ControlParams::batchBytes).
     */
    virtual TickResult runTick(const PolicyView &view,
                               const ControlParams &params,
                               size_t batchBytesNow) = 0;

    /** True if any owned mechanism requires the Scoped discipline. */
    virtual bool requiresScopedDiscipline() const = 0;
};

/**
 * Online batchBytes adaptation toward a per-barrier pause target
 * (ControlParams::targetBarrierPauseSec). Disabled (target == 0): the
 * static legacy bound. Enabled: starts conservatively at the floor,
 * shrinks multiplicatively when a measured barrier overshoots the
 * target (proportional to the overshoot, with margin), and recovers
 * additively — slowly — while barriers run well under it, clamped to
 * [batchBytesFloor, batchBytes].
 */
class BarrierBudgetAdapter
{
  public:
    /**
     * @param targetPauseSec 0 disables adaptation
     * @param floorBytes     smallest adaptive bound (>= 1 enforced)
     * @param capBytes       static batchBytes; the adaptive ceiling
     *                       and, disabled, the returned legacy bound
     *                       (0 = unbatched, SIZE_MAX)
     */
    BarrierBudgetAdapter(double targetPauseSec, size_t floorBytes,
                         size_t capBytes);

    /** The per-barrier byte bound to use for the next barrier. */
    size_t current() const { return current_; }

    /** True when a pause target is set. */
    bool enabled() const { return enabled_; }

    /** Feed one tick's worst measured barrier pause, seconds. */
    void observe(double barrierPauseSec);

  private:
    bool enabled_;
    double target_;
    size_t floor_;
    size_t cap_;
    size_t current_;
};

/** Build the policy equivalent to a legacy DefragMode (see
 *  ControlParams::mode), owning its mechanisms over service. */
std::unique_ptr<DefragPolicy> makePolicy(const ControlParams &params,
                                         AnchorageService &service);

// --- concrete policies (exposed for tests/policy_test.cc) ------------------

/**
 * The StopTheWorld policy: one barrier of a resumable batched pass
 * per tick (the controller's overhead sleep between ticks spreads the
 * pause), with optional mid-pass abandonment when churn has already
 * pushed the metric below F_lb (ControlParams::midPassAbandonFraction).
 */
class StwPolicy final : public DefragPolicy
{
  public:
    explicit StwPolicy(std::unique_ptr<DefragMechanism> stw);

    const char *name() const override { return "stw"; }
    double controlMetric(const PolicyView &view) const override;
    TickResult runTick(const PolicyView &view,
                       const ControlParams &params,
                       size_t batchBytesNow) override;
    bool requiresScopedDiscipline() const override;

  private:
    std::unique_ptr<DefragMechanism> stw_;
};

/**
 * A declarative mechanism composition: stages run in order, each
 * behind a gate, sharing one alpha budget per tick (each byte-budgeted
 * stage gets what the earlier stages left). Concurrent, Hybrid, Mesh
 * and MeshHybrid are all instances of this shape.
 */
class ComposedPolicy final : public DefragPolicy
{
  public:
    /** Which fragmentation metric the hysteresis band watches. */
    enum class Metric
    {
        Virtual,
        Physical,
        WorseOfBoth,
    };

    /** When a stage runs within its tick. */
    enum class Gate
    {
        /** Every tick. */
        Always,
        /**
         * Abort-rate fallback (Hybrid): only when the tick's earlier
         * stages saw at least abortFallbackMinAttempts and aborted
         * more than abortFallbackRate of them, and budget remains.
         */
        AbortFallback,
        /**
         * Mesh pacing (MeshHybrid): only while physical fragmentation
         * exceeds ControlParams::meshPacingFloor (0 = every tick, the
         * legacy behavior).
         */
        MeshPacing,
    };

    /** One stage of the composition. */
    struct Stage
    {
        std::unique_ptr<DefragMechanism> mechanism;
        Gate gate = Gate::Always;
        /** Marks the stage as the abort-rate fallback for accounting
         *  (TickResult::fellBack, the controller's fallbacks()). */
        bool isFallback = false;
    };

    ComposedPolicy(const char *name, Metric metric,
                   std::vector<Stage> stages);

    const char *name() const override { return name_; }
    double controlMetric(const PolicyView &view) const override;
    TickResult runTick(const PolicyView &view,
                       const ControlParams &params,
                       size_t batchBytesNow) override;
    bool requiresScopedDiscipline() const override;

  private:
    const char *name_;
    Metric metric_;
    std::vector<Stage> stages_;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_POLICY_H
