#include "anchorage/mesh_directory.h"

#include <algorithm>

#include "base/logging.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace alaska::anchorage
{

void
MeshDirectory::recordMesh(uint64_t loser_page, uint64_t root_page)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ALASKA_ASSERT(loserToRoot_.count(loser_page) == 0 &&
                      rootToLosers_.count(loser_page) == 0,
                  "mesh of an already-meshed page");
    ALASKA_ASSERT(loserToRoot_.count(root_page) == 0,
                  "mesh onto a loser page");
    pages_.alias(loser_page, root_page);
    loserToRoot_[loser_page] = root_page;
    rootToLosers_[root_page].push_back(loser_page);
    active_.store(loserToRoot_.size(), std::memory_order_release);
    meshes_++;
    telemetry::count(telemetry::Counter::PageMesh);
}

void
MeshDirectory::splitLocked(uint64_t loser_page)
{
    auto it = loserToRoot_.find(loser_page);
    if (it == loserToRoot_.end())
        return;
    const uint64_t root = it->second;
    pages_.unalias(loser_page);
    loserToRoot_.erase(it);
    auto root_it = rootToLosers_.find(root);
    if (root_it != rootToLosers_.end()) {
        auto &losers = root_it->second;
        losers.erase(std::remove(losers.begin(), losers.end(),
                                 loser_page),
                     losers.end());
        if (losers.empty())
            rootToLosers_.erase(root_it);
    }
    active_.store(loserToRoot_.size(), std::memory_order_release);
}

size_t
MeshDirectory::noteWrite(uint64_t addr, size_t len)
{
    if (active_.load(std::memory_order_acquire) == 0 || len == 0)
        return 0;
    const size_t page = pages_.pageSize();
    const uint64_t first = addr / page * page;
    const uint64_t last = (addr + len - 1) / page * page;
    std::lock_guard<std::mutex> guard(mutex_);
    // Collect first: splitting mutates both maps.
    std::vector<uint64_t> to_split;
    for (uint64_t p = first; p <= last; p += page) {
        if (loserToRoot_.count(p) != 0) {
            to_split.push_back(p);
        } else if (auto it = rootToLosers_.find(p);
                   it != rootToLosers_.end()) {
            // A write on the root endangers every loser sharing its
            // frame; the root keeps the frame, the losers split off.
            to_split.insert(to_split.end(), it->second.begin(),
                            it->second.end());
        }
    }
    if (to_split.empty())
        return 0;
    telemetry::TraceSpan split_span("split");
    for (uint64_t loser : to_split) {
        splitLocked(loser);
        splitFaults_++;
        telemetry::count(telemetry::Counter::PageSplit);
    }
    return to_split.size();
}

size_t
MeshDirectory::noteDiscard(uint64_t addr, size_t len)
{
    if (active_.load(std::memory_order_acquire) == 0 ||
        len < pages_.pageSize())
        return 0;
    const size_t page = pages_.pageSize();
    // Same rounding as PageModel::discard: only pages fully contained
    // in the range lose their frame.
    const uint64_t first = (addr + page - 1) / page * page;
    const uint64_t end = (addr + len) / page * page;
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<uint64_t> to_split;
    for (uint64_t p = first; p < end; p += page) {
        if (loserToRoot_.count(p) != 0) {
            to_split.push_back(p);
        } else if (auto it = rootToLosers_.find(p);
                   it != rootToLosers_.end()) {
            to_split.insert(to_split.end(), it->second.begin(),
                            it->second.end());
        }
    }
    for (uint64_t loser : to_split) {
        splitLocked(loser);
        dissolves_++;
        telemetry::count(telemetry::Counter::MeshDissolve);
    }
    return to_split.size();
}

bool
MeshDirectory::meshable(uint64_t page_addr) const
{
    if (active_.load(std::memory_order_acquire) == 0)
        return true;
    std::lock_guard<std::mutex> guard(mutex_);
    return loserToRoot_.count(page_addr) == 0 &&
           rootToLosers_.count(page_addr) == 0;
}

bool
MeshDirectory::meshed(uint64_t page_addr) const
{
    if (active_.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard<std::mutex> guard(mutex_);
    return loserToRoot_.count(page_addr) != 0;
}

bool
MeshDirectory::isRoot(uint64_t page_addr) const
{
    if (active_.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard<std::mutex> guard(mutex_);
    return rootToLosers_.count(page_addr) != 0;
}

void
MeshDirectory::dissolveAll()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto &[loser, root] : loserToRoot_)
        pages_.unalias(loser);
    loserToRoot_.clear();
    rootToLosers_.clear();
    active_.store(0, std::memory_order_release);
}

uint64_t
MeshDirectory::meshes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return meshes_;
}

uint64_t
MeshDirectory::splitFaults() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return splitFaults_;
}

uint64_t
MeshDirectory::dissolves() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return dissolves_;
}

} // namespace alaska::anchorage
