#include "anchorage/sub_heap.h"

#include <algorithm>

#include "anchorage/mesh_directory.h"
#include "base/logging.h"

namespace alaska::anchorage
{

namespace
{

uint64_t
alignUp(uint64_t value, uint64_t alignment)
{
    return (value + alignment - 1) & ~(alignment - 1);
}

} // anonymous namespace

SubHeap::SubHeap(AddressSpace &space, size_t capacity,
                 uint32_t owner_shard)
    : space_(space), capacity_(capacity), ownerShard_(owner_shard)
{
    base_ = space_.map(capacity);
    blocks_.reserve(1024);
}

SubHeap::~SubHeap()
{
    space_.unmap(base_, capacity_);
}

int
SubHeap::classOf(size_t size)
{
    if (size < alignment)
        size = alignment;
    const int cls = 63 - __builtin_clzll(size) - 4; // 16 B -> class 0
    return std::min(cls, numClasses - 1);
}

SubHeapAlloc
SubHeap::alloc(uint32_t id, size_t size)
{
    const SubHeapAlloc reused = allocFromFreeList(id, size);
    if (reused.ok)
        return reused;
    return bumpAlloc(id, alignUp(size, alignment));
}

SubHeapAlloc
SubHeap::allocFromFreeList(uint32_t id, size_t size)
{
    const size_t need = alignUp(size, alignment);
    const int cls = classOf(need);

    // O(1) reuse: only the front of the class list is checked (§4.3).
    pruneClassFront(cls);
    auto &list = freeLists_[cls];
    if (!list.empty()) {
        const uint32_t idx = list.back();
        Block &blk = blocks_[idx];
        // A same-class block can still be smaller than the request
        // (classes span [2^k, 2^(k+1))); the caller bumps in that case.
        if (blk.size >= need) {
            list.pop_back();
            blk.handleId = id;
            freeBytes_ -= blk.size;
            liveBytes_ += blk.size;
            liveCount_++;
            if (meshDir_ != nullptr)
                meshDir_->noteWrite(blk.addr, need);
            space_.touch(blk.addr, need);
            return {true, blk.addr};
        }
    }
    return {false, 0};
}

SubHeapAlloc
SubHeap::bumpAlloc(uint32_t id, size_t need)
{
    if (bump_ + need > capacity_)
        return {false, 0};
    const uint64_t addr = base_ + bump_;
    bump_ += need;
    blocks_.push_back(Block{addr, static_cast<uint32_t>(need), id});
    liveBytes_ += need;
    liveCount_++;
    if (meshDir_ != nullptr)
        meshDir_->noteWrite(addr, need);
    space_.touch(addr, need);
    return {true, addr};
}

void
SubHeap::pruneClassFront(int cls)
{
    auto &list = freeLists_[cls];
    while (!list.empty()) {
        const uint32_t idx = list.back();
        if (idx < blocks_.size() && blocks_[idx].isFree())
            return;
        list.pop_back(); // stale: trimmed away or already reused
    }
}

int
SubHeap::findBlock(uint64_t addr) const
{
    auto it = std::lower_bound(
        blocks_.begin(), blocks_.end(), addr,
        [](const Block &b, uint64_t a) { return b.addr < a; });
    if (it == blocks_.end() || it->addr != addr)
        return -1;
    return static_cast<int>(it - blocks_.begin());
}

void
SubHeap::free(uint64_t addr)
{
    const int idx = findBlock(addr);
    ALASKA_ASSERT(idx >= 0, "free of unknown block at %llx",
                  static_cast<unsigned long long>(addr));
    freeBlockAt(idx);
}

void
SubHeap::freeBlockAt(int index)
{
    Block &blk = blocks_[index];
    ALASKA_ASSERT(!blk.isFree(), "double free of block at %llx",
                  static_cast<unsigned long long>(blk.addr));
    blk.handleId = Block::freeMarker;
    liveBytes_ -= blk.size;
    liveCount_--;
    freeBytes_ += blk.size;
    freeLists_[classOf(blk.size)].push_back(static_cast<uint32_t>(index));
}

void
SubHeap::claimBlock(int index, uint32_t id, size_t size)
{
    Block &blk = blocks_[index];
    ALASKA_ASSERT(blk.isFree(), "claim of live block");
    ALASKA_ASSERT(blk.size >= size, "claimed block too small");
    blk.handleId = id;
    freeBytes_ -= blk.size;
    liveBytes_ += blk.size;
    liveCount_++;
    if (meshDir_ != nullptr)
        meshDir_->noteWrite(blk.addr, size);
    space_.touch(blk.addr, size);
    // The matching free-list entry becomes stale and is pruned lazily.
}

int
SubHeap::lowestFreeBlockBelow(size_t size, uint64_t limit)
{
    const size_t need = alignUp(size, alignment);
    const int cls = classOf(need);
    int best = -1;
    // Full scan of the class list: this runs inside the stop-the-world
    // pause, where thoroughness is worth the time (the mutator-facing
    // alloc path stays O(1)).
    for (uint32_t idx : freeLists_[cls]) {
        if (idx >= blocks_.size())
            continue;
        const Block &blk = blocks_[idx];
        if (!blk.isFree() || blk.size < need || blk.addr >= limit)
            continue;
        if (best < 0 || blk.addr < blocks_[best].addr)
            best = static_cast<int>(idx);
    }
    return best;
}

SubHeap::CompactionIndex
SubHeap::buildCompactionIndex() const
{
    CompactionIndex index;
    for (uint32_t i = 0; i < blocks_.size(); i++) {
        const Block &blk = blocks_[i];
        if (blk.isFree())
            index.sorted[classOf(blk.size)].push_back(i);
    }
    // blocks_ is address-ordered, so each class list already is too.
    return index;
}

int
SubHeap::popLowestFreeBelow(CompactionIndex &index, size_t size,
                            uint64_t limit)
{
    const size_t need = alignUp(size, alignment);
    const int cls = classOf(need);
    auto &list = index.sorted[cls];
    auto &cursor = index.cursor[cls];
    while (cursor < list.size()) {
        const uint32_t idx = list[cursor];
        if (idx >= blocks_.size()) {
            // Snapshot index outlived a trim (a Hybrid-mode barrier ran
            // between a concurrent campaign's moves): the block is gone.
            cursor++;
            continue;
        }
        const Block &blk = blocks_[idx];
        if (!blk.isFree() || blk.size < need) {
            cursor++; // reused meanwhile, or a smaller same-class block
            continue;
        }
        if (blk.addr >= limit)
            return -1; // ascending addresses: nothing below limit left
        cursor++;
        return static_cast<int>(idx);
    }
    return -1;
}

size_t
SubHeap::coalesceHoles()
{
    // blocks_ is address-ordered and tiles the extent with no gaps
    // (bump allocation appends back-to-back), so vector-adjacent free
    // blocks are address-adjacent: one compaction sweep merges every
    // run of holes in place.
    size_t merged = 0;
    size_t w = 0;
    for (size_t r = 0; r < blocks_.size();) {
        if (blocks_[r].isFree()) {
            Block run = blocks_[r];
            size_t r2 = r + 1;
            while (r2 < blocks_.size() && blocks_[r2].isFree()) {
                run.size += blocks_[r2].size;
                r2++;
            }
            merged += (r2 - r) - 1;
            blocks_[w++] = run;
            r = r2;
        } else {
            blocks_[w++] = blocks_[r++];
        }
    }
    if (merged == 0)
        return 0;
    blocks_.resize(w);
    // Every index changed: rebuild the free lists from scratch. The
    // reverse walk makes each class's back() (the O(1) reuse slot) the
    // lowest-addressed hole, which is also where defrag wants mutator
    // reuse to land.
    for (auto &list : freeLists_)
        list.clear();
    for (size_t i = blocks_.size(); i-- > 0;) {
        if (blocks_[i].isFree()) {
            freeLists_[classOf(blocks_[i].size)].push_back(
                static_cast<uint32_t>(i));
        }
    }
    return merged;
}

size_t
SubHeap::trimTop()
{
    const size_t old_bump = bump_;
    while (!blocks_.empty() && blocks_.back().isFree()) {
        const Block &blk = blocks_.back();
        freeBytes_ -= blk.size;
        bump_ = blk.addr - base_;
        blocks_.pop_back();
        // The free-list entries for popped indices go stale and are
        // pruned lazily on their next pop.
    }
    if (bump_ < old_bump) {
        // Return the reclaimed tail to the kernel (MADV_DONTNEED).
        // Dissolve any mesh sharing a frame with the tail first, or
        // the discard would pull the frame out from under the partner
        // page.
        if (meshDir_ != nullptr)
            meshDir_->noteDiscard(base_ + bump_, old_bump - bump_);
        space_.discard(base_ + bump_, old_bump - bump_);
        return old_bump - bump_;
    }
    return 0;
}

} // namespace alaska::anchorage
