/**
 * @file
 * Presents a full Alaska runtime + Anchorage service + controller as an
 * AllocModel, so the fragmentation harnesses (Figures 9, 10, 11) can
 * drive all four memory managers — glibc model, jemalloc+activedefrag,
 * Mesh, and Anchorage — through one interface. Allocation goes through
 * real halloc/hfree (real handle table, real barriers); the controller
 * runs off the harness's clock via maintain().
 */

#ifndef ALASKA_ANCHORAGE_ALLOC_MODEL_ADAPTER_H
#define ALASKA_ANCHORAGE_ALLOC_MODEL_ADAPTER_H

#include <cstdint>
#include <memory>

#include "alloc_sim/alloc_model.h"
#include "anchorage/anchorage_service.h"
#include "anchorage/control.h"
#include "core/runtime.h"
#include "sim/address_space.h"
#include "sim/clock.h"

namespace alaska::anchorage
{

/** Anchorage behind the AllocModel interface. */
class AnchorageAllocModel : public AllocModel
{
  public:
    /**
     * @param space real or phantom backing
     * @param clock drives the controller (virtual in harnesses)
     * @param control controller parameters (Figure 10 sweeps these)
     * @param config service tuning
     */
    AnchorageAllocModel(AddressSpace &space, const Clock &clock,
                        ControlParams control = {},
                        AnchorageConfig config = {})
        : service_(space, config),
          runtime_(std::make_unique<Runtime>(
              RuntimeConfig{.tableCapacity = 1u << 26})),
          controller_(service_, clock, control)
    {
        runtime_->attachService(&service_);
        // Register the driving thread so halloc/hfree (including the
        // defrag-driven reallocation behind maintain()) run on the
        // magazine fast path instead of the shared free-list shards.
        registration_ = std::make_unique<ThreadRegistration>(*runtime_);
    }

    ~AnchorageAllocModel() override
    {
        registration_.reset();
        runtime_.reset();
    }

    uint64_t
    alloc(size_t size) override
    {
        return reinterpret_cast<uint64_t>(runtime_->halloc(size));
    }

    void
    free(uint64_t token) override
    {
        runtime_->hfree(reinterpret_cast<void *>(token));
    }

    size_t rss() const override { return service_.rss(); }
    size_t activeBytes() const override { return service_.activeBytes(); }
    const char *name() const override { return "anchorage"; }

    /** Give the controller a chance to act (clock-driven). */
    void maintain() override { lastAction_ = controller_.tick(); }

    DefragController &controller() { return controller_; }
    AnchorageService &service() { return service_; }
    Runtime &runtime() { return *runtime_; }
    /** The most recent controller action (pause accounting). */
    const ControlAction &lastAction() const { return lastAction_; }

  private:
    AnchorageService service_;
    std::unique_ptr<Runtime> runtime_;
    std::unique_ptr<ThreadRegistration> registration_;
    DefragController controller_;
    ControlAction lastAction_;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_ALLOC_MODEL_ADAPTER_H
