#include "anchorage/policy.h"

#include <algorithm>

#include "anchorage/control.h"
#include "telemetry/trace.h"

namespace alaska::anchorage
{

namespace
{

/** The tick's alpha budget: alpha × whole-heap extent, min 1 byte.
 *  Computed lazily by callers — heapExtent sweeps every shard lock. */
size_t
passBudget(const PolicyView &view, const ControlParams &params)
{
    const auto budget = static_cast<size_t>(
        params.alpha * static_cast<double>(view.heapExtent()));
    return budget > 0 ? budget : size_t{1};
}

/** Per-shard fairness cap for a stop-the-world budget (SIZE_MAX =
 *  uncapped, the default when shardBudgetFraction >= 1). */
size_t
shardCapFor(size_t total, const ControlParams &params)
{
    if (params.shardBudgetFraction >= 1.0)
        return SIZE_MAX;
    const auto cap = static_cast<size_t>(
        params.shardBudgetFraction * static_cast<double>(total));
    return cap > 0 ? cap : size_t{1};
}

} // anonymous namespace

// --- BarrierBudgetAdapter ---------------------------------------------------

BarrierBudgetAdapter::BarrierBudgetAdapter(double targetPauseSec,
                                           size_t floorBytes,
                                           size_t capBytes)
    : enabled_(targetPauseSec > 0), target_(targetPauseSec),
      floor_(floorBytes > 0 ? floorBytes : 1),
      cap_(capBytes > 0 ? capBytes : SIZE_MAX)
{
    if (floor_ > cap_)
        floor_ = cap_;
    // Enabled: start at the floor and earn headroom (a conservative
    // first barrier can only undershoot the target). Disabled: the
    // static legacy bound (0 = unbatched).
    current_ = enabled_ ? floor_ : cap_;
}

void
BarrierBudgetAdapter::observe(double barrierPauseSec)
{
    if (!enabled_ || barrierPauseSec <= 0)
        return;
    if (barrierPauseSec > target_) {
        // Multiplicative decrease, proportional to the overshoot and
        // with a margin, so one observation lands the next barrier
        // near (under) the target instead of creeping toward it.
        auto next = static_cast<size_t>(
            static_cast<double>(current_) *
            (target_ / barrierPauseSec) * 0.9);
        if (next >= current_ && current_ > floor_)
            next = current_ - 1;
        current_ = std::max(next, floor_);
    } else if (barrierPauseSec < target_ * 0.5 && current_ < cap_) {
        // Slow additive recovery while barriers run well under the
        // target, so a transient bandwidth dip does not pin the batch
        // at the floor forever.
        const size_t step = cap_ == SIZE_MAX ? current_ / 8 + 1
                                             : cap_ / 32 + 1;
        current_ = cap_ - current_ < step ? cap_ : current_ + step;
    }
}

// --- StwPolicy --------------------------------------------------------------

StwPolicy::StwPolicy(std::unique_ptr<DefragMechanism> stw)
    : stw_(std::move(stw))
{
}

double
StwPolicy::controlMetric(const PolicyView &view) const
{
    return view.fragmentation();
}

bool
StwPolicy::requiresScopedDiscipline() const
{
    return stw_->requiresScopedDiscipline();
}

TickResult
StwPolicy::runTick(const PolicyView &view, const ControlParams &params,
                   size_t batchBytesNow)
{
    telemetry::TraceSpan span("policy_decision");
    TickResult result;

    // Mid-pass abandonment (ROADMAP follow-up): churn between
    // barriers may already have pushed the metric below F_lb — the
    // remainder would pause mutators to chase a goal already met.
    const bool mid = stw_->midPass();
    if (mid && params.midPassAbandonFraction > 0 &&
        controlMetric(view) <
            params.fLb * params.midPassAbandonFraction) {
        stw_->abandon();
        result.abandoned = true;
        return result;
    }

    MechanismRequest request;
    request.batchBytes = batchBytesNow;
    request.useModeledTime = params.useModeledTime;
    if (!mid) {
        // A fresh pass: compute the alpha budget now (a mid-pass tick
        // resumes the in-progress pass's own budget and must not pay
        // the all-shard extent sweep).
        request.budgetBytes = passBudget(view, params);
        request.shardCapBytes =
            shardCapFor(request.budgetBytes, params);
    }
    MechanismReport report = stw_->run(request);
    result.passDone = report.ranToCompletion;
    result.noProgress = report.noProgress;
    result.reports.push_back(std::move(report));
    return result;
}

// --- ComposedPolicy ---------------------------------------------------------

ComposedPolicy::ComposedPolicy(const char *name, Metric metric,
                               std::vector<Stage> stages)
    : name_(name), metric_(metric), stages_(std::move(stages))
{
}

double
ComposedPolicy::controlMetric(const PolicyView &view) const
{
    switch (metric_) {
    case Metric::Virtual:
        return view.fragmentation();
    case Metric::Physical:
        return view.physicalFragmentation();
    case Metric::WorseOfBoth:
        return std::max(view.fragmentation(),
                        view.physicalFragmentation());
    }
    return view.fragmentation();
}

bool
ComposedPolicy::requiresScopedDiscipline() const
{
    for (const Stage &stage : stages_)
        if (stage.mechanism->requiresScopedDiscipline())
            return true;
    return false;
}

TickResult
ComposedPolicy::runTick(const PolicyView &view,
                        const ControlParams &params,
                        size_t batchBytesNow)
{
    telemetry::TraceSpan span("policy_decision");
    TickResult result;

    // One alpha budget per composed tick: every byte-budgeted stage
    // gets what the earlier stages left (Hybrid's fallback moves only
    // the remainder — the double-spend bug class the old enum
    // branches had). Folded stats exist only to evaluate gates.
    DefragStats so_far;
    size_t budget = 0;
    bool budget_computed = false;

    for (Stage &stage : stages_) {
        bool runs = false;
        switch (stage.gate) {
        case Gate::Always:
            runs = true;
            break;
        case Gate::AbortFallback:
            runs = so_far.attempts >= params.abortFallbackMinAttempts &&
                   so_far.abortRate() > params.abortFallbackRate;
            break;
        case Gate::MeshPacing:
            runs = params.meshPacingFloor <= 0 ||
                   view.physicalFragmentation() >
                       params.meshPacingFloor;
            break;
        }
        if (!runs)
            continue;

        MechanismRequest request;
        request.useModeledTime = params.useModeledTime;
        request.batchBytes = batchBytesNow;
        request.meshProbeBudget = params.meshProbeBudget;
        request.meshMaxOccupancy = params.meshMaxOccupancy;
        if (stage.mechanism->kind() != MechanismKind::Mesh) {
            if (!budget_computed) {
                budget = passBudget(view, params);
                budget_computed = true;
            }
            const size_t moved = so_far.movedBytes;
            const size_t remainder =
                budget > moved ? budget - moved : 0;
            if (remainder == 0)
                continue; // budget exhausted by earlier stages
            request.budgetBytes = remainder;
            request.shardCapBytes = shardCapFor(remainder, params);
            request.runToCompletion =
                stage.mechanism->kind() == MechanismKind::Stw;
        }

        MechanismReport report = stage.mechanism->run(request);
        so_far.accumulate(report.stats);
        if (stage.isFallback)
            result.fellBack = true;
        result.reports.push_back(std::move(report));
    }

    result.noProgress = so_far.movedBytes == 0 &&
                        so_far.reclaimedBytes == 0 &&
                        so_far.pagesMeshed == 0;
    return result;
}

// --- legacy DefragMode constructors -----------------------------------------

std::unique_ptr<DefragPolicy>
makePolicy(const ControlParams &params, AnchorageService &service)
{
    using Metric = ComposedPolicy::Metric;
    using Gate = ComposedPolicy::Gate;
    auto stage = [](std::unique_ptr<DefragMechanism> mech, Gate gate,
                    bool fallback = false) {
        ComposedPolicy::Stage s;
        s.mechanism = std::move(mech);
        s.gate = gate;
        s.isFallback = fallback;
        return s;
    };

    switch (params.mode) {
    case DefragMode::StopTheWorld:
        return std::make_unique<StwPolicy>(makeStwMechanism(service));
    case DefragMode::Concurrent: {
        std::vector<ComposedPolicy::Stage> stages;
        stages.push_back(
            stage(makeCampaignMechanism(service), Gate::Always));
        return std::make_unique<ComposedPolicy>(
            "concurrent", Metric::Virtual, std::move(stages));
    }
    case DefragMode::Hybrid: {
        std::vector<ComposedPolicy::Stage> stages;
        stages.push_back(
            stage(makeCampaignMechanism(service), Gate::Always));
        stages.push_back(stage(makeStwMechanism(service),
                               Gate::AbortFallback,
                               /*fallback=*/true));
        return std::make_unique<ComposedPolicy>(
            "hybrid", Metric::Virtual, std::move(stages));
    }
    case DefragMode::Mesh: {
        std::vector<ComposedPolicy::Stage> stages;
        stages.push_back(
            stage(makeMeshMechanism(service), Gate::Always));
        return std::make_unique<ComposedPolicy>(
            "mesh", Metric::Physical, std::move(stages));
    }
    case DefragMode::MeshHybrid: {
        std::vector<ComposedPolicy::Stage> stages;
        stages.push_back(
            stage(makeMeshMechanism(service), Gate::MeshPacing));
        stages.push_back(
            stage(makeCampaignMechanism(service), Gate::Always));
        return std::make_unique<ComposedPolicy>(
            "mesh_hybrid", Metric::WorseOfBoth, std::move(stages));
    }
    }
    return std::make_unique<StwPolicy>(makeStwMechanism(service));
}

} // namespace alaska::anchorage
