#include "anchorage/anchorage_service.h"

#include <algorithm>

#include "base/logging.h"
#include "base/timer.h"

namespace alaska::anchorage
{

AnchorageService::AnchorageService(AddressSpace &space,
                                   AnchorageConfig config)
    : space_(space), config_(config)
{
}

AnchorageService::~AnchorageService() = default;

void
AnchorageService::init(Runtime &runtime)
{
    runtime_ = &runtime;
}

void
AnchorageService::deinit()
{
    runtime_ = nullptr;
}

SubHeap *
AnchorageService::heapOf(uint64_t addr)
{
    for (auto &heap : heaps_) {
        if (heap->contains(addr))
            return heap.get();
    }
    return nullptr;
}

const SubHeap *
AnchorageService::heapOf(uint64_t addr) const
{
    for (const auto &heap : heaps_) {
        if (heap->contains(addr))
            return heap.get();
    }
    return nullptr;
}

void *
AnchorageService::alloc(uint32_t id, size_t size)
{
    std::lock_guard<std::mutex> guard(mutex_);

    // Oversized objects get a dedicated sub-heap.
    const size_t heap_bytes = std::max(config_.subHeapBytes, size);

    if (!heaps_.empty()) {
        auto r = heaps_[cursor_]->alloc(id, size);
        if (r.ok)
            return reinterpret_cast<void *>(r.addr);
        // Current sub-heap exhausted; try the others.
        for (size_t i = 0; i < heaps_.size(); i++) {
            if (i == cursor_)
                continue;
            r = heaps_[i]->alloc(id, size);
            if (r.ok) {
                cursor_ = i;
                return reinterpret_cast<void *>(r.addr);
            }
        }
    }

    heaps_.push_back(std::make_unique<SubHeap>(space_, heap_bytes));
    cursor_ = heaps_.size() - 1;
    auto r = heaps_[cursor_]->alloc(id, size);
    ALASKA_ASSERT(r.ok, "fresh sub-heap cannot satisfy %zu bytes", size);
    return reinterpret_cast<void *>(r.addr);
}

void
AnchorageService::free(uint32_t id, void *ptr)
{
    (void)id;
    std::lock_guard<std::mutex> guard(mutex_);
    SubHeap *heap = heapOf(reinterpret_cast<uint64_t>(ptr));
    ALASKA_ASSERT(heap != nullptr, "free of pointer outside the heap");
    heap->free(reinterpret_cast<uint64_t>(ptr));
}

size_t
AnchorageService::usableSize(const void *ptr) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    const SubHeap *heap = heapOf(reinterpret_cast<uint64_t>(ptr));
    if (!heap)
        return 0;
    const int idx = heap->findBlock(reinterpret_cast<uint64_t>(ptr));
    return idx < 0 ? 0 : heap->blocks()[idx].size;
}

size_t
AnchorageService::heapExtent() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t total = 0;
    for (const auto &heap : heaps_)
        total += heap->extent();
    return total;
}

size_t
AnchorageService::activeBytes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t total = 0;
    for (const auto &heap : heaps_)
        total += heap->liveBytes();
    return total;
}

double
AnchorageService::fragmentation() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t extent = 0, active = 0;
    for (const auto &heap : heaps_) {
        extent += heap->extent();
        active += heap->liveBytes();
    }
    return active == 0 ? 1.0
                       : static_cast<double>(extent) /
                             static_cast<double>(active);
}

size_t
AnchorageService::subHeapCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return heaps_.size();
}

SubHeapAlloc
AnchorageService::destAlloc(uint32_t id, size_t size, uint64_t src_addr,
                            SubHeap *src_heap,
                            SubHeap::CompactionIndex &index)
{
    // First choice: a hole strictly below the object in its own heap
    // (classic compaction).
    const int idx = src_heap->popLowestFreeBelow(index, size, src_addr);
    if (idx >= 0) {
        src_heap->claimBlock(idx, id, size);
        return {true, src_heap->blocks()[idx].addr};
    }
    // Second choice: a denser sub-heap (ranked by the caller). Handled
    // in movePass via explicit candidate list; this overload only does
    // the same-heap case.
    return {false, 0};
}

DefragStats
AnchorageService::defrag(size_t max_bytes)
{
    ALASKA_ASSERT(runtime_ != nullptr, "service not attached");
    DefragStats stats;
    runtime_->barrier([&](const PinnedSet &pinned) {
        stats = movePass(pinned, max_bytes);
    });
    return stats;
}

DefragStats
AnchorageService::defragFully()
{
    DefragStats total;
    for (;;) {
        const DefragStats pass = defrag(SIZE_MAX);
        total.movedObjects += pass.movedObjects;
        total.movedBytes += pass.movedBytes;
        total.reclaimedBytes += pass.reclaimedBytes;
        total.pinnedSkips += pass.pinnedSkips;
        total.measuredSec += pass.measuredSec;
        total.modeledSec += pass.modeledSec;
        if (pass.movedBytes == 0 && pass.reclaimedBytes == 0)
            break;
    }
    return total;
}

DefragStats
AnchorageService::movePass(const PinnedSet &pinned, size_t max_bytes)
{
    Stopwatch watch;
    DefragStats stats;
    std::lock_guard<std::mutex> guard(mutex_);

    // Rank sub-heaps emptiest-first: cheap-to-empty heaps are sources;
    // denser heaps (later ranks) are destinations.
    std::vector<size_t> order(heaps_.size());
    for (size_t i = 0; i < order.size(); i++)
        order[i] = i;
    auto occupancy = [&](size_t i) {
        const SubHeap &h = *heaps_[i];
        return h.extent() == 0 ? 1.0
                               : static_cast<double>(h.liveBytes()) /
                                     static_cast<double>(h.extent());
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return occupancy(a) < occupancy(b);
                     });

    size_t budget = max_bytes;
    for (size_t rank = 0; rank < order.size() && budget > 0; rank++) {
        SubHeap &src = *heaps_[order[rank]];
        auto &blocks = src.blocks();
        SubHeap::CompactionIndex index = src.buildCompactionIndex();
        // Walk from the top of the sub-heap downward (§4.3).
        for (int i = static_cast<int>(blocks.size()) - 1;
             i >= 0 && budget > 0; i--) {
            if (blocks[i].isFree())
                continue;
            const Block blk = blocks[i];
            if (pinned.contains(blk.handleId)) {
                stats.pinnedSkips++;
                continue;
            }

            SubHeapAlloc dest = destAlloc(blk.handleId, blk.size,
                                          blk.addr, &src, index);
            if (!dest.ok) {
                // Try denser sub-heaps, densest last in the ranking.
                for (size_t r2 = order.size(); r2-- > rank + 1;) {
                    dest = heaps_[order[r2]]->alloc(blk.handleId,
                                                    blk.size);
                    if (dest.ok)
                        break;
                }
            }
            if (!dest.ok)
                continue;

            // Move: copy bytes, then a single HTE store republishes the
            // object at its new address for every alias.
            space_.copy(dest.addr, blk.addr, blk.size);
            runtime_->table().entry(blk.handleId)
                .ptr.store(reinterpret_cast<void *>(dest.addr),
                           std::memory_order_release);
            src.freeBlockAt(i);
            stats.movedObjects++;
            stats.movedBytes += blk.size;
            budget -= std::min<size_t>(budget, blk.size);
        }
        stats.reclaimedBytes += src.trimTop();
    }

    // Give every sub-heap's trailing pages back to the kernel.
    for (auto &heap : heaps_)
        stats.reclaimedBytes += heap->trimTop();

    stats.measuredSec = watch.elapsedSec();
    stats.modeledSec =
        config_.modelPauseFloor +
        static_cast<double>(stats.movedBytes) / config_.modelBandwidth;
    return stats;
}

} // namespace alaska::anchorage
