#include "anchorage/anchorage_service.h"

#include <algorithm>
#include <unordered_map>

#include "base/logging.h"
#include "base/timer.h"
#include "core/translate.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace alaska::anchorage
{

namespace
{

/** Live fraction of a sub-heap's extent; 1.0 when empty (never a source). */
double
occupancyOf(const SubHeap &heap)
{
    return heap.extent() == 0
               ? 1.0
               : static_cast<double>(heap.liveBytes()) /
                     static_cast<double>(heap.extent());
}

size_t
roundUpPow2(size_t v)
{
    size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // anonymous namespace

AnchorageService::AnchorageService(AddressSpace &space,
                                   AnchorageConfig config)
    : space_(space), config_(config), meshDir_(space.pages()),
      meshRng_(config.meshSeed)
{
    config_.shards =
        roundUpPow2(std::clamp<size_t>(config_.shards, 1, 256));
    shards_.reserve(config_.shards);
    for (size_t i = 0; i < config_.shards; i++)
        shards_.push_back(std::make_unique<Shard>());
}

AnchorageService::~AnchorageService()
{
    // Restore identity mappings before the sub-heaps unmap their
    // regions, so the page model never holds aliases into dead ranges.
    meshDir_.dissolveAll();
}

void
AnchorageService::init(Runtime &runtime)
{
    runtime_ = &runtime;
}

void
AnchorageService::deinit()
{
    runtime_ = nullptr;
}

size_t
AnchorageService::homeShardIndex() const
{
    return HandleTable::threadOrdinal() & (shards_.size() - 1);
}

const AnchorageService::HeapRegion *
AnchorageService::regionOf(uint64_t addr) const
{
    const auto *snapshot = regions_.load(std::memory_order_acquire);
    if (snapshot == nullptr)
        return nullptr;
    auto it = std::upper_bound(
        snapshot->begin(), snapshot->end(), addr,
        [](uint64_t a, const HeapRegion &r) { return a < r.base; });
    if (it == snapshot->begin())
        return nullptr;
    --it;
    return addr < it->end ? &*it : nullptr;
}

SubHeap *
AnchorageService::addSubHeapLocked(Shard &sh, uint32_t shard_idx,
                                   size_t bytes)
{
    sh.heaps.push_back(
        std::make_unique<SubHeap>(space_, bytes, shard_idx));
    sh.orderDirty = true;
    SubHeap *heap = sh.heaps.back().get();
    heap->setMeshDirectory(&meshDir_);

    std::lock_guard<std::mutex> guard(regionsMutex_);
    const auto *current = regions_.load(std::memory_order_relaxed);
    auto next = current
                    ? std::make_unique<std::vector<HeapRegion>>(*current)
                    : std::make_unique<std::vector<HeapRegion>>();
    const HeapRegion region{heap->base(), heap->base() + heap->capacity(),
                            shard_idx, heap};
    next->insert(std::upper_bound(next->begin(), next->end(),
                                  region.base,
                                  [](uint64_t a, const HeapRegion &r) {
                                      return a < r.base;
                                  }),
                 region);
    regions_.store(next.get(), std::memory_order_release);
    ownedRegionMaps_.push_back(std::move(next));
    return heap;
}

void
AnchorageService::invalidatePlacementLocked(Shard &sh)
{
    sh.fallbackHint = SIZE_MAX;
    sh.orderDirty = true;
}

void
AnchorageService::rebuildDensityOrderLocked(Shard &sh)
{
    sh.densityOrder.resize(sh.heaps.size());
    for (size_t i = 0; i < sh.densityOrder.size(); i++)
        sh.densityOrder[i] = i;
    // occupancyOf() reports 1.0 for empty heaps (a source-selection
    // convention); as destinations they must rank last, or a bump
    // would resurrect the extent a defrag pass just trimmed to zero.
    auto dest_density = [&](size_t i) {
        return sh.heaps[i]->extent() == 0 ? -1.0
                                          : occupancyOf(*sh.heaps[i]);
    };
    std::stable_sort(sh.densityOrder.begin(), sh.densityOrder.end(),
                     [&](size_t a, size_t b) {
                         return dest_density(a) > dest_density(b);
                     });
    sh.orderDirty = false;
}

void *
AnchorageService::alloc(uint32_t id, size_t size)
{
    const size_t shard_idx = homeShardIndex();
    Shard &sh = *shards_[shard_idx];
    std::lock_guard<std::mutex> guard(sh.mutex);

    // Oversized objects get a dedicated sub-heap.
    const size_t heap_bytes = std::max(config_.subHeapBytes, size);

    // Telemetry: probes counts sub-heaps tried beyond the cursor; the
    // alloc_miss_depth histogram only sees the miss path, keeping the
    // cursor-hit fast path clean.
    size_t probes = 0;
    if (!sh.heaps.empty()) {
        auto r = sh.heaps[sh.cursor]->alloc(id, size);
        if (r.ok)
            return reinterpret_cast<void *>(r.addr);
        // Cursor miss. Holes-anywhere must come before bumping anything
        // (a bump while suitable holes exist regrows the extent defrag
        // just fought to trim), and fallback placement is densest-first
        // so the cursor never re-parks on the sparsest heap — exactly
        // the one a relocation campaign may be evacuating. The hint
        // remembers the last chain index that satisfied a miss so the
        // steady-state miss costs one hole probe, not a chain scan; the
        // density order is cached and re-sorted only after events that
        // reshuffle densities wholesale (defrag, trim, chain growth).
        if (sh.fallbackHint < sh.heaps.size() &&
            sh.fallbackHint != sh.cursor) {
            probes++;
            r = sh.heaps[sh.fallbackHint]->allocFromFreeList(id, size);
            if (r.ok) {
                sh.cursor = sh.fallbackHint;
                telemetry::record(telemetry::Hist::AllocMissDepth, probes);
                return reinterpret_cast<void *>(r.addr);
            }
        }
        if (sh.orderDirty)
            rebuildDensityOrderLocked(sh);
        for (size_t i : sh.densityOrder) {
            if (i == sh.cursor)
                continue;
            probes++;
            r = sh.heaps[i]->allocFromFreeList(id, size);
            if (r.ok) {
                sh.cursor = i;
                sh.fallbackHint = i;
                telemetry::record(telemetry::Hist::AllocMissDepth, probes);
                return reinterpret_cast<void *>(r.addr);
            }
        }
        // Holes-anywhere before bumping: the home chain has no
        // reusable hole left, but another shard may (a store that
        // emptied, a thread that went idle). Reusing those keeps the
        // global extent from growing — the single-chain design got
        // this for free, and losing it makes every shard's bump slack
        // permanent until defrag. try_lock keeps the probe
        // deadlock-free (two shards can probe each other) and skips
        // shards that are busy allocating (their holes are being
        // reused locally anyway). Only dense heaps are stolen from:
        // a sparse heap is exactly what a relocation campaign drains,
        // and its LIFO free list would hand a just-evacuated block
        // right back, undoing the compaction as fast as it happens —
        // while filling a dense heap's hole is the same placement the
        // campaign itself prefers.
        for (size_t step = 1; step < shards_.size(); step++) {
            const size_t other_idx =
                (shard_idx + step) & (shards_.size() - 1);
            Shard &other = *shards_[other_idx];
            std::unique_lock<std::mutex> other_guard(other.mutex,
                                                     std::try_to_lock);
            if (!other_guard.owns_lock())
                continue;
            for (auto &heap : other.heaps) {
                if (heap->liveBytes() * 2 < heap->extent())
                    continue; // sparse: a campaign's source, not ours
                probes++;
                r = heap->allocFromFreeList(id, size);
                if (r.ok) {
                    telemetry::count(telemetry::Counter::ShardHoleSteal);
                    telemetry::traceInstant("shard_steal");
                    telemetry::record(telemetry::Hist::AllocMissDepth,
                                      probes);
                    return reinterpret_cast<void *>(r.addr);
                }
            }
        }
        for (size_t i : sh.densityOrder) {
            if (i == sh.cursor)
                continue;
            probes++;
            r = sh.heaps[i]->alloc(id, size);
            if (r.ok) {
                sh.cursor = i;
                sh.fallbackHint = i;
                telemetry::record(telemetry::Hist::AllocMissDepth, probes);
                return reinterpret_cast<void *>(r.addr);
            }
        }
    }

    SubHeap *fresh = addSubHeapLocked(
        sh, static_cast<uint32_t>(shard_idx), heap_bytes);
    sh.cursor = sh.heaps.size() - 1;
    auto r = fresh->alloc(id, size);
    ALASKA_ASSERT(r.ok, "fresh sub-heap cannot satisfy %zu bytes", size);
    if (probes > 0)
        telemetry::record(telemetry::Hist::AllocMissDepth, probes + 1);
    return reinterpret_cast<void *>(r.addr);
}

void
AnchorageService::free(uint32_t id, void *ptr)
{
    (void)id;
    const HeapRegion *region = regionOf(reinterpret_cast<uint64_t>(ptr));
    ALASKA_ASSERT(region != nullptr, "free of pointer outside the heap");
    if (region->shard != homeShardIndex())
        telemetry::count(telemetry::Counter::CrossShardFree);
    Shard &sh = *shards_[region->shard];
    std::lock_guard<std::mutex> guard(sh.mutex);
    region->heap->free(reinterpret_cast<uint64_t>(ptr));
}

size_t
AnchorageService::usableSize(const void *ptr) const
{
    const HeapRegion *region = regionOf(reinterpret_cast<uint64_t>(ptr));
    if (!region)
        return 0;
    Shard &sh = *shards_[region->shard];
    std::lock_guard<std::mutex> guard(sh.mutex);
    const int idx =
        region->heap->findBlock(reinterpret_cast<uint64_t>(ptr));
    return idx < 0 ? 0 : region->heap->blocks()[idx].size;
}

size_t
AnchorageService::heapExtent() const
{
    size_t total = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> guard(sh->mutex);
        for (const auto &heap : sh->heaps)
            total += heap->extent();
    }
    return total;
}

size_t
AnchorageService::activeBytes() const
{
    size_t total = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> guard(sh->mutex);
        for (const auto &heap : sh->heaps)
            total += heap->liveBytes();
    }
    return total;
}

double
AnchorageService::fragmentation() const
{
    size_t extent = 0, active = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> guard(sh->mutex);
        for (const auto &heap : sh->heaps) {
            extent += heap->extent();
            active += heap->liveBytes();
        }
    }
    return active == 0 ? 1.0
                       : static_cast<double>(extent) /
                             static_cast<double>(active);
}

double
AnchorageService::physicalFragmentation() const
{
    const size_t active = activeBytes();
    return active == 0 ? 1.0
                       : static_cast<double>(rss()) /
                             static_cast<double>(active);
}

DefragStats
AnchorageService::meshPass(size_t probe_budget, double max_occupancy)
{
    DefragStats stats;
    telemetry::TraceSpan mesh_span("mesh");
    Stopwatch watch;
    PageModel &pages = space_.pages();
    const uint64_t page = pages.pageSize();
    const size_t slots = page / SubHeap::alignment;
    const size_t words = (slots + 63) / 64;
    const auto max_live =
        static_cast<uint32_t>(max_occupancy * static_cast<double>(slots));
    uint64_t probes = 0;

    /* A meshing candidate: one heap page and its live-slot bitmap. */
    struct PageBits
    {
        uint64_t addr = 0;
        uint32_t liveSlots = 0;
        bool isRoot = false; ///< gained a loser this pass; union bitmap
        std::vector<uint64_t> bits;
    };

    for (size_t shard_idx = 0; shard_idx < shards_.size(); shard_idx++) {
        Shard &sh = *shards_[shard_idx];
        std::lock_guard<std::mutex> guard(sh.mutex);

        // Build the per-page occupancy bitmaps from the (address-
        // ordered, out-of-band) block metadata. Holding the shard lock
        // freezes this shard's layout: no allocation can land on a
        // page while we argue about its slots.
        std::vector<PageBits> cands;
        std::unordered_map<uint64_t, size_t> byAddr;
        auto bitsOf = [&](uint64_t page_addr) -> PageBits & {
            auto [it, fresh] = byAddr.try_emplace(page_addr, cands.size());
            if (fresh) {
                cands.emplace_back();
                cands.back().addr = page_addr;
                cands.back().bits.assign(words, 0);
            }
            return cands[it->second];
        };
        for (const auto &heap_ptr : sh.heaps) {
            const SubHeap &heap = *heap_ptr;
            for (const Block &blk : heap.blocks()) {
                if (blk.isFree())
                    continue;
                const uint64_t lo = blk.addr;
                const uint64_t hi = blk.addr + blk.size;
                for (uint64_t p = lo / page * page; p < hi; p += page) {
                    PageBits &pb = bitsOf(p);
                    const uint64_t first =
                        (std::max(lo, p) - p) / SubHeap::alignment;
                    const uint64_t last =
                        (std::min(hi, p + page) - 1 - p) /
                        SubHeap::alignment;
                    for (uint64_t s = first; s <= last; s++) {
                        const uint64_t mask = 1ull << (s & 63);
                        if ((pb.bits[s >> 6] & mask) == 0) {
                            pb.bits[s >> 6] |= mask;
                            pb.liveSlots++;
                        }
                    }
                }
            }
        }
        // Filter: a page qualifies if it is sparse enough, resident,
        // not part of an existing mesh, and not a bump frontier (the
        // page the next bump allocation writes — meshing it would
        // split back out immediately).
        std::vector<size_t> pool;
        for (const auto &heap_ptr : sh.heaps) {
            const SubHeap &heap = *heap_ptr;
            const uint64_t frontier =
                (heap.base() + heap.extent()) / page * page;
            auto it = byAddr.find(frontier);
            if (it != byAddr.end())
                cands[it->second].liveSlots = 0; // disqualify below
        }
        for (size_t i = 0; i < cands.size(); i++) {
            const PageBits &pb = cands[i];
            if (pb.liveSlots == 0 || pb.liveSlots > max_live)
                continue;
            if (!pages.isResident(pb.addr) || !meshDir_.meshable(pb.addr))
                continue;
            pool.push_back(i);
        }

        // Randomized pair probing, Mesh-style: a handful of draws
        // finds most of the disjoint pairs a full O(n^2) scan would,
        // at a budgeted cost.
        auto disjoint = [&](const PageBits &a, const PageBits &b) {
            for (size_t w = 0; w < words; w++)
                if ((a.bits[w] & b.bits[w]) != 0)
                    return false;
            return true;
        };
        for (size_t probe = 0; probe < probe_budget && pool.size() >= 2;
             probe++) {
            probes++;
            const size_t ia = meshRng_.below(pool.size());
            size_t ib = meshRng_.below(pool.size() - 1);
            if (ib >= ia)
                ib++;
            PageBits &a = cands[pool[ia]];
            PageBits &b = cands[pool[ib]];
            if ((a.isRoot && b.isRoot) || !disjoint(a, b))
                continue;
            // The denser page keeps its frame; an in-pass root always
            // stays root (its bitmap is already a union).
            const bool a_is_root =
                a.isRoot || (!b.isRoot && a.liveSlots >= b.liveSlots);
            PageBits &root = a_is_root ? a : b;
            PageBits &loser = a_is_root ? b : a;
            meshDir_.recordMesh(loser.addr, root.addr);
            for (size_t w = 0; w < words; w++)
                root.bits[w] |= loser.bits[w];
            root.liveSlots += loser.liveSlots;
            root.isRoot = true;
            stats.pagesMeshed++;
            stats.bytesRecovered += page;
            // Drop the loser from the pool (swap-with-back), and the
            // root too if the union outgrew the sparseness bound.
            const size_t drop = a_is_root ? ib : ia;
            pool[drop] = pool.back();
            pool.pop_back();
            if (root.liveSlots > max_live) {
                const uint64_t root_addr = root.addr;
                for (size_t k = 0; k < pool.size(); k++) {
                    if (cands[pool[k]].addr == root_addr) {
                        pool[k] = pool.back();
                        pool.pop_back();
                        break;
                    }
                }
            }
        }
    }

    // Splits since the last pass are mutator work, but they are this
    // mechanism's cost; report the delta so the controller's
    // accumulated totals stay a running sum.
    const uint64_t split_total = meshDir_.splitFaults();
    stats.splitFaults = split_total - meshSplitsReported_;
    meshSplitsReported_ = split_total;

    stats.measuredSec = watch.elapsedSec();
    // Virtual-clock model: a probe is one bitmap compare over the
    // block metadata already in cache; a mesh is one remap.
    stats.modeledSec = static_cast<double>(probes) * 100e-9 +
                       static_cast<double>(stats.pagesMeshed) * 2e-6;
    telemetry::record(telemetry::Hist::MeshPassNs,
                      static_cast<uint64_t>(stats.measuredSec * 1e9));
    return stats;
}

size_t
AnchorageService::subHeapCount() const
{
    size_t total = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> guard(sh->mutex);
        total += sh->heaps.size();
    }
    return total;
}

AnchorageService::ShardStats
AnchorageService::shardStats(size_t shard) const
{
    ALASKA_ASSERT(shard < shards_.size(), "shard %zu out of range",
                  shard);
    ShardStats stats;
    const Shard &sh = *shards_[shard];
    std::lock_guard<std::mutex> guard(sh.mutex);
    stats.subHeaps = sh.heaps.size();
    for (const auto &heap : sh.heaps) {
        stats.extent += heap->extent();
        stats.liveBytes += heap->liveBytes();
        stats.freeBytes += heap->freeBytes();
    }
    return stats;
}

DefragStats
AnchorageService::defrag(size_t max_bytes)
{
    // The monolithic barrier is the degenerate batched pass: one step
    // with an unbounded batch drives the pass to its end state inside
    // a single barrier.
    BatchedPass pass = beginBatchedDefrag(max_bytes);
    DefragStats stats = pass.step(SIZE_MAX);
    ALASKA_ASSERT(pass.done(),
                  "an unbatched pass must finish in one barrier");
    return stats;
}

DefragStats
AnchorageService::defragFully()
{
    DefragStats total;
    for (;;) {
        const DefragStats pass = defrag(SIZE_MAX);
        total.accumulate(pass);
        if (pass.movedBytes == 0 && pass.reclaimedBytes == 0)
            break;
    }
    return total;
}

// --- batched passes (paper §6 pause-time story) ----------------------------

AnchorageService::BatchedPass::BatchedPass(AnchorageService &service,
                                           size_t max_bytes,
                                           size_t shard_cap)
    : service_(&service), budget_(max_bytes > 0 ? max_bytes : 1),
      shardCap_(shard_cap > 0 ? shard_cap : 1),
      shardMoved_(service.shards_.size(), 0)
{
}

DefragStats
AnchorageService::BatchedPass::step(size_t batch_bytes)
{
    // 0 means unbatched, matching ControlParams::batchBytes — without
    // this a zero budget would run a barrier that can make no progress.
    return service_->batchBarrier(*this,
                                  batch_bytes > 0 ? batch_bytes
                                                  : SIZE_MAX);
}

AnchorageService::BatchedPass
AnchorageService::beginBatchedDefrag(size_t max_bytes,
                                     size_t shard_cap_bytes)
{
    return BatchedPass(*this, max_bytes, shard_cap_bytes);
}

DefragStats
AnchorageService::batchBarrier(BatchedPass &pass, size_t batch_bytes)
{
    ALASKA_ASSERT(runtime_ != nullptr, "service not attached");
    DefragStats stats;
    if (pass.done_)
        return stats;
    runtime_->barrier([&](const PinnedSet &pinned) {
        Stopwatch watch;
        // The world is stopped, so no registered thread holds a shard
        // lock; still take every lock (index order) so unregistered
        // allocator threads cannot race the move loop either.
        std::vector<std::unique_lock<std::mutex>> locks;
        locks.reserve(shards_.size());
        for (auto &sh : shards_)
            locks.emplace_back(sh->mutex);
        moveBatchLocked(pass, pinned, batch_bytes, stats);
        stats.measuredSec = watch.elapsedSec();
        stats.modeledSec = config_.modelPauseFloor +
                           static_cast<double>(stats.movedBytes) /
                               config_.modelBandwidth;
        stats.barriers = 1;
        stats.maxBarrierBytes = stats.movedBytes;
        stats.maxBarrierSec = stats.measuredSec;
        stats.maxBarrierModeledSec = stats.modeledSec;
    });
    pass.totals_.accumulate(stats);
    return stats;
}

void
AnchorageService::moveBatchLocked(BatchedPass &pass,
                                  const PinnedSet &pinned,
                                  size_t batch_bytes, DefragStats &stats)
{
    if (!pass.ranked_) {
        // First barrier: rank every sub-heap of every shard
        // emptiest-first. Cheap-to-empty heaps are sources; denser
        // heaps (later ranks) are destinations. The ranking is global,
        // which is what makes the pass a cross-shard stealer — a
        // sparse shard's chain evacuates into any denser shard's
        // holes — and it is ranked once per pass, so every barrier of
        // the pass works the same plan a monolithic barrier would.
        for (uint32_t s = 0; s < shards_.size(); s++) {
            for (uint32_t h = 0; h < shards_[s]->heaps.size(); h++)
                pass.order_.push_back(HeapRef{s, h});
        }
        std::stable_sort(pass.order_.begin(), pass.order_.end(),
                         [&](HeapRef a, HeapRef b) {
                             return occupancyOf(heapAt(a)) <
                                    occupancyOf(heapAt(b));
                         });
        pass.ranked_ = true;
    }

    // Shards whose densities this barrier changes (move sources and
    // destinations, trimmed heaps): only their placement caches need
    // dropping, so a 16-shard heap does not pay 16 cache rebuilds per
    // 256 KiB barrier on the mutator's alloc-miss path.
    std::vector<bool> touched(shards_.size(), false);

    size_t barrier_budget = std::min(batch_bytes, pass.budget_);
    while (pass.rank_ < pass.order_.size() && pass.budget_ > 0 &&
           barrier_budget > 0) {
        const HeapRef ref = pass.order_[pass.rank_];
        size_t &shard_moved = pass.shardMoved_[ref.shard];
        if (shard_moved >= pass.shardCap_) {
            // This shard's sources spent their share of the pass;
            // skipping the rest keeps one hot shard from starving
            // every other shard's reclamation.
            pass.rank_++;
            pass.cursor_ = -1;
            continue;
        }
        SubHeap &src = heapAt(ref);
        auto &blocks = src.blocks();
        if (pass.cursor_ < 0) {
            // Entering this source fresh: snapshot its holes and start
            // at the top of its extent (§4.3 walks downward).
            pass.index_ = src.buildCompactionIndex();
            pass.cursor_ = static_cast<int>(blocks.size()) - 1;
        } else if (pass.cursor_ >= static_cast<int>(blocks.size())) {
            // A trim between barriers popped trailing blocks past the
            // saved cursor; the blocks below it kept their indices.
            pass.cursor_ = static_cast<int>(blocks.size()) - 1;
        }
        int i = pass.cursor_;
        for (; i >= 0 && barrier_budget > 0 &&
               shard_moved < pass.shardCap_;
             i--) {
            if (blocks[i].isFree())
                continue;
            const Block blk = blocks[i];
            if (pinned.contains(blk.handleId)) {
                stats.pinnedSkips++;
                continue;
            }
            // Skip blocks the handle table disagrees with: a campaign
            // interrupted by this barrier may have left limbo-parked
            // sources (entry already points at the committed copy) and
            // claimed-but-uncommitted destinations (entry still points
            // at the marked source). Blindly moving either would copy
            // stale bytes over the object's live location. A *marked*
            // source still pointing here is fair game — our store
            // clobbers the mark and the campaign's commit CAS aborts.
            void *cur = runtime_->table().entry(blk.handleId)
                            .ptr.load(std::memory_order_seq_cst);
            if (reloc::unmarked(cur) !=
                reinterpret_cast<void *>(blk.addr))
                continue;

            // First choice: a hole strictly below the object in its own
            // sub-heap (classic compaction). Second: any denser sub-heap
            // in the global ranking, densest last.
            SubHeapAlloc dest{false, 0};
            const int dest_idx =
                src.popLowestFreeBelow(pass.index_, blk.size, blk.addr);
            if (dest_idx >= 0) {
                src.claimBlock(dest_idx, blk.handleId, blk.size);
                dest = {true, src.blocks()[dest_idx].addr};
            } else {
                for (size_t r2 = pass.order_.size();
                     r2-- > pass.rank_ + 1;) {
                    SubHeap &cand = heapAt(pass.order_[r2]);
                    // Never bump an empty heap: occupancyOf ranks
                    // extent-0 heaps densest (a source-selection
                    // convention), but filling one only relocates
                    // extent — and a heap another rank of this very
                    // pass just evacuated would ping-pong the whole
                    // chain between shards, pass after pass.
                    if (cand.extent() == 0)
                        continue;
                    dest = cand.alloc(blk.handleId, blk.size);
                    if (dest.ok) {
                        touched[pass.order_[r2].shard] = true;
                        break;
                    }
                }
            }
            if (!dest.ok)
                continue;

            // Move: copy bytes, then a single HTE store republishes the
            // object at its new address for every alias.
            space_.copy(dest.addr, blk.addr, blk.size);
            runtime_->table().entry(blk.handleId)
                .ptr.store(reinterpret_cast<void *>(dest.addr),
                           std::memory_order_release);
            src.freeBlockAt(i);
            stats.movedObjects++;
            stats.movedBytes += blk.size;
            shard_moved += blk.size;
            touched[ref.shard] = true;
            barrier_budget -=
                std::min<size_t>(barrier_budget, blk.size);
            pass.budget_ -= std::min<size_t>(pass.budget_, blk.size);
        }
        if (i < 0 || shard_moved >= pass.shardCap_) {
            // Walked off this source (or capped its shard): reclaim
            // its tail now so reclamation keeps pace with the walk.
            const size_t trimmed = src.trimTop();
            stats.reclaimedBytes += trimmed;
            if (trimmed > 0)
                touched[ref.shard] = true;
            pass.rank_++;
            pass.cursor_ = -1;
        } else {
            // Batch budget exhausted mid-source: resume here next
            // barrier. The hole index stays valid across the gap —
            // its entries are validated on pop. Trim the evacuated
            // tail before the world resumes, or a mutator's LIFO
            // free-list reuse between barriers would hand the
            // just-evacuated blocks right back and strand the extent
            // above the bump forever (the cursor clamp on re-entry
            // absorbs the popped trailing indices).
            const size_t trimmed = src.trimTop();
            stats.reclaimedBytes += trimmed;
            if (trimmed > 0)
                touched[ref.shard] = true;
            pass.cursor_ = i;
        }
    }

    if (pass.rank_ >= pass.order_.size() || pass.budget_ == 0) {
        pass.done_ = true;
        // The final sweep trims every shard's heaps, so every shard's
        // placement caches are stale regardless of `touched`.
        finishPassLocked(stats);
        for (auto &sh : shards_)
            invalidatePlacementLocked(*sh);
        return;
    }

    // Densities shifted under this barrier's moves and trims: drop the
    // placement caches of the shards it touched before the mutators
    // resume (they allocate between barriers).
    for (size_t s = 0; s < shards_.size(); s++) {
        if (touched[s])
            invalidatePlacementLocked(*shards_[s]);
    }
}

void
AnchorageService::finishPassLocked(DefragStats &stats)
{
    // Give every sub-heap's trailing pages back to the kernel — this
    // also catches destination heaps whose tails the moves freed and
    // sub-heaps created after the pass was ranked. Coalesce first:
    // with the pass done no CompactionIndex is live, so the evacuated
    // class-exact holes can fuse into arbitrary-size holes (and into
    // longer trimmable tails).
    for (auto &sh : shards_) {
        for (auto &heap : sh->heaps) {
            heap->coalesceHoles();
            stats.reclaimedBytes += heap->trimTop();
        }
    }

    // Retire superseded region snapshots. Safe exactly here: the world
    // is stopped, so registered threads cannot be inside regionOf()
    // (heap-op threads are registered — the repo-wide contract the
    // barrier itself already relies on), and every shard lock is held,
    // so no addSubHeapLocked() is mid-publish. Without this pruning a
    // long-running service retains one snapshot per sub-heap ever
    // created — quadratic bytes in the sub-heap count.
    std::lock_guard<std::mutex> guard(regionsMutex_);
    const auto *current = regions_.load(std::memory_order_relaxed);
    auto keep = std::remove_if(
        ownedRegionMaps_.begin(), ownedRegionMaps_.end(),
        [&](const auto &snap) { return snap.get() != current; });
    ownedRegionMaps_.erase(keep, ownedRegionMaps_.end());
}

// --- concurrent relocation campaigns (paper §7) ----------------------------

DefragStats
AnchorageService::relocateCampaign(size_t max_bytes)
{
    ALASKA_ASSERT(runtime_ != nullptr, "service not attached");
    Stopwatch watch;
    DefragStats stats;

    // Single-mover invariant: the mark protocol assumes exactly one
    // relocator, so a second concurrent caller backs off empty-handed.
    bool expected = false;
    if (!campaignActive_.compare_exchange_strong(expected, true))
        return stats;
    telemetry::TraceSpan campaign_span("campaign");

    // Raise the global flag (and the scoped-discipline demand it
    // implies, for accessors that pick their idiom dynamically), then
    // wait one grace period for accessor scopes that opened before the
    // flag was visible — they translate mark-unaware and must finish
    // before the first mark (see ConcurrentAccessScope).
    Runtime::gConcurrentRelocCampaigns.fetch_add(1,
                                                 std::memory_order_seq_cst);
    Runtime::declareConcurrentDefrag();
    campaignGraceWait(stats);

    // Rank every shard's sub-heaps emptiest-first once per campaign
    // (one shard lock at a time); sparse heaps anywhere are evacuated
    // into denser ones anywhere, like the stop-the-world pass. While
    // visiting each shard, steer its fresh allocations to its densest
    // heap (with an extent to fill) for the campaign's duration: the
    // LIFO free lists would otherwise hand a just-evacuated top block
    // right back to the next allocation, undoing the compaction as
    // fast as it happens.
    std::vector<HeapRef> order;
    std::vector<double> occupancy;
    for (uint32_t s = 0; s < shards_.size(); s++) {
        Shard &sh = *shards_[s];
        std::lock_guard<std::mutex> guard(sh.mutex);
        double best = -1.0;
        size_t best_idx = SIZE_MAX;
        for (uint32_t h = 0; h < sh.heaps.size(); h++) {
            const double occ = occupancyOf(*sh.heaps[h]);
            order.push_back(HeapRef{s, h});
            occupancy.push_back(occ);
            if (sh.heaps[h]->extent() > 0 && occ >= best) {
                best = occ;
                best_idx = h;
            }
        }
        if (best_idx != SIZE_MAX)
            sh.cursor = best_idx;
    }
    {
        std::vector<size_t> perm(order.size());
        for (size_t i = 0; i < perm.size(); i++)
            perm[i] = i;
        std::stable_sort(perm.begin(), perm.end(),
                         [&](size_t a, size_t b) {
                             return occupancy[a] < occupancy[b];
                         });
        std::vector<HeapRef> sorted;
        sorted.reserve(order.size());
        for (size_t i : perm)
            sorted.push_back(order[i]);
        order.swap(sorted);
    }

    size_t budget = max_bytes;
    const bool registered =
        runtime_->currentThreadStateOrNull() != nullptr;
    std::vector<Candidate> candidates;
    std::vector<LimboBlock> limbo;
    size_t limbo_bytes = 0;
    std::deque<PendingReclaim> pending;
    size_t pending_bytes = 0;
    const size_t grace_batch =
        config_.graceBatchBytes > 0 ? config_.graceBatchBytes : SIZE_MAX;
    const size_t limbo_cap =
        config_.limboCapBytes > 0
            ? std::max(config_.limboCapBytes, config_.graceBatchBytes)
            : SIZE_MAX;
    for (size_t rank = 0; rank < order.size() && budget > 0; rank++) {
        const HeapRef src_ref = order[rank];
        // Snapshot this source's live blocks (top of the extent
        // downward, §4.3) and its holes immediately before walking it:
        // under mutator churn a campaign-start snapshot goes stale in
        // milliseconds, and the holes the churn opens are exactly the
        // destinations the walk needs. The snapshot is still advisory —
        // every candidate is revalidated at move time.
        candidates.clear();
        SubHeap::CompactionIndex index;
        {
            Shard &sh = *shards_[src_ref.shard];
            std::lock_guard<std::mutex> guard(sh.mutex);
            SubHeap &heap = *sh.heaps[src_ref.heapIdx];
            const auto &blocks = heap.blocks();
            size_t snapshotted = 0;
            for (size_t i = blocks.size();
                 i-- > 0 && snapshotted < budget;) {
                if (blocks[i].isFree())
                    continue;
                candidates.push_back(
                    Candidate{blocks[i].handleId, blocks[i].addr,
                              blocks[i].size, src_ref, rank});
                snapshotted += blocks[i].size;
            }
            if (!candidates.empty())
                index = heap.buildCompactionIndex();
        }
        size_t consecutive_no_space = 0;
        DestCache cache;
        for (const Candidate &cand : candidates) {
            if (budget == 0)
                break;
            // Keep Hybrid-mode barriers short: the mover reaches a
            // safepoint between every two object moves, with no mark
            // ever outstanding across a poll. Drain the reclaim
            // pipeline before parking (parked threads hold no scopes,
            // so the grace waits cannot deadlock with the barrier):
            // the STW pass skips blocks whose HTE disagrees, but
            // retiring them first keeps its view exact. A barrier
            // raised between this check and the poll is still safe —
            // only slower — thanks to that skip.
            if (registered && Runtime::barrierPending()) {
                sealLimboBatch(pending, limbo, limbo_bytes,
                               pending_bytes);
                drainPending(pending, pending_bytes, 0, stats);
            }
            if (registered)
                poll();
            const uint64_t no_space_before = stats.noSpace;
            const size_t limbo_before = limbo.size();
            relocateOneConcurrent(cand, order, index, cache, stats,
                                  limbo, budget);
            if (limbo.size() != limbo_before) {
                consecutive_no_space = 0;
                limbo_bytes += limbo.back().bytes;
                // Enough sources parked: seal the batch behind a grace
                // ticket and keep moving — the grace runs out in the
                // background while later candidates are copied.
                if (limbo_bytes >= grace_batch)
                    sealLimboBatch(pending, limbo, limbo_bytes,
                                   pending_bytes);
                // Retire whatever already drained; stall only when the
                // outstanding limbo bytes exceed the overshoot cap.
                drainPending(pending, pending_bytes,
                             limbo_cap > limbo_bytes
                                 ? limbo_cap - limbo_bytes
                                 : 0,
                             stats);
            } else if (stats.noSpace != no_space_before) {
                consecutive_no_space++;
            }
            // Once this source's downward holes and every denser heap
            // are exhausted, deeper (lower-addressed) candidates fare
            // even worse: stop paying a lock acquisition per candidate
            // and let the next campaign rescan.
            if (consecutive_no_space > 1024)
                break;
        }
        // Seal this source's remaining parked blocks and hand the
        // source to the batch that will free the last of them: batches
        // retire FIFO, so by the time that batch's grace elapses every
        // block this source parked is free, its holes coalesce, and
        // its emptied tail is trimmable — without the walk stalling
        // here for a grace. Later sources never use an earlier
        // (sparser) heap as a destination, so deferring the trim never
        // misdirects placement.
        sealLimboBatch(pending, limbo, limbo_bytes, pending_bytes);
        if (!pending.empty())
            pending.back().sources.push_back(src_ref);
        else
            finishSource(src_ref, stats);
    }
    // A budget cut mid-source can leave parked sources behind; retire
    // every batch (and its deferred source trims) before dropping the
    // campaign flag.
    sealLimboBatch(pending, limbo, limbo_bytes, pending_bytes);
    drainPending(pending, pending_bytes, 0, stats);

    // Final sweep: trailing holes opened by mutator frees during the
    // campaign, and destination heaps whose tails the moves freed.
    for (auto &sh : shards_) {
        std::lock_guard<std::mutex> guard(sh->mutex);
        for (auto &heap : sh->heaps)
            stats.reclaimedBytes += heap->trimTop();
        invalidatePlacementLocked(*sh);
    }

    Runtime::retireConcurrentDefrag();
    Runtime::gConcurrentRelocCampaigns.fetch_sub(1,
                                                 std::memory_order_seq_cst);
    campaignActive_.store(false, std::memory_order_release);

    stats.measuredSec = watch.elapsedSec();
    // No pause floor: nothing stops, only copy bandwidth is spent.
    stats.modeledSec =
        static_cast<double>(stats.movedBytes) / config_.modelBandwidth;
    return stats;
}

void
AnchorageService::campaignGraceWait(DefragStats &stats)
{
    Stopwatch watch;
    runtime_->waitForGrace(Runtime::advanceCampaignEpoch());
    stats.graceWaits++;
    stats.graceWaitSec += watch.elapsedSec();
}

void
AnchorageService::relocateOneConcurrent(const Candidate &cand,
                                        const std::vector<HeapRef> &order,
                                        SubHeap::CompactionIndex &index,
                                        DestCache &cache,
                                        DefragStats &stats,
                                        std::vector<LimboBlock> &limbo,
                                        size_t &budget)
{
    auto &entry = runtime_->table().entry(cand.id);

    // Revalidate against the live entry: the object may have been
    // freed, reallocated elsewhere, or already moved since the
    // snapshot. A stale candidate is skipped without counting.
    void *old_ptr = entry.ptr.load(std::memory_order_acquire);
    if (reinterpret_cast<uint64_t>(old_ptr) != cand.addr)
        return;

    // Phase A.1: claim a strictly better destination — a lower hole in
    // the source sub-heap, else a hole (then a bump) in any denser
    // sub-heap of any shard. One shard lock at a time: the source is
    // revalidated under its own lock, and a cross-shard destination is
    // claimed under the destination shard's lock only. The source can
    // change between those two sections — that is fine, because the
    // claim merely reserves space; the mark CAS below (and the commit
    // CAS after the copy) are what arbitrate against every mutator
    // interleaving. Doing all of this *before* marking keeps the
    // common no-hole outcome free of CAS traffic on the entry.
    uint64_t dest_addr = 0;
    SubHeap *dest_heap = nullptr;
    uint32_t dest_shard = 0;
    size_t bytes = 0;
    {
        Shard &ssh = *shards_[cand.src.shard];
        std::lock_guard<std::mutex> guard(ssh.mutex);
        SubHeap &src = *ssh.heaps[cand.src.heapIdx];
        const int src_idx = src.findBlock(cand.addr);
        if (src_idx < 0 || src.blocks()[src_idx].handleId != cand.id)
            return; // freed and possibly reused since the snapshot
        bytes = src.blocks()[src_idx].size;
        const int dest_idx =
            src.popLowestFreeBelow(index, bytes, cand.addr);
        if (dest_idx >= 0) {
            src.claimBlock(dest_idx, cand.id, bytes);
            dest_addr = src.blocks()[dest_idx].addr;
            dest_heap = &src;
            dest_shard = cand.src.shard;
        }
    }
    // Cached destination first: one lock, one probe. The cache only
    // ever holds a rank strictly denser than the current source (ranks
    // are campaign-global and sources are walked sparsest-first), and
    // a miss falls through to the full scans, which refresh it.
    if (dest_heap == nullptr && cache.rank != SIZE_MAX &&
        cache.rank > cand.rank) {
        const HeapRef ref = order[cache.rank];
        Shard &dsh = *shards_[ref.shard];
        std::lock_guard<std::mutex> guard(dsh.mutex);
        SubHeap &heap = *dsh.heaps[ref.heapIdx];
        if (heap.extent() > 0) {
            const SubHeapAlloc r = heap.alloc(cand.id, bytes);
            if (r.ok) {
                dest_addr = r.addr;
                dest_heap = &heap;
                dest_shard = ref.shard;
            }
        }
    }
    if (dest_heap == nullptr) {
        // Prefer an existing hole in any denser heap; falling back to a
        // bump there is still a win (region-evacuation style): standing
        // holes rarely match every candidate's size class, and bumping
        // a dense heap lets the source's whole tail trim, a net extent
        // reduction for any source below full occupancy.
        for (size_t r2 = order.size(); r2-- > cand.rank + 1;) {
            const HeapRef ref = order[r2];
            Shard &dsh = *shards_[ref.shard];
            std::lock_guard<std::mutex> guard(dsh.mutex);
            const SubHeapAlloc r =
                dsh.heaps[ref.heapIdx]->allocFromFreeList(cand.id,
                                                          bytes);
            if (r.ok) {
                dest_addr = r.addr;
                dest_heap = dsh.heaps[ref.heapIdx].get();
                dest_shard = ref.shard;
                cache.rank = r2;
                break;
            }
        }
        for (size_t r2 = order.size();
             dest_heap == nullptr && r2-- > cand.rank + 1;) {
            const HeapRef ref = order[r2];
            Shard &dsh = *shards_[ref.shard];
            std::lock_guard<std::mutex> guard(dsh.mutex);
            SubHeap &heap = *dsh.heaps[ref.heapIdx];
            // Never bump an empty heap: occupancyOf ranks extent-0
            // heaps densest (a source-selection convention), but as a
            // destination that would regrow a fully evacuated region.
            if (heap.extent() == 0)
                continue;
            const SubHeapAlloc r = heap.alloc(cand.id, bytes);
            if (r.ok) {
                dest_addr = r.addr;
                dest_heap = &heap;
                dest_shard = ref.shard;
                cache.rank = r2;
                break;
            }
        }
    }
    if (dest_heap == nullptr) {
        stats.attempts++;
        stats.noSpace++;
        telemetry::count(telemetry::Counter::CampaignNoSpace);
        return;
    }
    auto releaseDest = [&] {
        Shard &dsh = *shards_[dest_shard];
        std::lock_guard<std::mutex> guard(dsh.mutex);
        dest_heap->free(dest_addr);
    };

    // Phase A.2: mark. Failure means an accessor (or the free path)
    // beat us between the load and the CAS.
    stats.attempts++;
    if (!entry.ptr.compare_exchange_strong(old_ptr,
                                           reloc::marked(old_ptr),
                                           std::memory_order_seq_cst)) {
        releaseDest();
        stats.aborted++;
        telemetry::count(telemetry::Counter::CampaignAbort);
        return;
    }
    auto abortUnmark = [&] {
        void *expected = reloc::marked(old_ptr);
        entry.ptr.compare_exchange_strong(expected, old_ptr,
                                          std::memory_order_seq_cst);
    };

    // Pinned objects cannot move: a pin (pinned<T> / ConcurrentPin /
    // the KV policies' write() — the only per-object pins left) taken
    // before our mark holds a raw pointer its holder may store
    // through; one taken after will clear the mark and fail the
    // commit CAS anyway. This pair of checks is the whole write-side
    // handshake — it is why no grace period is needed before the copy
    // below.
    if (entry.state.load(std::memory_order_seq_cst) >>
        HandleTableEntry::pinCountShift) {
        abortUnmark();
        releaseDest();
        stats.aborted++;
        stats.pinnedSkips++;
        telemetry::count(telemetry::Counter::CampaignAbort);
        return;
    }

    // Phase B: copy and commit, immediately — the abort window is the
    // copy itself, not a grace period. Scoped accessors may keep
    // *reading* pre-mark translations throughout (the source bytes
    // survive on limbo until their batch's grace elapses), any writer
    // pins: pre-mark pins were caught above, a pin taken during the
    // copy clears our mark and the CAS below fails, discarding the
    // torn copy.
    Stopwatch copy_watch;
    space_.copy(dest_addr, cand.addr, bytes);
    telemetry::record(telemetry::Hist::CampaignCopyNs,
                      copy_watch.elapsedNs());
    void *expected = reloc::marked(old_ptr);
    if (entry.ptr.compare_exchange_strong(
            expected, reinterpret_cast<void *>(dest_addr),
            std::memory_order_seq_cst)) {
        // Commit success proves no hfree/hrealloc intervened (either
        // would have replaced the marked pointer), so the source block
        // is still ours — but scopes that translated it before the
        // commit may read it until they close: park it on limbo
        // instead of freeing inline.
        limbo.push_back(LimboBlock{cand.src, cand.addr,
                                   static_cast<uint32_t>(bytes)});
        stats.limboParked++;
        stats.committed++;
        stats.movedObjects++;
        stats.movedBytes += bytes;
        budget -= std::min(budget, bytes);
        telemetry::count(telemetry::Counter::CampaignCommit);
    } else {
        releaseDest();
        stats.aborted++;
        telemetry::count(telemetry::Counter::CampaignAbort);
    }
}

void
AnchorageService::sealLimboBatch(std::deque<PendingReclaim> &pending,
                                 std::vector<LimboBlock> &limbo,
                                 size_t &limbo_bytes,
                                 size_t &pending_bytes)
{
    if (limbo.empty())
        return;
    PendingReclaim batch;
    batch.ticket = runtime_->beginGrace(Runtime::advanceCampaignEpoch());
    batch.blocks = std::move(limbo);
    batch.bytes = limbo_bytes;
    batch.sealNs = telemetry::traceNowNs();
    telemetry::count(telemetry::Counter::LimboSeal);
    telemetry::traceInstant("limbo_seal");
    limbo.clear();
    pending_bytes += limbo_bytes;
    limbo_bytes = 0;
    pending.push_back(std::move(batch));
}

void
AnchorageService::drainPending(std::deque<PendingReclaim> &pending,
                               size_t &pending_bytes,
                               size_t target_bytes, DefragStats &stats)
{
    while (!pending.empty()) {
        PendingReclaim &front = pending.front();
        if (!runtime_->graceElapsed(front.ticket)) {
            if (pending_bytes <= target_bytes)
                return; // pipeline healthy: grace keeps running out in
                        // the background while the walk continues
            // Backpressure (or a drain point): the campaign's only
            // steady-state wait, paid on the *oldest* ticket — the one
            // closest to done — never per move.
            telemetry::count(telemetry::Counter::LimboStall);
            telemetry::count(telemetry::Counter::GraceWait);
            telemetry::TraceSpan stall_span("limbo_stall");
            Stopwatch watch;
            while (!runtime_->graceElapsed(front.ticket))
                std::this_thread::sleep_for(std::chrono::microseconds(20));
            stats.graceWaits++;
            stats.graceWaitSec += watch.elapsedSec();
        }
        freeBatch(front, stats);
        const uint64_t retire_ns = telemetry::traceNowNs();
        if (front.sealNs != 0) {
            telemetry::record(telemetry::Hist::GraceAgeNs,
                              retire_ns - front.sealNs);
            telemetry::traceComplete("grace", front.sealNs, retire_ns);
        }
        telemetry::count(telemetry::Counter::LimboRetire);
        telemetry::traceInstant("limbo_retire");
        pending_bytes -= front.bytes;
        pending.pop_front();
    }
}

void
AnchorageService::freeBatch(PendingReclaim &batch, DefragStats &stats)
{
    // The grace elapsed: no accessor scope that could have translated
    // a parked source before its move committed is still open, so the
    // blocks are unreachable and safe to free.
    for (const LimboBlock &b : batch.blocks) {
        Shard &ssh = *shards_[b.src.shard];
        std::lock_guard<std::mutex> guard(ssh.mutex);
        SubHeap &src = *ssh.heaps[b.src.heapIdx];
        const int idx = src.findBlock(b.addr);
        ALASKA_ASSERT(idx >= 0 && !src.blocks()[idx].isFree(),
                      "limbo source block vanished");
        src.freeBlockAt(idx);
    }
    for (const HeapRef &src : batch.sources)
        finishSource(src, stats);
}

void
AnchorageService::finishSource(const HeapRef &src, DefragStats &stats)
{
    // Trim-after-evacuation: coalesce the class-exact holes the
    // evacuation left (the compaction index is spent by now, so
    // reindexing blocks_ is safe) and give the emptied tail back, so
    // reclamation keeps pace with the campaign's walk.
    Shard &sh = *shards_[src.shard];
    std::lock_guard<std::mutex> guard(sh.mutex);
    sh.heaps[src.heapIdx]->coalesceHoles();
    stats.reclaimedBytes += sh.heaps[src.heapIdx]->trimTop();
    invalidatePlacementLocked(sh);
}

} // namespace alaska::anchorage
