#include "anchorage/anchorage_service.h"

#include <algorithm>

#include "base/logging.h"
#include "base/timer.h"
#include "core/translate.h"

namespace alaska::anchorage
{

namespace
{

/** Live fraction of a sub-heap's extent; 1.0 when empty (never a source). */
double
occupancyOf(const SubHeap &heap)
{
    return heap.extent() == 0
               ? 1.0
               : static_cast<double>(heap.liveBytes()) /
                     static_cast<double>(heap.extent());
}

} // anonymous namespace

AnchorageService::AnchorageService(AddressSpace &space,
                                   AnchorageConfig config)
    : space_(space), config_(config)
{
}

AnchorageService::~AnchorageService() = default;

void
AnchorageService::init(Runtime &runtime)
{
    runtime_ = &runtime;
}

void
AnchorageService::deinit()
{
    runtime_ = nullptr;
}

SubHeap *
AnchorageService::heapOf(uint64_t addr)
{
    for (auto &heap : heaps_) {
        if (heap->contains(addr))
            return heap.get();
    }
    return nullptr;
}

const SubHeap *
AnchorageService::heapOf(uint64_t addr) const
{
    for (const auto &heap : heaps_) {
        if (heap->contains(addr))
            return heap.get();
    }
    return nullptr;
}

void *
AnchorageService::alloc(uint32_t id, size_t size)
{
    std::lock_guard<std::mutex> guard(mutex_);

    // Oversized objects get a dedicated sub-heap.
    const size_t heap_bytes = std::max(config_.subHeapBytes, size);

    if (!heaps_.empty()) {
        auto r = heaps_[cursor_]->alloc(id, size);
        if (r.ok)
            return reinterpret_cast<void *>(r.addr);
        // Current sub-heap exhausted; try the others densest-first, and
        // holes-anywhere before bumping anything. First-fit in index
        // order would re-park the cursor on the sparsest heap — exactly
        // the one a relocation campaign may be evacuating — and a bump
        // while suitable holes exist regrows the extent that defrag
        // just fought to trim.
        std::vector<size_t> by_density(heaps_.size());
        for (size_t i = 0; i < by_density.size(); i++)
            by_density[i] = i;
        // occupancyOf() reports 1.0 for empty heaps (a source-selection
        // convention); as destinations they must rank last, or a bump
        // would resurrect the extent a campaign just trimmed to zero.
        auto dest_density = [&](size_t i) {
            return heaps_[i]->extent() == 0 ? -1.0
                                            : occupancyOf(*heaps_[i]);
        };
        std::stable_sort(by_density.begin(), by_density.end(),
                         [&](size_t a, size_t b) {
                             return dest_density(a) > dest_density(b);
                         });
        for (size_t i : by_density) {
            if (i == cursor_)
                continue;
            r = heaps_[i]->allocFromFreeList(id, size);
            if (r.ok) {
                cursor_ = i;
                return reinterpret_cast<void *>(r.addr);
            }
        }
        for (size_t i : by_density) {
            if (i == cursor_)
                continue;
            r = heaps_[i]->alloc(id, size);
            if (r.ok) {
                cursor_ = i;
                return reinterpret_cast<void *>(r.addr);
            }
        }
    }

    heaps_.push_back(std::make_unique<SubHeap>(space_, heap_bytes));
    cursor_ = heaps_.size() - 1;
    auto r = heaps_[cursor_]->alloc(id, size);
    ALASKA_ASSERT(r.ok, "fresh sub-heap cannot satisfy %zu bytes", size);
    return reinterpret_cast<void *>(r.addr);
}

void
AnchorageService::free(uint32_t id, void *ptr)
{
    (void)id;
    std::lock_guard<std::mutex> guard(mutex_);
    SubHeap *heap = heapOf(reinterpret_cast<uint64_t>(ptr));
    ALASKA_ASSERT(heap != nullptr, "free of pointer outside the heap");
    heap->free(reinterpret_cast<uint64_t>(ptr));
}

size_t
AnchorageService::usableSize(const void *ptr) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    const SubHeap *heap = heapOf(reinterpret_cast<uint64_t>(ptr));
    if (!heap)
        return 0;
    const int idx = heap->findBlock(reinterpret_cast<uint64_t>(ptr));
    return idx < 0 ? 0 : heap->blocks()[idx].size;
}

size_t
AnchorageService::heapExtent() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t total = 0;
    for (const auto &heap : heaps_)
        total += heap->extent();
    return total;
}

size_t
AnchorageService::activeBytes() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t total = 0;
    for (const auto &heap : heaps_)
        total += heap->liveBytes();
    return total;
}

double
AnchorageService::fragmentation() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t extent = 0, active = 0;
    for (const auto &heap : heaps_) {
        extent += heap->extent();
        active += heap->liveBytes();
    }
    return active == 0 ? 1.0
                       : static_cast<double>(extent) /
                             static_cast<double>(active);
}

size_t
AnchorageService::subHeapCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return heaps_.size();
}

SubHeapAlloc
AnchorageService::destAlloc(uint32_t id, size_t size, uint64_t src_addr,
                            SubHeap *src_heap,
                            SubHeap::CompactionIndex &index)
{
    // First choice: a hole strictly below the object in its own heap
    // (classic compaction).
    const int idx = src_heap->popLowestFreeBelow(index, size, src_addr);
    if (idx >= 0) {
        src_heap->claimBlock(idx, id, size);
        return {true, src_heap->blocks()[idx].addr};
    }
    // Second choice: a denser sub-heap (ranked by the caller). Handled
    // in movePass via explicit candidate list; this overload only does
    // the same-heap case.
    return {false, 0};
}

DefragStats
AnchorageService::defrag(size_t max_bytes)
{
    ALASKA_ASSERT(runtime_ != nullptr, "service not attached");
    DefragStats stats;
    runtime_->barrier([&](const PinnedSet &pinned) {
        stats = movePass(pinned, max_bytes);
    });
    return stats;
}

DefragStats
AnchorageService::defragFully()
{
    DefragStats total;
    for (;;) {
        const DefragStats pass = defrag(SIZE_MAX);
        total.accumulate(pass);
        if (pass.movedBytes == 0 && pass.reclaimedBytes == 0)
            break;
    }
    return total;
}

DefragStats
AnchorageService::movePass(const PinnedSet &pinned, size_t max_bytes)
{
    Stopwatch watch;
    DefragStats stats;
    std::lock_guard<std::mutex> guard(mutex_);

    // Rank sub-heaps emptiest-first: cheap-to-empty heaps are sources;
    // denser heaps (later ranks) are destinations.
    std::vector<size_t> order(heaps_.size());
    for (size_t i = 0; i < order.size(); i++)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return occupancyOf(*heaps_[a]) <
                                occupancyOf(*heaps_[b]);
                     });

    size_t budget = max_bytes;
    for (size_t rank = 0; rank < order.size() && budget > 0; rank++) {
        SubHeap &src = *heaps_[order[rank]];
        auto &blocks = src.blocks();
        SubHeap::CompactionIndex index = src.buildCompactionIndex();
        // Walk from the top of the sub-heap downward (§4.3).
        for (int i = static_cast<int>(blocks.size()) - 1;
             i >= 0 && budget > 0; i--) {
            if (blocks[i].isFree())
                continue;
            const Block blk = blocks[i];
            if (pinned.contains(blk.handleId)) {
                stats.pinnedSkips++;
                continue;
            }

            SubHeapAlloc dest = destAlloc(blk.handleId, blk.size,
                                          blk.addr, &src, index);
            if (!dest.ok) {
                // Try denser sub-heaps, densest last in the ranking.
                for (size_t r2 = order.size(); r2-- > rank + 1;) {
                    dest = heaps_[order[r2]]->alloc(blk.handleId,
                                                    blk.size);
                    if (dest.ok)
                        break;
                }
            }
            if (!dest.ok)
                continue;

            // Move: copy bytes, then a single HTE store republishes the
            // object at its new address for every alias.
            space_.copy(dest.addr, blk.addr, blk.size);
            runtime_->table().entry(blk.handleId)
                .ptr.store(reinterpret_cast<void *>(dest.addr),
                           std::memory_order_release);
            src.freeBlockAt(i);
            stats.movedObjects++;
            stats.movedBytes += blk.size;
            budget -= std::min<size_t>(budget, blk.size);
        }
        stats.reclaimedBytes += src.trimTop();
    }

    // Give every sub-heap's trailing pages back to the kernel.
    for (auto &heap : heaps_)
        stats.reclaimedBytes += heap->trimTop();

    stats.measuredSec = watch.elapsedSec();
    stats.modeledSec =
        config_.modelPauseFloor +
        static_cast<double>(stats.movedBytes) / config_.modelBandwidth;
    return stats;
}

// --- concurrent relocation campaigns (paper §7) ----------------------------

DefragStats
AnchorageService::relocateCampaign(size_t max_bytes)
{
    ALASKA_ASSERT(runtime_ != nullptr, "service not attached");
    Stopwatch watch;
    DefragStats stats;

    // Single-mover invariant: the mark protocol assumes exactly one
    // relocator, so a second concurrent caller backs off empty-handed.
    bool expected = false;
    if (!campaignActive_.compare_exchange_strong(expected, true))
        return stats;

    // Raise the global flag, then drain accessor scopes that opened
    // before the flag was visible — they translate unpinned and must
    // finish before the first mark (see ConcurrentAccessScope).
    Runtime::gConcurrentRelocCampaigns.fetch_add(1,
                                                 std::memory_order_seq_cst);
    runtime_->quiesceConcurrentAccessors();

    // Rank sub-heaps emptiest-first once per campaign; sparse heaps are
    // evacuated into denser ones, like the stop-the-world pass.
    std::vector<size_t> order;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        order.resize(heaps_.size());
        for (size_t i = 0; i < order.size(); i++)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return occupancyOf(*heaps_[a]) <
                                    occupancyOf(*heaps_[b]);
                         });
        // Steer fresh mutator allocations to the densest heap (with an
        // extent to fill) for the campaign's duration: the LIFO free
        // lists would otherwise hand a just-evacuated top block right
        // back to the next allocation, undoing the compaction as fast
        // as it happens.
        for (size_t r = order.size(); r-- > 0;) {
            if (heaps_[order[r]]->extent() > 0) {
                cursor_ = order[r];
                break;
            }
        }
    }

    size_t budget = max_bytes;
    const bool registered =
        runtime_->currentThreadStateOrNull() != nullptr;
    std::vector<Candidate> candidates;
    for (size_t rank = 0; rank < order.size() && budget > 0; rank++) {
        // Snapshot this source's live blocks (top of the extent
        // downward, §4.3) and its holes immediately before walking it:
        // under mutator churn a campaign-start snapshot goes stale in
        // milliseconds, and the holes the churn opens are exactly the
        // destinations the walk needs. The snapshot is still advisory —
        // every candidate is revalidated at move time.
        candidates.clear();
        SubHeap::CompactionIndex index;
        {
            std::lock_guard<std::mutex> guard(mutex_);
            SubHeap &heap = *heaps_[order[rank]];
            const auto &blocks = heap.blocks();
            size_t snapshotted = 0;
            for (size_t i = blocks.size();
                 i-- > 0 && snapshotted < budget;) {
                if (blocks[i].isFree())
                    continue;
                candidates.push_back(
                    Candidate{blocks[i].handleId, blocks[i].addr,
                              blocks[i].size, order[rank], rank});
                snapshotted += blocks[i].size;
            }
            if (!candidates.empty())
                index = heap.buildCompactionIndex();
        }
        size_t consecutive_no_space = 0;
        for (const Candidate &cand : candidates) {
            if (budget == 0)
                break;
            // Keep Hybrid-mode barriers short: the mover reaches a
            // safepoint between every two object moves.
            if (registered)
                poll();
            const uint64_t no_space_before = stats.noSpace;
            const uint64_t committed_before = stats.committed;
            moveOneConcurrent(cand, order, index, stats, budget);
            if (stats.committed != committed_before)
                consecutive_no_space = 0;
            else if (stats.noSpace != no_space_before)
                consecutive_no_space++;
            // Once this source's downward holes and every denser heap
            // are exhausted, deeper (lower-addressed) candidates fare
            // even worse: stop paying a lock acquisition per candidate
            // and let the next campaign rescan.
            if (consecutive_no_space > 1024)
                break;
        }
        // Trim-after-evacuation: give this source's emptied tail back
        // before moving on, so reclamation keeps pace with the walk.
        // Shrinking this heap's block vector is safe — its index is
        // spent, and later sources never use an earlier (sparser) heap
        // as a destination.
        {
            std::lock_guard<std::mutex> guard(mutex_);
            stats.reclaimedBytes += heaps_[order[rank]]->trimTop();
        }
    }

    // Final sweep: trailing holes opened by mutator frees during the
    // campaign, and destination heaps whose tails the moves freed.
    {
        std::lock_guard<std::mutex> guard(mutex_);
        for (auto &heap : heaps_)
            stats.reclaimedBytes += heap->trimTop();
    }

    Runtime::gConcurrentRelocCampaigns.fetch_sub(1,
                                                 std::memory_order_seq_cst);
    campaignActive_.store(false, std::memory_order_release);

    stats.measuredSec = watch.elapsedSec();
    // No pause floor: nothing stops, only copy bandwidth is spent.
    stats.modeledSec =
        static_cast<double>(stats.movedBytes) / config_.modelBandwidth;
    return stats;
}

void
AnchorageService::moveOneConcurrent(const Candidate &cand,
                                    const std::vector<size_t> &order,
                                    SubHeap::CompactionIndex &index,
                                    DefragStats &stats, size_t &budget)
{
    auto &entry = runtime_->table().entry(cand.id);

    // Revalidate against the live entry: the object may have been
    // freed, reallocated elsewhere, or already moved since the
    // snapshot. A stale candidate is skipped without counting.
    void *old_ptr = entry.ptr.load(std::memory_order_acquire);
    if (reinterpret_cast<uint64_t>(old_ptr) != cand.addr)
        return;

    // Phase 1: claim a strictly better destination — a lower hole in
    // the source sub-heap, else a hole in any denser sub-heap — while
    // holding the heap lock, revalidating that the source block is
    // still ours. Doing this *before* marking keeps the common no-hole
    // outcome free of CAS traffic on the entry.
    uint64_t dest_addr = 0;
    SubHeap *dest_heap = nullptr;
    size_t bytes = 0;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        SubHeap &src = *heaps_[cand.heapIdx];
        const int src_idx = src.findBlock(cand.addr);
        if (src_idx < 0 || src.blocks()[src_idx].handleId != cand.id)
            return; // freed and possibly reused since the snapshot
        bytes = src.blocks()[src_idx].size;
        const int dest_idx =
            src.popLowestFreeBelow(index, bytes, cand.addr);
        if (dest_idx >= 0) {
            src.claimBlock(dest_idx, cand.id, bytes);
            dest_addr = src.blocks()[dest_idx].addr;
            dest_heap = &src;
        } else {
            // Prefer an existing hole in any denser heap; falling back
            // to a bump there is still a win (region-evacuation style):
            // standing holes rarely match every candidate's size class,
            // and bumping a dense heap lets the source's whole tail
            // trim, a net extent reduction for any source below full
            // occupancy.
            for (size_t r2 = order.size(); r2-- > cand.rank + 1;) {
                const SubHeapAlloc r =
                    heaps_[order[r2]]->allocFromFreeList(cand.id, bytes);
                if (r.ok) {
                    dest_addr = r.addr;
                    dest_heap = heaps_[order[r2]].get();
                    break;
                }
            }
            for (size_t r2 = order.size();
                 dest_heap == nullptr && r2-- > cand.rank + 1;) {
                // Never bump an empty heap: occupancyOf ranks extent-0
                // heaps densest (a source-selection convention), but as
                // a destination that would regrow a fully evacuated
                // region.
                if (heaps_[order[r2]]->extent() == 0)
                    continue;
                const SubHeapAlloc r =
                    heaps_[order[r2]]->alloc(cand.id, bytes);
                if (r.ok) {
                    dest_addr = r.addr;
                    dest_heap = heaps_[order[r2]].get();
                    break;
                }
            }
        }
    }
    if (dest_heap == nullptr) {
        stats.attempts++;
        stats.noSpace++;
        return;
    }
    auto releaseDest = [&] {
        std::lock_guard<std::mutex> guard(mutex_);
        dest_heap->free(dest_addr);
    };

    // Phase 2: mark. Failure means an accessor (or the free path) beat
    // us between the load and the CAS.
    stats.attempts++;
    if (!entry.ptr.compare_exchange_strong(old_ptr,
                                           reloc::marked(old_ptr),
                                           std::memory_order_seq_cst)) {
        releaseDest();
        stats.aborted++;
        return;
    }
    auto abortUnmark = [&] {
        void *expected = reloc::marked(old_ptr);
        entry.ptr.compare_exchange_strong(expected, old_ptr,
                                          std::memory_order_seq_cst);
    };

    // Pinned objects cannot move: a pin taken before our mark holds a
    // raw pointer we must not invalidate; one taken after will clear
    // the mark and fail the commit CAS anyway.
    if (entry.state.load(std::memory_order_seq_cst) >>
        HandleTableEntry::pinCountShift) {
        abortUnmark();
        releaseDest();
        stats.aborted++;
        stats.pinnedSkips++;
        return;
    }

    // Phase 3: speculative copy while mutators may still read (and
    // abort us by writing through) the old location.
    space_.copy(dest_addr, cand.addr, bytes);

    // Phase 4: commit. An accessor, hfree, or hrealloc that intervened
    // has replaced the marked pointer, and this CAS fails.
    void *expected = reloc::marked(old_ptr);
    if (entry.ptr.compare_exchange_strong(
            expected, reinterpret_cast<void *>(dest_addr),
            std::memory_order_acq_rel)) {
        std::lock_guard<std::mutex> guard(mutex_);
        SubHeap &src = *heaps_[cand.heapIdx];
        const int src_idx = src.findBlock(cand.addr);
        ALASKA_ASSERT(src_idx >= 0 &&
                          src.blocks()[src_idx].handleId == cand.id,
                      "committed source block vanished");
        src.freeBlockAt(src_idx);
        stats.committed++;
        stats.movedObjects++;
        stats.movedBytes += bytes;
        budget -= std::min(budget, bytes);
    } else {
        releaseDest();
        stats.aborted++;
    }
}

} // namespace alaska::anchorage
