#include "anchorage/control.h"

namespace alaska::anchorage
{

DefragController::DefragController(AnchorageService &service,
                                   const Clock &clock,
                                   ControlParams params)
    : service_(service), clock_(clock), params_(params)
{
    nextWake_ = clock_.now();
}

ControlAction
DefragController::tick()
{
    const double now = clock_.now();
    if (now < nextWake_)
        return {};

    if (state_ == State::Waiting) {
        if (service_.fragmentation() > params_.fUb) {
            state_ = State::Defragmenting;
            return runPass();
        }
        nextWake_ = now + params_.pollInterval;
        return {};
    }

    // Defragmenting state.
    return runPass();
}

ControlAction
DefragController::runPass()
{
    ControlAction action;
    action.defragged = true;

    // alpha limits the fraction of the heap moved in a single pause.
    const auto budget = static_cast<size_t>(
        params_.alpha * static_cast<double>(service_.heapExtent()));
    action.stats = service_.defrag(budget > 0 ? budget : 1);

    action.pauseSec = params_.useModeledTime ? action.stats.modeledSec
                                             : action.stats.measuredSec;
    totalDefragSec_ += action.pauseSec;
    passes_++;

    const bool no_progress = action.stats.movedBytes == 0 &&
                             action.stats.reclaimedBytes == 0;
    const double now = clock_.now();
    if (service_.fragmentation() < params_.fLb || no_progress) {
        // Goal reached or out of opportunities: observe efficiently.
        state_ = State::Waiting;
        nextWake_ = now + params_.pollInterval;
    } else {
        // Overhead control: sleeping T_defrag / O_ub bounds the duty
        // cycle at O_ub (paper: "going to sleep for T = Tdefrag/Oub").
        nextWake_ = now + action.pauseSec / params_.oUb;
    }
    return action;
}

} // namespace alaska::anchorage
