#include "anchorage/control.h"

#include <algorithm>

#include "telemetry/trace.h"

namespace alaska::anchorage
{

DefragController::DefragController(AnchorageService &service,
                                   const Clock &clock,
                                   ControlParams params)
    : service_(service), clock_(clock), params_(params)
{
    nextWake_ = clock_.now();
}

ControlAction
DefragController::tick()
{
    const double now = clock_.now();
    if (now < nextWake_)
        return {};

    if (state_ == State::Waiting) {
        if (controlFragmentation() > params_.fUb) {
            state_ = State::Defragmenting;
            return runPass();
        }
        nextWake_ = now + params_.pollInterval;
        return {};
    }

    // Defragmenting state.
    return runPass();
}

double
DefragController::controlFragmentation() const
{
    switch (params_.mode) {
    case DefragMode::Mesh:
        return service_.physicalFragmentation();
    case DefragMode::MeshHybrid:
        return std::max(service_.fragmentation(),
                        service_.physicalFragmentation());
    default:
        return service_.fragmentation();
    }
}

ControlAction
DefragController::runPass()
{
    telemetry::TraceSpan tick_span("controller_tick");
    ControlAction action;
    action.defragged = true;

    // alpha limits the fraction of the heap moved in one pass — the
    // pass-wide budget in StopTheWorld mode (spread over batched
    // barriers), a campaign budget otherwise. Computed lazily:
    // heapExtent() sweeps every shard lock, and a mid-pass tick does
    // not need it (the in-progress pass carries its own budget).
    auto passBudgetNow = [&] {
        const auto budget = static_cast<size_t>(
            params_.alpha * static_cast<double>(service_.heapExtent()));
        return budget > 0 ? budget : size_t{1};
    };
    const size_t batch =
        params_.batchBytes > 0 ? params_.batchBytes : SIZE_MAX;
    auto shardCapFor = [&](size_t total) {
        if (params_.shardBudgetFraction >= 1.0)
            return SIZE_MAX;
        const auto cap = static_cast<size_t>(
            params_.shardBudgetFraction * static_cast<double>(total));
        return cap > 0 ? cap : size_t{1};
    };

    auto chargeOf = [&](const DefragStats &s) {
        return params_.useModeledTime ? s.modeledSec : s.measuredSec;
    };
    auto barrierChargeOf = [&](const DefragStats &s) {
        return params_.useModeledTime ? s.maxBarrierModeledSec
                                      : s.maxBarrierSec;
    };

    // True once the tick's logical pass has reached its end state; a
    // mid-pass tick stays in Defragmenting without consulting the
    // hysteresis band (the pass finishes what it budgeted).
    bool pass_done = true;
    bool no_progress = false;

    if (params_.mode == DefragMode::StopTheWorld) {
        // One barrier of the (possibly in-progress) batched pass per
        // tick: the overhead sleep below paces the barriers, so the
        // pause spreading is real wall-clock spreading, not
        // back-to-back barriers.
        if (!stwPass_ || stwPass_->done()) {
            const size_t pass_budget = passBudgetNow();
            stwPass_.emplace(service_.beginBatchedDefrag(
                pass_budget, shardCapFor(pass_budget)));
        }
        action.stats = stwPass_->step(batch);
        action.pauseSec = chargeOf(action.stats);
        action.costSec = action.pauseSec;
        pass_done = stwPass_->done();
        if (pass_done) {
            no_progress = stwPass_->totals().movedBytes == 0 &&
                          stwPass_->totals().reclaimedBytes == 0;
            stwPass_.reset();
        }
    } else if (params_.mode == DefragMode::Mesh) {
        // Pure meshing: one barrier-free pass per tick. pauseSec stays
        // zero by construction — no handle entry changes, no barrier,
        // and mutators keep the Direct discipline.
        action.stats = service_.meshPass(params_.meshProbeBudget,
                                         params_.meshMaxOccupancy);
        action.costSec = chargeOf(action.stats);
        no_progress = action.stats.pagesMeshed == 0;
    } else {
        // MeshHybrid runs the cheap, barrier-free mechanism first;
        // what meshing cannot reach (extent, sub-heap count) the
        // campaign then compacts out of the same tick's budget.
        if (params_.mode == DefragMode::MeshHybrid) {
            action.stats = service_.meshPass(params_.meshProbeBudget,
                                             params_.meshMaxOccupancy);
        }
        const size_t pass_budget = passBudgetNow();
        action.stats.accumulate(service_.relocateCampaign(pass_budget));
        action.costSec = chargeOf(action.stats);
        // Abort-rate feedback (Hybrid): when accessors abort most of a
        // campaign, the hot remainder is cheaper to move inside short
        // barriers than to retry concurrently forever. The fallback
        // spends only what the campaign left of the pass budget — the
        // campaign's moved bytes are deducted, so one Hybrid tick can
        // never move more than alpha × extent in total.
        if (params_.mode == DefragMode::Hybrid &&
            action.stats.attempts >= params_.abortFallbackMinAttempts &&
            action.stats.abortRate() > params_.abortFallbackRate) {
            const size_t moved = action.stats.movedBytes;
            const size_t remainder =
                pass_budget > moved ? pass_budget - moved : 0;
            if (remainder > 0) {
                AnchorageService::BatchedPass fallback =
                    service_.beginBatchedDefrag(remainder,
                                                shardCapFor(remainder));
                DefragStats stw;
                while (!fallback.done())
                    stw.accumulate(fallback.step(batch));
                action.pauseSec = chargeOf(stw);
                action.costSec += action.pauseSec;
                action.stats.accumulate(stw);
                action.fellBack = true;
                fallbacks_++;
            }
        }
        no_progress = action.stats.movedBytes == 0 &&
                      action.stats.reclaimedBytes == 0 &&
                      action.stats.pagesMeshed == 0;
    }

    totalDefragSec_ += action.costSec;
    totalPauseSec_ += action.pauseSec;
    passes_++;
    barriers_ += action.stats.barriers;
    if (action.stats.barriers > 0)
        maxBarrierPauseSec_ = std::max(maxBarrierPauseSec_,
                                       barrierChargeOf(action.stats));

    const double now = clock_.now();
    if (!pass_done) {
        // Mid-pass: the next tick runs the next barrier; the overhead
        // sleep between barriers is what turns one long pause into
        // many short ones.
        nextWake_ = now + std::max(action.costSec / params_.oUb,
                                   params_.minSleepSec);
    } else if (controlFragmentation() < params_.fLb || no_progress) {
        // Goal reached or out of opportunities: observe efficiently.
        state_ = State::Waiting;
        nextWake_ = now + params_.pollInterval;
    } else if (action.costSec > 0) {
        // Overhead control: sleeping T_defrag / O_ub bounds the duty
        // cycle at O_ub (paper: "going to sleep for T = Tdefrag/Oub"),
        // floored so a sub-microsecond measured pass cannot near-spin
        // the controller (sleeping longer only lowers the duty cycle).
        nextWake_ = now + std::max(action.costSec / params_.oUb,
                                   params_.minSleepSec);
    } else {
        // A modeled campaign that moved nothing has zero charge; poll
        // rather than spinning on a zero-length sleep.
        nextWake_ = now + params_.pollInterval;
    }
    return action;
}

} // namespace alaska::anchorage
