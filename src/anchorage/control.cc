#include "anchorage/control.h"

#include <algorithm>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace alaska::anchorage
{

DefragController::DefragController(AnchorageService &service,
                                   const Clock &clock,
                                   ControlParams params)
    : service_(service), clock_(clock), params_(params),
      view_{[this] { return service_.fragmentation(); },
            [this] { return service_.physicalFragmentation(); },
            [this] { return service_.heapExtent(); }},
      policy_(makePolicy(params_, service_)),
      adapter_(params_.targetBarrierPauseSec, params_.batchBytesFloor,
               params_.batchBytes)
{
    nextWake_ = clock_.now();
}

ControlAction
DefragController::tick()
{
    const double now = clock_.now();
    if (now < nextWake_)
        return {};

    if (state_ == State::Waiting) {
        if (controlFragmentation() > params_.fUb) {
            state_ = State::Defragmenting;
            return runPass();
        }
        nextWake_ = now + params_.pollInterval;
        return {};
    }

    // Defragmenting state.
    return runPass();
}

double
DefragController::controlFragmentation() const
{
    return policy_->controlMetric(view_);
}

ControlAction
DefragController::runPass()
{
    telemetry::TraceSpan tick_span("controller_tick");

    TickResult result =
        policy_->runTick(view_, params_, adapter_.current());

    ControlAction action;
    action.fellBack = result.fellBack;
    action.abandoned = result.abandoned;
    action.defragged = !result.reports.empty();
    for (const MechanismReport &report : result.reports) {
        action.stats.accumulate(report.stats);
        action.costSec += report.costSec;
        action.pauseSec += report.pauseSec;
    }
    action.byMechanism = std::move(result.reports);

    totalDefragSec_ += action.costSec;
    totalPauseSec_ += action.pauseSec;
    if (action.defragged)
        passes_++;
    if (action.fellBack)
        fallbacks_++;
    if (action.abandoned)
        abandonments_++;
    barriers_ += action.stats.barriers;
    if (action.stats.barriers > 0) {
        const double worst = params_.useModeledTime
                                 ? action.stats.maxBarrierModeledSec
                                 : action.stats.maxBarrierSec;
        maxBarrierPauseSec_ = std::max(maxBarrierPauseSec_, worst);
        // Pause-SLO feedback: the adapter steers the next barrier's
        // byte bound from this tick's worst barrier in the charged
        // time base (no-op unless targetBarrierPauseSec is set).
        adapter_.observe(worst);
    }
    telemetry::setGauge(telemetry::Gauge::BatchBytesCurrent,
                        adapter_.current());

    const double now = clock_.now();
    if (!result.passDone) {
        // Mid-pass: the next tick runs the next barrier; the overhead
        // sleep between barriers is what turns one long pause into
        // many short ones.
        nextWake_ = now + std::max(action.costSec / params_.oUb,
                                   params_.minSleepSec);
    } else if (controlFragmentation() < params_.fLb ||
               result.noProgress) {
        // Goal reached or out of opportunities (an abandoned
        // remainder lands here by construction — abandonment requires
        // the metric below fLb): observe efficiently.
        state_ = State::Waiting;
        nextWake_ = now + params_.pollInterval;
    } else if (action.costSec > 0) {
        // Overhead control: sleeping T_defrag / O_ub bounds the duty
        // cycle at O_ub (paper: "going to sleep for T = Tdefrag/Oub"),
        // floored so a sub-microsecond measured pass cannot near-spin
        // the controller (sleeping longer only lowers the duty cycle).
        nextWake_ = now + std::max(action.costSec / params_.oUb,
                                   params_.minSleepSec);
    } else {
        // A modeled campaign that moved nothing has zero charge; poll
        // rather than spinning on a zero-length sleep.
        nextWake_ = now + params_.pollInterval;
    }
    return action;
}

} // namespace alaska::anchorage
