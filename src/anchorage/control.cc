#include "anchorage/control.h"

namespace alaska::anchorage
{

DefragController::DefragController(AnchorageService &service,
                                   const Clock &clock,
                                   ControlParams params)
    : service_(service), clock_(clock), params_(params)
{
    nextWake_ = clock_.now();
}

ControlAction
DefragController::tick()
{
    const double now = clock_.now();
    if (now < nextWake_)
        return {};

    if (state_ == State::Waiting) {
        if (service_.fragmentation() > params_.fUb) {
            state_ = State::Defragmenting;
            return runPass();
        }
        nextWake_ = now + params_.pollInterval;
        return {};
    }

    // Defragmenting state.
    return runPass();
}

ControlAction
DefragController::runPass()
{
    ControlAction action;
    action.defragged = true;

    // alpha limits the fraction of the heap moved in one pass — a pause
    // bound in StopTheWorld mode, a campaign budget otherwise.
    const auto budget = static_cast<size_t>(
        params_.alpha * static_cast<double>(service_.heapExtent()));
    const size_t pass_budget = budget > 0 ? budget : 1;

    auto chargeOf = [&](const DefragStats &s) {
        return params_.useModeledTime ? s.modeledSec : s.measuredSec;
    };

    if (params_.mode == DefragMode::StopTheWorld) {
        action.stats = service_.defrag(pass_budget);
        action.pauseSec = chargeOf(action.stats);
        action.costSec = action.pauseSec;
    } else {
        action.stats = service_.relocateCampaign(pass_budget);
        action.costSec = chargeOf(action.stats);
        // Abort-rate feedback (Hybrid): when accessors abort most of a
        // campaign, the hot remainder is cheaper to move inside one
        // short barrier than to retry concurrently forever.
        if (params_.mode == DefragMode::Hybrid &&
            action.stats.attempts >= params_.abortFallbackMinAttempts &&
            action.stats.abortRate() > params_.abortFallbackRate) {
            const DefragStats stw = service_.defrag(pass_budget);
            action.pauseSec = chargeOf(stw);
            action.costSec += action.pauseSec;
            action.stats.accumulate(stw);
            action.fellBack = true;
            fallbacks_++;
        }
    }

    totalDefragSec_ += action.costSec;
    totalPauseSec_ += action.pauseSec;
    passes_++;

    const bool no_progress = action.stats.movedBytes == 0 &&
                             action.stats.reclaimedBytes == 0;
    const double now = clock_.now();
    if (service_.fragmentation() < params_.fLb || no_progress) {
        // Goal reached or out of opportunities: observe efficiently.
        state_ = State::Waiting;
        nextWake_ = now + params_.pollInterval;
    } else if (action.costSec > 0) {
        // Overhead control: sleeping T_defrag / O_ub bounds the duty
        // cycle at O_ub (paper: "going to sleep for T = Tdefrag/Oub").
        nextWake_ = now + action.costSec / params_.oUb;
    } else {
        // A modeled campaign that moved nothing has zero charge; poll
        // rather than spinning on a zero-length sleep.
        nextWake_ = now + params_.pollInterval;
    }
    return action;
}

} // namespace alaska::anchorage
