/**
 * @file
 * Anchorage sub-heaps (paper §4.3).
 *
 * Each sub-heap is a contiguous region allocated with a naive bump
 * pointer plus a power-of-two free list: an allocation first checks the
 * front of its size class's list (O(1)), then bumps. There is no
 * splitting, no thread caching, and no coalescing on the mutator free
 * path — the allocator is deliberately simple because defragmentation,
 * not placement cleverness, is what fights fragmentation here. Defrag
 * passes do coalesce (coalesceHoles()): after a sub-heap is evacuated
 * its class-exact holes would otherwise cap how densely later moves
 * can repack it.
 *
 * Block metadata is kept out-of-band (a sorted vector per sub-heap)
 * rather than in headers so the same code runs over real and phantom
 * address spaces; see DESIGN.md.
 */

#ifndef ALASKA_ANCHORAGE_SUB_HEAP_H
#define ALASKA_ANCHORAGE_SUB_HEAP_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/address_space.h"

namespace alaska::anchorage
{

class MeshDirectory;

/** Out-of-band metadata for one heap block. */
struct Block
{
    static constexpr uint32_t freeMarker = 0xffffffffu;

    uint64_t addr = 0;
    /** Usable size (16-byte aligned). */
    uint32_t size = 0;
    /** Owning handle ID, or freeMarker if the block is free. */
    uint32_t handleId = freeMarker;

    bool isFree() const { return handleId == freeMarker; }
};

/** Result of allocating within a sub-heap. */
struct SubHeapAlloc
{
    bool ok = false;
    uint64_t addr = 0;
};

/** One bump-allocated, free-list-recycled heap segment. */
class SubHeap
{
  public:
    /** Number of power-of-two size classes (16 B .. 2 GiB). */
    static constexpr int numClasses = 28;
    /** Block alignment. */
    static constexpr uint64_t alignment = 16;

    /**
     * @param space backing address space (thread-safe; see sim/)
     * @param capacity region size in bytes
     * @param owner_shard the Anchorage shard this sub-heap belongs to
     *        (an inert tag for stats/asserts; 0 for unsharded users)
     */
    SubHeap(AddressSpace &space, size_t capacity,
            uint32_t owner_shard = 0);
    ~SubHeap();

    SubHeap(const SubHeap &) = delete;
    SubHeap &operator=(const SubHeap &) = delete;

    /**
     * Allocate size bytes for handle id: front-of-class free list first,
     * bump second. Fails (ok=false) if neither fits.
     */
    SubHeapAlloc alloc(uint32_t id, size_t size);

    /**
     * Like alloc() but reuses an existing hole only — never bumps.
     * Concurrent relocation campaigns use this for cross-heap
     * destinations so that a campaign can reduce but never grow the
     * heap's extent (stop-the-world passes may bump because their trims
     * run with the world stopped and win the space right back).
     */
    SubHeapAlloc allocFromFreeList(uint32_t id, size_t size);

    /** Free the block at addr (must be a live block of this heap). */
    void free(uint64_t addr);

    /** True iff addr lies within this sub-heap's region. */
    bool
    contains(uint64_t addr) const
    {
        return addr >= base_ && addr < base_ + capacity_;
    }

    /** Find the index of the live block at addr; -1 if absent. */
    int findBlock(uint64_t addr) const;

    /**
     * Retract the bump pointer past any trailing free blocks and
     * MADV_DONTNEED the reclaimed tail.
     * @return bytes reclaimed from the extent.
     */
    size_t trimTop();

    /**
     * Merge runs of address-adjacent free blocks into single holes and
     * rebuild the free lists. Defrag-only (blocks_ indices change, so
     * the caller must hold the shard lock and must not have a live
     * CompactionIndex for this heap): called when a pass or campaign
     * finishes with a source sub-heap, so the class-exact holes its
     * evacuation left behind fuse into holes big enough for any later
     * placement — without this, concurrent campaigns floor out above
     * the stop-the-world fragmentation floor. O(blocks).
     * @return number of holes merged away.
     */
    size_t coalesceHoles();

    /** Anchorage shard that owns this sub-heap (tag; see constructor). */
    uint32_t ownerShard() const { return ownerShard_; }

    /** Base address of the region. */
    uint64_t base() const { return base_; }
    /** Region capacity in bytes. */
    size_t capacity() const { return capacity_; }
    /** Current bump offset — the sub-heap's used extent. */
    size_t extent() const { return bump_; }
    /** Bytes in live blocks. */
    size_t liveBytes() const { return liveBytes_; }
    /** Bytes sitting in free blocks (reusable holes). */
    size_t freeBytes() const { return freeBytes_; }
    /** Number of live blocks. */
    size_t liveBlocks() const { return liveCount_; }

    /** All blocks, address-ordered (live and free). For defrag walks. */
    std::vector<Block> &blocks() { return blocks_; }
    const std::vector<Block> &blocks() const { return blocks_; }

    /**
     * Mark the block at index as reallocated to handle id (defrag
     * destination found via lowestFreeBlockBelow).
     */
    void claimBlock(int index, uint32_t id, size_t size);

    /** Release a block by index (defrag source). */
    void freeBlockAt(int index);

    /**
     * Lowest-addressed free block of the exact size class that can hold
     * size bytes and whose address is below limit. Used by defrag to
     * move objects strictly downward. @return block index or -1.
     *
     * Unlike the O(1) mutator path, this scans the class list — the cost
     * is part of the stop-the-world pause, not the allocation path.
     */
    int lowestFreeBlockBelow(size_t size, uint64_t limit);

    /**
     * Address-sorted snapshot of the free blocks, consumed cursor-wise
     * by a top-down defrag walk (whose limit only decreases). Lets a
     * whole pass run in O(F log F) instead of O(F) per moved object.
     * Entries are validated on pop, so the snapshot may outlive
     * mutator allocations (concurrent campaigns) and even trims.
     */
    struct CompactionIndex
    {
        std::array<std::vector<uint32_t>, numClasses> sorted;
        std::array<size_t, numClasses> cursor{};
    };

    /** Build the snapshot for this sub-heap. */
    CompactionIndex buildCompactionIndex() const;

    /**
     * Pop the lowest free block that fits size below limit, advancing
     * the class cursor. @return block index or -1.
     */
    int popLowestFreeBelow(CompactionIndex &index, size_t size,
                           uint64_t limit);

    /** Size class of a request (index into the free lists). */
    static int classOf(size_t size);

    /**
     * Attach the service's mesh directory (nullptr detaches). When
     * set, every block placement (alloc/claim) reports its range via
     * noteWrite() before touching pages — the split-on-write hook —
     * and trims report reclaimed tails via noteDiscard() before
     * returning them to the kernel. Costs one relaxed atomic load per
     * placement while no meshes exist.
     */
    void setMeshDirectory(MeshDirectory *dir) { meshDir_ = dir; }

  private:
    SubHeapAlloc bumpAlloc(uint32_t id, size_t size);
    /** Drop stale indices from the front of a class list. */
    void pruneClassFront(int cls);

    AddressSpace &space_;
    MeshDirectory *meshDir_ = nullptr;
    uint64_t base_ = 0;
    size_t capacity_ = 0;
    uint32_t ownerShard_ = 0;
    size_t bump_ = 0;
    size_t liveBytes_ = 0;
    size_t freeBytes_ = 0;
    size_t liveCount_ = 0;

    /** Address-ordered block metadata; indices are stable except for
     *  trailing pops in trimTop(). */
    std::vector<Block> blocks_;
    /** LIFO free lists of block indices, one per power-of-two class.
     *  Entries may be stale (trimmed or reused); validated on pop. */
    std::array<std::vector<uint32_t>, numClasses> freeLists_;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_SUB_HEAP_H
