/**
 * @file
 * Anchorage's defragmentation control algorithm (paper §4.3, "Control
 * system").
 *
 * The controller keeps fragmentation within [F_lb, F_ub] and the
 * fraction of time spent defragmenting within [O_lb, O_ub], using
 * hysteresis. It is a two-state machine:
 *
 *  - Waiting: wake every 500 ms; if fragmentation > F_ub, switch to
 *    Defragmenting.
 *  - Defragmenting: run partial passes, each moving at most an
 *    alpha-fraction of the heap; after a pass taking T_defrag, sleep
 *    T = T_defrag / O_ub; return to Waiting when fragmentation < F_lb
 *    or no further progress is possible. A stop-the-world pass is
 *    batched (paper §6's pause-time story): it runs as a sequence of
 *    short barriers — one per tick, at most batchBytes moved each,
 *    the overhead sleep in between — so no single mutator-visible
 *    pause exceeds the batch budget regardless of heap size.
 *
 * The controller is clock-driven (tick()), so the same code runs under
 * a real clock (examples) or a virtual clock (benchmarks, Figure 10/11).
 */

#ifndef ALASKA_ANCHORAGE_CONTROL_H
#define ALASKA_ANCHORAGE_CONTROL_H

#include <cstddef>
#include <memory>
#include <vector>

#include "anchorage/anchorage_service.h"
#include "anchorage/mechanism.h"
#include "anchorage/policy.h"
#include "sim/clock.h"

namespace alaska::anchorage
{

/**
 * Legacy shorthand for the common policies (paper §4.3 vs §7). Since
 * the mechanism/policy split each value is just a constructor of the
 * equivalent DefragPolicy (see policy.h's makePolicy): the enum
 * survives for CLI/config compatibility, not as controller branches.
 * Both models steal across allocation shards: a pass or campaign
 * ranks every shard's sub-heaps by occupancy and evacuates sparse
 * ones into denser ones anywhere (see AnchorageService).
 */
enum class DefragMode
{
    /** Classic Anchorage: every pass runs inside a barrier (and holds
     *  every shard lock while the world is stopped). */
    StopTheWorld,
    /** Concurrent relocation campaigns only; the world never stops and
     *  the mover holds at most one shard lock at a time. */
    Concurrent,
    /**
     * Concurrent campaigns first; if accessor aborts eat too much of a
     * campaign, a short stop-the-world pass finishes the hot remainder.
     */
    Hybrid,
    /**
     * Page meshing only (see AnchorageService::meshPass): sparse pages
     * with disjoint live slots merge onto shared physical frames. RSS
     * recovery with zero object copies, zero handle-table writes, and
     * zero barriers — translation never changes, so mutators keep the
     * Direct (stop-the-world) discipline and the paper's two-
     * instruction translate. The trade: virtual extent (and therefore
     * the paper's fragmentation metric) never shrinks, and a mesh can
     * be split back out by later allocations, so control hysteresis
     * runs on physicalFragmentation() instead.
     */
    Mesh,
    /**
     * Controller-selected combination: every pass meshes first (the
     * cheap, barrier-free mechanism), then runs a concurrent campaign
     * for the fragmentation meshing cannot reach (meshing never
     * shrinks extent or moves objects into fewer sub-heaps). Requires
     * the Scoped discipline, like Concurrent.
     */
    MeshHybrid,
};

/**
 * Operator-tunable control parameters. Every knob is documented with
 * operational guidance in docs/TUNING.md. Plain data: set the fields
 * before constructing the controller and do not mutate them afterwards
 * (the controller keeps a copy).
 */
struct ControlParams
{
    /** Fragmentation hysteresis bounds [F_lb, F_ub]. */
    double fLb = 1.15;
    double fUb = 1.40;
    /** Defrag overhead bounds [O_lb, O_ub] (fraction of time). */
    double oLb = 0.01;
    double oUb = 0.05;
    /** Aggression: max fraction of the heap moved per pass. */
    double alpha = 0.25;
    /** Waiting-state polling interval (the paper's 500 ms). */
    double pollInterval = 0.5;
    /**
     * Use the bandwidth-modeled pass duration instead of measured wall
     * time (required for virtual-clock experiments).
     */
    bool useModeledTime = false;
    /** Pass scheduling mode. */
    DefragMode mode = DefragMode::StopTheWorld;
    /**
     * Hybrid only: abort-rate feedback. When a campaign's abortRate()
     * exceeds this and it saw at least abortFallbackMinAttempts, the
     * accessors are contending too hard for concurrent progress and the
     * tick appends one stop-the-world pass over the remainder.
     */
    double abortFallbackRate = 0.5;
    uint64_t abortFallbackMinAttempts = 32;
    /**
     * Batched stop-the-world passes: max bytes moved inside any single
     * barrier. A logical pass (alpha × extent) is spread over
     * ceil(budget / batchBytes) short barriers — one per tick, with
     * the overhead-control sleep between them — so each mutator-
     * visible pause is bounded by roughly
     * modelPauseFloor + batchBytes / copy-bandwidth instead of by the
     * whole alpha fraction of the heap. 0 = monolithic (each pass one
     * barrier, the pre-batching behavior). The Hybrid fallback runs
     * its remainder through the same batch bound.
     */
    size_t batchBytes = 1 << 20;
    /**
     * Per-shard fairness: the fraction of a pass's byte budget that
     * any one shard's sources may consume, so a single hot shard
     * cannot starve every other shard's reclamation within the pass.
     * >= 1.0 disables the cap (a lone fragmented shard may then use
     * the full budget, which is the right default when fragmentation
     * is not adversarially skewed).
     */
    double shardBudgetFraction = 1.0;
    /**
     * Floor on the overhead-control sleep. T_defrag / O_ub near-spins
     * under a real clock when a measured pass is sub-microsecond; the
     * floor keeps the duty cycle at or below O_ub (sleeping longer
     * only lowers it) without busy-polling the clock.
     */
    double minSleepSec = 100e-6;
    /**
     * Mesh / MeshHybrid: random page pairs probed for slot
     * disjointness per shard per pass. More probes find more of the
     * meshable pairs per pass at linearly more scan time; the pass
     * self-limits once the candidate pool thins. See docs/TUNING.md.
     */
    size_t meshProbeBudget = 128;
    /**
     * Mesh / MeshHybrid: only pages whose live 16-byte slots fill at
     * most this fraction are meshing candidates (the disjointness
     * threshold). Denser pages rarely pair and, meshed, split sooner.
     */
    double meshMaxOccupancy = 0.5;
    /**
     * Pause-SLO-adaptive barriers: when > 0, the per-barrier byte
     * bound is no longer the static batchBytes but an online value
     * steered toward this per-barrier pause target (seconds) from the
     * measured pauses — multiplicative decrease on overshoot, slow
     * additive recovery — clamped to [batchBytesFloor, batchBytes].
     * 0 (default) keeps the static legacy bound. See
     * BarrierBudgetAdapter (policy.h) and docs/TUNING.md.
     */
    double targetBarrierPauseSec = 0;
    /**
     * Smallest adaptive per-barrier bound. A floor keeps pathological
     * pause measurements (page-cache hiccups, scheduler preemption)
     * from collapsing barriers to single-object moves that can never
     * finish a pass.
     */
    size_t batchBytesFloor = 4 << 10;
    /**
     * Mid-pass abandonment: when > 0 and a batched StopTheWorld pass
     * is mid-flight, a tick that observes the control metric below
     * fLb × this fraction abandons the pass remainder instead of
     * running another barrier — mutator churn already met the goal.
     * 1.0 abandons as soon as the metric re-enters the band floor;
     * 0 (default) never abandons (the legacy behavior).
     */
    double midPassAbandonFraction = 0;
    /**
     * MeshHybrid pacing: the mesh stage runs only while physical
     * fragmentation exceeds this floor, so a heap whose RSS is
     * already tight stops paying mesh probe scans every tick.
     * 0 (default) meshes every tick (the legacy behavior).
     */
    double meshPacingFloor = 0;
};

/** What a controller tick did. Returned by value; no locking. */
struct ControlAction
{
    /** True if a defrag pass ran on this tick. */
    bool defragged = false;
    /**
     * One report per mechanism the policy invoked this tick, in
     * execution order — the authoritative per-mechanism attribution
     * (a Hybrid tick that fell back carries one campaign report and
     * one stw report, each with its own stats and charges).
     */
    std::vector<MechanismReport> byMechanism;
    /**
     * The tick's stats folded across byMechanism, kept for callers
     * that only need totals. In batched StopTheWorld mode this is one
     * barrier of the in-progress pass; stats.barriers /
     * stats.maxBarrier* carry the honest per-barrier numbers when a
     * tick ran more than one.
     */
    DefragStats stats;
    /**
     * The mutator-visible stop-the-world time of this tick, summed
     * over its barriers (model or measured). Zero for ticks whose
     * mechanisms never stop the world; the per-barrier max is in
     * stats, the per-mechanism split in byMechanism.
     */
    double pauseSec = 0;
    /**
     * Total defrag work time charged against the overhead budget:
     * the sum of every mechanism report's costSec.
     */
    double costSec = 0;
    /** True if an abort-rate fallback stage ran this tick. */
    bool fellBack = false;
    /** True if the tick abandoned a mid-pass remainder instead of
     *  running a barrier (ControlParams::midPassAbandonFraction). */
    bool abandoned = false;
};

/**
 * The two-state hysteresis controller — since the mechanism/policy
 * split a thin loop: it owns a DefragPolicy (built from params.mode by
 * makePolicy), watches the policy's control metric against the
 * [F_lb, F_ub] band, runs one policy tick per wake, and schedules the
 * next wake from the tick's charged cost. Everything mode-shaped
 * (which mechanisms run, in what order, on what share of the alpha
 * budget) lives in the policy; the pause-SLO batch adaptation lives in
 * the controller's BarrierBudgetAdapter.
 *
 * Threading contract: the controller itself is NOT thread-safe — drive
 * tick() from one thread at a time (a loop, or the concurrent-reloc
 * daemon's background thread). The heap work a tick triggers is safe
 * against concurrent mutators: the service's fragmentation metric and
 * every mechanism do their own per-shard locking. The alpha budget is
 * computed from the whole (all-shard) extent, so one tick's work is
 * bounded regardless of how many shards it steals across.
 */
class DefragController
{
  public:
    /** Hysteresis state (see the file comment). */
    enum class State
    {
        Waiting,
        Defragmenting,
    };

    /**
     * @param service the (sharded) heap to control; must outlive this
     * @param clock   time source; virtual clocks need useModeledTime
     * @param params  tuning; copied, later changes have no effect
     */
    DefragController(AnchorageService &service, const Clock &clock,
                     ControlParams params = {});

    /**
     * Give the controller a chance to act. Cheap no-op before
     * nextWake(). Call from a loop or a dedicated thread — one caller
     * at a time (see the class comment).
     */
    ControlAction tick();

    /** Absolute time of the next scheduled wake-up. */
    double nextWake() const { return nextWake_; }

    /** Current hysteresis state. Read from the driving thread only. */
    State state() const { return state_; }
    /** The (normalized) parameters the controller runs with. */
    const ControlParams &params() const { return params_; }

    /** Total time charged to defragmentation so far, seconds. */
    double totalDefragSec() const { return totalDefragSec_; }
    /** Total mutator-visible stop-the-world time so far, seconds. */
    double totalPauseSec() const { return totalPauseSec_; }
    /** Number of ticks that did defrag work (in batched StopTheWorld
     *  mode each such tick runs one barrier of a logical pass). */
    size_t passes() const { return passes_; }
    /** Number of ticks whose abort-rate fallback stage ran. */
    size_t fallbacks() const { return fallbacks_; }
    /** Stop-the-world barriers run so far (each bounded by
     *  batchBytes when batching is on). */
    size_t barriers() const { return barriers_; }
    /** Longest single barrier charged so far, seconds (model or
     *  measured, per useModeledTime). */
    double maxBarrierPauseSec() const { return maxBarrierPauseSec_; }

    /** Number of ticks that abandoned a mid-pass remainder. */
    size_t abandonments() const { return abandonments_; }

    /**
     * The per-barrier byte bound the next barrier will run under: the
     * adaptive value when targetBarrierPauseSec is set, else the
     * static batchBytes (SIZE_MAX when batching is off).
     */
    size_t batchBytesCurrent() const { return adapter_.current(); }

    /** The policy this controller runs (built from params.mode). */
    const DefragPolicy &policy() const { return *policy_; }

  private:
    ControlAction runPass();

    /** The policy's control metric (virtual, physical, or the worse
     *  of the two) against the live heap. */
    double controlFragmentation() const;

    AnchorageService &service_;
    const Clock &clock_;
    ControlParams params_;
    /** How the controller sees the heap; handed to the policy. */
    PolicyView view_;
    /** The tick strategy (owns its mechanisms). */
    std::unique_ptr<DefragPolicy> policy_;
    /** Online batchBytes steering toward targetBarrierPauseSec. */
    BarrierBudgetAdapter adapter_;
    State state_ = State::Waiting;
    double nextWake_ = 0;
    double totalDefragSec_ = 0;
    double totalPauseSec_ = 0;
    size_t passes_ = 0;
    size_t fallbacks_ = 0;
    size_t barriers_ = 0;
    size_t abandonments_ = 0;
    double maxBarrierPauseSec_ = 0;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_CONTROL_H
