/**
 * @file
 * Anchorage's defragmentation control algorithm (paper §4.3, "Control
 * system").
 *
 * The controller keeps fragmentation within [F_lb, F_ub] and the
 * fraction of time spent defragmenting within [O_lb, O_ub], using
 * hysteresis. It is a two-state machine:
 *
 *  - Waiting: wake every 500 ms; if fragmentation > F_ub, switch to
 *    Defragmenting.
 *  - Defragmenting: run partial passes, each moving at most an
 *    alpha-fraction of the heap; after a pass taking T_defrag, sleep
 *    T = T_defrag / O_ub; return to Waiting when fragmentation < F_lb
 *    or no further progress is possible.
 *
 * The controller is clock-driven (tick()), so the same code runs under
 * a real clock (examples) or a virtual clock (benchmarks, Figure 10/11).
 */

#ifndef ALASKA_ANCHORAGE_CONTROL_H
#define ALASKA_ANCHORAGE_CONTROL_H

#include <cstddef>

#include "anchorage/anchorage_service.h"
#include "sim/clock.h"

namespace alaska::anchorage
{

/** How the controller reclaims fragmentation (paper §4.3 vs §7). */
enum class DefragMode
{
    /** Classic Anchorage: every pass runs inside a barrier. */
    StopTheWorld,
    /** Concurrent relocation campaigns only; the world never stops. */
    Concurrent,
    /**
     * Concurrent campaigns first; if accessor aborts eat too much of a
     * campaign, a short stop-the-world pass finishes the hot remainder.
     */
    Hybrid,
};

/** Operator-tunable control parameters. */
struct ControlParams
{
    /** Fragmentation hysteresis bounds [F_lb, F_ub]. */
    double fLb = 1.15;
    double fUb = 1.40;
    /** Defrag overhead bounds [O_lb, O_ub] (fraction of time). */
    double oLb = 0.01;
    double oUb = 0.05;
    /** Aggression: max fraction of the heap moved per pass. */
    double alpha = 0.25;
    /** Waiting-state polling interval (the paper's 500 ms). */
    double pollInterval = 0.5;
    /**
     * Use the bandwidth-modeled pass duration instead of measured wall
     * time (required for virtual-clock experiments).
     */
    bool useModeledTime = false;
    /** Pass scheduling mode. */
    DefragMode mode = DefragMode::StopTheWorld;
    /**
     * Hybrid only: abort-rate feedback. When a campaign's abortRate()
     * exceeds this and it saw at least abortFallbackMinAttempts, the
     * accessors are contending too hard for concurrent progress and the
     * tick appends one stop-the-world pass over the remainder.
     */
    double abortFallbackRate = 0.5;
    uint64_t abortFallbackMinAttempts = 32;
};

/** What a controller tick did. */
struct ControlAction
{
    /** True if a defrag pass ran on this tick. */
    bool defragged = false;
    /** Stats of the pass (campaign + fallback folded together). */
    DefragStats stats;
    /**
     * The mutator-visible stop-the-world time of this tick (model or
     * measured). Zero for purely concurrent campaigns.
     */
    double pauseSec = 0;
    /**
     * Total defrag work time charged against the overhead budget —
     * equals pauseSec in StopTheWorld mode, campaign (+ fallback) time
     * otherwise.
     */
    double costSec = 0;
    /** True if a Hybrid tick fell back to a stop-the-world pass. */
    bool fellBack = false;
};

/** The two-state hysteresis controller. */
class DefragController
{
  public:
    enum class State
    {
        Waiting,
        Defragmenting,
    };

    DefragController(AnchorageService &service, const Clock &clock,
                     ControlParams params = {});

    /**
     * Give the controller a chance to act. Cheap no-op before
     * nextWake(). Call from a loop or a dedicated thread.
     */
    ControlAction tick();

    /** Absolute time of the next scheduled wake-up. */
    double nextWake() const { return nextWake_; }

    State state() const { return state_; }
    const ControlParams &params() const { return params_; }

    /** Total time charged to defragmentation so far, seconds. */
    double totalDefragSec() const { return totalDefragSec_; }
    /** Total mutator-visible stop-the-world time so far, seconds. */
    double totalPauseSec() const { return totalPauseSec_; }
    /** Number of passes run. */
    size_t passes() const { return passes_; }
    /** Number of Hybrid ticks that fell back to a barrier. */
    size_t fallbacks() const { return fallbacks_; }

  private:
    ControlAction runPass();

    AnchorageService &service_;
    const Clock &clock_;
    ControlParams params_;
    State state_ = State::Waiting;
    double nextWake_ = 0;
    double totalDefragSec_ = 0;
    double totalPauseSec_ = 0;
    size_t passes_ = 0;
    size_t fallbacks_ = 0;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_CONTROL_H
