/**
 * @file
 * Anchorage's defragmentation control algorithm (paper §4.3, "Control
 * system").
 *
 * The controller keeps fragmentation within [F_lb, F_ub] and the
 * fraction of time spent defragmenting within [O_lb, O_ub], using
 * hysteresis. It is a two-state machine:
 *
 *  - Waiting: wake every 500 ms; if fragmentation > F_ub, switch to
 *    Defragmenting.
 *  - Defragmenting: run partial passes, each moving at most an
 *    alpha-fraction of the heap; after a pass taking T_defrag, sleep
 *    T = T_defrag / O_ub; return to Waiting when fragmentation < F_lb
 *    or no further progress is possible.
 *
 * The controller is clock-driven (tick()), so the same code runs under
 * a real clock (examples) or a virtual clock (benchmarks, Figure 10/11).
 */

#ifndef ALASKA_ANCHORAGE_CONTROL_H
#define ALASKA_ANCHORAGE_CONTROL_H

#include <cstddef>

#include "anchorage/anchorage_service.h"
#include "sim/clock.h"

namespace alaska::anchorage
{

/**
 * How the controller reclaims fragmentation (paper §4.3 vs §7). Both
 * models steal across allocation shards: a pass or campaign ranks every
 * shard's sub-heaps by occupancy and evacuates sparse ones into denser
 * ones anywhere (see AnchorageService).
 */
enum class DefragMode
{
    /** Classic Anchorage: every pass runs inside a barrier (and holds
     *  every shard lock while the world is stopped). */
    StopTheWorld,
    /** Concurrent relocation campaigns only; the world never stops and
     *  the mover holds at most one shard lock at a time. */
    Concurrent,
    /**
     * Concurrent campaigns first; if accessor aborts eat too much of a
     * campaign, a short stop-the-world pass finishes the hot remainder.
     */
    Hybrid,
};

/**
 * Operator-tunable control parameters. Every knob is documented with
 * operational guidance in docs/TUNING.md. Plain data: set the fields
 * before constructing the controller and do not mutate them afterwards
 * (the controller keeps a copy).
 */
struct ControlParams
{
    /** Fragmentation hysteresis bounds [F_lb, F_ub]. */
    double fLb = 1.15;
    double fUb = 1.40;
    /** Defrag overhead bounds [O_lb, O_ub] (fraction of time). */
    double oLb = 0.01;
    double oUb = 0.05;
    /** Aggression: max fraction of the heap moved per pass. */
    double alpha = 0.25;
    /** Waiting-state polling interval (the paper's 500 ms). */
    double pollInterval = 0.5;
    /**
     * Use the bandwidth-modeled pass duration instead of measured wall
     * time (required for virtual-clock experiments).
     */
    bool useModeledTime = false;
    /** Pass scheduling mode. */
    DefragMode mode = DefragMode::StopTheWorld;
    /**
     * Hybrid only: abort-rate feedback. When a campaign's abortRate()
     * exceeds this and it saw at least abortFallbackMinAttempts, the
     * accessors are contending too hard for concurrent progress and the
     * tick appends one stop-the-world pass over the remainder.
     */
    double abortFallbackRate = 0.5;
    uint64_t abortFallbackMinAttempts = 32;
};

/** What a controller tick did. Returned by value; no locking. */
struct ControlAction
{
    /** True if a defrag pass ran on this tick. */
    bool defragged = false;
    /** Stats of the pass (campaign + fallback folded together). */
    DefragStats stats;
    /**
     * The mutator-visible stop-the-world time of this tick (model or
     * measured). Zero for purely concurrent campaigns.
     */
    double pauseSec = 0;
    /**
     * Total defrag work time charged against the overhead budget —
     * equals pauseSec in StopTheWorld mode, campaign (+ fallback) time
     * otherwise.
     */
    double costSec = 0;
    /** True if a Hybrid tick fell back to a stop-the-world pass. */
    bool fellBack = false;
};

/**
 * The two-state hysteresis controller.
 *
 * Threading contract: the controller itself is NOT thread-safe — drive
 * tick() from one thread at a time (a loop, or the concurrent-reloc
 * daemon's background thread). The heap work a tick triggers is safe
 * against concurrent mutators: the service's fragmentation metric and
 * both pass kinds do their own per-shard locking. The alpha budget is
 * computed from the whole (all-shard) extent, so one tick's work is
 * bounded regardless of how many shards it steals across.
 */
class DefragController
{
  public:
    /** Hysteresis state (see the file comment). */
    enum class State
    {
        Waiting,
        Defragmenting,
    };

    /**
     * @param service the (sharded) heap to control; must outlive this
     * @param clock   time source; virtual clocks need useModeledTime
     * @param params  tuning; copied, later changes have no effect
     */
    DefragController(AnchorageService &service, const Clock &clock,
                     ControlParams params = {});

    /**
     * Give the controller a chance to act. Cheap no-op before
     * nextWake(). Call from a loop or a dedicated thread — one caller
     * at a time (see the class comment).
     */
    ControlAction tick();

    /** Absolute time of the next scheduled wake-up. */
    double nextWake() const { return nextWake_; }

    /** Current hysteresis state. Read from the driving thread only. */
    State state() const { return state_; }
    /** The (normalized) parameters the controller runs with. */
    const ControlParams &params() const { return params_; }

    /** Total time charged to defragmentation so far, seconds. */
    double totalDefragSec() const { return totalDefragSec_; }
    /** Total mutator-visible stop-the-world time so far, seconds. */
    double totalPauseSec() const { return totalPauseSec_; }
    /** Number of passes run. */
    size_t passes() const { return passes_; }
    /** Number of Hybrid ticks that fell back to a barrier. */
    size_t fallbacks() const { return fallbacks_; }

  private:
    ControlAction runPass();

    AnchorageService &service_;
    const Clock &clock_;
    ControlParams params_;
    State state_ = State::Waiting;
    double nextWake_ = 0;
    double totalDefragSec_ = 0;
    double totalPauseSec_ = 0;
    size_t passes_ = 0;
    size_t fallbacks_ = 0;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_CONTROL_H
