/**
 * @file
 * CampaignMechanism: concurrent relocation campaigns (paper §7's
 * mark -> copy -> commit over the epoch/grace pipeline) as a
 * DefragMechanism. One-shot per run(); never stops the world, so the
 * report's pauseSec is zero by construction and mutators must hold
 * the Scoped translation discipline while this mechanism may act.
 */

#include "anchorage/mechanism.h"

#include "telemetry/telemetry.h"

namespace alaska::anchorage
{

namespace
{

class CampaignMechanism final : public DefragMechanism
{
  public:
    explicit CampaignMechanism(AnchorageService &service)
        : service_(service)
    {
    }

    MechanismKind
    kind() const override
    {
        return MechanismKind::Campaign;
    }

    MechanismReport
    run(const MechanismRequest &request) override
    {
        MechanismReport report;
        report.kind = MechanismKind::Campaign;
        report.stats = service_.relocateCampaign(request.budgetBytes);
        report.costSec = request.useModeledTime
                             ? report.stats.modeledSec
                             : report.stats.measuredSec;
        report.noProgress = report.stats.movedBytes == 0 &&
                            report.stats.reclaimedBytes == 0;
        if (report.stats.reclaimedBytes > 0)
            telemetry::count(
                telemetry::Counter::CampaignRecoveredBytes,
                report.stats.reclaimedBytes);
        return report;
    }

    bool
    requiresScopedDiscipline() const override
    {
        return true;
    }

  private:
    AnchorageService &service_;
};

} // anonymous namespace

std::unique_ptr<DefragMechanism>
makeCampaignMechanism(AnchorageService &service)
{
    return std::make_unique<CampaignMechanism>(service);
}

} // namespace alaska::anchorage
