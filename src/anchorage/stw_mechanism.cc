/**
 * @file
 * StwBatchedMechanism: batched stop-the-world compaction as a
 * DefragMechanism. Wraps AnchorageService::beginBatchedDefrag/step;
 * a logical pass survives across run() calls (one barrier each) so
 * the policy's overhead sleep between ticks is what spreads the
 * pause, exactly as the pre-split controller did.
 */

#include "anchorage/mechanism.h"

#include <optional>

#include "telemetry/telemetry.h"

namespace alaska::anchorage
{

namespace
{

class StwBatchedMechanism final : public DefragMechanism
{
  public:
    explicit StwBatchedMechanism(AnchorageService &service)
        : service_(service)
    {
    }

    MechanismKind
    kind() const override
    {
        return MechanismKind::Stw;
    }

    MechanismReport
    run(const MechanismRequest &request) override
    {
        if (!pass_ || pass_->done()) {
            pass_.emplace(service_.beginBatchedDefrag(
                request.budgetBytes, request.shardCapBytes));
        }

        MechanismReport report;
        report.kind = MechanismKind::Stw;
        if (request.runToCompletion) {
            // Fallback remainders run every barrier back to back in
            // one invocation (the policy decided the pause is worth
            // finishing now).
            while (!pass_->done())
                report.stats.accumulate(pass_->step(request.batchBytes));
        } else {
            report.stats = pass_->step(request.batchBytes);
        }

        report.pauseSec = request.useModeledTime
                              ? report.stats.modeledSec
                              : report.stats.measuredSec;
        report.costSec = report.pauseSec;
        report.ranToCompletion = pass_->done();
        if (report.ranToCompletion) {
            report.noProgress = pass_->totals().movedBytes == 0 &&
                                pass_->totals().reclaimedBytes == 0;
            pass_.reset();
        }
        if (report.stats.reclaimedBytes > 0)
            telemetry::count(telemetry::Counter::StwRecoveredBytes,
                             report.stats.reclaimedBytes);
        return report;
    }

    bool
    midPass() const override
    {
        return pass_ && !pass_->done();
    }

    void
    abandon() override
    {
        pass_.reset();
    }

    bool
    requiresScopedDiscipline() const override
    {
        return false;
    }

  private:
    AnchorageService &service_;
    /** In-progress batched pass, resumed run() by run(). */
    std::optional<AnchorageService::BatchedPass> pass_;
};

} // anonymous namespace

std::unique_ptr<DefragMechanism>
makeStwMechanism(AnchorageService &service)
{
    return std::make_unique<StwBatchedMechanism>(service);
}

} // namespace alaska::anchorage
