/**
 * @file
 * The mechanism half of the defrag pipeline's mechanism/policy split.
 *
 * A DefragMechanism is one way of turning fragmentation into free
 * memory: batched stop-the-world compaction, concurrent relocation
 * campaigns over the epoch/grace pipeline, or zero-copy page meshing.
 * Each implementation wraps the corresponding AnchorageService entry
 * point and reports its outcome in a uniform MechanismReport, so the
 * policy layer (policy.h) can compose mechanisms declaratively and the
 * controller/daemon/bench stack can attribute recovered bytes, CPU
 * time, and mutator pauses to the mechanism that earned them — never
 * folded together across mechanisms.
 *
 * Mechanisms are stateful only where the underlying service operation
 * is resumable (a batched stop-the-world pass spans many run() calls,
 * one barrier each); campaigns and mesh passes are one-shot per run().
 * Threading contract: like the controller, a mechanism is driven by
 * one thread at a time; the heap work it triggers does its own
 * per-shard locking.
 */

#ifndef ALASKA_ANCHORAGE_MECHANISM_H
#define ALASKA_ANCHORAGE_MECHANISM_H

#include <cstddef>
#include <cstdint>
#include <memory>

#include "anchorage/anchorage_service.h"

namespace alaska::anchorage
{

/** The three ways Anchorage recovers memory (paper §4.3, §7, Mesh). */
enum class MechanismKind : uint32_t
{
    /** Batched stop-the-world compaction barriers. */
    Stw,
    /** Concurrent mark/copy/commit relocation campaigns. */
    Campaign,
    /** Zero-copy page meshing. */
    Mesh,
    kCount,
};

constexpr size_t kNumMechanisms =
    static_cast<size_t>(MechanismKind::kCount);

/** Stable snake_case name for a mechanism kind (never nullptr). */
const char *mechanismName(MechanismKind kind);

/**
 * What a policy asks of one mechanism invocation. Plain data; the
 * policy fills in the fields its stage needs and the mechanism ignores
 * the rest (a mesh pass has no byte budget; a campaign has no batch).
 */
struct MechanismRequest
{
    /**
     * Byte budget for this invocation. For a batched stop-the-world
     * mechanism the budget is consumed only when a new pass begins —
     * a mid-pass run() resumes the in-progress pass's own budget.
     */
    size_t budgetBytes = 0;
    /** Max bytes moved inside any single barrier (SIZE_MAX = unbatched). */
    size_t batchBytes = SIZE_MAX;
    /** Per-shard fairness cap on the pass budget (SIZE_MAX = none). */
    size_t shardCapBytes = SIZE_MAX;
    /**
     * Stop-the-world only: drain the whole budget in this call (a
     * fallback remainder) instead of running one barrier and leaving
     * the pass resumable for the next tick.
     */
    bool runToCompletion = false;
    /** Charge modeled time instead of measured wall time. */
    bool useModeledTime = false;
    /** Mesh only: page pairs probed per shard this pass. */
    size_t meshProbeBudget = 128;
    /** Mesh only: max live-slot occupancy of a meshing candidate. */
    double meshMaxOccupancy = 0.5;
};

/**
 * Uniform outcome of one mechanism invocation. The stats are this
 * mechanism's alone — per-mechanism attribution is the point of the
 * report — and the cost/pause split is already charged in the
 * requested time base (model or measured).
 */
struct MechanismReport
{
    MechanismKind kind = MechanismKind::Stw;
    /** This invocation's stats (one mechanism, never folded). */
    DefragStats stats;
    /** Work time charged against the overhead budget, seconds. */
    double costSec = 0;
    /** Mutator-visible stop-the-world time, seconds (0 when the
     *  mechanism never stops the world). */
    double pauseSec = 0;
    /** Stop-the-world: the logical pass reached its end state (always
     *  true for one-shot mechanisms). */
    bool ranToCompletion = true;
    /** The mechanism found nothing left to do (its own emptiness
     *  test: totals for a finished pass, pages meshed, bytes moved). */
    bool noProgress = false;

    /** Memory this invocation gave back: extent trimmed by moves plus
     *  physical bytes released by meshing. */
    uint64_t
    recoveredBytes() const
    {
        return stats.reclaimedBytes + stats.bytesRecovered;
    }
};

/**
 * One pluggable defrag actuator. Policies own their mechanisms and
 * call run() per tick/stage; the interface is deliberately small so
 * unit tests can drive policies against stub mechanisms.
 */
class DefragMechanism
{
  public:
    virtual ~DefragMechanism() = default;

    /** Which actuator this is (stable; used for attribution). */
    virtual MechanismKind kind() const = 0;

    /** The kind's stable snake_case name. */
    const char *
    name() const
    {
        return mechanismName(kind());
    }

    /** Do one invocation's worth of work (see MechanismRequest). */
    virtual MechanismReport run(const MechanismRequest &request) = 0;

    /** True while a resumable pass is in progress (stop-the-world
     *  batching); one-shot mechanisms are never mid-pass. */
    virtual bool midPass() const { return false; }

    /** Drop an in-progress pass's remainder (no-op when not mid-pass
     *  or one-shot). The next run() starts fresh. */
    virtual void abandon() {}

    /**
     * True if mutators must run the Scoped translation discipline
     * while this mechanism may act (concurrent campaigns); false for
     * mechanisms that never change translation under a running
     * mutator (stop-the-world, meshing).
     */
    virtual bool requiresScopedDiscipline() const = 0;
};

/** Batched stop-the-world compaction over beginBatchedDefrag/step. */
std::unique_ptr<DefragMechanism>
makeStwMechanism(AnchorageService &service);

/** Concurrent relocation campaigns over relocateCampaign. */
std::unique_ptr<DefragMechanism>
makeCampaignMechanism(AnchorageService &service);

/** Zero-copy page meshing over meshPass. */
std::unique_ptr<DefragMechanism>
makeMeshMechanism(AnchorageService &service);

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_MECHANISM_H
