/**
 * @file
 * Anchorage (paper §4.3): a defragmenting heap allocator built as an
 * Alaska service. It exploits object mobility: at a stop-the-world
 * barrier it copies unpinned objects from the top of a source sub-heap
 * downward/elsewhere, updates their handle table entries (O(1) per
 * object), trims the freed tails, and returns them to the kernel with
 * MADV_DONTNEED.
 *
 * Allocation is sharded: the single sub-heap chain of the paper's
 * description is split into N per-shard chains, each with its own
 * mutex, active-sub-heap cursor, and placement cache. A thread
 * allocates from the shard selected by its HandleTable::threadOrdinal()
 * (the same mapping that picks its handle-ID free-list shard), so
 * halloc/hfree from different threads never touch the same lock unless
 * they collide mod the shard count. Frees locate the owning shard
 * through a lock-free region registry, so any thread can free any
 * pointer.
 *
 * Defragmentation is a cross-shard stealer. Two execution models share
 * the move loop's placement policy: defrag() stops the world and may
 * hold every shard lock at once (paper §4.3), while relocateCampaign()
 * moves the same candidates concurrently with running mutators using
 * the speculative mark/copy/CAS protocol of paper §7, holding at most
 * one shard lock at any instant — see
 * services/concurrent_reloc_daemon.h for the background-thread
 * packaging and anchorage/control.h for the mode knob. Either way a
 * sparse shard's sub-heaps can be evacuated into another shard's holes,
 * so an idle fragmented shard is reclaimed by work done on behalf of
 * the whole heap.
 */

#ifndef ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H
#define ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "anchorage/mesh_directory.h"
#include "anchorage/sub_heap.h"
#include "base/rng.h"
#include "core/runtime.h"
#include "core/service.h"
#include "sim/address_space.h"

namespace alaska::anchorage
{

/** Anchorage configuration. */
struct AnchorageConfig
{
    /** Capacity of each sub-heap. */
    size_t subHeapBytes = 8ull << 20;
    /**
     * Number of independent allocation shards. Each shard owns its own
     * chain of sub-heaps; the calling thread's shard is
     * HandleTable::threadOrdinal() mod this count, matching the handle
     * table's 16-way free-list sharding so a thread's handle-ID shard
     * and heap shard coincide. Rounded up to a power of two and clamped
     * to [1, 256] at construction. Sub-heaps are created lazily, so a
     * single-threaded program pays for exactly one shard regardless of
     * this setting. See docs/TUNING.md for sizing guidance.
     */
    size_t shards = 16;
    /**
     * Modeled copy bandwidth (bytes/sec) used to predict pause duration
     * for virtual-clock experiments; real-clock users ignore it.
     */
    double modelBandwidth = 4.0e9;
    /** Modeled fixed cost of one stop-the-world pause, seconds. */
    double modelPauseFloor = 200e-6;
    /**
     * Concurrent campaigns: bytes of committed-but-unreclaimed source
     * blocks that accumulate on the open limbo batch before the
     * campaign seals it behind a fresh grace ticket
     * (Runtime::beginGrace) and keeps moving. Sealed batches are freed
     * opportunistically once their grace elapses in the background;
     * the campaign itself only stalls at limboCapBytes. Smaller
     * batches retire sources sooner; larger ones amortize the epoch
     * advance and thread scan each seal costs. See docs/TUNING.md.
     */
    size_t graceBatchBytes = 256 << 10;
    /**
     * Concurrent campaigns: total committed-but-unreclaimed source
     * bytes (open batch plus sealed batches) the campaign may have
     * outstanding before it stalls on the oldest batch's grace. This
     * is the backpressure knob trading transient heap overshoot —
     * limbo bytes count in extent until freed — against mover stalls:
     * on an oversubscribed box one grace costs up to a scheduling
     * quantum per descheduled mid-scope mutator, so the cap is what
     * keeps the mover's pipeline full while graces run out in the
     * background. Clamped up to graceBatchBytes. See docs/TUNING.md.
     */
    size_t limboCapBytes = 4 << 20;
    /**
     * Seed for the mesh pass's pair-probing PRNG (base/rng.h). Meshing
     * is the only stochastic component of the service; a fixed seed
     * makes single-driver runs bit-reproducible.
     */
    uint64_t meshSeed = Rng::defaultSeed;
};

/**
 * Outcome of one defragmentation action — a stop-the-world pass, a
 * concurrent relocation campaign, or an accumulation of both. One
 * struct serves both modes so the controller budgets them uniformly;
 * the attempt/abort counters are zero for pure STW passes. Counters
 * aggregate over every shard the action touched.
 */
struct DefragStats
{
    size_t movedObjects = 0;
    size_t movedBytes = 0;
    /** Bytes of extent trimmed and MADV_DONTNEED-ed. */
    size_t reclaimedBytes = 0;
    /** Objects skipped because they were pinned. */
    size_t pinnedSkips = 0;
    /** Wall-clock duration of the pass, seconds. */
    double measuredSec = 0;
    /** Modeled duration (bandwidth model), for virtual-clock runs. */
    double modeledSec = 0;

    // --- concurrent-campaign counters (paper §7) -----------------------
    /** Objects the campaign tried to move (marked, or tried to mark). */
    uint64_t attempts = 0;
    /** Moves that committed. */
    uint64_t committed = 0;
    /** Moves aborted by accessor interference (mark cleared, pinned,
     *  freed under the mover). pinnedSkips counts the pinned subset. */
    uint64_t aborted = 0;
    /** Moves abandoned for lack of a strictly better destination. */
    uint64_t noSpace = 0;

    // --- meshing counters (DefragMode::Mesh / MeshHybrid) ---------------
    /** Virtual pages meshed onto a shared frame by this action. */
    uint64_t pagesMeshed = 0;
    /** Physical bytes released by meshing (pagesMeshed * page size) —
     *  RSS recovered with zero object copies, distinct from
     *  reclaimedBytes (extent trimmed by moves). */
    uint64_t bytesRecovered = 0;
    /** Meshes split back out because an allocation landed on a shared
     *  frame (the lazy copy-on-write undo; see MeshDirectory). */
    uint64_t splitFaults = 0;

    // --- grace accounting (epoch-based campaigns) ----------------------
    /** Grace periods waited for (initial drain, limbo reclamation —
     *  never between a mark and its commit). */
    uint64_t graceWaits = 0;
    /** Total wall time spent waiting for grace, seconds. The
     *  controller budgets this as campaign time, not pause time —
     *  mutators never stop during a grace wait. */
    double graceWaitSec = 0;
    /** Committed source blocks parked on the limbo list (freed only
     *  after the next grace period). */
    uint64_t limboParked = 0;

    // --- per-barrier pause accounting (batched passes) -----------------
    /**
     * Stop-the-world barriers this action ran (0 for pure campaigns).
     * A batched pass accumulates one per step, so honest per-pause
     * numbers are max fields below, not the folded pauseSec sum.
     */
    uint64_t barriers = 0;
    /** Bytes moved inside the single largest barrier. */
    uint64_t maxBarrierBytes = 0;
    /** Longest single barrier, measured wall seconds. */
    double maxBarrierSec = 0;
    /** Longest single barrier under the bandwidth model. */
    double maxBarrierModeledSec = 0;

    /** Fraction of attempts that accessors aborted; 0 if none tried. */
    double
    abortRate() const
    {
        return attempts == 0
                   ? 0.0
                   : static_cast<double>(aborted) /
                         static_cast<double>(attempts);
    }

    /** Fold another action's outcome into this one. */
    void
    accumulate(const DefragStats &other)
    {
        movedObjects += other.movedObjects;
        movedBytes += other.movedBytes;
        reclaimedBytes += other.reclaimedBytes;
        pinnedSkips += other.pinnedSkips;
        measuredSec += other.measuredSec;
        modeledSec += other.modeledSec;
        attempts += other.attempts;
        committed += other.committed;
        aborted += other.aborted;
        noSpace += other.noSpace;
        pagesMeshed += other.pagesMeshed;
        bytesRecovered += other.bytesRecovered;
        splitFaults += other.splitFaults;
        graceWaits += other.graceWaits;
        graceWaitSec += other.graceWaitSec;
        limboParked += other.limboParked;
        barriers += other.barriers;
        maxBarrierBytes = std::max(maxBarrierBytes, other.maxBarrierBytes);
        maxBarrierSec = std::max(maxBarrierSec, other.maxBarrierSec);
        maxBarrierModeledSec =
            std::max(maxBarrierModeledSec, other.maxBarrierModeledSec);
    }
};

/**
 * The defragmenting allocator service.
 *
 * Locking model: all allocation state lives in the per-shard chains;
 * there is no service-wide mutex. The mutator-facing paths take exactly
 * one shard lock — alloc() the calling thread's home shard, free() and
 * usableSize() the shard owning the pointer (found via the lock-free
 * region registry). Aggregate accessors visit the shards one at a time,
 * so concurrent callers may observe a transiently skewed sum; quiescent
 * reads are exact. defrag() runs inside a barrier holding every shard
 * lock; relocateCampaign() holds at most one shard lock at a time and
 * relies on the §7 mark/commit protocol for cross-shard atomicity.
 */
class AnchorageService : public Service
{
  public:
    /**
     * @param space where backing memory lives (real or phantom); must
     *        be safe for concurrent use (both implementations are)
     * @param config tuning knobs (shard count is normalized here)
     */
    explicit AnchorageService(AddressSpace &space,
                              AnchorageConfig config = {});
    ~AnchorageService() override;

    // --- Service interface ----------------------------------------------
    /** Attach to the runtime. Not thread-safe; call before use. */
    void init(Runtime &runtime) override;
    /** Detach. Not thread-safe; call after all heap use has ceased. */
    void deinit() override;
    /**
     * Allocate size bytes for handle id. Shard-affine: the fast path
     * takes only the calling thread's home-shard lock, so concurrent
     * allocations from threads on different shards never contend. When
     * the home chain has no reusable hole, the miss path may steal a
     * standing hole from another shard's *dense* heaps (at least half
     * live) via a non-blocking try_lock probe — preserving the
     * single-chain design's holes-anywhere-before-bump invariant, so
     * one shard's frees remain reusable extent for every thread. The
     * density gate is what keeps stealing from fighting a concurrent
     * relocation campaign: sparse heaps are campaign sources, and
     * their LIFO free lists would hand a just-evacuated block right
     * back. Oversized requests (> subHeapBytes) get a dedicated
     * sub-heap in the home shard.
     */
    void *alloc(uint32_t id, size_t size) override;
    /**
     * Free a block previously returned by alloc(). Any thread may free
     * any pointer: the owning shard is found via the lock-free region
     * registry and only that shard's lock is taken.
     */
    void free(uint32_t id, void *ptr) override;
    /** Block size backing ptr; 0 if unknown. Locks the owning shard. */
    size_t usableSize(const void *ptr) const override;
    /** Total used extent, summed shard by shard (transiently skewed
     *  under concurrent mutation; exact at quiescence). */
    size_t heapExtent() const override;
    /** Total live bytes, summed shard by shard (same caveat). */
    size_t activeBytes() const override;
    const char *name() const override { return "anchorage"; }

    // --- defragmentation ---------------------------------------------------
    /**
     * The paper's O(1) fragmentation metric: virtual extent of the heap
     * over total size of active objects, aggregated over every shard.
     * 1.0 when empty. Lock-light: one shard lock at a time.
     */
    double fragmentation() const;

    /**
     * Trigger a barrier and run one partial defragmentation pass moving
     * at most max_bytes of objects (the control algorithm passes
     * alpha * extent). Pinned objects are never moved. Inside the
     * barrier the pass holds every shard lock and may steal across
     * shards: sparse sub-heaps anywhere are evacuated into denser
     * sub-heaps anywhere. Implemented as a batched pass driven to
     * completion inside one barrier; use beginBatchedDefrag() to bound
     * each individual pause instead.
     */
    DefragStats defrag(size_t max_bytes);

  private:
    /** Identifies one sub-heap: shard index + index in its chain. */
    struct HeapRef
    {
        uint32_t shard;
        uint32_t heapIdx;
    };

  public:
    /**
     * A resumable, budget-bounded defragmentation pass (the paper §6
     * pause-time story at larger heaps): one logical pass — same global
     * ranking, same end state as a monolithic defrag(max_bytes) barrier
     * — split into a sequence of short barriers, each moving at most
     * the step's batch budget. The ranking, the per-source cursor, and
     * the source's hole index are carried across barriers; mutators run
     * freely between steps, and anything they invalidate (trimmed
     * tails, reused holes) is revalidated when the next barrier enters.
     * Sub-heaps a mutator creates mid-pass are not ranked as sources
     * until the next pass, but their tails are still trimmed by the
     * final sweep.
     *
     * Driving contract: one defrag driver at a time (the same
     * single-driver rule as DefragController); the pass must not
     * outlive its service. Dropping an unfinished pass is safe — the
     * heap is consistent after every barrier; only the final
     * trim-everything sweep is skipped, and the next pass performs it.
     */
    class BatchedPass
    {
      public:
        /** True once the pass reached its end state (budget spent, or
         *  every ranked source walked/capped) and ran its final sweep. */
        bool done() const { return done_; }

        /**
         * Run one barrier moving at most batch_bytes (saturated by the
         * pass's remaining budget; 0 = unbatched, the whole remaining
         * budget in this barrier). No-op once done(). Returns this
         * barrier's stats (barriers == 1, max* fields = this barrier).
         */
        DefragStats step(size_t batch_bytes);

        /** Stats accumulated over every barrier run so far. */
        const DefragStats &totals() const { return totals_; }

        /** Remaining byte budget of the pass. */
        size_t remainingBudget() const { return budget_; }

        /** Bytes moved out of each shard's sources so far — the
         *  accounting behind the per-shard cap. Indexed by shard. */
        const std::vector<size_t> &shardMovedBytes() const
        {
            return shardMoved_;
        }

      private:
        friend class AnchorageService;
        BatchedPass(AnchorageService &service, size_t max_bytes,
                    size_t shard_cap);

        AnchorageService *service_;
        /** Remaining pass-wide move budget, bytes. */
        size_t budget_;
        /** Max bytes any one shard's sources may contribute. */
        size_t shardCap_;
        std::vector<size_t> shardMoved_;
        /** Global emptiest-first source ranking; built in barrier #1. */
        std::vector<HeapRef> order_;
        bool ranked_ = false;
        bool done_ = false;
        /** Rank of the source currently being walked. */
        size_t rank_ = 0;
        /** Next block index to examine in that source (top-down walk);
         *  -1 = enter the source fresh at the next barrier. */
        int cursor_ = -1;
        /** Hole index of the current source (entries validated on pop,
         *  so it survives mutator interleavings between barriers). */
        SubHeap::CompactionIndex index_;
        DefragStats totals_;
    };

    /**
     * Begin a batched stop-the-world pass moving at most max_bytes in
     * total, with each shard's sources capped at shard_cap_bytes so one
     * hot shard cannot starve another's reclamation within the pass
     * (SIZE_MAX disables the cap). Runs no barrier itself; drive the
     * returned pass with step().
     */
    BatchedPass beginBatchedDefrag(size_t max_bytes,
                                   size_t shard_cap_bytes = SIZE_MAX);

    /** Full defragmentation: repeat passes until no progress. */
    DefragStats defragFully();

    /**
     * One concurrent relocation campaign (paper §7, epoch-based):
     * move up to max_bytes of objects from sparse sub-heaps (of any
     * shard) to strictly better locations — no barrier, no stopped
     * world, and no waiting on the move path. Each move is mark ->
     * pin-check -> copy -> CAS-commit, back to back: the abort window
     * is the microsecond-scale copy, not a grace period, so mutators
     * touching the object mid-move are the only abort source. The
     * committed *source* block is not freed inline — it parks on a
     * per-campaign limbo list, and once graceBatchBytes of sources
     * have parked (or the campaign finishes a source sub-heap) the
     * batch is sealed behind a grace ticket (Runtime::beginGrace) and
     * the walk continues; batches are freed once their grace has
     * elapsed in the background, the campaign stalling only when
     * limboCapBytes of sources are still outstanding. A batch's grace
     * proves every accessor scope that could hold a pre-commit
     * translation of a parked source has closed, so scoped readers
     * never observe freed memory. Writers are excluded by the pin
     * handshake
     * (pinned<T> / the KV policies' write()) — a pin seen at the
     * pin-check defers the move; a pin taken later aborts it via the
     * mark — which is why the grace wait can come *after* commit.
     *
     * Holds at most one shard lock at any instant and never a lock
     * across a grace wait: destinations are claimed under the
     * destination shard's lock, copies run lock-free, sources are
     * freed under the source shard's lock after reclamation. Mutators
     * must translate through the scoped path
     * (services/concurrent_reloc.h) while campaigns can run. At most
     * one campaign runs at a time; a second caller returns an empty
     * result immediately.
     *
     * Calls from a runtime-registered thread poll safepoints between
     * objects, so Hybrid-mode barriers never wait on more than one
     * in-flight object move.
     */
    DefragStats relocateCampaign(size_t max_bytes);

    /**
     * One page-meshing pass (Mesh-style defrag; see
     * anchorage/mesh_directory.h): shard by shard, under that shard's
     * lock, build a 16-byte-slot occupancy bitmap for every heap page
     * whose live-slot fill is in (0, max_occupancy], then probe up to
     * probe_budget random candidate pairs per shard and mesh every
     * disjoint pair found — the sparser page's frame is released and
     * both virtual pages share the denser page's frame. Recovers RSS
     * with zero object copies, zero handle-table writes, and zero
     * barriers: translation is untouched, so mutators under *any*
     * discipline (including Direct) keep running. Meshes undo
     * themselves lazily via the split-on-write/dissolve-on-discard
     * hooks in SubHeap.
     *
     * Single-driver like the other defrag entry points. modeledSec
     * charges a per-probe scan cost for virtual-clock runs.
     */
    DefragStats meshPass(size_t probe_budget, double max_occupancy);

    /**
     * RSS over live bytes — the *physical* analogue of
     * fragmentation(). Meshing shrinks this but not the virtual
     * metric (extents never move), so Mesh-mode control hysteresis
     * watches this one. 1.0 when empty.
     */
    double physicalFragmentation() const;

    /** The mesh registry (tests and stats; see mesh_directory.h). */
    const MeshDirectory &meshDirectory() const { return meshDir_; }

    /** RSS attributable to the heap (via the address space's pages). */
    size_t rss() const { return space_.rss(); }

    /** Sub-heaps currently mapped, across all shards. */
    size_t subHeapCount() const;

    // --- shard introspection ------------------------------------------------
    /** Per-shard accounting snapshot (see shardStats()). */
    struct ShardStats
    {
        /** Sub-heaps in this shard's chain. */
        size_t subHeaps = 0;
        /** Used extent of those sub-heaps, bytes. */
        size_t extent = 0;
        /** Bytes in live blocks. */
        size_t liveBytes = 0;
        /** Bytes in free (reusable) holes. */
        size_t freeBytes = 0;
    };

    /** Number of allocation shards (config.shards, normalized). */
    size_t shardCount() const { return shards_.size(); }

    /**
     * The calling thread's home shard index — where its allocations
     * land. Stable for the thread's lifetime; no locks.
     */
    size_t homeShardIndex() const;

    /** Accounting snapshot of one shard. Takes that shard's lock. */
    ShardStats shardStats(size_t shard) const;

  private:
    /** One relocation candidate snapshotted by a campaign. */
    struct Candidate
    {
        uint32_t id;
        uint64_t addr;
        uint32_t size;
        /** Source sub-heap. */
        HeapRef src;
        /** Rank of the source in the campaign's occupancy order. */
        size_t rank;
    };

    /**
     * One allocation shard. All fields are guarded by mutex; the chain
     * only grows (sub-heaps are never destroyed before the service),
     * so indices and SubHeap pointers are stable once published.
     */
    struct alignas(64) Shard
    {
        mutable std::mutex mutex;
        std::vector<std::unique_ptr<SubHeap>> heaps;
        /** Index of the sub-heap used for fresh allocations. */
        size_t cursor = 0;
        /**
         * Last chain index that satisfied a cursor miss; tried first on
         * the next miss so the steady-state miss path is O(1) amortized
         * instead of a chain scan. SIZE_MAX when cold. Invalidated by
         * defrag and trim (which change densities wholesale).
         */
        size_t fallbackHint = SIZE_MAX;
        /**
         * Chain indices ordered densest-first for fallback placement,
         * rebuilt lazily when dirty instead of re-sorted on every miss.
         */
        std::vector<size_t> densityOrder;
        bool orderDirty = true;
    };

    /**
     * Per-campaign destination cache: rank (into the campaign's heap
     * order) of the last successful cross-heap destination. Candidates
     * walked off one bump-packed source are near-identically sized, so
     * the next move almost always fits the same destination — trying
     * it first turns the O(heaps) lock-hop destination scan into one
     * lock acquisition amortized. SIZE_MAX when cold.
     */
    struct DestCache
    {
        size_t rank = SIZE_MAX;
    };

    /** Registry entry mapping an address range to its sub-heap. */
    struct HeapRegion
    {
        uint64_t base;
        uint64_t end;
        uint32_t shard;
        SubHeap *heap;
    };

    /** The calling thread's shard. */
    Shard &homeShard() { return *shards_[homeShardIndex()]; }

    /** Chain access by reference; caller holds the relevant locks. */
    SubHeap &
    heapAt(HeapRef ref)
    {
        return *shards_[ref.shard]->heaps[ref.heapIdx];
    }

    /**
     * Find the region containing addr via the current registry
     * snapshot. Lock-free (one acquire load + binary search); returns
     * nullptr if addr is outside every sub-heap.
     */
    const HeapRegion *regionOf(uint64_t addr) const;

    /**
     * Append a fresh sub-heap to sh's chain and publish its region.
     * Caller holds sh.mutex; takes regionsMutex_ internally.
     */
    SubHeap *addSubHeapLocked(Shard &sh, uint32_t shard_idx,
                              size_t bytes);

    /** Drop sh's placement caches. Caller holds sh.mutex. */
    void invalidatePlacementLocked(Shard &sh);

    /** Rebuild sh.densityOrder. Caller holds sh.mutex. */
    void rebuildDensityOrderLocked(Shard &sh);

    /** Run one barrier of a batched pass: stop the world, take every
     *  shard lock, run the move loop, account per-barrier stats. */
    DefragStats batchBarrier(BatchedPass &pass, size_t batch_bytes);

    /** The in-barrier move loop of one batched step. Caller holds the
     *  world stopped and every shard lock. */
    void moveBatchLocked(BatchedPass &pass, const PinnedSet &pinned,
                         size_t batch_bytes, DefragStats &stats);

    /** Pass epilogue: trim every sub-heap's tail and prune superseded
     *  region snapshots. Caller holds the world stopped and every
     *  shard lock (the one point with provably no registry readers). */
    void finishPassLocked(DefragStats &stats);

    /**
     * A committed move's source block, parked until the next grace
     * period proves no accessor scope can still hold its address.
     */
    struct LimboBlock
    {
        HeapRef src;
        uint64_t addr;
        uint32_t bytes;
    };

    /**
     * One complete concurrent move: revalidate one snapshotted
     * candidate, claim a strictly better destination, mark the entry,
     * check pins, copy the bytes, and CAS-commit — immediately, with
     * no grace period anywhere in the window. On commit the source
     * block parks on limbo (freed once its batch's grace elapses) and
     * the moved bytes are charged against the budget; on any failure
     * the claimed destination is released. Takes one shard lock at a
     * time; returns silently on stale candidates.
     */
    void relocateOneConcurrent(const Candidate &cand,
                               const std::vector<HeapRef> &order,
                               SubHeap::CompactionIndex &index,
                               DestCache &cache, DefragStats &stats,
                               std::vector<LimboBlock> &limbo,
                               size_t &budget);

    /**
     * A sealed limbo batch riding out its grace period: source blocks
     * whose commits all predate the ticket's snapshot, plus the
     * sources that finished evacuating by seal time (coalesced and
     * trimmed when the batch is freed — batches retire FIFO, so every
     * block such a source parked is free by then).
     */
    struct PendingReclaim
    {
        Runtime::GraceTicket ticket;
        std::vector<LimboBlock> blocks;
        size_t bytes = 0;
        std::vector<HeapRef> sources;
        /** telemetry::traceNowNs() at seal, for the grace_age_ns
         *  histogram and the retire-side "grace" trace span. */
        uint64_t sealNs = 0;
    };

    /** Seal the open limbo batch behind a fresh grace ticket and queue
     *  it on pending; no-op when the batch is empty. Never blocks. */
    void sealLimboBatch(std::deque<PendingReclaim> &pending,
                        std::vector<LimboBlock> &limbo,
                        size_t &limbo_bytes, size_t &pending_bytes);

    /**
     * Retire sealed batches FIFO: free every batch whose grace has
     * already elapsed (no wait), and while more than target_bytes are
     * still pending, stall on the oldest batch's grace — the
     * campaign's only steady-state wait, taken only under backpressure
     * or at a drain point (target_bytes == 0 empties the queue).
     */
    void drainPending(std::deque<PendingReclaim> &pending,
                      size_t &pending_bytes, size_t target_bytes,
                      DefragStats &stats);

    /** Free one retired batch's parked source blocks (shard-locked,
     *  one block at a time) and coalesce + trim its finished
     *  sources. The batch's grace must have elapsed. */
    void freeBatch(PendingReclaim &batch, DefragStats &stats);

    /** Coalesce a fully-walked source's holes, trim its tail, and
     *  invalidate the shard's placement cache. */
    void finishSource(const HeapRef &src, DefragStats &stats);

    /** Advance the campaign epoch and wait for grace, accounting the
     *  wait into stats. */
    void campaignGraceWait(DefragStats &stats);

    AddressSpace &space_;
    AnchorageConfig config_;
    Runtime *runtime_ = nullptr;

    /**
     * Mesh registry; declared before shards_ so sub-heap destructors
     * (whose trims call the discard hook) never outlive it. Every
     * sub-heap is attached at creation — the hook is one relaxed load
     * while no meshes exist, so non-mesh modes pay nothing.
     */
    MeshDirectory meshDir_;
    /** Pair-probing PRNG for meshPass (seeded by config.meshSeed). */
    Rng meshRng_;
    /** Directory split count already reported in a pass's stats, so
     *  each meshPass() reports the delta (single-driver, like the
     *  other defrag entry points). */
    uint64_t meshSplitsReported_ = 0;

    /** The allocation shards; sized at construction, never resized. */
    std::vector<std::unique_ptr<Shard>> shards_;

    /**
     * Address-range registry, published copy-on-write: readers load
     * regions_ with one acquire load and binary-search the (sorted,
     * immutable) snapshot; writers rebuild under regionsMutex_.
     * Superseded snapshots stay owned by ownedRegionMaps_ (a racing
     * reader can never observe a freed one) until a stop-the-world
     * pass prunes them — the barrier is the one point where no reader
     * can exist, bounding retention between defrag passes.
     */
    mutable std::mutex regionsMutex_;
    std::atomic<const std::vector<HeapRegion> *> regions_{nullptr};
    std::vector<std::unique_ptr<const std::vector<HeapRegion>>>
        ownedRegionMaps_;

    /** Guards the single-mover invariant for campaigns. */
    std::atomic<bool> campaignActive_{false};
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H
