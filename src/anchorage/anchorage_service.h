/**
 * @file
 * Anchorage (paper §4.3): a defragmenting heap allocator built as an
 * Alaska service. It exploits object mobility: at a stop-the-world
 * barrier it copies unpinned objects from the top of a source sub-heap
 * downward/elsewhere, updates their handle table entries (O(1) per
 * object), trims the freed tails, and returns them to the kernel with
 * MADV_DONTNEED.
 *
 * Two execution models share that move loop's placement policy:
 * defrag() stops the world (paper §4.3), while relocateCampaign()
 * moves the same candidates concurrently with running mutators using
 * the speculative mark/copy/CAS protocol of paper §7 — see
 * services/concurrent_reloc_daemon.h for the background-thread
 * packaging and anchorage/control.h for the mode knob.
 */

#ifndef ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H
#define ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "anchorage/sub_heap.h"
#include "core/runtime.h"
#include "core/service.h"
#include "sim/address_space.h"

namespace alaska::anchorage
{

/** Anchorage configuration. */
struct AnchorageConfig
{
    /** Capacity of each sub-heap. */
    size_t subHeapBytes = 8ull << 20;
    /**
     * Modeled copy bandwidth (bytes/sec) used to predict pause duration
     * for virtual-clock experiments; real-clock users ignore it.
     */
    double modelBandwidth = 4.0e9;
    /** Modeled fixed cost of one stop-the-world pause, seconds. */
    double modelPauseFloor = 200e-6;
};

/**
 * Outcome of one defragmentation action — a stop-the-world pass, a
 * concurrent relocation campaign, or an accumulation of both. One
 * struct serves both modes so the controller budgets them uniformly;
 * the attempt/abort counters are zero for pure STW passes.
 */
struct DefragStats
{
    size_t movedObjects = 0;
    size_t movedBytes = 0;
    /** Bytes of extent trimmed and MADV_DONTNEED-ed. */
    size_t reclaimedBytes = 0;
    /** Objects skipped because they were pinned. */
    size_t pinnedSkips = 0;
    /** Wall-clock duration of the pass, seconds. */
    double measuredSec = 0;
    /** Modeled duration (bandwidth model), for virtual-clock runs. */
    double modeledSec = 0;

    // --- concurrent-campaign counters (paper §7) -----------------------
    /** Objects the campaign tried to move (marked, or tried to mark). */
    uint64_t attempts = 0;
    /** Moves that committed. */
    uint64_t committed = 0;
    /** Moves aborted by accessor interference (mark cleared, pinned,
     *  freed under the mover). pinnedSkips counts the pinned subset. */
    uint64_t aborted = 0;
    /** Moves abandoned for lack of a strictly better destination. */
    uint64_t noSpace = 0;

    /** Fraction of attempts that accessors aborted; 0 if none tried. */
    double
    abortRate() const
    {
        return attempts == 0
                   ? 0.0
                   : static_cast<double>(aborted) /
                         static_cast<double>(attempts);
    }

    /** Fold another action's outcome into this one. */
    void
    accumulate(const DefragStats &other)
    {
        movedObjects += other.movedObjects;
        movedBytes += other.movedBytes;
        reclaimedBytes += other.reclaimedBytes;
        pinnedSkips += other.pinnedSkips;
        measuredSec += other.measuredSec;
        modeledSec += other.modeledSec;
        attempts += other.attempts;
        committed += other.committed;
        aborted += other.aborted;
        noSpace += other.noSpace;
    }
};

/** The defragmenting allocator service. */
class AnchorageService : public Service
{
  public:
    /**
     * @param space where backing memory lives (real or phantom)
     * @param config tuning knobs
     */
    explicit AnchorageService(AddressSpace &space,
                              AnchorageConfig config = {});
    ~AnchorageService() override;

    // --- Service interface ----------------------------------------------
    void init(Runtime &runtime) override;
    void deinit() override;
    void *alloc(uint32_t id, size_t size) override;
    void free(uint32_t id, void *ptr) override;
    size_t usableSize(const void *ptr) const override;
    size_t heapExtent() const override;
    size_t activeBytes() const override;
    const char *name() const override { return "anchorage"; }

    // --- defragmentation ---------------------------------------------------
    /**
     * The paper's O(1) fragmentation metric: virtual extent of the heap
     * over total size of active objects. 1.0 when empty.
     */
    double fragmentation() const;

    /**
     * Trigger a barrier and run one partial defragmentation pass moving
     * at most max_bytes of objects (the control algorithm passes
     * alpha * extent). Pinned objects are never moved.
     */
    DefragStats defrag(size_t max_bytes);

    /** Full defragmentation: repeat passes until no progress. */
    DefragStats defragFully();

    /**
     * One concurrent relocation campaign (paper §7): move up to
     * max_bytes of objects from sparse sub-heaps to strictly better
     * locations using the mark/copy/CAS protocol — no barrier, no
     * stopped world. Mutators must translate through the mark-aware
     * scoped path (services/concurrent_reloc.h) while campaigns can
     * run; each object an accessor touches mid-move is aborted and
     * retried in a later campaign. At most one campaign runs at a time;
     * a second caller returns an empty result immediately.
     *
     * Calls from a runtime-registered thread poll safepoints between
     * objects, so Hybrid-mode barriers never wait on more than one
     * in-flight object move.
     */
    DefragStats relocateCampaign(size_t max_bytes);

    /** RSS attributable to the heap (via the address space's pages). */
    size_t rss() const { return space_.rss(); }

    /** Number of sub-heaps currently mapped. */
    size_t subHeapCount() const;

  private:
    /** One relocation candidate snapshotted by a campaign. */
    struct Candidate
    {
        uint32_t id;
        uint64_t addr;
        uint32_t size;
        /** Index into heaps_ of the source sub-heap. */
        size_t heapIdx;
        /** Rank of the source in the campaign's occupancy order. */
        size_t rank;
    };

    /** The in-barrier move loop. Caller holds the world stopped. */
    DefragStats movePass(const PinnedSet &pinned, size_t max_bytes);

    /**
     * Try to move one snapshotted candidate concurrently. Updates stats
     * and budget; returns silently on stale candidates.
     */
    void moveOneConcurrent(const Candidate &cand,
                           const std::vector<size_t> &order,
                           SubHeap::CompactionIndex &index,
                           DefragStats &stats, size_t &budget);

    /** Find the sub-heap containing addr; nullptr if none. */
    SubHeap *heapOf(uint64_t addr);
    const SubHeap *heapOf(uint64_t addr) const;

    /** Allocate a defrag destination strictly "better" than src_addr. */
    SubHeapAlloc destAlloc(uint32_t id, size_t size, uint64_t src_addr,
                           SubHeap *src_heap,
                           SubHeap::CompactionIndex &index);

    AddressSpace &space_;
    AnchorageConfig config_;
    Runtime *runtime_ = nullptr;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<SubHeap>> heaps_;
    /** Index of the sub-heap used for fresh allocations. */
    size_t cursor_ = 0;
    /** Guards the single-mover invariant for campaigns. */
    std::atomic<bool> campaignActive_{false};
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H
