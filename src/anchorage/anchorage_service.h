/**
 * @file
 * Anchorage (paper §4.3): a defragmenting heap allocator built as an
 * Alaska service. It exploits object mobility: at a stop-the-world
 * barrier it copies unpinned objects from the top of a source sub-heap
 * downward/elsewhere, updates their handle table entries (O(1) per
 * object), trims the freed tails, and returns them to the kernel with
 * MADV_DONTNEED.
 */

#ifndef ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H
#define ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "anchorage/sub_heap.h"
#include "core/runtime.h"
#include "core/service.h"
#include "sim/address_space.h"

namespace alaska::anchorage
{

/** Anchorage configuration. */
struct AnchorageConfig
{
    /** Capacity of each sub-heap. */
    size_t subHeapBytes = 8ull << 20;
    /**
     * Modeled copy bandwidth (bytes/sec) used to predict pause duration
     * for virtual-clock experiments; real-clock users ignore it.
     */
    double modelBandwidth = 4.0e9;
    /** Modeled fixed cost of one stop-the-world pause, seconds. */
    double modelPauseFloor = 200e-6;
};

/** Outcome of one (possibly partial) defragmentation pass. */
struct DefragStats
{
    size_t movedObjects = 0;
    size_t movedBytes = 0;
    /** Bytes of extent trimmed and MADV_DONTNEED-ed. */
    size_t reclaimedBytes = 0;
    /** Objects skipped because they were pinned. */
    size_t pinnedSkips = 0;
    /** Wall-clock duration of the pass, seconds. */
    double measuredSec = 0;
    /** Modeled duration (bandwidth model), for virtual-clock runs. */
    double modeledSec = 0;
};

/** The defragmenting allocator service. */
class AnchorageService : public Service
{
  public:
    /**
     * @param space where backing memory lives (real or phantom)
     * @param config tuning knobs
     */
    explicit AnchorageService(AddressSpace &space,
                              AnchorageConfig config = {});
    ~AnchorageService() override;

    // --- Service interface ----------------------------------------------
    void init(Runtime &runtime) override;
    void deinit() override;
    void *alloc(uint32_t id, size_t size) override;
    void free(uint32_t id, void *ptr) override;
    size_t usableSize(const void *ptr) const override;
    size_t heapExtent() const override;
    size_t activeBytes() const override;
    const char *name() const override { return "anchorage"; }

    // --- defragmentation ---------------------------------------------------
    /**
     * The paper's O(1) fragmentation metric: virtual extent of the heap
     * over total size of active objects. 1.0 when empty.
     */
    double fragmentation() const;

    /**
     * Trigger a barrier and run one partial defragmentation pass moving
     * at most max_bytes of objects (the control algorithm passes
     * alpha * extent). Pinned objects are never moved.
     */
    DefragStats defrag(size_t max_bytes);

    /** Full defragmentation: repeat passes until no progress. */
    DefragStats defragFully();

    /** RSS attributable to the heap (via the address space's pages). */
    size_t rss() const { return space_.rss(); }

    /** Number of sub-heaps currently mapped. */
    size_t subHeapCount() const;

  private:
    /** The in-barrier move loop. Caller holds the world stopped. */
    DefragStats movePass(const PinnedSet &pinned, size_t max_bytes);

    /** Find the sub-heap containing addr; nullptr if none. */
    SubHeap *heapOf(uint64_t addr);
    const SubHeap *heapOf(uint64_t addr) const;

    /** Allocate a defrag destination strictly "better" than src_addr. */
    SubHeapAlloc destAlloc(uint32_t id, size_t size, uint64_t src_addr,
                           SubHeap *src_heap,
                           SubHeap::CompactionIndex &index);

    AddressSpace &space_;
    AnchorageConfig config_;
    Runtime *runtime_ = nullptr;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<SubHeap>> heaps_;
    /** Index of the sub-heap used for fresh allocations. */
    size_t cursor_ = 0;
};

} // namespace alaska::anchorage

#endif // ALASKA_ANCHORAGE_ANCHORAGE_SERVICE_H
