/**
 * @file
 * IR well-formedness and Alaska-invariant verification.
 *
 * Beyond generic SSA checks, the verifier enforces the central safety
 * property of the translation-insertion pass (§4.1.2): "each memory
 * access to a handle will operate on the translated pointer to its
 * backing memory as each access is dominated by a pin".
 */

#ifndef ALASKA_IR_VERIFIER_H
#define ALASKA_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/ir.h"

namespace alaska::ir
{

/** Verification report; empty errors == valid. */
struct VerifyResult
{
    std::vector<std::string> errors;
    bool ok() const { return errors.empty(); }
    std::string joined() const;
};

/** Generic SSA checks: terminators, dominance of uses, phi shape. */
VerifyResult verify(Function &function);

/**
 * Alaska invariants for a fully transformed function:
 *  - no Malloc/Free remain (all rewritten to Halloc/Hfree);
 *  - every Load/Store address chain is rooted in a Translate (or a
 *    non-pointer value);
 *  - no Translate result flows into another Translate;
 *  - every Translate is preceded by a PinStore of its operand into a
 *    valid slot of the function's pin set;
 *  - Release instructions have been consumed by the pin pass.
 */
VerifyResult verifyTransformed(Function &function);

} // namespace alaska::ir

#endif // ALASKA_IR_VERIFIER_H
