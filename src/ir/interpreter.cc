#include "ir/interpreter.h"

#include <cstdlib>
#include <optional>

#include "base/logging.h"
#include "core/pin.h"
#include "core/translate.h"

namespace alaska::ir
{

Interpreter::Interpreter(Module &module, Runtime *runtime)
    : module_(module), runtime_(runtime)
{
    for (auto &fn : module.functions)
        fn->renumber();
}

Interpreter::~Interpreter()
{
    for (void *p : rawBlocks_)
        std::free(p);
}

void
Interpreter::registerExternal(const std::string &name, ExternalFn fn)
{
    externals_[name] = std::move(fn);
}

int64_t
Interpreter::run(Function &function, const std::vector<int64_t> &args)
{
    ALASKA_ASSERT(args.size() == static_cast<size_t>(function.numArgs),
                  "%s expects %d args, got %zu", function.name.c_str(),
                  function.numArgs, args.size());
    return eval(function, args, 0);
}

int64_t
Interpreter::eval(Function &function, const std::vector<int64_t> &args,
                  int depth)
{
    ALASKA_ASSERT(depth < 256, "interpreter call stack overflow");
    function.renumber();
    std::vector<int64_t> values(function.instructionCount(), 0);

    // The function's pin set, materialized when PinSetAlloc executes.
    std::vector<uint64_t> pin_slots;
    std::optional<PinFrame> pin_frame;

    BasicBlock *block = function.entry();
    BasicBlock *prev = nullptr;

    auto get = [&](const Instruction *inst) -> int64_t {
        return values[static_cast<size_t>(inst->id)];
    };

    for (;;) {
        // Phis first, as a parallel copy from the incoming edge.
        std::vector<std::pair<Instruction *, int64_t>> phi_updates;
        for (auto &inst : block->insts) {
            if (inst->op != Op::Phi)
                break; // phis are grouped at the top by construction
            bool found = false;
            for (size_t k = 0; k < inst->phiBlocks.size(); k++) {
                if (inst->phiBlocks[k] == prev) {
                    phi_updates.emplace_back(inst.get(),
                                             get(inst->operands[k]));
                    found = true;
                    break;
                }
            }
            ALASKA_ASSERT(found || prev == nullptr,
                          "phi in %s has no incoming for pred %s",
                          block->name.c_str(),
                          prev ? prev->name.c_str() : "<entry>");
        }
        for (auto &[phi, value] : phi_updates)
            values[static_cast<size_t>(phi->id)] = value;

        for (auto &owned : block->insts) {
            Instruction *inst = owned.get();
            if (inst->op == Op::Phi)
                continue;
            stats_.instructions++;
            auto op0 = [&] { return get(inst->operands[0]); };
            auto op1 = [&] { return get(inst->operands[1]); };
            int64_t result = 0;
            switch (inst->op) {
              case Op::Const:
                result = inst->imm;
                break;
              case Op::Arg:
                result = args[static_cast<size_t>(inst->imm)];
                break;
              case Op::Add: result = op0() + op1(); break;
              case Op::Sub: result = op0() - op1(); break;
              case Op::Mul: result = op0() * op1(); break;
              case Op::Div:
                ALASKA_ASSERT(op1() != 0, "division by zero");
                result = op0() / op1();
                break;
              case Op::Shl: result = op0() << op1(); break;
              case Op::Shr:
                result = static_cast<int64_t>(
                    static_cast<uint64_t>(op0()) >>
                    static_cast<uint64_t>(op1()));
                break;
              case Op::And: result = op0() & op1(); break;
              case Op::Or: result = op0() | op1(); break;
              case Op::Xor: result = op0() ^ op1(); break;
              case Op::CmpEq: result = op0() == op1(); break;
              case Op::CmpLt: result = op0() < op1(); break;
              case Op::Gep:
                result = op0() + 8 * op1();
                break;
              case Op::Load:
                stats_.loads++;
                result = *reinterpret_cast<int64_t *>(op0());
                break;
              case Op::Store:
                stats_.stores++;
                *reinterpret_cast<int64_t *>(op0()) = op1();
                break;
              case Op::Malloc: {
                void *p = std::malloc(static_cast<size_t>(op0()));
                rawBlocks_.insert(p);
                result = reinterpret_cast<int64_t>(p);
                break;
              }
              case Op::Free: {
                void *p = reinterpret_cast<void *>(op0());
                ALASKA_ASSERT(rawBlocks_.erase(p) == 1,
                              "free of unknown pointer");
                std::free(p);
                break;
              }
              case Op::Halloc:
                ALASKA_ASSERT(runtime_ != nullptr,
                              "halloc requires a runtime");
                result = reinterpret_cast<int64_t>(
                    runtime_->halloc(static_cast<size_t>(op0())));
                break;
              case Op::Hfree:
                runtime_->hfree(reinterpret_cast<void *>(op0()));
                break;
              case Op::Translate:
                stats_.translations++;
                result = reinterpret_cast<int64_t>(
                    translate(reinterpret_cast<void *>(op0())));
                break;
              case Op::Release:
                break; // metadata only; removed by the pin pass
              case Op::PinSetAlloc:
                ALASKA_ASSERT(!pin_frame.has_value(),
                              "duplicate pinset.alloc");
                pin_slots.assign(static_cast<size_t>(inst->imm), 0);
                pin_frame.emplace(pin_slots.data(),
                                  static_cast<uint32_t>(pin_slots.size()));
                break;
              case Op::PinStore:
                stats_.pinStores++;
                ALASKA_ASSERT(pin_frame.has_value(),
                              "pinset.store without pinset.alloc");
                pin_slots[static_cast<size_t>(inst->imm)] =
                    static_cast<uint64_t>(op0());
                break;
              case Op::Safepoint:
                stats_.polls++;
                if (runtime_)
                    poll();
                break;
              case Op::Call: {
                Function &callee =
                    *module_.functions[static_cast<size_t>(inst->imm)];
                std::vector<int64_t> call_args;
                call_args.reserve(inst->operands.size());
                for (Instruction *operand : inst->operands)
                    call_args.push_back(get(operand));
                result = eval(callee, call_args, depth + 1);
                break;
              }
              case Op::CallExternal: {
                stats_.externalCalls++;
                const std::string &name =
                    module_.externals[static_cast<size_t>(inst->imm)];
                auto it = externals_.find(name);
                ALASKA_ASSERT(it != externals_.end(),
                              "external %s not registered", name.c_str());
                std::vector<int64_t> call_args;
                call_args.reserve(inst->operands.size());
                for (Instruction *operand : inst->operands)
                    call_args.push_back(get(operand));
                result = it->second(call_args);
                break;
              }
              case Op::Br:
                prev = block;
                block = inst->targets[0];
                goto next_block;
              case Op::CondBr:
                prev = block;
                block = op0() ? inst->targets[0] : inst->targets[1];
                goto next_block;
              case Op::Ret:
                return inst->operands.empty() ? 0 : op0();
              case Op::Phi:
                break;
            }
            if (inst->producesValue())
                values[static_cast<size_t>(inst->id)] = result;
        }
        panic("block %s has no terminator", block->name.c_str());
      next_block:;
    }
}

} // namespace alaska::ir
