/**
 * @file
 * A small SSA intermediate representation.
 *
 * The Alaska paper implements its transformations as LLVM passes; this
 * repository reimplements the same algorithms over a compact IR so the
 * compiler half of the system is reproducible without an LLVM build
 * (see DESIGN.md, "Substitutions"). The IR deliberately mirrors the
 * LLVM constructs the paper's Algorithm 1 manipulates: basic blocks,
 * phis, getelementptr-style address arithmetic, loads/stores, calls,
 * and loop preheaders.
 *
 * Memory model: all values are 64-bit integers; Load/Store move one
 * 64-bit word at mem[addr + 8*index]. Allocation sites are Malloc
 * instructions until the compiler rewrites them to Halloc.
 */

#ifndef ALASKA_IR_IR_H
#define ALASKA_IR_IR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace alaska::ir
{

class BasicBlock;
class Function;
class Module;

/** Instruction opcodes. */
enum class Op
{
    // Values
    Const,   ///< immediate integer (imm)
    Arg,     ///< function argument (imm = index)
    // Arithmetic / logic
    Add, Sub, Mul, Div, Shl, Shr, And, Or, Xor,
    CmpEq, CmpLt,
    // Memory
    Gep,     ///< address arithmetic: op0 + 8 * op1 (getelementptr-like)
    Load,    ///< result = mem[op0]
    Store,   ///< mem[op0] = op1
    Malloc,  ///< allocate op0 bytes (libc face)
    Free,    ///< free op0
    Halloc,  ///< allocate op0 bytes behind a handle (after rewrite)
    Hfree,   ///< free a handle allocation
    // Control
    Phi,     ///< SSA phi; incoming values parallel the pred list
    Br,      ///< unconditional branch (block target)
    CondBr,  ///< conditional branch (op0; two block targets)
    Ret,     ///< return (optional op0)
    Call,    ///< call to a Function in this module
    CallExternal, ///< call to precompiled code (escape handling, §4.1.4)
    // Inserted by the Alaska passes
    Translate,   ///< handle -> raw pointer (op0), paper §4.1.2
    Release,     ///< end of a translation's lifetime (removed pre-run)
    PinSetAlloc, ///< function prelude: pin set of imm slots (§4.1.3)
    PinStore,    ///< pin set slot imm = op0 (a maybe-handle)
    Safepoint,   ///< poll point (§4.1.3)
};

/** One SSA instruction. */
class Instruction
{
  public:
    Instruction(Op op, std::vector<Instruction *> operands = {},
                int64_t imm = 0)
        : op(op), operands(std::move(operands)), imm(imm)
    {}

    Op op;
    std::vector<Instruction *> operands;
    /** Immediate payload: constant value, arg index, pin slot, ... */
    int64_t imm = 0;
    /** Printing/debug id, assigned by Function::renumber(). */
    int id = -1;
    /** Owning block. */
    BasicBlock *parent = nullptr;

    /** For Phi: incoming blocks, parallel to operands. */
    std::vector<BasicBlock *> phiBlocks;
    /** For Br/CondBr: successor blocks. */
    std::vector<BasicBlock *> targets;

    /** Pointer-typed (handle-bearing) value — computed by analysis. */
    bool pointerLike = false;
    /** For Arg/Load: the builder may declare the value a pointer. */
    bool declaredPointer = false;

    bool isTerminator() const
    {
        return op == Op::Br || op == Op::CondBr || op == Op::Ret;
    }

    /** True if this instruction produces a usable SSA value. */
    bool
    producesValue() const
    {
        switch (op) {
          case Op::Store:
          case Op::Free:
          case Op::Hfree:
          case Op::Br:
          case Op::CondBr:
          case Op::Ret:
          case Op::Release:
          case Op::PinSetAlloc:
          case Op::PinStore:
          case Op::Safepoint:
            return false;
          default:
            return true;
        }
    }
};

/** A basic block: an instruction list ending in a terminator. */
class BasicBlock
{
  public:
    explicit BasicBlock(std::string name) : name(std::move(name)) {}

    std::string name;
    std::vector<std::unique_ptr<Instruction>> insts;
    Function *parent = nullptr;

    /** Predecessors, rebuilt by Function::computeCfg(). */
    std::vector<BasicBlock *> preds;

    Instruction *
    terminator() const
    {
        return insts.empty() ? nullptr : insts.back().get();
    }

    /** Successor blocks (from the terminator). */
    std::vector<BasicBlock *>
    successors() const
    {
        Instruction *term = terminator();
        if (!term || !term->isTerminator())
            return {};
        return term->targets;
    }

    /** Index of an instruction within this block; -1 if absent. */
    int indexOf(const Instruction *inst) const;

    /** Insert inst before position idx; takes ownership. */
    Instruction *insertAt(size_t idx,
                          std::unique_ptr<Instruction> inst);
    /** Append (before any existing terminator stays caller's concern). */
    Instruction *append(std::unique_ptr<Instruction> inst);
    /** Insert immediately before `before` (must be in this block). */
    Instruction *insertBefore(const Instruction *before,
                              std::unique_ptr<Instruction> inst);
    /** Remove (and destroy) an instruction; it must have no users. */
    void erase(Instruction *inst);
};

/** A function: blocks[0] is the entry. */
class Function
{
  public:
    Function(std::string name, int num_args)
        : name(std::move(name)), numArgs(num_args)
    {}

    std::string name;
    int numArgs;
    std::vector<std::unique_ptr<BasicBlock>> blocks;
    /** Arg instructions, one per argument, living in the entry block. */
    std::vector<Instruction *> args;
    Module *parent = nullptr;

    BasicBlock *entry() const { return blocks.front().get(); }

    /** Create and append a block. */
    BasicBlock *addBlock(const std::string &name);

    /** Recompute predecessor lists from terminators. */
    void computeCfg();

    /** Re-assign instruction ids in block/instruction order. */
    void renumber();

    /** Total instruction count (the paper's code-size metric). */
    size_t instructionCount() const;

    /** Recompute the pointerLike flags by fixpoint (see ir.cc). */
    void inferPointers();
};

/** A module: functions plus the names of known external functions. */
class Module
{
  public:
    Function *addFunction(const std::string &name, int num_args);
    Function *function(const std::string &name) const;

    /** Intern an external function name; returns its index (the imm
     *  payload of CallExternal instructions). */
    int externalIndex(const std::string &name);

    std::vector<std::unique_ptr<Function>> functions;
    std::vector<std::string> externals;

    /** Total instruction count across functions. */
    size_t instructionCount() const;
};

/** Render a function or module as text (for tests and debugging). */
std::string toString(const Function &function);
std::string toString(const Module &module);

} // namespace alaska::ir

#endif // ALASKA_IR_IR_H
