/**
 * @file
 * Convenience builder for constructing IR programs in tests, examples
 * and the benchmark corpus.
 */

#ifndef ALASKA_IR_BUILDER_H
#define ALASKA_IR_BUILDER_H

#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "ir/ir.h"

namespace alaska::ir
{

/** Appends instructions to a current block. */
class Builder
{
  public:
    explicit Builder(Function &function) : function_(function)
    {
        if (function.blocks.empty()) {
            block_ = function.addBlock("entry");
            for (int i = 0; i < function.numArgs; i++) {
                auto *arg = emit(Op::Arg, {}, i);
                function.args.push_back(arg);
            }
        } else {
            block_ = function.entry();
        }
    }

    /** Switch the insertion point to a block. */
    void setBlock(BasicBlock *block) { block_ = block; }
    BasicBlock *block() const { return block_; }

    /** Create a new block in the function. */
    BasicBlock *newBlock(const std::string &name)
    {
        return function_.addBlock(name);
    }

    /** Mark an argument as pointer-typed. */
    void
    declarePointerArg(int index)
    {
        function_.args[static_cast<size_t>(index)]->declaredPointer = true;
    }

    Instruction *constant(int64_t v) { return emit(Op::Const, {}, v); }
    Instruction *arg(int i) { return function_.args[static_cast<size_t>(i)]; }

    Instruction *add(Instruction *a, Instruction *b)
    { return emit(Op::Add, {a, b}); }
    Instruction *sub(Instruction *a, Instruction *b)
    { return emit(Op::Sub, {a, b}); }
    Instruction *mul(Instruction *a, Instruction *b)
    { return emit(Op::Mul, {a, b}); }
    Instruction *div(Instruction *a, Instruction *b)
    { return emit(Op::Div, {a, b}); }
    Instruction *shl(Instruction *a, Instruction *b)
    { return emit(Op::Shl, {a, b}); }
    Instruction *shr(Instruction *a, Instruction *b)
    { return emit(Op::Shr, {a, b}); }
    Instruction *bitAnd(Instruction *a, Instruction *b)
    { return emit(Op::And, {a, b}); }
    Instruction *bitOr(Instruction *a, Instruction *b)
    { return emit(Op::Or, {a, b}); }
    Instruction *bitXor(Instruction *a, Instruction *b)
    { return emit(Op::Xor, {a, b}); }
    Instruction *cmpEq(Instruction *a, Instruction *b)
    { return emit(Op::CmpEq, {a, b}); }
    Instruction *cmpLt(Instruction *a, Instruction *b)
    { return emit(Op::CmpLt, {a, b}); }

    /** addr = base + 8 * index. */
    Instruction *gep(Instruction *base, Instruction *index)
    { return emit(Op::Gep, {base, index}); }

    Instruction *
    load(Instruction *addr, bool pointer_result = false)
    {
        auto *inst = emit(Op::Load, {addr});
        inst->declaredPointer = pointer_result;
        return inst;
    }

    Instruction *store(Instruction *addr, Instruction *value)
    { return emit(Op::Store, {addr, value}); }

    Instruction *mallocBytes(Instruction *size)
    { return emit(Op::Malloc, {size}); }
    Instruction *freePtr(Instruction *ptr)
    { return emit(Op::Free, {ptr}); }

    Instruction *
    phi()
    {
        return emit(Op::Phi, {});
    }

    /** Add an incoming (value, pred) pair to a phi. */
    static void
    addIncoming(Instruction *phi, Instruction *value, BasicBlock *pred)
    {
        ALASKA_ASSERT(phi->op == Op::Phi, "addIncoming on non-phi");
        phi->operands.push_back(value);
        phi->phiBlocks.push_back(pred);
    }

    Instruction *
    br(BasicBlock *target)
    {
        auto *inst = emit(Op::Br, {});
        inst->targets = {target};
        return inst;
    }

    Instruction *
    condBr(Instruction *cond, BasicBlock *if_true, BasicBlock *if_false)
    {
        auto *inst = emit(Op::CondBr, {cond});
        inst->targets = {if_true, if_false};
        return inst;
    }

    Instruction *
    ret(Instruction *value = nullptr)
    {
        return value ? emit(Op::Ret, {value}) : emit(Op::Ret, {});
    }

    Instruction *
    call(Function *callee, std::vector<Instruction *> call_args,
         bool pointer_result = false)
    {
        auto *inst = emit(Op::Call, std::move(call_args));
        inst->imm = calleeIndex(callee);
        inst->declaredPointer = pointer_result;
        return inst;
    }

    Instruction *
    callExternal(const std::string &name,
                 std::vector<Instruction *> call_args)
    {
        auto *inst = emit(Op::CallExternal, std::move(call_args));
        inst->imm = function_.parent->externalIndex(name);
        return inst;
    }

    Function &function() { return function_; }

  private:
    Instruction *
    emit(Op op, std::vector<Instruction *> operands, int64_t imm = 0)
    {
        return block_->append(
            std::make_unique<Instruction>(op, std::move(operands), imm));
    }

    int64_t
    calleeIndex(Function *callee)
    {
        Module *module = function_.parent;
        ALASKA_ASSERT(module != nullptr, "function not in a module");
        for (size_t i = 0; i < module->functions.size(); i++) {
            if (module->functions[i].get() == callee)
                return static_cast<int64_t>(i);
        }
        panic("callee not in module");
    }

    Function &function_;
    BasicBlock *block_;
};

} // namespace alaska::ir

#endif // ALASKA_IR_BUILDER_H
