#include "ir/verifier.h"

#include <unordered_set>

#include "ir/analysis.h"

namespace alaska::ir
{

std::string
VerifyResult::joined() const
{
    std::string out;
    for (const auto &error : errors)
        out += error + "\n";
    return out;
}

VerifyResult
verify(Function &function)
{
    VerifyResult result;
    auto fail = [&](const std::string &message) {
        result.errors.push_back(function.name + ": " + message);
    };

    if (function.blocks.empty()) {
        fail("function has no blocks");
        return result;
    }
    for (auto &block : function.blocks) {
        if (block->insts.empty() || !block->terminator()->isTerminator()) {
            fail("block " + block->name + " lacks a terminator");
            return result;
        }
        bool seen_non_phi = false;
        for (size_t i = 0; i + 1 < block->insts.size(); i++) {
            if (block->insts[i]->isTerminator())
                fail("block " + block->name +
                     " has a terminator in mid-block");
            if (block->insts[i]->op != Op::Phi) {
                seen_non_phi = true;
            } else if (seen_non_phi) {
                fail("block " + block->name + " has a non-leading phi");
            }
        }
    }

    function.computeCfg();
    DominatorTree domtree(function);

    for (auto &block : function.blocks) {
        for (auto &inst : block->insts) {
            if (inst->op == Op::Phi) {
                // One incoming per predecessor.
                std::unordered_set<BasicBlock *> preds(
                    block->preds.begin(), block->preds.end());
                if (inst->phiBlocks.size() != preds.size()) {
                    fail("phi arity mismatch in " + block->name);
                    continue;
                }
                for (size_t k = 0; k < inst->phiBlocks.size(); k++) {
                    if (!preds.count(inst->phiBlocks[k]))
                        fail("phi incoming from non-pred in " +
                             block->name);
                    // Operand must dominate the incoming edge's source.
                    Instruction *v = inst->operands[k];
                    if (v->producesValue() &&
                        !domtree.dominates(
                            v, inst->phiBlocks[k]->terminator()) &&
                        v != inst->phiBlocks[k]->terminator()) {
                        fail("phi operand does not dominate edge in " +
                             block->name);
                    }
                }
            } else {
                for (Instruction *operand : inst->operands) {
                    if (!operand->producesValue())
                        fail("operand is not a value in " + block->name);
                    else if (!domtree.dominates(operand, inst.get()))
                        fail("use before def in " + block->name);
                }
            }
        }
    }
    return result;
}

namespace
{

/** Walk a Gep/address chain to its root value. */
const Instruction *
addressRoot(const Instruction *addr)
{
    while (addr->op == Op::Gep || addr->op == Op::Add ||
           addr->op == Op::Sub) {
        addr = addr->operands[0];
    }
    return addr;
}

} // anonymous namespace

VerifyResult
verifyTransformed(Function &function)
{
    VerifyResult result = verify(function);
    auto fail = [&](const std::string &message) {
        result.errors.push_back(function.name + ": " + message);
    };

    function.inferPointers();

    int64_t pin_set_size = -1;
    for (auto &inst : function.entry()->insts) {
        if (inst->op == Op::PinSetAlloc)
            pin_set_size = inst->imm;
    }

    for (auto &block : function.blocks) {
        for (size_t i = 0; i < block->insts.size(); i++) {
            Instruction *inst = block->insts[i].get();
            switch (inst->op) {
              case Op::Malloc:
                fail("residual malloc (not rewritten to halloc)");
                break;
              case Op::Free:
                fail("residual free (not rewritten to hfree)");
                break;
              case Op::Release:
                fail("residual release (not consumed by pin pass)");
                break;
              case Op::Load:
              case Op::Store: {
                const Instruction *root = addressRoot(inst->operands[0]);
                if (root->pointerLike && root->op != Op::Translate) {
                    fail("memory access in " + block->name +
                         " not dominated by a translation");
                }
                break;
              }
              case Op::Translate: {
                const Instruction *root = addressRoot(inst->operands[0]);
                if (root->op == Op::Translate)
                    fail("translate of a translation result");
                // The paper: "before a handle is translated, the handle
                // is stored in the pin set".
                if (i == 0 ||
                    block->insts[i - 1]->op != Op::PinStore ||
                    block->insts[i - 1]->operands[0] !=
                        inst->operands[0]) {
                    fail("translate without an immediately preceding "
                         "pin of its operand");
                } else if (pin_set_size < 0 ||
                           block->insts[i - 1]->imm >= pin_set_size) {
                    fail("pin slot out of range of pinset.alloc");
                }
                break;
              }
              default:
                break;
            }
        }
    }
    return result;
}

} // namespace alaska::ir
