#include "ir/analysis.h"

#include <algorithm>

#include "base/logging.h"

namespace alaska::ir
{

// --- DominatorTree ----------------------------------------------------------

DominatorTree::DominatorTree(Function &function) : function_(function)
{
    function.computeCfg();

    // Postorder DFS from the entry, then reverse.
    std::unordered_set<BasicBlock *> visited;
    std::vector<BasicBlock *> postorder;
    std::vector<std::pair<BasicBlock *, size_t>> stack;
    stack.emplace_back(function.entry(), 0);
    visited.insert(function.entry());
    while (!stack.empty()) {
        auto &[block, next] = stack.back();
        const auto succs = block->successors();
        if (next < succs.size()) {
            BasicBlock *succ = succs[next++];
            if (visited.insert(succ).second)
                stack.emplace_back(succ, 0);
        } else {
            postorder.push_back(block);
            stack.pop_back();
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (size_t i = 0; i < rpo_.size(); i++)
        rpoIndex_[rpo_[i]] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy iteration.
    idom_[function.entry()] = function.entry();
    bool changed = true;
    auto intersect = [&](BasicBlock *a, BasicBlock *b) {
        while (a != b) {
            while (rpoIndex_.at(a) > rpoIndex_.at(b))
                a = idom_.at(a);
            while (rpoIndex_.at(b) > rpoIndex_.at(a))
                b = idom_.at(b);
        }
        return a;
    };
    while (changed) {
        changed = false;
        for (BasicBlock *block : rpo_) {
            if (block == function.entry())
                continue;
            BasicBlock *new_idom = nullptr;
            for (BasicBlock *pred : block->preds) {
                if (!idom_.count(pred))
                    continue; // unprocessed or unreachable
                new_idom = new_idom ? intersect(pred, new_idom) : pred;
            }
            ALASKA_ASSERT(new_idom != nullptr,
                          "block %s unreachable from entry",
                          block->name.c_str());
            auto it = idom_.find(block);
            if (it == idom_.end() || it->second != new_idom) {
                idom_[block] = new_idom;
                changed = true;
            }
        }
    }
}

int
DominatorTree::rpoIndex(const BasicBlock *block) const
{
    auto it = rpoIndex_.find(block);
    return it == rpoIndex_.end() ? -1 : it->second;
}

BasicBlock *
DominatorTree::idom(const BasicBlock *block) const
{
    if (block == function_.entry())
        return nullptr;
    auto it = idom_.find(block);
    return it == idom_.end() ? nullptr : it->second;
}

bool
DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    if (rpoIndex(a) < 0 || rpoIndex(b) < 0)
        return false;
    const BasicBlock *walk = b;
    for (;;) {
        if (walk == a)
            return true;
        if (walk == function_.entry())
            return false;
        walk = idom_.at(walk);
    }
}

bool
DominatorTree::dominates(const Instruction *a, const Instruction *b) const
{
    if (a->parent == b->parent) {
        return a->parent->indexOf(a) < b->parent->indexOf(b);
    }
    return dominates(a->parent, b->parent);
}

BasicBlock *
DominatorTree::nearestCommonDominator(BasicBlock *a, BasicBlock *b) const
{
    BasicBlock *x = a;
    while (!dominates(x, b))
        x = idom_.at(x);
    return x;
}

// --- LoopInfo ---------------------------------------------------------------

LoopInfo::LoopInfo(Function &function, const DominatorTree &domtree)
{
    // Find back edges and group them by header.
    std::unordered_map<BasicBlock *, std::vector<BasicBlock *>> latches;
    for (auto &block : function.blocks) {
        for (BasicBlock *succ : block->successors()) {
            if (domtree.dominates(succ, block.get()))
                latches[succ].push_back(block.get());
        }
    }

    // Natural loop body: header plus everything that reaches a latch
    // without passing through the header.
    for (auto &[header, latch_list] : latches) {
        auto loop = std::make_unique<Loop>();
        loop->header = header;
        loop->blocks.insert(header);
        std::vector<BasicBlock *> work(latch_list.begin(),
                                       latch_list.end());
        while (!work.empty()) {
            BasicBlock *block = work.back();
            work.pop_back();
            if (!loop->blocks.insert(block).second)
                continue;
            for (BasicBlock *pred : block->preds) {
                if (!loop->blocks.count(pred))
                    work.push_back(pred);
            }
        }
        loops_.push_back(std::move(loop));
    }

    // Nesting: smallest strict superset is the parent.
    std::sort(loops_.begin(), loops_.end(),
              [](const auto &a, const auto &b) {
                  return a->blocks.size() < b->blocks.size();
              });
    for (size_t i = 0; i < loops_.size(); i++) {
        for (size_t j = i + 1; j < loops_.size(); j++) {
            if (loops_[j]->blocks.size() > loops_[i]->blocks.size() &&
                loops_[j]->contains(loops_[i]->header)) {
                loops_[i]->parent = loops_[j].get();
                loops_[j]->children.push_back(loops_[i].get());
                break;
            }
        }
    }
    for (auto &loop : loops_) {
        int depth = 1;
        for (Loop *up = loop->parent; up; up = up->parent)
            depth++;
        loop->depth = depth;
    }

    // Innermost map: loops_ is sorted by size, so first hit wins.
    for (auto &block : function.blocks) {
        for (auto &loop : loops_) {
            if (loop->contains(block.get())) {
                innermost_[block.get()] = loop.get();
                break;
            }
        }
    }

    for (auto &loop : loops_)
        findPreheader(*loop);
}

void
LoopInfo::findPreheader(Loop &loop)
{
    BasicBlock *outside = nullptr;
    for (BasicBlock *pred : loop.header->preds) {
        if (loop.contains(pred))
            continue;
        if (outside) {
            return; // multiple outside preds: not canonical
        }
        outside = pred;
    }
    if (outside && outside->successors().size() == 1)
        loop.preheader = outside;
}

Loop *
LoopInfo::innermostLoop(const BasicBlock *block) const
{
    auto it = innermost_.find(const_cast<BasicBlock *>(block));
    return it == innermost_.end() ? nullptr : it->second;
}

int
ensurePreheaders(Function &function)
{
    int created = 0;
    for (;;) {
        DominatorTree domtree(function);
        LoopInfo loop_info(function, domtree);
        Loop *todo = nullptr;
        for (auto &loop : loop_info.loops()) {
            if (!loop->preheader) {
                todo = loop.get();
                break;
            }
        }
        if (!todo)
            return created;

        BasicBlock *header = todo->header;
        BasicBlock *pre =
            function.addBlock(header->name + ".preheader");

        std::vector<BasicBlock *> outside;
        for (BasicBlock *pred : header->preds) {
            if (!todo->contains(pred))
                outside.push_back(pred);
        }

        // Redirect outside edges into the preheader.
        for (BasicBlock *pred : outside) {
            for (BasicBlock *&target : pred->terminator()->targets) {
                if (target == header)
                    target = pre;
            }
        }

        // Rewire header phis: their outside incomings merge in the
        // preheader (via a new phi if there is more than one).
        for (auto &inst : header->insts) {
            if (inst->op != Op::Phi)
                continue;
            std::vector<Instruction *> values;
            std::vector<BasicBlock *> preds;
            // Partition incoming pairs.
            std::vector<Instruction *> keep_values;
            std::vector<BasicBlock *> keep_blocks;
            for (size_t k = 0; k < inst->operands.size(); k++) {
                if (todo->contains(inst->phiBlocks[k])) {
                    keep_values.push_back(inst->operands[k]);
                    keep_blocks.push_back(inst->phiBlocks[k]);
                } else {
                    values.push_back(inst->operands[k]);
                    preds.push_back(inst->phiBlocks[k]);
                }
            }
            Instruction *merged;
            if (values.size() == 1) {
                merged = values[0];
            } else {
                auto phi = std::make_unique<Instruction>(Op::Phi);
                phi->operands = values;
                phi->phiBlocks = preds;
                merged = pre->append(std::move(phi));
            }
            keep_values.push_back(merged);
            keep_blocks.push_back(pre);
            inst->operands = std::move(keep_values);
            inst->phiBlocks = std::move(keep_blocks);
        }

        auto br = std::make_unique<Instruction>(Op::Br);
        br->targets = {header};
        pre->append(std::move(br));
        function.computeCfg();
        created++;
    }
}

// --- Liveness ---------------------------------------------------------------

Liveness::Liveness(Function &function) : function_(function)
{
    function.computeCfg();
    for (auto &block : function.blocks) {
        liveIn_[block.get()] = {};
        liveOut_[block.get()] = {};
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Backward iteration converges faster but correctness only
        // needs a fixpoint.
        for (auto it = function.blocks.rbegin();
             it != function.blocks.rend(); ++it) {
            BasicBlock *block = it->get();

            std::unordered_set<Instruction *> out;
            for (BasicBlock *succ : block->successors()) {
                for (Instruction *v : liveIn_.at(succ)) {
                    if (v->parent != succ || v->op != Op::Phi)
                        out.insert(v);
                }
                // Phi operands are live out of the matching pred only.
                for (auto &inst : succ->insts) {
                    if (inst->op != Op::Phi)
                        continue;
                    for (size_t k = 0; k < inst->operands.size(); k++) {
                        if (inst->phiBlocks[k] == block &&
                            inst->operands[k]->producesValue()) {
                            out.insert(inst->operands[k]);
                        }
                    }
                }
            }

            std::unordered_set<Instruction *> in = out;
            for (auto rit = block->insts.rbegin();
                 rit != block->insts.rend(); ++rit) {
                Instruction *inst = rit->get();
                in.erase(inst);
                if (inst->op == Op::Phi)
                    continue; // operands attributed to preds
                for (Instruction *operand : inst->operands) {
                    if (operand->producesValue())
                        in.insert(operand);
                }
            }
            if (out != liveOut_.at(block)) {
                liveOut_[block] = std::move(out);
                changed = true;
            }
            if (in != liveIn_.at(block)) {
                liveIn_[block] = std::move(in);
                changed = true;
            }
        }
    }
}

bool
Liveness::liveAfter(const Instruction *value, const Instruction *at) const
{
    const BasicBlock *block = at->parent;
    const int at_idx = block->indexOf(at);
    // A live range starts at the definition: a value defined after
    // `at` (or not flowing into this block at all) is not live here.
    if (value->parent == block) {
        if (block->indexOf(value) > at_idx)
            return false;
    } else if (!liveIn_.at(block).count(
                   const_cast<Instruction *>(value))) {
        return false;
    }
    if (liveOut_.at(block).count(const_cast<Instruction *>(value)))
        return true;
    for (size_t i = at_idx + 1; i < block->insts.size(); i++) {
        const Instruction *inst = block->insts[i].get();
        if (inst->op == Op::Phi)
            continue;
        for (const Instruction *operand : inst->operands) {
            if (operand == value)
                return true;
        }
    }
    return false;
}

std::vector<Instruction *>
Liveness::lastUses(const Instruction *value) const
{
    std::vector<Instruction *> result;
    for (auto &block : function_.blocks) {
        BasicBlock *b = block.get();
        const bool flows_in =
            liveIn_.at(b).count(const_cast<Instruction *>(value)) > 0 ||
            value->parent == b;
        if (!flows_in)
            continue;
        if (liveOut_.at(b).count(const_cast<Instruction *>(value)))
            continue; // dies in a later block
        // Find the last non-phi use in this block.
        for (auto rit = b->insts.rbegin(); rit != b->insts.rend(); ++rit) {
            Instruction *inst = rit->get();
            if (inst->op == Op::Phi)
                continue;
            bool uses = false;
            for (Instruction *operand : inst->operands)
                uses |= (operand == value);
            if (uses) {
                result.push_back(inst);
                break;
            }
        }
    }
    return result;
}

} // namespace alaska::ir
