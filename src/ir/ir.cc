#include "ir/ir.h"

#include <sstream>
#include <unordered_map>

#include "base/logging.h"

namespace alaska::ir
{

int
BasicBlock::indexOf(const Instruction *inst) const
{
    for (size_t i = 0; i < insts.size(); i++) {
        if (insts[i].get() == inst)
            return static_cast<int>(i);
    }
    return -1;
}

Instruction *
BasicBlock::insertAt(size_t idx, std::unique_ptr<Instruction> inst)
{
    ALASKA_ASSERT(idx <= insts.size(), "bad insertion index");
    inst->parent = this;
    Instruction *raw = inst.get();
    insts.insert(insts.begin() + static_cast<long>(idx), std::move(inst));
    return raw;
}

Instruction *
BasicBlock::append(std::unique_ptr<Instruction> inst)
{
    return insertAt(insts.size(), std::move(inst));
}

Instruction *
BasicBlock::insertBefore(const Instruction *before,
                         std::unique_ptr<Instruction> inst)
{
    const int idx = indexOf(before);
    ALASKA_ASSERT(idx >= 0, "insertBefore: anchor not in block");
    return insertAt(static_cast<size_t>(idx), std::move(inst));
}

void
BasicBlock::erase(Instruction *inst)
{
    const int idx = indexOf(inst);
    ALASKA_ASSERT(idx >= 0, "erase: instruction not in block");
    insts.erase(insts.begin() + idx);
}

BasicBlock *
Function::addBlock(const std::string &block_name)
{
    blocks.push_back(std::make_unique<BasicBlock>(block_name));
    blocks.back()->parent = this;
    return blocks.back().get();
}

void
Function::computeCfg()
{
    for (auto &block : blocks)
        block->preds.clear();
    for (auto &block : blocks) {
        for (BasicBlock *succ : block->successors())
            succ->preds.push_back(block.get());
    }
}

void
Function::renumber()
{
    int next = 0;
    for (auto &block : blocks) {
        for (auto &inst : block->insts)
            inst->id = next++;
    }
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &block : blocks)
        n += block->insts.size();
    return n;
}

void
Function::inferPointers()
{
    // Fixpoint: a value is pointer-like if it allocates, translates,
    // is declared so (args / loads of pointer fields), or derives from
    // a pointer through gep/phi/arithmetic on a pointer base.
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &block : blocks) {
            for (auto &inst : block->insts) {
                if (inst->pointerLike)
                    continue;
                bool is_ptr = false;
                switch (inst->op) {
                  case Op::Malloc:
                  case Op::Halloc:
                  case Op::Translate:
                    is_ptr = true;
                    break;
                  case Op::Arg:
                  case Op::Load:
                    is_ptr = inst->declaredPointer;
                    break;
                  case Op::Gep:
                    is_ptr = inst->operands[0]->pointerLike;
                    break;
                  case Op::Phi:
                  case Op::Add:
                  case Op::Sub:
                    for (Instruction *operand : inst->operands)
                        is_ptr |= operand->pointerLike;
                    break;
                  default:
                    break;
                }
                if (is_ptr) {
                    inst->pointerLike = true;
                    changed = true;
                }
            }
        }
    }
}

Function *
Module::addFunction(const std::string &name, int num_args)
{
    functions.push_back(std::make_unique<Function>(name, num_args));
    functions.back()->parent = this;
    return functions.back().get();
}

Function *
Module::function(const std::string &name) const
{
    for (const auto &fn : functions) {
        if (fn->name == name)
            return fn.get();
    }
    return nullptr;
}

int
Module::externalIndex(const std::string &name)
{
    for (size_t i = 0; i < externals.size(); i++) {
        if (externals[i] == name)
            return static_cast<int>(i);
    }
    externals.push_back(name);
    return static_cast<int>(externals.size() - 1);
}

size_t
Module::instructionCount() const
{
    size_t n = 0;
    for (const auto &fn : functions)
        n += fn->instructionCount();
    return n;
}

namespace
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Arg: return "arg";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpLt: return "cmplt";
      case Op::Gep: return "gep";
      case Op::Load: return "load";
      case Op::Store: return "store";
      case Op::Malloc: return "malloc";
      case Op::Free: return "free";
      case Op::Halloc: return "halloc";
      case Op::Hfree: return "hfree";
      case Op::Phi: return "phi";
      case Op::Br: return "br";
      case Op::CondBr: return "condbr";
      case Op::Ret: return "ret";
      case Op::Call: return "call";
      case Op::CallExternal: return "call.ext";
      case Op::Translate: return "translate";
      case Op::Release: return "release";
      case Op::PinSetAlloc: return "pinset.alloc";
      case Op::PinStore: return "pinset.store";
      case Op::Safepoint: return "safepoint";
    }
    return "?";
}

} // anonymous namespace

std::string
toString(const Function &function)
{
    std::ostringstream out;
    out << "func @" << function.name << "(" << function.numArgs << ")\n";
    for (const auto &block : function.blocks) {
        out << block->name << ":\n";
        for (const auto &inst : block->insts) {
            out << "  ";
            if (inst->producesValue())
                out << "%" << inst->id << " = ";
            out << opName(inst->op);
            if (inst->op == Op::Const || inst->op == Op::Arg ||
                inst->op == Op::PinSetAlloc || inst->op == Op::PinStore) {
                out << " #" << inst->imm;
            }
            for (const Instruction *operand : inst->operands)
                out << " %" << operand->id;
            if (inst->op == Op::Phi) {
                out << " [";
                for (size_t i = 0; i < inst->phiBlocks.size(); i++) {
                    out << (i ? ", " : "") << inst->phiBlocks[i]->name;
                }
                out << "]";
            }
            for (const BasicBlock *target : inst->targets)
                out << " ->" << target->name;
            out << "\n";
        }
    }
    return out.str();
}

std::string
toString(const Module &module)
{
    std::string out;
    for (const auto &fn : module.functions)
        out += toString(*fn) + "\n";
    return out;
}

} // namespace alaska::ir
