/**
 * @file
 * CFG analyses: dominator tree, natural-loop nesting tree, and liveness
 * — the three ingredients of the paper's Algorithm 1, its hoisting rule,
 * and the release/pin-set passes (§4.1.2, §4.1.3).
 */

#ifndef ALASKA_IR_ANALYSIS_H
#define ALASKA_IR_ANALYSIS_H

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/ir.h"

namespace alaska::ir
{

/** Dominator tree (Cooper-Harvey-Kennedy iterative algorithm). */
class DominatorTree
{
  public:
    explicit DominatorTree(Function &function);

    /** Immediate dominator; nullptr for the entry block. */
    BasicBlock *idom(const BasicBlock *block) const;

    /** Reflexive block dominance. */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /**
     * Instruction dominance: a's value is available at b. Within a
     * block this is list order; across blocks, block dominance.
     */
    bool dominates(const Instruction *a, const Instruction *b) const;

    /** Nearest common dominator of two blocks. */
    BasicBlock *nearestCommonDominator(BasicBlock *a, BasicBlock *b) const;

    /** Blocks in reverse post order. */
    const std::vector<BasicBlock *> &rpo() const { return rpo_; }

  private:
    int rpoIndex(const BasicBlock *block) const;

    Function &function_;
    std::vector<BasicBlock *> rpo_;
    std::unordered_map<const BasicBlock *, int> rpoIndex_;
    std::unordered_map<const BasicBlock *, BasicBlock *> idom_;
};

/** One natural loop. */
struct Loop
{
    BasicBlock *header = nullptr;
    std::unordered_set<BasicBlock *> blocks;
    Loop *parent = nullptr;
    std::vector<Loop *> children;
    int depth = 1;

    bool
    contains(const BasicBlock *block) const
    {
        return blocks.count(const_cast<BasicBlock *>(block)) > 0;
    }

    bool
    contains(const Instruction *inst) const
    {
        return contains(inst->parent);
    }

    /**
     * The dedicated preheader: the unique predecessor of the header
     * from outside the loop, whose only successor is the header.
     * nullptr if the loop is not in canonical form (run
     * ensurePreheaders() first — the paper relies on LLVM's
     * -loop-simplify for the same purpose).
     */
    BasicBlock *preheader = nullptr;
};

/** The loop nesting forest of a function. */
class LoopInfo
{
  public:
    LoopInfo(Function &function, const DominatorTree &domtree);

    /** Innermost loop containing the block; nullptr if none. */
    Loop *innermostLoop(const BasicBlock *block) const;
    Loop *innermostLoop(const Instruction *inst) const
    {
        return innermostLoop(inst->parent);
    }

    const std::vector<std::unique_ptr<Loop>> &loops() const
    {
        return loops_;
    }

  private:
    void findPreheader(Loop &loop);

    std::vector<std::unique_ptr<Loop>> loops_;
    std::unordered_map<const BasicBlock *, Loop *> innermost_;
};

/**
 * Put every loop into canonical form by creating dedicated preheaders
 * where they are missing (the -loop-simplify the paper relies on).
 * Invalidates previously computed analyses.
 * @return number of preheaders created.
 */
int ensurePreheaders(Function &function);

/** Classic backward liveness over SSA values. */
class Liveness
{
  public:
    explicit Liveness(Function &function);

    /** Is value live immediately *after* instruction at? */
    bool liveAfter(const Instruction *value, const Instruction *at) const;

    /** Live-in / live-out sets per block. */
    const std::unordered_set<Instruction *> &
    liveIn(const BasicBlock *block) const
    {
        return liveIn_.at(block);
    }
    const std::unordered_set<Instruction *> &
    liveOut(const BasicBlock *block) const
    {
        return liveOut_.at(block);
    }

    /**
     * The last instructions of value's live range: for each block where
     * the value dies, the final user (or the block itself's users).
     * Used by release insertion (§4.1.2).
     */
    std::vector<Instruction *> lastUses(const Instruction *value) const;

  private:
    Function &function_;
    std::unordered_map<const BasicBlock *, std::unordered_set<Instruction *>>
        liveIn_;
    std::unordered_map<const BasicBlock *, std::unordered_set<Instruction *>>
        liveOut_;
};

} // namespace alaska::ir

#endif // ALASKA_IR_ANALYSIS_H
