/**
 * @file
 * An IR interpreter that executes programs against the *real* Alaska
 * runtime: Halloc goes through Runtime::halloc, Translate through the
 * production translation fast path, PinSetAlloc/PinStore build real
 * stack pin frames, and Safepoint polls the real barrier flag. A defrag
 * barrier can therefore move objects underneath a running interpreted
 * program, which is how the compiler pipeline's correctness is tested
 * end to end.
 */

#ifndef ALASKA_IR_INTERPRETER_H
#define ALASKA_IR_INTERPRETER_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/runtime.h"
#include "ir/ir.h"

namespace alaska::ir
{

/** Dynamic execution counters (hoisting effectiveness, Figure 8). */
struct InterpStats
{
    uint64_t instructions = 0;
    uint64_t translations = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t polls = 0;
    uint64_t pinStores = 0;
    uint64_t externalCalls = 0;
};

/** Executes IR functions. */
class Interpreter
{
  public:
    /** An external ("precompiled") function: raw args in, value out.
     *  Externals dereference raw pointers directly — they are exactly
     *  the code that must never see a handle (§4.1.4). */
    using ExternalFn = std::function<int64_t(const std::vector<int64_t> &)>;

    /**
     * @param module the program
     * @param runtime required if the program uses Halloc/Translate/...
     */
    explicit Interpreter(Module &module, Runtime *runtime = nullptr);
    ~Interpreter();

    /** Register the implementation of an external function by name. */
    void registerExternal(const std::string &name, ExternalFn fn);

    /** Run a function; returns its Ret value (0 for void returns). */
    int64_t run(Function &function, const std::vector<int64_t> &args = {});

    const InterpStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    int64_t eval(Function &function, const std::vector<int64_t> &args,
                 int depth);

    Module &module_;
    Runtime *runtime_;
    std::unordered_map<std::string, ExternalFn> externals_;
    /** Raw malloc'd blocks still live, freed on destruction. */
    std::unordered_set<void *> rawBlocks_;
    InterpStats stats_;
};

} // namespace alaska::ir

#endif // ALASKA_IR_INTERPRETER_H
