/**
 * @file
 * Array accessors encoding the compiler's translation placement.
 *
 *  - HoistedArray: one pin+translate at construction (what Algorithm 1
 *    produces when the base is defined outside the loops — 619.lbm,
 *    the NAS kernels, xz in the paper).
 *  - PerAccessArray: pin+translate before *every* access (what the
 *    compiler emits with hoisting disabled, or for bases it cannot
 *    hoist). Its base is a typed alaska::href<T> view, so the
 *    per-access interior arithmetic is typed and field-safe (an
 *    offset carry can never corrupt the handle ID — see api/href.h).
 *
 * Kernels are templated on the accessor, so the same inner loop runs
 * under every Figure 7/8 configuration.
 */

#ifndef ALASKA_KERNELS_ACCESS_H
#define ALASKA_KERNELS_ACCESS_H

#include <cstddef>
#include <cstdint>

#include "api/href.h"

namespace alaska::kernels
{

/** Translation hoisted out of all loops. */
template <typename P, typename T = int64_t>
class HoistedArray
{
  public:
    HoistedArray(typename P::Frame &frame, int slot, void *maybe_handle)
        : raw_(static_cast<T *>(frame.pin(slot, maybe_handle)))
    {}

    T load(size_t i) const { return raw_[i]; }
    void store(size_t i, T v) const { raw_[i] = v; }
    T *raw() const { return raw_; }

  private:
    T *raw_;
};

/** Translation before every access (nohoisting). */
template <typename P, typename T = int64_t>
class PerAccessArray
{
  public:
    PerAccessArray(typename P::Frame &frame, int slot, void *maybe_handle)
        : frame_(frame), slot_(slot),
          handle_(static_cast<T *>(maybe_handle))
    {}

    T
    load(size_t i) const
    {
        return *translated(i);
    }

    void
    store(size_t i, T v) const
    {
        *translated(i) = v;
    }

    /** Raw base pointer for an escape (still pinned). */
    T *
    raw() const
    {
        return translated(0);
    }

  private:
    /**
     * The per-access sequence the compiler emits for an unhoisted
     * subscript: typed interior arithmetic on the handle (plain ALU
     * ops), then pin+translate of the resulting interior handle.
     */
    T *
    translated(size_t i) const
    {
        return static_cast<T *>(frame_.pin(
            slot_, (handle_ + static_cast<ptrdiff_t>(i)).get()));
    }

    typename P::Frame &frame_;
    int slot_;
    href<T> handle_;
};

} // namespace alaska::kernels

#endif // ALASKA_KERNELS_ACCESS_H
