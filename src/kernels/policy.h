/**
 * @file
 * Pointer policies for the benchmark kernels (Figures 7 and 8).
 *
 * The paper measures the native-code cost of the instructions its
 * compiler inserts: translations (hoisted per Algorithm 1 or before
 * every access), pin-set stores, and safepoint polls. The kernels in
 * this library are written once against a policy that supplies exactly
 * those operations:
 *
 *  - RawPolicy        — the baseline: malloc pointers, all ops no-ops.
 *  - AlaskaPolicy     — handles: real halloc, real translation fast
 *                       path, pin stores into a real stack pin frame,
 *                       real safepoint polls.
 *  - AlaskaNoTrack    — Figure 8's "notracking": translations without
 *                       pin stores or polls.
 *
 * Hoisting ("nohoisting" in Figure 8) is an accessor choice, not a
 * policy: see access.h.
 */

#ifndef ALASKA_KERNELS_POLICY_H
#define ALASKA_KERNELS_POLICY_H

#include <cstdlib>

#include "core/pin.h"
#include "core/runtime.h"
#include "core/translate.h"

namespace alaska::kernels
{

/** Max pin slots a kernel frame may use. */
inline constexpr int frameSlots = 8;

/** Baseline: raw pointers, zero-cost operations. */
struct RawPolicy
{
    static constexpr const char *name = "base";

    /** Pin frame stand-in: pin is the identity. */
    class Frame
    {
      public:
        void *
        pin(int /*slot*/, const void *maybe_handle)
        {
            return const_cast<void *>(maybe_handle);
        }
    };

    static void *alloc(size_t size) { return std::malloc(size); }
    static void release(void *ptr) { std::free(ptr); }

    static void *
    translate(const void *maybe_handle)
    {
        return const_cast<void *>(maybe_handle);
    }

    static void poll() {}
};

/** Full Alaska: translation + tracking + polls. */
struct AlaskaPolicy
{
    static constexpr const char *name = "alaska";

    /** A real pin frame on the stack, as the compiler would emit. */
    class Frame
    {
      public:
        Frame() : frame_(slots_, frameSlots) {}

        void *
        pin(int slot, const void *maybe_handle)
        {
            return frame_.pin(static_cast<uint32_t>(slot), maybe_handle);
        }

      private:
        uint64_t slots_[frameSlots];
        PinFrame frame_;
    };

    static void *alloc(size_t size)
    {
        return Runtime::gRuntime->halloc(size);
    }

    static void release(void *ptr) { Runtime::gRuntime->hfree(ptr); }

    static void *
    translate(const void *maybe_handle)
    {
        return alaska::translate(maybe_handle);
    }

    static void poll() { alaska::poll(); }
};

/** Figure 8 "notracking": translations, but no pins and no polls. */
struct AlaskaNoTrackPolicy
{
    static constexpr const char *name = "notracking";

    class Frame
    {
      public:
        void *
        pin(int /*slot*/, const void *maybe_handle)
        {
            return alaska::translate(maybe_handle);
        }
    };

    static void *alloc(size_t size)
    {
        return Runtime::gRuntime->halloc(size);
    }

    static void release(void *ptr) { Runtime::gRuntime->hfree(ptr); }

    static void *
    translate(const void *maybe_handle)
    {
        return alaska::translate(maybe_handle);
    }

    static void poll() {}
};

} // namespace alaska::kernels

#endif // ALASKA_KERNELS_POLICY_H
