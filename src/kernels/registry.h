/**
 * @file
 * Registry of benchmark kernels with their four Figure 7/8
 * configurations instantiated: base (raw pointers), alaska (handles,
 * hoisted, tracked), nohoisting (handles, per-access translation),
 * and notracking (handles, hoisted, no pins/polls).
 */

#ifndef ALASKA_KERNELS_REGISTRY_H
#define ALASKA_KERNELS_REGISTRY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace alaska::kernels
{

/** One kernel and its configuration entry points. */
struct KernelEntry
{
    const char *suite; ///< "embench" | "gap" | "nas" | "spec"
    const char *name;
    /** Paper benchmark(s) this kernel's access shape stands in for. */
    const char *standsFor;
    /** Pointer-chasing kernels can't benefit from hoisting. */
    bool pointerChasing;
    /** Default workload scale (kernel-specific meaning). */
    size_t scale;
    int64_t (*base)(size_t);
    int64_t (*alaska)(size_t);
    int64_t (*nohoist)(size_t);
    int64_t (*notrack)(size_t);
};

/** All kernels. Requires a live Runtime for non-base configs. */
const std::vector<KernelEntry> &kernelRegistry();

} // namespace alaska::kernels

#endif // ALASKA_KERNELS_REGISTRY_H
